//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`arbitrary::any`],
//! [`strategy::Just`], the [`proptest!`] macro with
//! `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case is reported
//! with its generated value via `Debug` where available, but not
//! minimized) and a fixed deterministic seed sequence per test case, so
//! failures always reproduce.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into a strategy-producing function and
        /// samples the produced strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, i64, i32, u8, i8, u16, i16);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.gen()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> usize {
            rng.gen::<u64>() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, sign-balanced and spanning several magnitudes — the
            // useful slice of "any f64" for numeric property tests.
            let m: f64 = rng.gen_range(-1.0..1.0);
            let e: i32 = rng.gen_range(-8i32..9);
            m * 10f64.powi(e)
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng as _;

    /// A fixed or ranged element count for [`vec`].
    pub trait IntoSizeRange {
        /// Samples a concrete length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::Range<i32> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.start as usize..self.end as usize)
        }
    }

    /// Strategy for vectors of `element` values with a given length.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;

    /// A failed property-test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives a property over `config.cases` generated inputs.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates the runner.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Runs the property; panics on the first failing case with its
        /// case number (the seed sequence is fixed, so reruns reproduce).
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: Strategy,
            S::Value: std::fmt::Debug,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                // Fixed per-case seeds: failures are reproducible without
                // a persistence file.
                let mut rng = StdRng::seed_from_u64(
                    0xC0FF_EE00_D15E_A5ED ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let value = strategy.generate(&mut rng);
                let shown = format!("{value:?}");
                if let Err(TestCaseError(msg)) = test(value) {
                    panic!(
                        "proptest case {case}/{total} failed: {msg}\n  input: {shown}",
                        total = self.config.cases
                    );
                }
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(
                &($($strat,)+),
                |($($pat,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}
