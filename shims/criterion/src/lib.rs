//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use — groups,
//! `bench_with_input`/`bench_function`, `BenchmarkId`, `sample_size`,
//! `criterion_group!`/`criterion_main!` — with a median-of-samples timer.
//!
//! On top of upstream's console report, every run **merges its medians
//! into a machine-readable JSON file** (`BENCH_lp.json` at the workspace
//! root, override with `QAVA_BENCH_JSON`), mapping full benchmark
//! names to median nanoseconds. The file is flat one-entry-per-line JSON
//! so future runs can diff perf without a JSON parser.
//!
//! Pass a substring as the first CLI argument (cargo bench passes filter
//! args through) to run only matching benchmarks.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Returns the argument unchanged while defeating constant propagation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    sample_ns: f64,
}

impl Bencher {
    /// Measures one sample of the routine. Fast routines are batched until
    /// the sample is long enough to time reliably.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let mut elapsed = start.elapsed();
        let mut iters = 1u32;
        // Batch sub-100µs routines up to ~1ms per sample.
        while elapsed < Duration::from_micros(100) && iters < 1 << 20 {
            let batch = 16u32;
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += start.elapsed();
            iters += batch;
        }
        self.sample_ns = elapsed.as_nanos() as f64 / f64::from(iters);
    }
}

/// The benchmark harness: collects results across groups and writes the
/// JSON report when dropped by [`criterion_main!`].
pub struct Criterion {
    results: BTreeMap<String, f64>,
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { results: BTreeMap::new(), default_sample_size: 10, filter }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    fn record(&mut self, full_name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(sample_size);
        // One warmup sample, discarded.
        let mut b = Bencher { sample_ns: 0.0 };
        f(&mut b);
        for _ in 0..sample_size.max(1) {
            let mut b = Bencher { sample_ns: 0.0 };
            f(&mut b);
            samples.push(b.sample_ns);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = samples[samples.len() / 2];
        println!("{full_name:<60} median {}", format_ns(median));
        self.results.insert(full_name.to_string(), median);
    }

    /// Writes the merged JSON report; called by [`criterion_main!`].
    pub fn final_summary(&self) {
        let path = std::env::var("QAVA_BENCH_JSON").unwrap_or_else(|_| default_report_path());
        let mut merged = read_report(&path);
        for (k, v) in &self.results {
            merged.insert(k.clone(), *v);
        }
        let mut out = String::from("{\n");
        let total = merged.len();
        for (i, (k, v)) in merged.iter().enumerate() {
            let comma = if i + 1 == total { "" } else { "," };
            out.push_str(&format!("  \"{k}\": {v:.1}{comma}\n"));
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {} medians to {path}", self.results.len());
        }
    }
}

/// Default report location: `BENCH_lp.json` at the workspace root
/// (cargo runs bench binaries with the package directory as cwd, so we
/// walk up to the first `Cargo.toml` declaring `[workspace]`).
fn default_report_path() -> String {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.join("BENCH_lp.json").to_string_lossy().into_owned();
            }
        }
        if !dir.pop() {
            return "BENCH_lp.json".into();
        }
    }
}

/// Parses the flat one-entry-per-line report written by `final_summary`.
fn read_report(path: &str) -> BTreeMap<String, f64> {
    let mut map = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return map;
    };
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((name, value)) = rest.split_once("\": ") else { continue };
        if let Ok(v) = value.parse::<f64>() {
            map.insert(name.to_string(), v);
        }
    }
    map
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:8.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:8.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:8.3} µs", ns / 1e3)
    } else {
        format!("{ns:8.1} ns")
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        self.criterion.record(&full, sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size;
        self.criterion.record(&full, sample_size, &mut |b| f(b));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the given groups and writing the JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_recorded_and_reported() {
        let mut c = Criterion { results: BTreeMap::new(), default_sample_size: 3, filter: None };
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("fast", |b| b.iter(|| black_box(1 + 1)));
            g.finish();
        }
        assert!(c.results["g/fast"] > 0.0);
    }

    #[test]
    fn report_roundtrip() {
        let dir = std::env::temp_dir().join("qava_criterion_shim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        std::fs::write(&path, "{\n  \"a/b\": 12.5,\n  \"c/d\": 99.0\n}\n").unwrap();
        let map = read_report(path.to_str().unwrap());
        assert_eq!(map.len(), 2);
        assert_eq!(map["a/b"], 12.5);
    }
}
