//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: [`Rng`] with
//! `gen`, `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`], the
//! deterministic [`rngs::StdRng`] and the [`rngs::mock::StepRng`] test rng.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different stream
//! than upstream's ChaCha12, but every consumer in this workspace only
//! relies on determinism-for-a-seed, not on a specific stream.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from `Standard` (the unit interval
/// for floats, the full domain for integers).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that support uniform sampling from a half-open `Range`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is < span / 2^64 — irrelevant for the tiny
                // spans (< 100) used in this workspace.
                let off = (rng.next_u64() as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32, u8, i8, u16, i16);

/// The user-facing random-value API, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream's
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Trivial test generators.
    pub mod mock {
        use super::super::RngCore;

        /// Returns `initial`, `initial + increment`, … — handy for tests
        /// that need a fixed, predictable stream.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { value: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = r.gen_range(1usize..7);
            assert!((1..7).contains(&n));
        }
    }

    #[test]
    fn unsized_rng_usable_through_reference() {
        fn takes_dyn<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        let x = takes_dyn(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
