//! Offline stand-in for the `rayon` data-parallelism crate.
//!
//! Implements the slice of the rayon API the suite driver uses —
//! `par_iter().map(..).collect()`, [`join`], [`current_num_threads`] —
//! on top of `std::thread::scope` with an atomic work-stealing index.
//! Results are written into their input slot, so **output order is
//! deterministic** (input order) regardless of scheduling, matching
//! rayon's indexed-parallel-iterator guarantee that the suite runner
//! relies on for reproducible table output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count configured via [`ThreadPoolBuilder::build_global`]
/// (0 = unset).
static GLOBAL_NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads used by the parallel operators: an explicit
/// [`ThreadPoolBuilder::build_global`] configuration wins, then the
/// standard `RAYON_NUM_THREADS` environment variable, then the
/// machine's parallelism.
pub fn current_num_threads() -> usize {
    let configured = GLOBAL_NUM_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Mirror of rayon's global-pool configuration entry point (the subset
/// this workspace uses). Unlike upstream, repeat configuration is
/// allowed — the shim has no long-lived pool to rebuild.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Starts a builder with the default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the configuration for the process-global operators.
    pub fn build_global(self) -> Result<(), std::convert::Infallible> {
        GLOBAL_NUM_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// A pending parallel iteration over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

/// A mapped parallel iteration, ready to collect.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Applies `f` to every element in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f }
    }
}

impl<'data, T, F> ParMap<'data, T, F> {
    /// Runs the map and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromIndexedParallel<R>,
    {
        C::from_ordered(run_indexed(self.items, &self.f))
    }
}

/// Collections constructible from an ordered parallel map.
pub trait FromIndexedParallel<R> {
    /// Builds the collection from results in input order.
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromIndexedParallel<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

fn run_indexed<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
where
    T: Sync,
    F: Fn(&'data T) -> R + Sync,
    R: Send,
{
    let n = items.len();
    if n <= 1 || current_num_threads() == 1 {
        return items.iter().map(f).collect();
    }
    let workers = current_num_threads().min(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("parallel worker panicked before filling its slot")
        })
        .collect()
}

/// Extension trait providing `par_iter` on slices and vectors.
pub trait IntoParallelRefIterator<'data> {
    /// The element type.
    type Item: Sync + 'data;

    /// Starts a parallel iteration borrowing the collection.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// The usual rayon imports.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_parallel_map() {
        let input: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn build_global_overrides_worker_count() {
        super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .expect("infallible");
        assert_eq!(super::current_num_threads(), 3);
        super::ThreadPoolBuilder::new().num_threads(0).build_global().expect("infallible");
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
