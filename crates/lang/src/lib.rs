#![warn(missing_docs)]

//! An imperative probabilistic programming language that lowers to
//! probabilistic transition systems.
//!
//! The paper writes its benchmarks in pseudocode (`while`, `if prob(p)`,
//! `switch`, `assert`, `exit`); this crate makes that notation executable:
//!
//! * [`parse`] — a hand-rolled lexer and recursive-descent parser with
//!   byte-accurate spans and readable diagnostics;
//! * [`ast`] — the surface syntax, including `param` declarations
//!   (overridable benchmark parameters), `sample` declarations (uniform and
//!   discrete distributions), simultaneous assignments and `invariant`
//!   annotations on loops;
//! * [`lower`] — translation to [`qava_pts::Pts`] with straight-line fusion,
//!   so the generated systems match the paper's hand-drawn PTS figures;
//! * [`compile`] — the one-call convenience wrapping both.
//!
//! # Examples
//!
//! ```
//! // The tortoise-hare race of §3.1 (Fig. 1).
//! let src = r"
//!     param start = 40;
//!     x := start; y := 0;
//!     while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
//!         if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
//!     }
//!     assert x >= 100;
//! ";
//! let pts = qava_lang::compile(src, &Default::default())?;
//! assert_eq!(pts.num_vars(), 2);
//! let head = pts.loc_by_name("while@4").expect("loop head location");
//! assert!(!pts.invariant(head).constraints().is_empty());
//! # Ok::<(), qava_lang::CompileError>(())
//! ```

pub mod ast;
mod lower;
mod parser;
pub mod token;

pub use ast::Program;
pub use lower::{lower, LowerError};
pub use parser::{parse, ParseError};

use std::collections::BTreeMap;

/// A parse-or-lower failure from [`compile`].
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic / lowering error.
    Lower(LowerError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => e.fmt(f),
            CompileError::Lower(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

/// Parses and lowers `src` in one call, overriding `param` defaults from
/// `params`.
///
/// # Errors
///
/// [`CompileError`] carrying the parse or lowering diagnostic.
pub fn compile(
    src: &str,
    params: &BTreeMap<String, f64>,
) -> Result<qava_pts::Pts, CompileError> {
    let prog = parse(src)?;
    Ok(lower(&prog, params)?)
}
