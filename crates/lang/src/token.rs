//! Tokens and the hand-rolled lexer, with byte-accurate source spans for
//! error reporting.

/// A half-open byte range into the source text, with 1-based line/column of
/// its start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
    /// 1-based column of `start`.
    pub col: usize,
}

impl Span {
    /// A degenerate span for synthesized tokens.
    pub fn dummy() -> Self {
        Span { start: 0, end: 0, line: 0, col: 0 }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds of the `qava` surface language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (variable, parameter or sample name).
    Ident(String),
    /// Numeric literal (integers, decimals, scientific notation).
    Number(f64),
    /// Keyword (`while`, `if`, `else`, `prob`, `switch`, `assert`, `exit`,
    /// `skip`, `invariant`, `param`, `sample`, `uniform`, `discrete`, `and`,
    /// `true`, `false`).
    Keyword(Keyword),
    /// `:=`
    Assign,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `~`
    Tilde,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// End of input.
    Eof,
}

/// Reserved words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    While,
    If,
    Else,
    Prob,
    Switch,
    Assert,
    Exit,
    Skip,
    Invariant,
    Param,
    Sample,
    Uniform,
    Discrete,
    And,
    True,
    False,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "while" => Keyword::While,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "prob" => Keyword::Prob,
            "switch" => Keyword::Switch,
            "assert" => Keyword::Assert,
            "exit" => Keyword::Exit,
            "skip" => Keyword::Skip,
            "invariant" => Keyword::Invariant,
            "param" => Keyword::Param,
            "sample" => Keyword::Sample,
            "uniform" => Keyword::Uniform,
            "discrete" => Keyword::Discrete,
            "and" => Keyword::And,
            "true" => Keyword::True,
            "false" => Keyword::False,
            _ => return None,
        })
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// A lexing error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Location of the offending character.
    pub span: Span,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`; `//` line comments are skipped.
///
/// # Errors
///
/// [`LexError`] on unknown characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let span_at = |i: usize, len: usize, line: usize, col: usize| Span {
        start: i,
        end: i + len,
        line,
        col,
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Line comments.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &src[start..i];
            let kind = match Keyword::from_str(word) {
                Some(k) => TokenKind::Keyword(k),
                None => TokenKind::Ident(word.to_string()),
            };
            tokens.push(Token { kind, span: span_at(start, i - start, line, col) });
            col += i - start;
            continue;
        }
        // Numbers: digits, optional fraction, optional exponent.
        if c.is_ascii_digit() || (c == '.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'.' {
                i += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    i = j;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &src[start..i];
            let value: f64 = text.parse().map_err(|_| LexError {
                message: format!("malformed number `{text}`"),
                span: span_at(start, i - start, line, col),
            })?;
            tokens.push(Token {
                kind: TokenKind::Number(value),
                span: span_at(start, i - start, line, col),
            });
            col += i - start;
            continue;
        }
        // Operators and punctuation.
        let two = if i + 1 < bytes.len() { &src[i..i + 2] } else { "" };
        let (kind, len) = match two {
            ":=" => (TokenKind::Assign, 2),
            "==" => (TokenKind::EqEq, 2),
            "<=" => (TokenKind::Le, 2),
            ">=" => (TokenKind::Ge, 2),
            _ => match c {
                ';' => (TokenKind::Semi, 1),
                ',' => (TokenKind::Comma, 1),
                ':' => (TokenKind::Colon, 1),
                '~' => (TokenKind::Tilde, 1),
                '(' => (TokenKind::LParen, 1),
                ')' => (TokenKind::RParen, 1),
                '{' => (TokenKind::LBrace, 1),
                '}' => (TokenKind::RBrace, 1),
                '+' => (TokenKind::Plus, 1),
                '-' => (TokenKind::Minus, 1),
                '*' => (TokenKind::Star, 1),
                '/' => (TokenKind::Slash, 1),
                '=' => (TokenKind::Eq, 1),
                '<' => (TokenKind::Lt, 1),
                '>' => (TokenKind::Gt, 1),
                other => {
                    return Err(LexError {
                        message: format!("unexpected character `{other}`"),
                        span: span_at(i, 1, line, col),
                    })
                }
            },
        };
        tokens.push(Token { kind, span: span_at(i, len, line, col) });
        i += len;
        col += len;
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span { start: src.len(), end: src.len(), line, col },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("x := x + 1;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Ident("x".into()),
                TokenKind::Plus,
                TokenKind::Number(1.0),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_keywords_vs_idents() {
        assert_eq!(
            kinds("while whilex"),
            vec![
                TokenKind::Keyword(Keyword::While),
                TokenKind::Ident("whilex".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_scientific_notation() {
        assert_eq!(kinds("1e-7"), vec![TokenKind::Number(1e-7), TokenKind::Eof]);
        assert_eq!(kinds("2.5E+3"), vec![TokenKind::Number(2500.0), TokenKind::Eof]);
        assert_eq!(kinds("0.75"), vec![TokenKind::Number(0.75), TokenKind::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x // the tortoise\n:= 1"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Number(1.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("<= >= < > == ="),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::EqEq,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("x\ny := 2;").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 1);
        assert_eq!(toks[2].span.col, 3);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("x := $;").unwrap_err();
        assert!(err.message.contains('$'));
        assert_eq!(err.span.col, 6);
    }

    #[test]
    fn minus_exponent_not_swallowed_when_not_digit() {
        // `1e` followed by `-x` must lex as number 1, ident e? No — `1e`
        // is a malformed trailing form; our lexer reads `1` then `e-x` would
        // be ident `e`... verify actual behaviour: `1e - x` keeps the minus.
        assert_eq!(
            kinds("1 - x"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Minus,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }
}
