//! Recursive-descent parser for the `qava` surface language.
//!
//! Grammar (EBNF, `//` comments allowed anywhere):
//!
//! ```text
//! program    = { decl } , { stmt } ;
//! decl       = "param" IDENT "=" expr ";"
//!            | "sample" IDENT "~" dist ";" ;
//! dist       = "uniform" "(" expr "," expr ")"
//!            | "discrete" "(" expr ":" expr { "," expr ":" expr } ")" ;
//! stmt       = IDENT { "," IDENT } ":=" expr { "," expr } ";"
//!            | "if" "prob" "(" expr ")" block [ "else" block ]
//!            | "if" cond block [ "else" block ]
//!            | "switch" "{" { "prob" "(" expr ")" ":" block } "}"
//!            | "while" cond [ "invariant" cond ] block
//!            | "assert" cond ";"
//!            | "exit" ";"
//!            | "skip" ";" ;
//! block      = "{" { stmt } "}" ;
//! cond       = "true" | "false" | cmp { "and" cmp } ;
//! cmp        = expr ( "<=" | ">=" | "<" | ">" | "==" ) expr ;
//! expr       = term { ("+" | "-") term } ;
//! term       = factor { ("*" | "/") factor } ;
//! factor     = NUMBER | IDENT | "-" factor | "(" expr ")" ;
//! ```

use crate::ast::*;
use crate::token::{lex, Keyword, Span, Token, TokenKind};

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::token::LexError> for ParseError {
    fn from(e: crate::token::LexError) -> Self {
        ParseError { message: e.message, span: e.span }
    }
}

/// Parses a complete program.
///
/// # Errors
///
/// [`ParseError`] pointing at the first offending token.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek().kind == TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword, what: &str) -> Result<(), ParseError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let span = self.peek().span;
                self.bump();
                Ok((name, span))
            }
            other => Err(self.err_here(format!("expected {what}, found {other:?}"))),
        }
    }

    fn err_here(&self, message: String) -> ParseError {
        ParseError { message, span: self.peek().span }
    }

    // ---- grammar productions ----

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut params = Vec::new();
        let mut samples = Vec::new();
        loop {
            if self.peek().kind == TokenKind::Keyword(Keyword::Param) {
                let span = self.bump().span;
                let (name, _) = self.ident("parameter name")?;
                self.expect(&TokenKind::Eq, "`=`")?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                params.push(ParamDecl { name, value, span });
            } else if self.peek().kind == TokenKind::Keyword(Keyword::Sample) {
                let span = self.bump().span;
                let (name, _) = self.ident("sampling-variable name")?;
                self.expect(&TokenKind::Tilde, "`~`")?;
                let dist = self.dist()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                samples.push(SampleDecl { name, dist, span });
            } else {
                break;
            }
        }
        let mut body = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            body.push(self.stmt()?);
        }
        Ok(Program { params, samples, body })
    }

    fn dist(&mut self) -> Result<DistExpr, ParseError> {
        if self.eat_keyword(Keyword::Uniform) {
            self.expect(&TokenKind::LParen, "`(`")?;
            let lo = self.expr()?;
            self.expect(&TokenKind::Comma, "`,`")?;
            let hi = self.expr()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            Ok(DistExpr::Uniform(lo, hi))
        } else if self.eat_keyword(Keyword::Discrete) {
            self.expect(&TokenKind::LParen, "`(`")?;
            let mut points = Vec::new();
            loop {
                let value = self.expr()?;
                self.expect(&TokenKind::Colon, "`:`")?;
                let prob = self.expr()?;
                points.push((value, prob));
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RParen, "`)`")?;
            Ok(DistExpr::Discrete(points))
        } else {
            Err(self.err_here("expected `uniform` or `discrete`".into()))
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                return Err(self.err_here("unterminated block (missing `}`)".into()));
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek().span;
        match self.peek().kind.clone() {
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                // `if prob(p)` vs deterministic `if cond`.
                if self.peek().kind == TokenKind::Keyword(Keyword::Prob) {
                    self.bump();
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let prob = self.expr()?;
                    self.expect(&TokenKind::RParen, "`)`")?;
                    let then_branch = self.block()?;
                    let else_branch = if self.eat_keyword(Keyword::Else) {
                        self.block()?
                    } else {
                        Vec::new()
                    };
                    Ok(Stmt::IfProb { prob, then_branch, else_branch, span })
                } else {
                    let cond = self.cond()?;
                    let then_branch = self.block()?;
                    let else_branch = if self.eat_keyword(Keyword::Else) {
                        self.block()?
                    } else {
                        Vec::new()
                    };
                    Ok(Stmt::IfCond { cond, then_branch, else_branch, span })
                }
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                self.expect(&TokenKind::LBrace, "`{`")?;
                let mut arms = Vec::new();
                while self.peek().kind != TokenKind::RBrace {
                    self.expect_keyword(Keyword::Prob, "`prob`")?;
                    self.expect(&TokenKind::LParen, "`(`")?;
                    let p = self.expr()?;
                    self.expect(&TokenKind::RParen, "`)`")?;
                    self.expect(&TokenKind::Colon, "`:`")?;
                    let body = self.block()?;
                    arms.push((p, body));
                }
                self.bump();
                if arms.is_empty() {
                    return Err(self.err_here("switch needs at least one arm".into()));
                }
                Ok(Stmt::Switch { arms, span })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                let cond = self.cond()?;
                let invariant = if self.eat_keyword(Keyword::Invariant) {
                    Some(self.cond()?)
                } else {
                    None
                };
                let body = self.block()?;
                Ok(Stmt::While { cond, invariant, body, span })
            }
            TokenKind::Keyword(Keyword::Assert) => {
                self.bump();
                let cond = self.cond()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Assert { cond, span })
            }
            TokenKind::Keyword(Keyword::Exit) => {
                self.bump();
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Exit { span })
            }
            TokenKind::Keyword(Keyword::Skip) => {
                self.bump();
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Skip { span })
            }
            TokenKind::Ident(_) => {
                let mut targets = Vec::new();
                let (first, _) = self.ident("variable")?;
                targets.push(first);
                while self.peek().kind == TokenKind::Comma {
                    self.bump();
                    let (next, _) = self.ident("variable")?;
                    targets.push(next);
                }
                self.expect(&TokenKind::Assign, "`:=`")?;
                let mut values = vec![self.expr()?];
                while self.peek().kind == TokenKind::Comma {
                    self.bump();
                    values.push(self.expr()?);
                }
                self.expect(&TokenKind::Semi, "`;`")?;
                if targets.len() != values.len() {
                    return Err(ParseError {
                        message: format!(
                            "assignment arity mismatch: {} targets, {} values",
                            targets.len(),
                            values.len()
                        ),
                        span,
                    });
                }
                Ok(Stmt::Assign { targets, values, span })
            }
            other => Err(self.err_here(format!("expected a statement, found {other:?}"))),
        }
    }

    fn cond(&mut self) -> Result<Cond, ParseError> {
        if self.eat_keyword(Keyword::True) {
            return Ok(Cond::True);
        }
        if self.eat_keyword(Keyword::False) {
            return Ok(Cond::False);
        }
        let mut cmps = vec![self.comparison()?];
        while self.eat_keyword(Keyword::And) {
            cmps.push(self.comparison()?);
        }
        Ok(Cond::Conj(cmps))
    }

    fn comparison(&mut self) -> Result<Comparison, ParseError> {
        let lhs = self.expr()?;
        let op = match self.peek().kind {
            TokenKind::Le => RelOp::Le,
            TokenKind::Ge => RelOp::Ge,
            TokenKind::Lt => RelOp::Lt,
            TokenKind::Gt => RelOp::Gt,
            TokenKind::EqEq => RelOp::Eq,
            _ => {
                return Err(
                    self.err_here("expected a comparison operator (<=, >=, <, >, ==)".into())
                )
            }
        };
        self.bump();
        let rhs = self.expr()?;
        Ok(Comparison { lhs, op, rhs })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek().kind {
                TokenKind::Plus => {
                    self.bump();
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
                }
                TokenKind::Minus => {
                    self.bump();
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek().kind {
                TokenKind::Star => {
                    self.bump();
                    lhs = Expr::Mul(Box::new(lhs), Box::new(self.factor()?));
                }
                TokenKind::Slash => {
                    self.bump();
                    lhs = Expr::Div(Box::new(lhs), Box::new(self.factor()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(Expr::Num(v))
            }
            TokenKind::Ident(name) => {
                let span = self.peek().span;
                self.bump();
                Ok(Expr::Ref(name, span))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            other => Err(self.err_here(format!("expected an expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_race_program() {
        let src = r"
            x := 40; y := 0;
            while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
                if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
            }
            assert x >= 100;
        ";
        let prog = parse(src).unwrap();
        assert_eq!(prog.body.len(), 4);
        assert!(matches!(prog.body[2], Stmt::While { .. }));
        assert!(matches!(prog.body[3], Stmt::Assert { .. }));
    }

    #[test]
    fn parses_switch() {
        let src = r"
            x := 0;
            switch {
                prob(0.75): { x := x + 1; }
                prob(0.25): { x := x - 1; }
            }
        ";
        let prog = parse(src).unwrap();
        match &prog.body[1] {
            Stmt::Switch { arms, .. } => assert_eq!(arms.len(), 2),
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn parses_params_and_samples() {
        let src = r"
            param N = 500;
            param p = 1e-7;
            sample r ~ uniform(0, 1);
            sample d ~ discrete(0: 0.5, 1: 0.5);
            x := r + d;
        ";
        let prog = parse(src).unwrap();
        assert_eq!(prog.params.len(), 2);
        assert_eq!(prog.samples.len(), 2);
        assert!(matches!(prog.samples[0].dist, DistExpr::Uniform(..)));
    }

    #[test]
    fn parses_probability_expressions() {
        let src = r"
            param p = 1e-7;
            x := 0;
            switch {
                prob(p): { exit; }
                prob(0.75 * (1 - p)): { x := x + 1; }
                prob(0.25 * (1 - p)): { x := x - 1; }
            }
        ";
        parse(src).unwrap();
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = parse("x, y := 1;").unwrap_err();
        assert!(err.message.contains("arity"));
    }

    #[test]
    fn error_points_at_position() {
        let err = parse("x := ;").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert_eq!(err.span.col, 6);
    }

    #[test]
    fn unterminated_block_caught() {
        let err = parse("while x <= 1 { x := x + 1;").unwrap_err();
        assert!(err.message.contains("unterminated") || err.message.contains('}'));
    }

    #[test]
    fn assert_false_is_valid() {
        let prog = parse("assert false;").unwrap();
        assert!(matches!(&prog.body[0], Stmt::Assert { cond: Cond::False, .. }));
    }

    #[test]
    fn empty_switch_rejected() {
        assert!(parse("switch { }").is_err());
    }

    #[test]
    fn pretty_roundtrip_parses() {
        let src = r"
            x := 40; y := 0;
            while x <= 99 and y <= 99 {
                if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
            }
            assert x >= 100;
        ";
        let prog = parse(src).unwrap();
        let printed = crate::ast::pretty(&prog.body, 0);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(prog.body.len(), reparsed.body.len());
    }
}
