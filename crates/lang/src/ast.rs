//! Abstract syntax of the `qava` surface language, plus a pretty-printer.
//!
//! The language is a close transcription of the paper's program notation:
//! simultaneous assignments, `if prob(p)`, `switch` over probabilistic arms,
//! `while` with optional `invariant` annotations, `assert`, and `exit`.

use crate::token::Span;

/// A whole program: declarations followed by statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// `param` declarations (overridable constants).
    pub params: Vec<ParamDecl>,
    /// `sample` declarations (sampling variables with distributions).
    pub samples: Vec<SampleDecl>,
    /// The statement sequence.
    pub body: Vec<Stmt>,
}

/// `param NAME = constexpr;`
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Default value expression (over earlier params and literals).
    pub value: Expr,
    /// Source location.
    pub span: Span,
}

/// `sample NAME ~ dist;`
#[derive(Debug, Clone, PartialEq)]
pub struct SampleDecl {
    /// Sampling-variable name.
    pub name: String,
    /// The declared distribution.
    pub dist: DistExpr,
    /// Source location.
    pub span: Span,
}

/// Distribution syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum DistExpr {
    /// `uniform(lo, hi)`
    Uniform(Expr, Expr),
    /// `discrete(v1: p1, v2: p2, …)`
    Discrete(Vec<(Expr, Expr)>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Simultaneous assignment `x, y := e1, e2;`.
    Assign {
        /// Assigned variable names.
        targets: Vec<String>,
        /// Right-hand sides, evaluated against the *old* valuation.
        values: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// `if prob(p) { … } else { … }` — the `else` may be empty.
    IfProb {
        /// Branch probability (constant expression).
        prob: Expr,
        /// Taken with probability `prob`.
        then_branch: Vec<Stmt>,
        /// Taken with probability `1 − prob`.
        else_branch: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// Deterministic `if cond { … } else { … }`.
    IfCond {
        /// Branch condition.
        cond: Cond,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch.
        else_branch: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `switch { prob(p1): { … } prob(p2): { … } … }`.
    Switch {
        /// The probabilistic arms; probabilities must sum to 1.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// Source location.
        span: Span,
    },
    /// `while cond invariant inv { … }`.
    While {
        /// Loop condition.
        cond: Cond,
        /// Optional loop-head invariant annotation.
        invariant: Option<Cond>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `assert cond;` — violation jumps to `ℓ_f`.
    Assert {
        /// Asserted condition.
        cond: Cond,
        /// Source location.
        span: Span,
    },
    /// `exit;` — jump straight to `ℓ_t`.
    Exit {
        /// Source location.
        span: Span,
    },
    /// `skip;`
    Skip {
        /// Source location.
        span: Span,
    },
}

/// Conditions: `true`, `false`, or a conjunction of comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Always true.
    True,
    /// Always false.
    False,
    /// `c1 and c2 and …`
    Conj(Vec<Comparison>),
}

/// A single comparison between affine expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Left operand.
    pub lhs: Expr,
    /// Relational operator.
    pub op: RelOp,
    /// Right operand.
    pub rhs: Expr,
}

/// Relational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `==`
    Eq,
}

impl std::fmt::Display for RelOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RelOp::Le => "<=",
            RelOp::Ge => ">=",
            RelOp::Lt => "<",
            RelOp::Gt => ">",
            RelOp::Eq => "==",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic expressions (affinity over program variables is checked at
/// lowering time, not in the grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Variable, parameter or sampling-variable reference.
    Ref(String, Span),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Division.
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// The span of the leftmost reference inside this expression, if any —
    /// used to point error messages somewhere useful.
    pub fn some_span(&self) -> Option<Span> {
        match self {
            Expr::Num(_) => None,
            Expr::Ref(_, s) => Some(*s),
            Expr::Neg(e) => e.some_span(),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.some_span().or_else(|| b.some_span())
            }
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Num(v) => write!(f, "{v}"),
            Expr::Ref(n, _) => write!(f, "{n}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
        }
    }
}

impl std::fmt::Display for Cond {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cond::True => write!(f, "true"),
            Cond::False => write!(f, "false"),
            Cond::Conj(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{} {} {}", c.lhs, c.op, c.rhs)?;
                }
                Ok(())
            }
        }
    }
}

/// Pretty-prints a statement sequence with `indent` levels of two spaces.
pub fn pretty(stmts: &[Stmt], indent: usize) -> String {
    let mut out = String::new();
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::Assign { targets, values, .. } => {
                let t = targets.join(", ");
                let v = values.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
                out.push_str(&format!("{pad}{t} := {v};\n"));
            }
            Stmt::IfProb { prob, then_branch, else_branch, .. } => {
                out.push_str(&format!("{pad}if prob({prob}) {{\n"));
                out.push_str(&pretty(then_branch, indent + 1));
                if else_branch.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    out.push_str(&pretty(else_branch, indent + 1));
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            Stmt::IfCond { cond, then_branch, else_branch, .. } => {
                out.push_str(&format!("{pad}if {cond} {{\n"));
                out.push_str(&pretty(then_branch, indent + 1));
                if else_branch.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    out.push_str(&pretty(else_branch, indent + 1));
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            Stmt::Switch { arms, .. } => {
                out.push_str(&format!("{pad}switch {{\n"));
                for (p, body) in arms {
                    out.push_str(&format!("{pad}  prob({p}): {{\n"));
                    out.push_str(&pretty(body, indent + 2));
                    out.push_str(&format!("{pad}  }}\n"));
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::While { cond, invariant, body, .. } => {
                match invariant {
                    Some(inv) => {
                        out.push_str(&format!("{pad}while {cond} invariant {inv} {{\n"))
                    }
                    None => out.push_str(&format!("{pad}while {cond} {{\n")),
                }
                out.push_str(&pretty(body, indent + 1));
                out.push_str(&format!("{pad}}}\n"));
            }
            Stmt::Assert { cond, .. } => out.push_str(&format!("{pad}assert {cond};\n")),
            Stmt::Exit { .. } => out.push_str(&format!("{pad}exit;\n")),
            Stmt::Skip { .. } => out.push_str(&format!("{pad}skip;\n")),
        }
    }
    out
}
