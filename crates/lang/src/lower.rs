//! Lowering from the surface AST to a [`qava_pts::Pts`].
//!
//! The translation follows the paper's remark that converting imperative
//! probabilistic programs to PTSs "is a straightforward process", with one
//! engineering refinement: straight-line assignment blocks are *fused* into
//! single affine updates carried on transition forks (exact thanks to
//! [`AffineUpdate::compose_after`]), so locations exist only at control
//! points — loop heads, probabilistic branches, deterministic branches and
//! assertions. The resulting PTSs match the paper's hand-drawn figures
//! (e.g. the tortoise-hare race of Fig. 1 lowers to a single live loop-head
//! location).
//!
//! Conventions:
//!
//! * program variables start at 0 and are introduced by assignment;
//! * falling off the end of the program reaches `ℓ_t`;
//! * `assert c` branches to `ℓ_f` on `¬c`, with the disjunction `¬c` split
//!   into mutually exclusive guard polyhedra;
//! * negated non-strict comparisons become *strict* halfspaces, preserved in
//!   guards for exact simulation; the synthesis algorithms use their
//!   closures (sound over-approximation).

use std::collections::BTreeMap;

use crate::ast::*;
use crate::token::Span;
use qava_linalg::Matrix;
use qava_pts::{AffineUpdate, Distribution, Fork, LocId, Pts, PtsBuilder, PtsError};
use qava_polyhedra::{Halfspace, Polyhedron};

/// An error produced while lowering a parsed program.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// What went wrong.
    pub message: String,
    /// Source position, when attributable.
    pub span: Option<Span>,
}

impl LowerError {
    fn new(message: impl Into<String>, span: Option<Span>) -> Self {
        LowerError { message: message.into(), span }
    }
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.span {
            Some(s) => write!(f, "lowering error at {s}: {}", self.message),
            None => write!(f, "lowering error: {}", self.message),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<PtsError> for LowerError {
    fn from(e: PtsError) -> Self {
        LowerError::new(format!("invalid transition system: {e}"), None)
    }
}

/// Lowers a program, overriding `param` defaults by name.
///
/// # Errors
///
/// [`LowerError`] on undefined variables, non-affine expressions,
/// non-constant probabilities, arity or probability-sum violations, or
/// structural PTS defects.
pub fn lower(prog: &Program, overrides: &BTreeMap<String, f64>) -> Result<Pts, LowerError> {
    Lowerer::new(prog, overrides)?.run(prog)
}

/// The affine normal form of an expression: `var_coeffs·v + Σ site_coef·r + k`.
#[derive(Debug, Clone)]
struct AffForm {
    var_coeffs: Vec<f64>,
    /// `(sample-declaration index, coefficient)` — one entry per syntactic
    /// occurrence, each an independent draw.
    sites: Vec<(usize, f64)>,
    constant: f64,
}

impl AffForm {
    fn constant_only(&self) -> Option<f64> {
        if self.var_coeffs.iter().all(|&c| c == 0.0) && self.sites.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }
}

/// A comparison compiled to halfspaces: the positive form and the
/// disjunctive alternatives of its negation.
#[derive(Debug, Clone)]
struct CmpAtom {
    pos: Vec<Halfspace>,
    neg: Vec<Vec<Halfspace>>,
}

/// "Continue by applying `update`, then be at `loc`."
#[derive(Debug, Clone)]
struct Frontier {
    loc: LocId,
    update: AffineUpdate,
}

struct Lowerer {
    builder: PtsBuilder,
    vars: BTreeMap<String, usize>,
    params: BTreeMap<String, f64>,
    sample_names: Vec<String>,
    sample_dists: Vec<Distribution>,
    nvars: usize,
    loc_names_used: BTreeMap<String, usize>,
}

impl Lowerer {
    fn new(prog: &Program, overrides: &BTreeMap<String, f64>) -> Result<Self, LowerError> {
        // Parameters evaluate in order; overrides replace defaults.
        let mut params: BTreeMap<String, f64> = BTreeMap::new();
        for decl in &prog.params {
            let v = match overrides.get(&decl.name) {
                Some(&v) => v,
                None => eval_const(&decl.value, &params)?,
            };
            params.insert(decl.name.clone(), v);
        }
        for name in overrides.keys() {
            if !params.contains_key(name) {
                return Err(LowerError::new(format!("unknown parameter override `{name}`"), None));
            }
        }

        // Sampling variables.
        let mut sample_names = Vec::new();
        let mut sample_dists = Vec::new();
        for decl in &prog.samples {
            let dist = match &decl.dist {
                DistExpr::Uniform(lo, hi) => {
                    let lo = eval_const(lo, &params)?;
                    let hi = eval_const(hi, &params)?;
                    Distribution::Uniform(lo, hi)
                }
                DistExpr::Discrete(points) => {
                    let pts = points
                        .iter()
                        .map(|(v, p)| Ok((eval_const(v, &params)?, eval_const(p, &params)?)))
                        .collect::<Result<Vec<_>, LowerError>>()?;
                    Distribution::Discrete(pts)
                }
            };
            dist.validate()
                .map_err(|m| LowerError::new(m, Some(decl.span)))?;
            sample_names.push(decl.name.clone());
            sample_dists.push(dist);
        }

        // Program variables: every assignment target, in first-seen order.
        let mut vars = BTreeMap::new();
        let mut order = Vec::new();
        collect_targets(&prog.body, &mut |name: &str, span: Span| {
            if params.contains_key(name) {
                return Err(LowerError::new(
                    format!("cannot assign to parameter `{name}`"),
                    Some(span),
                ));
            }
            if sample_names.iter().any(|s| s == name) {
                return Err(LowerError::new(
                    format!("cannot assign to sampling variable `{name}`"),
                    Some(span),
                ));
            }
            if !vars.contains_key(name) {
                vars.insert(name.to_string(), order.len());
                order.push(name.to_string());
            }
            Ok(())
        })?;

        let mut builder = PtsBuilder::new();
        for name in &order {
            builder.add_var(name.clone());
        }
        Ok(Lowerer {
            builder,
            nvars: order.len(),
            vars,
            params,
            sample_names,
            sample_dists,
            loc_names_used: BTreeMap::new(),
        })
    }

    fn run(mut self, prog: &Program) -> Result<Pts, LowerError> {
        let terminal = self.builder.terminal_location();
        let end = Frontier { loc: terminal, update: AffineUpdate::identity(self.nvars) };
        let entry = self.lower_seq(&prog.body, end)?;

        let zeros = vec![0.0; self.nvars];
        if entry.update.samples().is_empty() {
            // Constant-fold the initialization prefix into v_init. This also
            // covers programs whose entry is already absorbing (e.g. an
            // unconditional `assert false`): the initial location is then
            // `ℓ_f` itself and the violation probability is trivially 1.
            let vinit = entry.update.apply_with_draws(&zeros, &[]);
            self.builder.set_initial(entry.loc, vinit);
        } else {
            let e = self.fresh_loc("entry");
            self.builder.add_transition(
                e,
                Polyhedron::universe(self.nvars),
                vec![Fork::new(entry.loc, 1.0, entry.update)],
            );
            self.builder.set_initial(e, zeros);
        }
        Ok(qava_pts::simplify(&self.builder.finish()?))
    }


    fn fresh_loc(&mut self, base: &str) -> LocId {
        let count = self.loc_names_used.entry(base.to_string()).or_insert(0);
        *count += 1;
        let name = if *count == 1 { base.to_string() } else { format!("{base}#{count}") };
        self.builder.add_location(name)
    }

    fn lower_seq(&mut self, stmts: &[Stmt], follow: Frontier) -> Result<Frontier, LowerError> {
        let mut frontier = follow;
        for stmt in stmts.iter().rev() {
            frontier = self.lower_stmt(stmt, frontier)?;
        }
        Ok(frontier)
    }

    fn lower_stmt(&mut self, stmt: &Stmt, follow: Frontier) -> Result<Frontier, LowerError> {
        match stmt {
            Stmt::Skip { .. } => Ok(follow),
            Stmt::Exit { .. } => Ok(Frontier {
                loc: self.builder.terminal_location(),
                update: AffineUpdate::identity(self.nvars),
            }),
            Stmt::Assign { targets, values, span } => {
                let update = self.assignment_update(targets, values, *span)?;
                Ok(Frontier { loc: follow.loc, update: follow.update.compose_after(&update) })
            }
            Stmt::Assert { cond, span } => self.lower_assert(cond, *span, follow),
            Stmt::IfProb { prob, then_branch, else_branch, span } => {
                let p = eval_const(prob, &self.params)?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(LowerError::new(
                        format!("branch probability {p} outside [0, 1]"),
                        Some(*span),
                    ));
                }
                if p >= 1.0 - 1e-12 {
                    return self.lower_seq(then_branch, follow);
                }
                if p <= 1e-12 {
                    return self.lower_seq(else_branch, follow);
                }
                let tf = self.lower_seq(then_branch, follow.clone())?;
                let ef = self.lower_seq(else_branch, follow)?;
                let loc = self.fresh_loc(&format!("ifprob@{}", span.line));
                self.builder.add_transition(
                    loc,
                    Polyhedron::universe(self.nvars),
                    vec![
                        Fork::new(tf.loc, p, tf.update),
                        Fork::new(ef.loc, 1.0 - p, ef.update),
                    ],
                );
                Ok(Frontier { loc, update: AffineUpdate::identity(self.nvars) })
            }
            Stmt::Switch { arms, span } => {
                let mut forks = Vec::new();
                let mut total = 0.0;
                for (prob, body) in arms {
                    let p = eval_const(prob, &self.params)?;
                    if p <= 0.0 || p > 1.0 {
                        return Err(LowerError::new(
                            format!("switch arm probability {p} outside (0, 1]"),
                            Some(*span),
                        ));
                    }
                    total += p;
                    let f = self.lower_seq(body, follow.clone())?;
                    forks.push(Fork::new(f.loc, p, f.update));
                }
                if (total - 1.0).abs() > 1e-9 {
                    return Err(LowerError::new(
                        format!("switch arm probabilities sum to {total}, expected 1"),
                        Some(*span),
                    ));
                }
                let loc = self.fresh_loc(&format!("switch@{}", span.line));
                self.builder.add_transition(loc, Polyhedron::universe(self.nvars), forks);
                Ok(Frontier { loc, update: AffineUpdate::identity(self.nvars) })
            }
            Stmt::IfCond { cond, then_branch, else_branch, span } => {
                match cond {
                    Cond::True => return self.lower_seq(then_branch, follow),
                    Cond::False => return self.lower_seq(else_branch, follow),
                    Cond::Conj(_) => {}
                }
                let atoms = self.compile_cond(cond)?;
                let tf = self.lower_seq(then_branch, follow.clone())?;
                let ef = self.lower_seq(else_branch, follow)?;
                let loc = self.fresh_loc(&format!("if@{}", span.line));
                self.builder.add_transition(
                    loc,
                    self.positive_poly(&atoms),
                    vec![Fork::new(tf.loc, 1.0, tf.update)],
                );
                for guard in self.negation_polys(&atoms) {
                    self.builder.add_transition(
                        loc,
                        guard,
                        vec![Fork::new(ef.loc, 1.0, ef.update.clone())],
                    );
                }
                Ok(Frontier { loc, update: AffineUpdate::identity(self.nvars) })
            }
            Stmt::While { cond, invariant, body, span } => {
                if matches!(cond, Cond::False) {
                    return Ok(follow);
                }
                let loc = self.fresh_loc(&format!("while@{}", span.line));
                let back = Frontier { loc, update: AffineUpdate::identity(self.nvars) };
                let bf = self.lower_seq(body, back)?;
                match cond {
                    Cond::True => {
                        self.builder.add_transition(
                            loc,
                            Polyhedron::universe(self.nvars),
                            vec![Fork::new(bf.loc, 1.0, bf.update)],
                        );
                    }
                    Cond::Conj(_) => {
                        let atoms = self.compile_cond(cond)?;
                        self.builder.add_transition(
                            loc,
                            self.positive_poly(&atoms),
                            vec![Fork::new(bf.loc, 1.0, bf.update)],
                        );
                        for guard in self.negation_polys(&atoms) {
                            self.builder.add_transition(
                                loc,
                                guard,
                                vec![Fork::new(follow.loc, 1.0, follow.update.clone())],
                            );
                        }
                    }
                    Cond::False => unreachable!("handled above"),
                }
                if let Some(inv) = invariant {
                    let poly = match inv {
                        Cond::True => Polyhedron::universe(self.nvars),
                        Cond::False => {
                            return Err(LowerError::new(
                                "`invariant false` would make the loop head unreachable",
                                Some(*span),
                            ))
                        }
                        Cond::Conj(_) => {
                            let atoms = self.compile_cond(inv)?;
                            self.positive_poly(&atoms)
                        }
                    };
                    self.builder.set_invariant(loc, poly);
                }
                Ok(Frontier { loc, update: AffineUpdate::identity(self.nvars) })
            }
        }
    }

    fn lower_assert(
        &mut self,
        cond: &Cond,
        span: Span,
        follow: Frontier,
    ) -> Result<Frontier, LowerError> {
        let fail = self.builder.failure_location();
        match cond {
            Cond::True => Ok(follow),
            Cond::False => {
                Ok(Frontier { loc: fail, update: AffineUpdate::identity(self.nvars) })
            }
            Cond::Conj(_) => {
                let atoms = self.compile_cond(cond)?;
                let loc = self.fresh_loc(&format!("assert@{}", span.line));
                self.builder.add_transition(
                    loc,
                    self.positive_poly(&atoms),
                    vec![Fork::new(follow.loc, 1.0, follow.update)],
                );
                for guard in self.negation_polys(&atoms) {
                    self.builder.add_transition(
                        loc,
                        guard,
                        vec![Fork::new(fail, 1.0, AffineUpdate::identity(self.nvars))],
                    );
                }
                Ok(Frontier { loc, update: AffineUpdate::identity(self.nvars) })
            }
        }
    }

    /// Builds the simultaneous-assignment update.
    fn assignment_update(
        &self,
        targets: &[String],
        values: &[Expr],
        span: Span,
    ) -> Result<AffineUpdate, LowerError> {
        let mut seen = std::collections::BTreeSet::new();
        for t in targets {
            if !seen.insert(t) {
                return Err(LowerError::new(
                    format!("variable `{t}` assigned twice in one statement"),
                    Some(span),
                ));
            }
        }
        let mut mat = Matrix::identity(self.nvars);
        let mut offset = vec![0.0; self.nvars];
        let mut update_sites: Vec<(usize, Vec<f64>)> = Vec::new();
        for (target, value) in targets.iter().zip(values) {
            let row = self.vars[target];
            let form = self.eval_expr(value)?;
            mat.row_mut(row).copy_from_slice(&form.var_coeffs);
            offset[row] = form.constant;
            for (site, coef) in form.sites {
                let mut coeffs = vec![0.0; self.nvars];
                coeffs[row] = coef;
                update_sites.push((site, coeffs));
            }
        }
        let mut u = AffineUpdate::new(mat, offset);
        for (site, coeffs) in update_sites {
            u = u.with_sample(self.sample_dists[site].clone(), coeffs);
        }
        Ok(u)
    }

    /// Evaluates an expression to affine normal form.
    fn eval_expr(&self, e: &Expr) -> Result<AffForm, LowerError> {
        let zero = || AffForm {
            var_coeffs: vec![0.0; self.nvars],
            sites: Vec::new(),
            constant: 0.0,
        };
        match e {
            Expr::Num(v) => {
                let mut f = zero();
                f.constant = *v;
                Ok(f)
            }
            Expr::Ref(name, span) => {
                let mut f = zero();
                if let Some(&v) = self.params.get(name) {
                    f.constant = v;
                } else if let Some(idx) = self.vars.get(name) {
                    f.var_coeffs[*idx] = 1.0;
                } else if let Some(idx) = self.sample_names.iter().position(|s| s == name) {
                    f.sites.push((idx, 1.0));
                } else {
                    return Err(LowerError::new(
                        format!("undefined variable `{name}` (never assigned)"),
                        Some(*span),
                    ));
                }
                Ok(f)
            }
            Expr::Neg(inner) => {
                let mut f = self.eval_expr(inner)?;
                for c in &mut f.var_coeffs {
                    *c = -*c;
                }
                for (_, c) in &mut f.sites {
                    *c = -*c;
                }
                f.constant = -f.constant;
                Ok(f)
            }
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                let fa = self.eval_expr(a)?;
                let fb = self.eval_expr(b)?;
                let sign = if matches!(e, Expr::Add(..)) { 1.0 } else { -1.0 };
                let mut f = fa;
                for (c, cb) in f.var_coeffs.iter_mut().zip(&fb.var_coeffs) {
                    *c += sign * cb;
                }
                f.sites
                    .extend(fb.sites.into_iter().map(|(s, c)| (s, sign * c)));
                f.constant += sign * fb.constant;
                Ok(f)
            }
            Expr::Mul(a, b) => {
                let fa = self.eval_expr(a)?;
                let fb = self.eval_expr(b)?;
                let (k, mut f) = match (fa.constant_only(), fb.constant_only()) {
                    (Some(k), _) => (k, fb),
                    (_, Some(k)) => (k, fa),
                    (None, None) => {
                        return Err(LowerError::new(
                            "non-affine product: one factor must be constant",
                            e.some_span(),
                        ))
                    }
                };
                for c in &mut f.var_coeffs {
                    *c *= k;
                }
                for (_, c) in &mut f.sites {
                    *c *= k;
                }
                f.constant *= k;
                Ok(f)
            }
            Expr::Div(a, b) => {
                let fb = self.eval_expr(b)?;
                let Some(k) = fb.constant_only() else {
                    return Err(LowerError::new("division by a non-constant", e.some_span()));
                };
                if k == 0.0 {
                    return Err(LowerError::new("division by zero", e.some_span()));
                }
                let mut f = self.eval_expr(a)?;
                for c in &mut f.var_coeffs {
                    *c /= k;
                }
                for (_, c) in &mut f.sites {
                    *c /= k;
                }
                f.constant /= k;
                Ok(f)
            }
        }
    }

    /// Compiles a conjunction into comparison atoms; sampling variables are
    /// rejected in conditions.
    fn compile_cond(&self, cond: &Cond) -> Result<Vec<CmpAtom>, LowerError> {
        let Cond::Conj(cmps) = cond else {
            unreachable!("constant conditions handled by callers");
        };
        cmps.iter().map(|c| self.compile_comparison(c)).collect()
    }

    fn compile_comparison(&self, c: &Comparison) -> Result<CmpAtom, LowerError> {
        let l = self.eval_expr(&c.lhs)?;
        let r = self.eval_expr(&c.rhs)?;
        if !l.sites.is_empty() || !r.sites.is_empty() {
            return Err(LowerError::new(
                "sampling variables cannot appear in conditions",
                c.lhs.some_span().or_else(|| c.rhs.some_span()),
            ));
        }
        // d = lhs − rhs = coeffs·v + k.
        let coeffs: Vec<f64> =
            l.var_coeffs.iter().zip(&r.var_coeffs).map(|(a, b)| a - b).collect();
        let k = l.constant - r.constant;
        let neg_coeffs: Vec<f64> = coeffs.iter().map(|v| -v).collect();
        // d ≤ 0  ⇔ coeffs·v ≤ −k ; d > 0 ⇔ −coeffs·v < k; etc.
        let le = Halfspace::le(coeffs.clone(), -k);
        let ge = Halfspace::le(neg_coeffs.clone(), k);
        let lt = Halfspace::lt(coeffs.clone(), -k);
        let gt = Halfspace::lt(neg_coeffs.clone(), k);
        Ok(match c.op {
            RelOp::Le => CmpAtom { pos: vec![le], neg: vec![vec![gt]] },
            RelOp::Ge => CmpAtom { pos: vec![ge], neg: vec![vec![lt]] },
            RelOp::Lt => CmpAtom { pos: vec![lt], neg: vec![vec![ge]] },
            RelOp::Gt => CmpAtom { pos: vec![gt], neg: vec![vec![le]] },
            RelOp::Eq => CmpAtom { pos: vec![le, ge], neg: vec![vec![lt], vec![gt]] },
        })
    }

    /// The conjunction of all positive forms.
    fn positive_poly(&self, atoms: &[CmpAtom]) -> Polyhedron {
        let cs = atoms.iter().flat_map(|a| a.pos.iter().cloned()).collect();
        Polyhedron::from_constraints(self.nvars, cs)
    }

    /// Mutually exclusive split of the negation:
    /// `¬c₁ ∨ (c₁ ∧ ¬c₂) ∨ (c₁ ∧ c₂ ∧ ¬c₃) ∨ …`, with `==` atoms expanding
    /// their negation into `<` and `>` alternatives.
    fn negation_polys(&self, atoms: &[CmpAtom]) -> Vec<Polyhedron> {
        let mut out = Vec::new();
        for (i, atom) in atoms.iter().enumerate() {
            for alt in &atom.neg {
                let mut cs: Vec<Halfspace> = atoms[..i]
                    .iter()
                    .flat_map(|a| a.pos.iter().cloned())
                    .collect();
                cs.extend(alt.iter().cloned());
                out.push(Polyhedron::from_constraints(self.nvars, cs));
            }
        }
        out
    }
}

/// Walks statements, reporting each assignment target.
fn collect_targets(
    stmts: &[Stmt],
    f: &mut impl FnMut(&str, Span) -> Result<(), LowerError>,
) -> Result<(), LowerError> {
    for s in stmts {
        match s {
            Stmt::Assign { targets, span, .. } => {
                for t in targets {
                    f(t, *span)?;
                }
            }
            Stmt::IfProb { then_branch, else_branch, .. }
            | Stmt::IfCond { then_branch, else_branch, .. } => {
                collect_targets(then_branch, f)?;
                collect_targets(else_branch, f)?;
            }
            Stmt::Switch { arms, .. } => {
                for (_, body) in arms {
                    collect_targets(body, f)?;
                }
            }
            Stmt::While { body, .. } => collect_targets(body, f)?,
            Stmt::Assert { .. } | Stmt::Exit { .. } | Stmt::Skip { .. } => {}
        }
    }
    Ok(())
}

/// Evaluates a constant expression over parameters.
fn eval_const(e: &Expr, params: &BTreeMap<String, f64>) -> Result<f64, LowerError> {
    match e {
        Expr::Num(v) => Ok(*v),
        Expr::Ref(name, span) => params.get(name).copied().ok_or_else(|| {
            LowerError::new(
                format!("`{name}` is not a parameter (constants may only reference `param`s)"),
                Some(*span),
            )
        }),
        Expr::Neg(i) => Ok(-eval_const(i, params)?),
        Expr::Add(a, b) => Ok(eval_const(a, params)? + eval_const(b, params)?),
        Expr::Sub(a, b) => Ok(eval_const(a, params)? - eval_const(b, params)?),
        Expr::Mul(a, b) => Ok(eval_const(a, params)? * eval_const(b, params)?),
        Expr::Div(a, b) => {
            let d = eval_const(b, params)?;
            if d == 0.0 {
                return Err(LowerError::new("division by zero", e.some_span()));
            }
            Ok(eval_const(a, params)? / d)
        }
    }
}
