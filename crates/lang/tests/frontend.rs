//! End-to-end frontend tests: semantic checks of the lowering pipeline
//! (parse → lower → simplify → propagate) through the public `compile`
//! API, beyond the unit tests inside the parser/lexer modules.

use qava_lang::{compile, CompileError};
use std::collections::BTreeMap;

fn no_params() -> BTreeMap<String, f64> {
    BTreeMap::new()
}

#[test]
fn empty_program_terminates_trivially() {
    let pts = compile("x := 0;", &no_params()).unwrap();
    assert_eq!(pts.initial_state().loc, pts.terminal_location());
}

#[test]
fn assert_false_alone_is_certain_violation() {
    let pts = compile("x := 0; assert false;", &no_params()).unwrap();
    assert_eq!(pts.initial_state().loc, pts.failure_location());
}

#[test]
fn initialization_prefix_constant_folds() {
    let pts = compile(
        r"
        a := 3; b := a + 4; c := 2 * b - a;
        while c >= 1 invariant c >= 0 { c := c - 1; }
        assert false;
    ",
        &no_params(),
    )
    .unwrap();
    // a = 3, b = 7, c = 11, all folded into v_init.
    assert_eq!(pts.initial_state().vals, vec![3.0, 7.0, 11.0]);
}

#[test]
fn parameter_override_reaches_guards() {
    let src = r"
        param n = 5;
        x := 0;
        while x <= n - 1 invariant x >= 0 and x <= n { x := x + 1; }
        assert x >= n;
    ";
    for n in [5.0, 17.0] {
        let mut params = BTreeMap::new();
        params.insert("n".to_string(), n);
        let pts = compile(src, &params).unwrap();
        let head = pts.initial_state().loc;
        // The loop guard must mention n − 1.
        let loop_guard = pts
            .transitions()
            .iter()
            .find(|t| t.src == head && t.forks.iter().any(|f| f.dest == head))
            .expect("loop transition");
        assert!(loop_guard.guard.contains(&[n - 1.0], 1e-9));
        assert!(!loop_guard.guard.contains(&[n], 1e-9));
    }
}

#[test]
fn unknown_override_rejected() {
    let mut params = BTreeMap::new();
    params.insert("zz".to_string(), 1.0);
    let e = compile("x := 0; assert false;", &params).unwrap_err();
    assert!(matches!(e, CompileError::Lower(_)), "{e}");
    assert!(e.to_string().contains("zz"), "{e}");
}

#[test]
fn undefined_variable_has_position() {
    let e = compile("x := y + 1; assert false;", &no_params()).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains('y'), "{msg}");
    assert!(msg.contains("1:"), "diagnostic should carry a line: {msg}");
}

#[test]
fn nonaffine_product_rejected() {
    let e = compile("x := 2; x := x * x; assert false;", &no_params()).unwrap_err();
    assert!(e.to_string().contains("non-affine"), "{e}");
}

#[test]
fn division_by_zero_rejected() {
    let e = compile("x := 1 / 0; assert false;", &no_params()).unwrap_err();
    assert!(e.to_string().contains("zero"), "{e}");
}

#[test]
fn switch_probabilities_must_sum_to_one() {
    let e = compile(
        r"
        x := 0;
        switch { prob(0.5): { skip; } prob(0.4): { skip; } }
        assert false;
    ",
        &no_params(),
    )
    .unwrap_err();
    assert!(e.to_string().contains("sum"), "{e}");
}

#[test]
fn out_of_range_branch_probability_rejected() {
    let e = compile("x := 0; if prob(1.5) { skip; } else { skip; } assert false;", &no_params())
        .unwrap_err();
    assert!(e.to_string().contains("outside"), "{e}");
}

#[test]
fn degenerate_branch_probabilities_collapse() {
    // prob(1) and prob(0) branches disappear instead of creating
    // zero-probability forks (which the PTS model forbids).
    let pts = compile(
        r"
        x := 0;
        if prob(1) { x := 5; } else { x := 7; }
        while x >= 1 invariant x >= 0 { x := x - 1; }
        assert false;
    ",
        &no_params(),
    )
    .unwrap();
    assert_eq!(pts.initial_state().vals, vec![5.0]);
}

#[test]
fn equality_condition_splits_into_three_guards() {
    let pts = compile(
        r"
        x := 0; y := 0;
        while y <= 9 invariant y >= 0 and y <= 10 {
            if x == 0 { y := y + 1; } else { y := y + 2; }
        }
        assert false;
    ",
        &no_params(),
    )
    .unwrap();
    // x == 0 plus its two strict complements; all three must route
    // somewhere from the if location (which fusion folds into the head).
    let head = pts.initial_state().loc;
    let outgoing = pts.transitions().iter().filter(|t| t.src == head).count();
    assert!(outgoing >= 3, "expected the == split to survive, got {outgoing}");
}

#[test]
fn simultaneous_assignment_is_simultaneous() {
    // x, y := y, x swaps — a sequential reading would duplicate.
    let pts = compile(
        r"
        x := 1; y := 2;
        x, y := y, x;
        while x >= 99 invariant x >= 0 { skip; }
        assert false;
    ",
        &no_params(),
    )
    .unwrap();
    assert_eq!(pts.initial_state().vals, vec![2.0, 1.0]);
}

#[test]
fn duplicate_assignment_target_rejected() {
    let e = compile("x, x := 1, 2; assert false;", &no_params()).unwrap_err();
    assert!(e.to_string().contains("twice"), "{e}");
}

#[test]
fn sample_in_condition_rejected() {
    let e = compile(
        r"
        sample u ~ uniform(0, 1);
        x := 0;
        while x + u <= 5 { x := x + 1; }
        assert false;
    ",
        &no_params(),
    )
    .unwrap_err();
    assert!(e.to_string().contains("condition"), "{e}");
}

#[test]
fn each_sample_occurrence_is_a_fresh_draw() {
    let pts = compile(
        r"
        sample u ~ uniform(0, 1);
        x := 0;
        while x <= 10 invariant x >= 0 { x := x + u + u; }
        assert false;
    ",
        &no_params(),
    )
    .unwrap();
    let head = pts.initial_state().loc;
    let t = pts
        .transitions()
        .iter()
        .find(|t| t.src == head && t.forks.iter().any(|f| f.dest == head))
        .unwrap();
    assert_eq!(t.forks[0].update.samples().len(), 2, "u + u must be two draws");
}

#[test]
fn while_true_loops_forever() {
    let pts = compile(
        r"
        x := 0;
        while true { x := x + 1; }
        assert false;
    ",
        &no_params(),
    )
    .unwrap();
    // One live location with a single self-loop, never reaching ℓ_f/ℓ_t.
    let head = pts.initial_state().loc;
    assert!(pts
        .transitions()
        .iter()
        .filter(|t| t.src == head)
        .all(|t| t.forks.iter().all(|f| f.dest == head)));
}

#[test]
fn invariant_false_rejected() {
    let e = compile(
        "x := 0; while x <= 3 invariant false { x := x + 1; } assert false;",
        &no_params(),
    )
    .unwrap_err();
    assert!(e.to_string().contains("invariant"), "{e}");
}

#[test]
fn nested_loops_lower_and_run() {
    let pts = compile(
        r"
        i := 0; total := 0;
        while i <= 2 invariant i >= 0 and i <= 3 {
            j := 0;
            while j <= 1 invariant j >= 0 and j <= 2 {
                total, j := total + 1, j + 1;
            }
            i := i + 1;
        }
        assert total <= 5;
    ",
        &no_params(),
    )
    .unwrap();
    // Deterministic: 3 × 2 = 6 increments violate total ≤ 5 surely.
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut st = pts.initial_state();
    for _ in 0..100 {
        match pts.step(&st, &mut rng) {
            qava_pts::StepOutcome::Moved(s) => st = s,
            _ => break,
        }
    }
    assert_eq!(st.loc, pts.failure_location());
}
