//! Lightweight invariant propagation.
//!
//! The paper derives invariants manually for *every* location of its PTSs
//! (the red annotations of Fig. 1) and notes that invariant generation is an
//! orthogonal problem (§7). Our language frontend attaches user invariants
//! to loop heads only; this pass closes the gap for the remaining
//! locations — most importantly the failure location `ℓ_f`, whose invariant
//! scopes condition (C2) of RepRSM synthesis (§5.1). Leaving `I(ℓ_f) = ⊤`
//! forces the RepRSM to be non-negative on all of `ℝⁿ`, which flattens its
//! linear part and degrades every Hoeffding/Azuma bound to 1.
//!
//! The pass is a sound "weak join": a location entered **only through
//! identity-update edges** inherits every constraint implied by
//! `I(src) ∧ guard` of *all* of its incoming edges (checked by LP
//! implication probes, using closures of strict constraints). Edges that
//! carry real updates disqualify the location — exactly the cases where the
//! paper, too, would rely on a dedicated invariant generator.

use crate::model::{LocId, Pts};
use qava_linalg::Matrix;
use qava_polyhedra::{Halfspace, Polyhedron};

/// Propagates invariants for up to `rounds` sweeps; returns the number of
/// locations whose invariant was refined. Absorbing locations participate:
/// refining `I(ℓ_f)` is what makes (C2) of §5.1 non-vacuous.
pub fn propagate_invariants(pts: &mut Pts, rounds: usize) -> usize {
    let mut refined_total = 0;
    for _ in 0..rounds {
        let mut refined_this_round = 0;
        let n_locs = pts.num_locations();
        for loc in (0..n_locs).map(LocId::from_index) {
            if loc == pts.initial_state().loc {
                continue; // the initial location's invariant is an input
            }
            if !pts.invariant(loc).constraints().is_empty() {
                continue; // user-supplied or already refined
            }
            if let Some(inv) = inferred_invariant(pts, loc) {
                if !inv.constraints().is_empty() {
                    pts.invariants[loc.index()] = inv;
                    refined_this_round += 1;
                }
            }
        }
        refined_total += refined_this_round;
        if refined_this_round == 0 {
            break;
        }
    }
    refined_total
}

/// Computes the weak join of the incoming edge conditions of `loc`, or
/// `None` when some incoming edge disqualifies the location (non-identity
/// update, or a self-loop that would make the inference circular).
fn inferred_invariant(pts: &Pts, loc: LocId) -> Option<Polyhedron> {
    let n = pts.num_vars();

    let mut sources: Vec<Polyhedron> = Vec::new();
    for t in pts.transitions() {
        for fork in &t.forks {
            if fork.dest != loc {
                continue;
            }
            if t.src == loc {
                return None; // self-loop: circular, skip
            }
            let identity = fork.update.matrix() == &Matrix::identity(n)
                && fork.update.offset().iter().all(|&e| e == 0.0)
                && fork.update.samples().is_empty();
            if !identity {
                return None;
            }
            sources.push(pts.invariant(t.src).intersection(&t.guard));
        }
    }
    if sources.is_empty() {
        return None;
    }

    // Candidate constraints: every row of the first source condition that
    // all the other sources imply.
    let mut kept: Vec<Halfspace> = Vec::new();
    'candidates: for cand in sources[0].constraints() {
        // Closure semantics: drop strictness for the invariant.
        let h = Halfspace::le(cand.coeffs.clone(), cand.rhs);
        for other in &sources[1..] {
            if !other.implies(&h) {
                continue 'candidates;
            }
        }
        kept.push(h);
    }
    Some(Polyhedron::from_constraints(n, kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AffineUpdate, Fork, PtsBuilder};

    /// head --(x ≤ 99 ∧ y ≥ 100)--> ℓ_f plus a loop, Fig.-1 style.
    fn race_like() -> Pts {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        b.add_var("y");
        let head = b.add_location("head");
        b.set_initial(head, vec![40.0, 0.0]);
        b.set_invariant(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 100.0), Halfspace::le(vec![0.0, 1.0], 101.0)],
            ),
        );
        let id = AffineUpdate::identity(2);
        b.add_transition(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 99.0), Halfspace::le(vec![0.0, 1.0], 99.0)],
            ),
            vec![
                Fork::new(head, 0.5, id.clone().with_offset(vec![1.0, 2.0])),
                Fork::new(head, 0.5, id.clone().with_offset(vec![1.0, 0.0])),
            ],
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(2, vec![Halfspace::ge(vec![1.0, 0.0], 100.0)]),
            vec![Fork::new(b.terminal_location(), 1.0, id.clone())],
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 99.0), Halfspace::ge(vec![0.0, 1.0], 100.0)],
            ),
            vec![Fork::new(b.failure_location(), 1.0, id)],
        );
        b.finish().unwrap()
    }

    #[test]
    fn failure_location_inherits_edge_condition() {
        let mut pts = race_like();
        assert!(pts.invariant(pts.failure_location()).constraints().is_empty());
        let refined = propagate_invariants(&mut pts, 3);
        assert!(refined >= 1);
        let inv = pts.invariant(pts.failure_location());
        assert!(inv.implies(&Halfspace::le(vec![1.0, 0.0], 99.0)), "x ≤ 99 inherited");
        assert!(inv.implies(&Halfspace::ge(vec![0.0, 1.0], 100.0)), "y ≥ 100 inherited");
    }

    #[test]
    fn terminal_location_inherits_too() {
        let mut pts = race_like();
        propagate_invariants(&mut pts, 3);
        let inv = pts.invariant(pts.terminal_location());
        assert!(inv.implies(&Halfspace::ge(vec![1.0, 0.0], 100.0)));
    }

    #[test]
    fn self_loop_sources_skip_propagation() {
        // The loop head enters itself with real updates; nothing changes.
        let mut pts = race_like();
        let head = pts.initial_state().loc;
        let before = pts.invariant(head).clone();
        propagate_invariants(&mut pts, 3);
        assert_eq!(pts.invariant(head), &before);
    }

    #[test]
    fn updated_edges_disqualify() {
        // dest entered via x := x + 1: stays trivial.
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let a = b.add_location("a");
        b.set_initial(a, vec![0.0]);
        b.set_invariant(a, Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 5.0)]));
        b.add_transition(
            a,
            Polyhedron::universe(1),
            vec![Fork::new(b.failure_location(), 1.0, AffineUpdate::increment(1, 0, 1.0))],
        );
        let mut pts = b.finish().unwrap();
        propagate_invariants(&mut pts, 3);
        assert!(pts.invariant(pts.failure_location()).constraints().is_empty());
    }

    #[test]
    fn weak_join_keeps_only_common_constraints() {
        // Two edges into ℓ_f: x ∈ [0, 5] and x ∈ [3, 9]. Only constraints
        // implied by both survive; the first source's rows are candidates,
        // so x ≤ 5 is dropped (not implied by [3, 9]) but nothing forbids
        // an empty result either — here no common row exists except none.
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let a = b.add_location("a");
        let c = b.add_location("c");
        b.set_initial(a, vec![0.0]);
        let id = AffineUpdate::identity(1);
        b.add_transition(
            a,
            Polyhedron::from_constraints(
                1,
                vec![Halfspace::ge(vec![1.0], 0.0), Halfspace::le(vec![1.0], 5.0)],
            ),
            vec![Fork::new(b.failure_location(), 1.0, id.clone())],
        );
        b.add_transition(
            a,
            Polyhedron::from_constraints(1, vec![Halfspace::lt(vec![-1.0], 0.0)]),
            vec![Fork::new(c, 1.0, id.clone())],
        );
        b.add_transition(
            c,
            Polyhedron::from_constraints(
                1,
                vec![Halfspace::ge(vec![1.0], 3.0), Halfspace::le(vec![1.0], 9.0)],
            ),
            vec![Fork::new(b.failure_location(), 1.0, id.clone())],
        );
        b.add_transition(
            c,
            Polyhedron::from_constraints(1, vec![Halfspace::lt(vec![1.0], 3.0)]),
            vec![Fork::new(b.terminal_location(), 1.0, id)],
        );
        let mut pts = b.finish().unwrap();
        propagate_invariants(&mut pts, 3);
        let inv = pts.invariant(pts.failure_location());
        assert!(inv.implies(&Halfspace::ge(vec![1.0], 0.0)), "x ≥ 0 common to both");
        assert!(!inv.implies(&Halfspace::le(vec![1.0], 5.0)), "x ≤ 5 not common");
    }
}
