//! Affine update functions `v' = Q·v + Σ_s c_s·r_s + e`.
//!
//! Randomness enters through *sampling sites*: each [`SampleSite`] is one
//! independent draw from a distribution, contributing `c_s · r_s` to the new
//! valuation. Two sites with the same distribution are still independent
//! draws — exactly the paper's semantics where a sampling variable is
//! re-sampled on every access. Keeping sites explicit makes update
//! composition exact, which in turn lets the language frontend collapse
//! whole straight-line blocks onto a single transition fork.

use crate::Distribution;
use qava_linalg::{vecops, Matrix};
use rand::Rng;

/// One independent random draw feeding an update.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSite {
    /// The distribution sampled at this site.
    pub dist: Distribution,
    /// Per-program-variable coefficients of the draw.
    pub coeffs: Vec<f64>,
}

/// An affine update `v' = Q·v + Σ_s c_s·r_s + e` over `n` program variables.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineUpdate {
    mat: Matrix,
    samples: Vec<SampleSite>,
    offset: Vec<f64>,
}

impl AffineUpdate {
    /// The identity update over `n` variables.
    pub fn identity(n: usize) -> Self {
        AffineUpdate { mat: Matrix::identity(n), samples: Vec::new(), offset: vec![0.0; n] }
    }

    /// Builds an update from an explicit matrix and offset.
    ///
    /// # Panics
    ///
    /// Panics if `mat` is not square or `offset.len() != mat.rows()`.
    pub fn new(mat: Matrix, offset: Vec<f64>) -> Self {
        assert_eq!(mat.rows(), mat.cols(), "update matrix must be square");
        assert_eq!(offset.len(), mat.rows(), "offset length mismatch");
        AffineUpdate { mat, samples: Vec::new(), offset }
    }

    /// Replaces the constant offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset.len()` differs from the dimension.
    #[must_use]
    pub fn with_offset(mut self, offset: Vec<f64>) -> Self {
        assert_eq!(offset.len(), self.dim(), "offset length mismatch");
        self.offset = offset;
        self
    }

    /// Adds a sampling site contributing `coeffs · r`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the dimension.
    #[must_use]
    pub fn with_sample(mut self, dist: Distribution, coeffs: Vec<f64>) -> Self {
        assert_eq!(coeffs.len(), self.dim(), "sample coefficient length mismatch");
        self.samples.push(SampleSite { dist, coeffs });
        self
    }

    /// Convenience: the update `x_j += delta` leaving other variables alone.
    pub fn increment(n: usize, j: usize, delta: f64) -> Self {
        let mut offset = vec![0.0; n];
        offset[j] = delta;
        AffineUpdate::identity(n).with_offset(offset)
    }

    /// Number of program variables.
    pub fn dim(&self) -> usize {
        self.mat.rows()
    }

    /// The linear part `Q`.
    pub fn matrix(&self) -> &Matrix {
        &self.mat
    }

    /// The constant part `e`.
    pub fn offset(&self) -> &[f64] {
        &self.offset
    }

    /// The sampling sites.
    pub fn samples(&self) -> &[SampleSite] {
        &self.samples
    }

    /// Applies the update with freshly drawn samples.
    pub fn apply<R: Rng + ?Sized>(&self, v: &[f64], rng: &mut R) -> Vec<f64> {
        let mut out = self.mat.mul_vec(v);
        vecops::axpy(1.0, &self.offset, &mut out);
        for s in &self.samples {
            vecops::axpy(s.dist.sample(rng), &s.coeffs, &mut out);
        }
        out
    }

    /// Applies the update with every sample replaced by its mean — the
    /// expected next valuation `E[upd(v, r)]` used by (C3) of §5.1 and the
    /// Jensen strengthening of §6.
    pub fn apply_mean(&self, v: &[f64]) -> Vec<f64> {
        let mut out = self.mat.mul_vec(v);
        vecops::axpy(1.0, &self.offset, &mut out);
        for s in &self.samples {
            vecops::axpy(s.dist.mean(), &s.coeffs, &mut out);
        }
        out
    }

    /// Applies the update with explicit values for the sampling sites
    /// (used to enumerate discrete supports in (C4)).
    ///
    /// # Panics
    ///
    /// Panics if `draws.len() != self.samples().len()`.
    pub fn apply_with_draws(&self, v: &[f64], draws: &[f64]) -> Vec<f64> {
        assert_eq!(draws.len(), self.samples.len(), "draw count mismatch");
        let mut out = self.mat.mul_vec(v);
        vecops::axpy(1.0, &self.offset, &mut out);
        for (s, &r) in self.samples.iter().zip(draws) {
            vecops::axpy(r, &s.coeffs, &mut out);
        }
        out
    }

    /// Composition `self ∘ other`: first apply `other`, then `self`.
    /// Sampling sites stay independent draws.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn compose_after(&self, other: &AffineUpdate) -> AffineUpdate {
        assert_eq!(self.dim(), other.dim(), "compose: dimension mismatch");
        let mat = self.mat.mul(&other.mat);
        let mut offset = self.mat.mul_vec(&other.offset);
        vecops::axpy(1.0, &self.offset, &mut offset);
        let mut samples: Vec<SampleSite> = other
            .samples
            .iter()
            .map(|s| SampleSite { dist: s.dist.clone(), coeffs: self.mat.mul_vec(&s.coeffs) })
            .collect();
        samples.extend(self.samples.iter().cloned());
        AffineUpdate { mat, samples, offset }
    }

    /// `true` when the update involves no randomness.
    pub fn is_deterministic(&self) -> bool {
        self.samples.iter().all(|s| matches!(s.dist, Distribution::PointMass(_)))
    }

    /// `true` when the linear part is zero, i.e. the result ignores the
    /// previous valuation (constant initialization blocks).
    pub fn is_constant(&self) -> bool {
        (0..self.dim()).all(|i| self.mat.row(i).iter().all(|&c| c == 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;

    #[test]
    fn increment_applies() {
        let u = AffineUpdate::increment(3, 1, 2.5);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(u.apply(&[1.0, 2.0, 3.0], &mut rng), vec![1.0, 4.5, 3.0]);
    }

    #[test]
    fn composition_matches_sequential_application() {
        // u1: x := x + 1; u2: (x, y) := (x, y + 2x).
        let u1 = AffineUpdate::increment(2, 0, 1.0);
        let mut m = Matrix::identity(2);
        m[(1, 0)] = 2.0;
        let u2 = AffineUpdate::new(m, vec![0.0, 0.0]);
        let composed = u2.compose_after(&u1);
        let v = vec![3.0, 10.0];
        let mut rng = StdRng::seed_from_u64(0);
        let step_by_step = u2.apply(&u1.apply(&v, &mut rng), &mut rng);
        let at_once = composed.apply(&v, &mut rng);
        assert_eq!(step_by_step, at_once, "deterministic updates compose exactly");
    }

    #[test]
    fn composition_keeps_samples_independent() {
        // x += coin; then x += coin: two independent draws, variance 2·Var.
        let coin = Distribution::coin(-1.0, 1.0);
        let u = AffineUpdate::identity(1).with_sample(coin.clone(), vec![1.0]);
        let twice = u.compose_after(&u);
        assert_eq!(twice.samples().len(), 2, "sites must not merge");
        // Mean application gives x + 0 + 0.
        assert_eq!(twice.apply_mean(&[5.0]), vec![5.0]);
        // Some draw must produce 5 ± 2 and some 5 ± 0 over enough samples.
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let out = twice.apply(&[5.0], &mut rng)[0] as i64;
            seen.insert(out);
        }
        assert!(seen.contains(&3) && seen.contains(&5) && seen.contains(&7), "{seen:?}");
    }

    #[test]
    fn apply_mean_uses_distribution_means() {
        let u = AffineUpdate::identity(1).with_sample(Distribution::Uniform(0.0, 4.0), vec![1.0]);
        assert_eq!(u.apply_mean(&[1.0]), vec![3.0]);
    }

    #[test]
    fn apply_with_draws_is_exact() {
        let u = AffineUpdate::identity(2)
            .with_sample(Distribution::coin(0.0, 1.0), vec![1.0, 0.0])
            .with_sample(Distribution::coin(0.0, 1.0), vec![0.0, -2.0]);
        assert_eq!(u.apply_with_draws(&[0.0, 0.0], &[1.0, 1.0]), vec![1.0, -2.0]);
    }

    #[test]
    fn constant_detection() {
        let mut zero = Matrix::zeros(2, 2);
        zero[(0, 0)] = 0.0;
        let init = AffineUpdate::new(zero, vec![40.0, 0.0]);
        assert!(init.is_constant());
        assert!(!AffineUpdate::identity(2).is_constant());
    }

    #[test]
    fn sampled_matrix_composition_transforms_coefficients() {
        // u1: x := x + r (r ~ coin). u2: x := 3x.
        let u1 = AffineUpdate::identity(1).with_sample(Distribution::coin(0.0, 1.0), vec![1.0]);
        let mut m = Matrix::zeros(1, 1);
        m[(0, 0)] = 3.0;
        let u2 = AffineUpdate::new(m, vec![0.0]);
        let c = u2.compose_after(&u1);
        assert_eq!(c.samples()[0].coeffs, vec![3.0], "3·(x + r) needs 3·r");
    }
}
