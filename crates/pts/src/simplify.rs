//! Semantics-preserving PTS simplification: integer guard tightening and
//! forward fusion of deterministic hops.
//!
//! The paper's hand-drawn PTSs (e.g. Fig. 1) attach guards like
//! `x ≤ 99 ∧ y ≥ 100` directly to the loop head and route assertion
//! checks straight into `ℓ_t`/`ℓ_f`. A mechanical lowering instead produces
//! intermediate locations (branch junctions, assertion checks) whose
//! invariants are trivially `⊤`. Those extra locations are harmless for
//! simulation but *catastrophic* for template synthesis: the pre fixed-point
//! constraint of a hop through a `⊤`-invariant location must hold on an
//! unbounded region, which (via the recession-cone condition (D1) of
//! Proposition 1) can forbid the very exponent signs the optimal bound
//! needs. Fusing the hops recovers exactly the PTS shapes the paper
//! analyzes — and both passes preserve the violation probability `vpf` of
//! every surviving state, because they only collapse probability-1
//! deterministic steps and never change which absorbing location a path
//! reaches.
//!
//! Two passes run in order:
//!
//! 1. **Integer tightening** ([`tighten_integral`]): when every quantity in
//!    the PTS is integral (initial valuation, update matrices/offsets,
//!    discrete sampling supports), reachable valuations stay on the integer
//!    grid, so a strict guard `c·v < d` with integral `c` is equivalent to
//!    `c·v ≤ ⌈d⌉ − 1`. This is what justifies the paper's `x ≤ 99` guard
//!    for the violation branch of `assert x ≥ 100` (Fig. 1).
//! 2. **Forward fusion** ([`fuse_deterministic_hops`]): a transition
//!    `(ℓ, h, [1: U → m])` with a single probability-1, sample-free fork is
//!    replaced by the transitions of `m` pulled back through `U`: for every
//!    `(m, g, forks)` a transition `(ℓ, h ∧ U⁻¹g, forks ∘ U)`. Empty
//!    composed guards are dropped. Locations left unreachable are pruned.

use crate::model::{Fork, LocId, Pts, Transition};
use crate::{AffineUpdate, Distribution};
use qava_polyhedra::{Halfspace, Polyhedron};

/// Absolute tolerance for "is this an integer" tests.
const INT_TOL: f64 = 1e-9;
/// Fusion passes are capped to guard against pathological cycles; real
/// programs settle in two or three passes.
const MAX_FUSION_PASSES: usize = 64;

/// Runs the full pipeline: integer tightening, forward fusion,
/// unreachable-location pruning, and invariant propagation (so that in
/// particular `ℓ_f` receives the invariant condition (C2) of §5.1 needs).
/// This is the entry point used by the language frontend after lowering.
pub fn simplify(pts: &Pts) -> Pts {
    let mut p = pts.clone();
    tighten_integral(&mut p);
    fuse_deterministic_hops(&mut p);
    prune_unreachable(&mut p);
    crate::propagate::propagate_invariants(&mut p, 4);
    p
}

fn is_int(v: f64) -> bool {
    (v - v.round()).abs() <= INT_TOL
}

/// `true` when all dynamics of the PTS keep valuations on the integer grid:
/// integral initial valuation, integral update matrices and offsets, and
/// only discrete sampling distributions with integral support points.
pub fn is_integral(pts: &Pts) -> bool {
    if !pts.init_vals.iter().copied().all(is_int) {
        return false;
    }
    pts.transitions.iter().all(|t| {
        t.forks.iter().all(|f| {
            let u = &f.update;
            let n = u.dim();
            (0..n).all(|i| u.matrix().row(i).iter().copied().all(is_int))
                && u.offset().iter().copied().all(is_int)
                && u.samples().iter().all(|s| {
                    s.coeffs.iter().copied().all(is_int) && integral_support(&s.dist)
                })
        })
    })
}

fn integral_support(d: &Distribution) -> bool {
    match d.discrete_points() {
        Some(points) => points.iter().all(|&(v, _)| is_int(v)),
        None => false,
    }
}

/// Rewrites strict guard inequalities over integral data into equivalent
/// non-strict ones (`c·v < d` with integral `c` and integer-valued `v`
/// becomes `c·v ≤ ⌈d⌉ − 1`), and rounds down non-integral right-hand sides
/// of non-strict constraints. No-op for non-integral PTSs.
pub fn tighten_integral(pts: &mut Pts) {
    if !is_integral(pts) {
        return;
    }
    for t in &mut pts.transitions {
        tighten_poly(&mut t.guard);
    }
    for inv in &mut pts.invariants {
        tighten_poly(inv);
    }
}

fn tighten_poly(p: &mut Polyhedron) {
    let tightened: Vec<Halfspace> = p
        .constraints()
        .iter()
        .map(|h| {
            if !h.coeffs.iter().copied().all(is_int) {
                return h.clone();
            }
            if h.strict {
                // c·v < d over integers ⇔ c·v ≤ ⌈d⌉ − 1.
                let rhs = if is_int(h.rhs) { h.rhs.round() - 1.0 } else { h.rhs.floor() };
                Halfspace::le(h.coeffs.clone(), rhs)
            } else if is_int(h.rhs) {
                Halfspace::le(h.coeffs.clone(), h.rhs.round())
            } else {
                Halfspace::le(h.coeffs.clone(), h.rhs.floor())
            }
        })
        .collect();
    *p = Polyhedron::from_constraints(p.dim(), tightened);
}

/// The preimage `U⁻¹(P) = {v | Q·v + e ∈ P}` of a polyhedron under a
/// deterministic affine update: `c·(Qv + e) ≤ d  ⇔  (cᵀQ)·v ≤ d − c·e`.
fn preimage(p: &Polyhedron, u: &AffineUpdate) -> Polyhedron {
    let constraints = p
        .constraints()
        .iter()
        .map(|h| {
            let coeffs = u.matrix().mul_vec_transposed(&h.coeffs);
            let shift: f64 = h.coeffs.iter().zip(u.offset()).map(|(c, e)| c * e).sum();
            Halfspace { coeffs, rhs: h.rhs - shift, strict: h.strict }
        })
        .collect();
    Polyhedron::from_constraints(p.dim(), constraints)
}

/// Repeatedly inlines probability-1, sample-free, single-fork hops into
/// their destination's outgoing transitions. Self-loops are never fused
/// (they are genuine loop structure), which also guarantees termination on
/// deterministic cycles.
pub fn fuse_deterministic_hops(pts: &mut Pts) {
    for _ in 0..MAX_FUSION_PASSES {
        if !fuse_one_pass(pts) {
            break;
        }
    }
}

fn fuse_one_pass(pts: &mut Pts) -> bool {
    let mut changed = false;
    let mut out: Vec<Transition> = Vec::with_capacity(pts.transitions.len());
    for t in &pts.transitions {
        let fusable = t.forks.len() == 1
            && (t.forks[0].prob - 1.0).abs() < 1e-12
            && t.forks[0].update.samples().is_empty()
            && !pts.is_absorbing(t.forks[0].dest)
            && t.forks[0].dest != t.src;
        if !fusable {
            out.push(t.clone());
            continue;
        }
        let hop = &t.forks[0];
        let dest_transitions: Vec<&Transition> =
            pts.transitions.iter().filter(|dt| dt.src == hop.dest).collect();
        if dest_transitions.is_empty() {
            // Incomplete location (no outgoing transitions): keep the hop.
            out.push(t.clone());
            continue;
        }
        changed = true;
        for dt in dest_transitions {
            let guard = t.guard.intersection(&preimage(&dt.guard, &hop.update));
            if guard.is_empty() {
                continue;
            }
            let forks = dt
                .forks
                .iter()
                .map(|f| Fork::new(f.dest, f.prob, f.update.compose_after(&hop.update)))
                .collect();
            out.push(Transition { src: t.src, guard, forks });
        }
    }
    pts.transitions = out;
    changed
}

/// Drops locations not reachable from the initial location along fork edges
/// (ignoring guard satisfiability — a sound over-approximation of
/// reachability), remapping ids. The two absorbing locations are always
/// kept.
pub fn prune_unreachable(pts: &mut Pts) {
    let nloc = pts.loc_names.len();
    let mut reach = vec![false; nloc];
    reach[0] = true;
    reach[1] = true;
    let mut stack = vec![pts.init_loc.index()];
    reach[pts.init_loc.index()] = true;
    while let Some(l) = stack.pop() {
        for t in pts.transitions.iter().filter(|t| t.src.index() == l) {
            for f in &t.forks {
                if !reach[f.dest.index()] {
                    reach[f.dest.index()] = true;
                    stack.push(f.dest.index());
                }
            }
        }
    }
    if reach.iter().all(|&r| r) {
        return;
    }
    let mut remap = vec![usize::MAX; nloc];
    let mut next = 0usize;
    for (i, &r) in reach.iter().enumerate() {
        if r {
            remap[i] = next;
            next += 1;
        }
    }
    pts.loc_names = std::mem::take(&mut pts.loc_names)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| reach[*i])
        .map(|(_, n)| n)
        .collect();
    pts.invariants = std::mem::take(&mut pts.invariants)
        .into_iter()
        .enumerate()
        .filter(|(i, _)| reach[*i])
        .map(|(_, p)| p)
        .collect();
    pts.transitions.retain(|t| reach[t.src.index()]);
    for t in &mut pts.transitions {
        t.src = LocId::from_index(remap[t.src.index()]);
        for f in &mut t.forks {
            f.dest = LocId::from_index(remap[f.dest.index()]);
        }
    }
    pts.init_loc = LocId::from_index(remap[pts.init_loc.index()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PtsBuilder;
    use qava_linalg::Matrix;

    /// Mechanically lowered race shape: loop head → junction → loop head,
    /// loop head → assert check → ℓ_t/ℓ_f.
    fn race_unfused() -> Pts {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        b.add_var("y");
        let head = b.add_location("head");
        let junction = b.add_location("junction");
        let check = b.add_location("check");
        b.set_initial(head, vec![40.0, 0.0]);
        b.set_invariant(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 100.0), Halfspace::le(vec![0.0, 1.0], 101.0)],
            ),
        );
        let id = AffineUpdate::identity(2);
        // head --(x ≤ 99 ∧ y ≤ 99)--> junction
        b.add_transition(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 99.0), Halfspace::le(vec![0.0, 1.0], 99.0)],
            ),
            vec![Fork::new(junction, 1.0, id.clone())],
        );
        // head --(x > 99)--> check ; head --(x ≤ 99 ∧ y > 99)--> check
        b.add_transition(
            head,
            Polyhedron::from_constraints(2, vec![Halfspace::lt(vec![-1.0, 0.0], -99.0)]),
            vec![Fork::new(check, 1.0, id.clone())],
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 99.0), Halfspace::lt(vec![0.0, -1.0], -99.0)],
            ),
            vec![Fork::new(check, 1.0, id.clone())],
        );
        // junction --⊤--> head (probabilistic steps)
        b.add_transition(
            junction,
            Polyhedron::universe(2),
            vec![
                Fork::new(head, 0.5, id.clone().with_offset(vec![1.0, 2.0])),
                Fork::new(head, 0.5, id.clone().with_offset(vec![1.0, 0.0])),
            ],
        );
        // check --(x ≥ 100)--> ℓ_t ; check --(x < 100)--> ℓ_f
        b.add_transition(
            check,
            Polyhedron::from_constraints(2, vec![Halfspace::ge(vec![1.0, 0.0], 100.0)]),
            vec![Fork::new(b.terminal_location(), 1.0, id.clone())],
        );
        b.add_transition(
            check,
            Polyhedron::from_constraints(2, vec![Halfspace::lt(vec![1.0, 0.0], 100.0)]),
            vec![Fork::new(b.failure_location(), 1.0, id)],
        );
        b.finish().unwrap()
    }

    #[test]
    fn race_fuses_to_single_live_location() {
        let pts = simplify(&race_unfused());
        assert_eq!(pts.live_locations().count(), 1, "only the loop head survives");
        // Paper shape: loop transition + pass exit + fail exit. The two
        // check-routed exits compose with the assert split; the sliver
        // x > 99 ∧ x < 100 is emptied by integer tightening.
        let head = pts.initial_state().loc;
        let from_head: Vec<_> = pts.transitions().iter().filter(|t| t.src == head).collect();
        assert_eq!(from_head.len(), 3, "loop, →ℓ_t, →ℓ_f: {from_head:#?}");
        let to_fail: Vec<_> = from_head
            .iter()
            .filter(|t| t.forks.iter().any(|f| f.dest == pts.failure_location()))
            .collect();
        assert_eq!(to_fail.len(), 1);
        // The failure guard must be x ≤ 99 ∧ y ≥ 100 (satisfied by (99,100),
        // not by (100,100) or (99,99)).
        let g = &to_fail[0].guard;
        assert!(g.contains(&[99.0, 100.0], 1e-9));
        assert!(!g.contains(&[100.0, 100.0], 1e-9));
        assert!(!g.contains(&[99.0, 99.0], 1e-9));
    }

    #[test]
    fn integrality_detected() {
        let pts = race_unfused();
        assert!(is_integral(&pts));
    }

    #[test]
    fn non_integral_updates_block_tightening() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let l = b.add_location("l");
        b.set_initial(l, vec![0.0]);
        b.add_transition(
            l,
            Polyhedron::from_constraints(1, vec![Halfspace::lt(vec![1.0], 10.0)]),
            vec![Fork::new(l, 1.0, AffineUpdate::increment(1, 0, 0.5))],
        );
        b.add_transition(
            l,
            Polyhedron::from_constraints(1, vec![Halfspace::ge(vec![1.0], 10.0)]),
            vec![Fork::new(b.terminal_location(), 1.0, AffineUpdate::identity(1))],
        );
        let mut pts = b.finish().unwrap();
        assert!(!is_integral(&pts));
        tighten_integral(&mut pts);
        assert!(pts.transitions()[0].guard.constraints()[0].strict, "strictness kept");
    }

    #[test]
    fn strict_guard_tightens_to_integer_complement() {
        let mut pts = race_unfused();
        tighten_integral(&mut pts);
        // head --(x > 99)--> check becomes x ≥ 100, i.e. −x ≤ −100.
        let g = &pts.transitions()[1].guard.constraints()[0];
        assert!(!g.strict);
        assert_eq!(g.rhs, -100.0);
    }

    #[test]
    fn preimage_shifts_by_offset() {
        // P = {x ≤ 10}, U: x := x + 3  ⇒  U⁻¹P = {x ≤ 7}.
        let p = Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 10.0)]);
        let pre = preimage(&p, &AffineUpdate::increment(1, 0, 3.0));
        assert_eq!(pre.constraints()[0].rhs, 7.0);
    }

    #[test]
    fn preimage_transforms_by_matrix() {
        // P = {x + y ≤ 4}, U: (x, y) := (2x, x + y) ⇒ pre: 2x + (x + y) ≤ 4.
        let p = Polyhedron::from_constraints(2, vec![Halfspace::le(vec![1.0, 1.0], 4.0)]);
        let mut m = Matrix::zeros(2, 2);
        m[(0, 0)] = 2.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 1.0;
        let pre = preimage(&p, &AffineUpdate::new(m, vec![0.0, 0.0]));
        assert_eq!(pre.constraints()[0].coeffs, vec![3.0, 1.0]);
        assert_eq!(pre.constraints()[0].rhs, 4.0);
    }

    #[test]
    fn self_loops_are_not_fused() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let l = b.add_location("l");
        b.set_initial(l, vec![0.0]);
        b.add_transition(
            l,
            Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 9.0)]),
            vec![Fork::new(l, 1.0, AffineUpdate::increment(1, 0, 1.0))],
        );
        b.add_transition(
            l,
            Polyhedron::from_constraints(1, vec![Halfspace::ge(vec![1.0], 10.0)]),
            vec![Fork::new(b.terminal_location(), 1.0, AffineUpdate::identity(1))],
        );
        let pts = simplify(&b.finish().unwrap());
        assert_eq!(pts.transitions().len(), 2, "the counting loop must survive");
    }

    #[test]
    fn deterministic_two_cycle_terminates_and_preserves_structure() {
        // A → B → A with deterministic identity hops plus an exit at A; the
        // fusion must terminate and keep the system complete at A.
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let a = b.add_location("a");
        let bb = b.add_location("b");
        b.set_initial(a, vec![0.0]);
        let id = AffineUpdate::identity(1);
        b.add_transition(
            a,
            Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 5.0)]),
            vec![Fork::new(bb, 1.0, AffineUpdate::increment(1, 0, 1.0))],
        );
        b.add_transition(
            a,
            Polyhedron::from_constraints(1, vec![Halfspace::ge(vec![1.0], 6.0)]),
            vec![Fork::new(b.terminal_location(), 1.0, id.clone())],
        );
        b.add_transition(bb, Polyhedron::universe(1), vec![Fork::new(a, 1.0, id)]);
        let pts = simplify(&b.finish().unwrap());
        // A→B fused through B's hop back to A gives the self-loop x := x+1.
        assert_eq!(pts.live_locations().count(), 1);
        let mut rng = rand::rngs::mock::StepRng::new(0, 0);
        let mut st = pts.initial_state();
        for _ in 0..20 {
            match pts.step(&st, &mut rng) {
                crate::StepOutcome::Moved(s) => st = s,
                crate::StepOutcome::Absorbed => break,
                crate::StepOutcome::Stuck => panic!("fusion broke completeness"),
            }
        }
        assert_eq!(st.loc, pts.terminal_location());
        assert_eq!(st.vals, vec![6.0]);
    }

    #[test]
    fn unreachable_locations_pruned() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let a = b.add_location("a");
        let orphan = b.add_location("orphan");
        b.set_initial(a, vec![0.0]);
        b.add_transition(
            a,
            Polyhedron::universe(1),
            vec![Fork::new(b.terminal_location(), 1.0, AffineUpdate::identity(1))],
        );
        b.add_transition(
            orphan,
            Polyhedron::universe(1),
            vec![Fork::new(b.failure_location(), 1.0, AffineUpdate::identity(1))],
        );
        let mut pts = b.finish().unwrap();
        prune_unreachable(&mut pts);
        assert_eq!(pts.live_locations().count(), 1);
        assert_eq!(pts.transitions().len(), 1);
        assert_eq!(pts.loc_name(pts.initial_state().loc), "a");
    }
}
