//! The transition-system structure, its builder, validation, and execution
//! semantics.

use crate::AffineUpdate;
use qava_polyhedra::Polyhedron;
use rand::Rng;

/// Identifier of a program variable within a [`Pts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Builds an id from a raw index (callers must keep it in range for the
    /// PTS it is used with).
    pub fn from_index(i: usize) -> Self {
        VarId(i)
    }

    /// Zero-based index into valuations.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a location within a [`Pts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocId(pub(crate) usize);

impl LocId {
    /// Builds an id from a raw index (callers must keep it in range for the
    /// PTS it is used with).
    pub fn from_index(i: usize) -> Self {
        LocId(i)
    }

    /// Zero-based index into location tables.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One probabilistic fork of a transition: with probability `prob`, apply
/// `update` and move to `dest`.
#[derive(Debug, Clone)]
pub struct Fork {
    /// Destination location.
    pub dest: LocId,
    /// Probability in `(0, 1]`.
    pub prob: f64,
    /// Applied update function.
    pub update: AffineUpdate,
}

impl Fork {
    /// Creates a fork.
    pub fn new(dest: LocId, prob: f64, update: AffineUpdate) -> Self {
        Fork { dest, prob, update }
    }
}

/// A guarded probabilistic transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Source location.
    pub src: LocId,
    /// Guard condition over program variables.
    pub guard: Polyhedron,
    /// The forks; probabilities sum to 1.
    pub forks: Vec<Fork>,
}

/// A runtime state: location plus valuation.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Current location.
    pub loc: LocId,
    /// Current valuation of program variables.
    pub vals: Vec<f64>,
}

/// Result of one execution step.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// Moved to a new state.
    Moved(State),
    /// Already at `ℓ_t` or `ℓ_f` (absorbing).
    Absorbed,
    /// No transition guard was satisfied — the PTS violates the completeness
    /// assumption at this state.
    Stuck,
}

/// Errors detected while building or validating a PTS.
#[derive(Debug, Clone, PartialEq)]
pub enum PtsError {
    /// No initial location/valuation was set.
    MissingInitial,
    /// Fork probabilities of a transition do not sum to 1.
    BadForkProbabilities {
        /// Index of the offending transition.
        transition: usize,
        /// Actual sum.
        sum: f64,
    },
    /// A fork probability lies outside `(0, 1]`.
    ForkProbabilityOutOfRange {
        /// Index of the offending transition.
        transition: usize,
    },
    /// A transition leaves the terminal or failure location.
    TransitionFromAbsorbing {
        /// Index of the offending transition.
        transition: usize,
    },
    /// Guard or update dimension disagrees with the variable count.
    DimensionMismatch {
        /// Index of the offending transition.
        transition: usize,
    },
    /// A distribution failed validation.
    BadDistribution(String),
    /// Two transitions from the same location overlap on a full-dimensional
    /// set, violating mutual exclusion.
    OverlappingGuards {
        /// Indices of the two offending transitions.
        transitions: (usize, usize),
        /// A witness point in the overlap.
        witness: Vec<f64>,
    },
    /// The initial valuation violates the initial location's invariant.
    InitialOutsideInvariant,
}

impl std::fmt::Display for PtsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PtsError::MissingInitial => write!(f, "initial location and valuation not set"),
            PtsError::BadForkProbabilities { transition, sum } => {
                write!(f, "transition {transition}: fork probabilities sum to {sum}")
            }
            PtsError::ForkProbabilityOutOfRange { transition } => {
                write!(f, "transition {transition}: fork probability outside (0, 1]")
            }
            PtsError::TransitionFromAbsorbing { transition } => {
                write!(f, "transition {transition} leaves an absorbing location")
            }
            PtsError::DimensionMismatch { transition } => {
                write!(f, "transition {transition}: dimension mismatch")
            }
            PtsError::BadDistribution(msg) => write!(f, "invalid distribution: {msg}"),
            PtsError::OverlappingGuards { transitions: (a, b), witness } => {
                write!(f, "transitions {a} and {b} overlap at {witness:?}")
            }
            PtsError::InitialOutsideInvariant => {
                write!(f, "initial valuation violates the initial location's invariant")
            }
        }
    }
}

impl std::error::Error for PtsError {}

/// Builder for [`Pts`]; see the crate-level example.
#[derive(Debug, Clone)]
pub struct PtsBuilder {
    var_names: Vec<String>,
    loc_names: Vec<String>,
    transitions: Vec<Transition>,
    invariants: Vec<Option<Polyhedron>>,
    initial: Option<(LocId, Vec<f64>)>,
}

impl Default for PtsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PtsBuilder {
    /// Creates a builder pre-populated with the two absorbing locations
    /// `terminal` (`ℓ_t`) and `failure` (`ℓ_f`).
    pub fn new() -> Self {
        PtsBuilder {
            var_names: Vec::new(),
            loc_names: vec!["terminal".into(), "failure".into()],
            transitions: Vec::new(),
            invariants: vec![None, None],
            initial: None,
        }
    }

    /// Declares a program variable.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.var_names.push(name.into());
        VarId(self.var_names.len() - 1)
    }

    /// Declares a location.
    pub fn add_location(&mut self, name: impl Into<String>) -> LocId {
        self.loc_names.push(name.into());
        self.invariants.push(None);
        LocId(self.loc_names.len() - 1)
    }

    /// The absorbing termination location `ℓ_t`.
    pub fn terminal_location(&self) -> LocId {
        LocId(0)
    }

    /// The absorbing assertion-violation location `ℓ_f`.
    pub fn failure_location(&self) -> LocId {
        LocId(1)
    }

    /// Sets the initial location and valuation.
    pub fn set_initial(&mut self, loc: LocId, vals: Vec<f64>) {
        self.initial = Some((loc, vals));
    }

    /// Attaches an invariant to a location (default: the universe).
    pub fn set_invariant(&mut self, loc: LocId, inv: Polyhedron) {
        self.invariants[loc.0] = Some(inv);
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, src: LocId, guard: Polyhedron, forks: Vec<Fork>) {
        self.transitions.push(Transition { src, guard, forks });
    }

    /// Validates the structure and produces the immutable [`Pts`].
    ///
    /// # Errors
    ///
    /// Any [`PtsError`] describing the first structural defect found.
    /// Guard-overlap checking is *not* performed here because it needs LP
    /// probes; call [`Pts::check_determinism`] separately.
    pub fn finish(self) -> Result<Pts, PtsError> {
        let (init_loc, init_vals) = self.initial.clone().ok_or(PtsError::MissingInitial)?;
        let n = self.var_names.len();
        if init_vals.len() != n {
            return Err(PtsError::MissingInitial);
        }
        for (i, t) in self.transitions.iter().enumerate() {
            if t.src.0 < 2 {
                return Err(PtsError::TransitionFromAbsorbing { transition: i });
            }
            if t.guard.dim() != n {
                return Err(PtsError::DimensionMismatch { transition: i });
            }
            let mut sum = 0.0;
            for fork in &t.forks {
                if fork.prob <= 0.0 || fork.prob > 1.0 {
                    return Err(PtsError::ForkProbabilityOutOfRange { transition: i });
                }
                if fork.update.dim() != n {
                    return Err(PtsError::DimensionMismatch { transition: i });
                }
                for s in fork.update.samples() {
                    s.dist.validate().map_err(PtsError::BadDistribution)?;
                }
                sum += fork.prob;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(PtsError::BadForkProbabilities { transition: i, sum });
            }
        }
        let invariants: Vec<Polyhedron> = self
            .invariants
            .into_iter()
            .map(|inv| inv.unwrap_or_else(|| Polyhedron::universe(n)))
            .collect();
        if !invariants[init_loc.0].closure_contains(&init_vals, 1e-9) {
            return Err(PtsError::InitialOutsideInvariant);
        }
        Ok(Pts {
            var_names: self.var_names,
            loc_names: self.loc_names,
            transitions: self.transitions,
            invariants,
            init_loc,
            init_vals,
        })
    }
}

/// An immutable, validated probabilistic transition system.
#[derive(Debug, Clone)]
pub struct Pts {
    pub(crate) var_names: Vec<String>,
    pub(crate) loc_names: Vec<String>,
    pub(crate) transitions: Vec<Transition>,
    pub(crate) invariants: Vec<Polyhedron>,
    pub(crate) init_loc: LocId,
    pub(crate) init_vals: Vec<f64>,
}

impl Pts {
    /// Number of program variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Number of locations, including the two absorbing ones.
    pub fn num_locations(&self) -> usize {
        self.loc_names.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0]
    }

    /// Name of a location.
    pub fn loc_name(&self, l: LocId) -> &str {
        &self.loc_names[l.0]
    }

    /// Looks a location up by name.
    pub fn loc_by_name(&self, name: &str) -> Option<LocId> {
        self.loc_names.iter().position(|n| n == name).map(LocId)
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The invariant attached to a location (universe when unset).
    pub fn invariant(&self, l: LocId) -> &Polyhedron {
        &self.invariants[l.0]
    }

    /// Replaces a location's invariant. Invariants are modeling inputs (the
    /// paper derives them manually, §7), so refining one after construction
    /// is a supported workflow.
    ///
    /// # Panics
    ///
    /// Panics if the invariant's dimension disagrees with the variable
    /// count, or if the initial valuation would fall outside the new
    /// invariant of the initial location.
    pub fn set_invariant(&mut self, l: LocId, inv: Polyhedron) {
        assert_eq!(inv.dim(), self.num_vars(), "invariant dimension mismatch");
        if l == self.init_loc {
            assert!(
                inv.closure_contains(&self.init_vals, 1e-9),
                "initial valuation violates the new invariant"
            );
        }
        self.invariants[l.0] = inv;
    }

    /// The termination location `ℓ_t`.
    pub fn terminal_location(&self) -> LocId {
        LocId(0)
    }

    /// The assertion-violation location `ℓ_f`.
    pub fn failure_location(&self) -> LocId {
        LocId(1)
    }

    /// The initial state `(ℓ_init, v_init)`.
    pub fn initial_state(&self) -> State {
        State { loc: self.init_loc, vals: self.init_vals.clone() }
    }

    /// Non-absorbing location ids in declaration order.
    pub fn live_locations(&self) -> impl Iterator<Item = LocId> + '_ {
        (2..self.loc_names.len()).map(LocId)
    }

    /// `true` for `ℓ_t` and `ℓ_f`.
    pub fn is_absorbing(&self, l: LocId) -> bool {
        l.0 < 2
    }

    /// Executes one step of the PTS process (Definition 1 in the paper's
    /// appendix): pick the transition whose guard holds, choose a fork with
    /// its probability, draw all samples, apply the update.
    pub fn step<R: Rng + ?Sized>(&self, state: &State, rng: &mut R) -> StepOutcome {
        if self.is_absorbing(state.loc) {
            return StepOutcome::Absorbed;
        }
        let Some(t) = self
            .transitions
            .iter()
            .find(|t| t.src == state.loc && t.guard.contains(&state.vals, 1e-12))
        else {
            return StepOutcome::Stuck;
        };
        let mut u: f64 = rng.gen();
        let mut chosen = t.forks.last().expect("validated nonempty forks");
        for fork in &t.forks {
            if u < fork.prob {
                chosen = fork;
                break;
            }
            u -= fork.prob;
        }
        StepOutcome::Moved(State {
            loc: chosen.dest,
            vals: chosen.update.apply(&state.vals, rng),
        })
    }

    /// Checks pairwise mutual exclusion of guards out of each location by
    /// searching for a full-dimensional overlap (an interior point with
    /// `margin` slack in the intersection of two guards and the location
    /// invariant).
    ///
    /// # Errors
    ///
    /// [`PtsError::OverlappingGuards`] with a witness point.
    pub fn check_determinism(&self, margin: f64) -> Result<(), PtsError> {
        for i in 0..self.transitions.len() {
            for j in i + 1..self.transitions.len() {
                let (a, b) = (&self.transitions[i], &self.transitions[j]);
                if a.src != b.src {
                    continue;
                }
                let joint = a
                    .guard
                    .intersection(&b.guard)
                    .intersection(&self.invariants[a.src.0]);
                if let Some(witness) = joint.interior_point(margin) {
                    return Err(PtsError::OverlappingGuards { transitions: (i, j), witness });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distribution;
    use qava_polyhedra::Halfspace;
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;

    /// The asymmetric random walk of Fig. 2 without the time counter.
    fn walk() -> Pts {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let head = b.add_location("head");
        b.set_initial(head, vec![0.0]);
        b.add_transition(
            head,
            Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 99.0)]),
            vec![
                Fork::new(head, 0.75, AffineUpdate::increment(1, 0, 1.0)),
                Fork::new(head, 0.25, AffineUpdate::increment(1, 0, -1.0)),
            ],
        );
        let term = b.terminal_location();
        b.add_transition(
            head,
            Polyhedron::from_constraints(1, vec![Halfspace::ge(vec![1.0], 100.0)]),
            vec![Fork::new(term, 1.0, AffineUpdate::identity(1))],
        );
        b.finish().unwrap()
    }

    #[test]
    fn walk_terminates_with_drift() {
        let pts = walk();
        let mut rng = StdRng::seed_from_u64(11);
        let mut state = pts.initial_state();
        let mut steps = 0;
        loop {
            match pts.step(&state, &mut rng) {
                StepOutcome::Moved(s) => state = s,
                StepOutcome::Absorbed => break,
                StepOutcome::Stuck => panic!("walk got stuck at {state:?}"),
            }
            steps += 1;
            assert!(steps < 100_000, "positive-drift walk should finish quickly");
        }
        assert_eq!(state.loc, pts.terminal_location());
        assert!(state.vals[0] >= 100.0);
    }

    #[test]
    fn determinism_check_passes_on_partition() {
        walk().check_determinism(1e-6).unwrap();
    }

    #[test]
    fn determinism_check_catches_overlap() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let head = b.add_location("head");
        b.set_initial(head, vec![0.0]);
        let term = b.terminal_location();
        // Two guards x <= 10 and x >= 5 overlap on [5, 10].
        b.add_transition(
            head,
            Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 10.0)]),
            vec![Fork::new(term, 1.0, AffineUpdate::identity(1))],
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(1, vec![Halfspace::ge(vec![1.0], 5.0)]),
            vec![Fork::new(term, 1.0, AffineUpdate::identity(1))],
        );
        let pts = b.finish().unwrap();
        match pts.check_determinism(1e-6) {
            Err(PtsError::OverlappingGuards { witness, .. }) => {
                assert!((5.0..=10.0).contains(&witness[0]));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn bad_probabilities_rejected() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let head = b.add_location("head");
        b.set_initial(head, vec![0.0]);
        b.add_transition(
            head,
            Polyhedron::universe(1),
            vec![
                Fork::new(head, 0.5, AffineUpdate::identity(1)),
                Fork::new(head, 0.3, AffineUpdate::identity(1)),
            ],
        );
        assert!(matches!(b.finish(), Err(PtsError::BadForkProbabilities { .. })));
    }

    #[test]
    fn transition_from_absorbing_rejected() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let head = b.add_location("head");
        b.set_initial(head, vec![0.0]);
        let term = b.terminal_location();
        b.add_transition(
            term,
            Polyhedron::universe(1),
            vec![Fork::new(head, 1.0, AffineUpdate::identity(1))],
        );
        assert!(matches!(b.finish(), Err(PtsError::TransitionFromAbsorbing { .. })));
    }

    #[test]
    fn missing_initial_rejected() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        b.add_location("head");
        assert_eq!(b.finish().unwrap_err(), PtsError::MissingInitial);
    }

    #[test]
    fn initial_must_satisfy_invariant() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let head = b.add_location("head");
        b.set_initial(head, vec![50.0]);
        b.set_invariant(head, Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 10.0)]));
        assert_eq!(b.finish().unwrap_err(), PtsError::InitialOutsideInvariant);
    }

    #[test]
    fn invalid_distribution_rejected() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let head = b.add_location("head");
        b.set_initial(head, vec![0.0]);
        let bad = AffineUpdate::identity(1)
            .with_sample(Distribution::Discrete(vec![(0.0, 0.7)]), vec![1.0]);
        b.add_transition(head, Polyhedron::universe(1), vec![Fork::new(head, 1.0, bad)]);
        assert!(matches!(b.finish(), Err(PtsError::BadDistribution(_))));
    }

    #[test]
    fn stuck_when_incomplete() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let head = b.add_location("head");
        b.set_initial(head, vec![500.0]);
        // Only guard: x <= 99; starting at 500 nothing fires.
        b.add_transition(
            head,
            Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 99.0)]),
            vec![Fork::new(head, 1.0, AffineUpdate::identity(1))],
        );
        let pts = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(pts.step(&pts.initial_state(), &mut rng), StepOutcome::Stuck);
    }

    #[test]
    fn absorbing_states_stay_put() {
        let pts = walk();
        let mut rng = StdRng::seed_from_u64(0);
        let s = State { loc: pts.failure_location(), vals: vec![1.0] };
        assert_eq!(pts.step(&s, &mut rng), StepOutcome::Absorbed);
    }

    #[test]
    fn name_lookups() {
        let pts = walk();
        assert_eq!(pts.loc_name(pts.terminal_location()), "terminal");
        assert_eq!(pts.loc_by_name("head"), Some(LocId(2)));
        assert_eq!(pts.loc_by_name("nope"), None);
        assert_eq!(pts.var_name(VarId(0)), "x");
    }
}
