//! Human-readable rendering of transition systems, in the spirit of the
//! paper's Fig. 1 diagram: locations with invariants, guarded transitions
//! with probability-annotated forks and update formulas.

use crate::model::{LocId, Pts};
use crate::AffineUpdate;
use qava_polyhedra::{Halfspace, Polyhedron};
use std::fmt;

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders a linear expression `coeffs·v` over the given variable names.
fn fmt_linear(coeffs: &[f64], names: &[String]) -> String {
    let mut s = String::new();
    for (c, name) in coeffs.iter().zip(names) {
        if *c == 0.0 {
            continue;
        }
        if s.is_empty() {
            if *c == 1.0 {
                s.push_str(name);
            } else if *c == -1.0 {
                s.push_str(&format!("-{name}"));
            } else {
                s.push_str(&format!("{}·{name}", fmt_num(*c)));
            }
        } else if *c > 0.0 {
            if *c == 1.0 {
                s.push_str(&format!(" + {name}"));
            } else {
                s.push_str(&format!(" + {}·{name}", fmt_num(*c)));
            }
        } else if *c == -1.0 {
            s.push_str(&format!(" - {name}"));
        } else {
            s.push_str(&format!(" - {}·{name}", fmt_num(-c)));
        }
    }
    if s.is_empty() {
        s.push('0');
    }
    s
}

fn fmt_halfspace(h: &Halfspace, names: &[String]) -> String {
    let op = if h.strict { "<" } else { "≤" };
    format!("{} {op} {}", fmt_linear(&h.coeffs, names), fmt_num(h.rhs))
}

fn fmt_poly(p: &Polyhedron, names: &[String]) -> String {
    if p.constraints().is_empty() {
        return "⊤".to_string();
    }
    p.constraints()
        .iter()
        .map(|h| fmt_halfspace(h, names))
        .collect::<Vec<_>>()
        .join(" ∧ ")
}

fn fmt_update(u: &AffineUpdate, names: &[String]) -> String {
    let n = u.dim();
    let mut parts = Vec::new();
    for i in 0..n {
        // Skip identity rows with no offset and no samples touching i.
        let row = u.matrix().row(i);
        let identity_row = row
            .iter()
            .enumerate()
            .all(|(j, &c)| if j == i { c == 1.0 } else { c == 0.0 });
        let sampled = u.samples().iter().any(|s| s.coeffs[i] != 0.0);
        if identity_row && u.offset()[i] == 0.0 && !sampled {
            continue;
        }
        let mut rhs = fmt_linear(row, names);
        if u.offset()[i] > 0.0 {
            rhs.push_str(&format!(" + {}", fmt_num(u.offset()[i])));
        } else if u.offset()[i] < 0.0 {
            rhs.push_str(&format!(" - {}", fmt_num(-u.offset()[i])));
        }
        for (k, s) in u.samples().iter().enumerate() {
            if s.coeffs[i] != 0.0 {
                let c = s.coeffs[i];
                if c == 1.0 {
                    rhs.push_str(&format!(" + r{k}"));
                } else {
                    rhs.push_str(&format!(" + {}·r{k}", fmt_num(c)));
                }
            }
        }
        parts.push(format!("{} := {rhs}", names[i]));
    }
    if parts.is_empty() {
        "id".to_string()
    } else {
        parts.join(", ")
    }
}

impl fmt::Display for Pts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> =
            (0..self.num_vars()).map(|i| self.var_names[i].clone()).collect();
        let init = self.initial_state();
        writeln!(
            f,
            "PTS over {{{}}} starting at {} with {:?}",
            names.join(", "),
            self.loc_name(init.loc),
            init.vals
        )?;
        for l in (0..self.num_locations()).map(LocId::from_index) {
            let marker = if l == self.terminal_location() {
                " (ℓ_t)"
            } else if l == self.failure_location() {
                " (ℓ_f)"
            } else {
                ""
            };
            writeln!(
                f,
                "  location {}{marker}: invariant {}",
                self.loc_name(l),
                fmt_poly(self.invariant(l), &names)
            )?;
            for t in self.transitions().iter().filter(|t| t.src == l) {
                writeln!(f, "    when {}:", fmt_poly(&t.guard, &names))?;
                for fork in &t.forks {
                    writeln!(
                        f,
                        "      --[{}]--> {} with {}",
                        fork.prob,
                        self.loc_name(fork.dest),
                        fmt_update(&fork.update, &names)
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distribution, Fork, PtsBuilder};

    fn sample_pts() -> Pts {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        b.add_var("y");
        let head = b.add_location("head");
        b.set_initial(head, vec![40.0, 0.0]);
        b.set_invariant(
            head,
            Polyhedron::from_constraints(2, vec![Halfspace::le(vec![1.0, 0.0], 100.0)]),
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(2, vec![Halfspace::le(vec![1.0, 0.0], 99.0)]),
            vec![
                Fork::new(
                    head,
                    0.5,
                    AffineUpdate::identity(2)
                        .with_offset(vec![1.0, 2.0])
                        .with_sample(Distribution::coin(-1.0, 1.0), vec![0.0, 1.0]),
                ),
                Fork::new(head, 0.5, AffineUpdate::identity(2).with_offset(vec![1.0, 0.0])),
            ],
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(2, vec![Halfspace::ge(vec![1.0, 0.0], 100.0)]),
            vec![Fork::new(b.terminal_location(), 1.0, AffineUpdate::identity(2))],
        );
        b.finish().unwrap()
    }

    #[test]
    fn display_includes_all_parts() {
        let s = sample_pts().to_string();
        assert!(s.contains("starting at head with [40.0, 0.0]"), "{s}");
        assert!(s.contains("invariant x ≤ 100"), "{s}");
        assert!(s.contains("when x ≤ 99"), "{s}");
        assert!(s.contains("--[0.5]--> head with x := x + 1, y := y + 2 + r0"), "{s}");
        assert!(s.contains("(ℓ_t)"), "{s}");
    }

    #[test]
    fn identity_updates_print_as_id() {
        let s = sample_pts().to_string();
        assert!(s.contains("--[1]--> terminal with id"), "{s}");
    }

    #[test]
    fn linear_rendering_handles_signs() {
        let names = vec!["x".to_string(), "y".to_string()];
        assert_eq!(fmt_linear(&[1.0, -1.0], &names), "x - y");
        assert_eq!(fmt_linear(&[-1.0, 0.0], &names), "-x");
        assert_eq!(fmt_linear(&[0.0, 0.0], &names), "0");
        assert_eq!(fmt_linear(&[2.5, 3.0], &names), "2.5·x + 3·y");
    }

    #[test]
    fn universe_invariant_prints_top() {
        let names = vec!["x".to_string()];
        assert_eq!(fmt_poly(&Polyhedron::universe(1), &names), "⊤");
    }
}
