#![warn(missing_docs)]

//! Probabilistic Transition Systems (PTSs) — the program model of the paper.
//!
//! A PTS `Π = (V, R, D, L, 𝔗, ℓ_init, v_init, ℓ_t, ℓ_f)` (§2 of the paper)
//! consists of program variables, sampling variables with distributions,
//! locations including a termination location `ℓ_t` and an
//! assertion-violation location `ℓ_f`, and guarded probabilistic transitions
//! whose forks apply affine updates.
//!
//! This crate provides:
//!
//! * [`Distribution`] — point-mass, finite discrete and uniform
//!   distributions with means, support bounds and sampling;
//! * [`AffineUpdate`] — updates `v' = Q·v + Σ_s c_s·r_s + e` with *sampling
//!   sites* (each site is an independent draw, matching the paper's "sampled
//!   each time accessed" semantics) and exact composition, so straight-line
//!   blocks collapse into a single update;
//! * [`Pts`] / [`PtsBuilder`] — the transition system with per-location
//!   invariants, plus structural validation (fork probabilities, mutual
//!   exclusion of guards per Section 2's additional assumption);
//! * exact execution semantics ([`Pts::step`], used by the `qava-sim`
//!   Monte-Carlo layer).
//!
//! # Examples
//!
//! ```
//! use qava_pts::{AffineUpdate, Fork, PtsBuilder};
//! use qava_polyhedra::{Halfspace, Polyhedron};
//!
//! // while x <= 99 { x += 1 w.p. 3/4; x -= 1 w.p. 1/4 }  — never violates.
//! let mut b = PtsBuilder::new();
//! let _x = b.add_var("x");
//! let head = b.add_location("head");
//! b.set_initial(head, vec![0.0]);
//! let inc = AffineUpdate::identity(1).with_offset(vec![1.0]);
//! let dec = AffineUpdate::identity(1).with_offset(vec![-1.0]);
//! b.add_transition(
//!     head,
//!     Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 99.0)]),
//!     vec![Fork::new(head, 0.75, inc), Fork::new(head, 0.25, dec)],
//! );
//! let term = b.terminal_location();
//! b.add_transition(
//!     head,
//!     Polyhedron::from_constraints(1, vec![Halfspace::ge(vec![1.0], 100.0)]),
//!     vec![Fork::new(term, 1.0, AffineUpdate::identity(1))],
//! );
//! let pts = b.finish()?;
//! assert_eq!(pts.num_vars(), 1);
//! # Ok::<(), qava_pts::PtsError>(())
//! ```

mod display;
mod dist;
mod model;
pub mod propagate;
pub mod simplify;
mod update;

pub use dist::Distribution;
pub use model::{Fork, LocId, Pts, PtsBuilder, PtsError, State, StepOutcome, Transition, VarId};
pub use propagate::propagate_invariants;
pub use simplify::simplify;
pub use update::{AffineUpdate, SampleSite};
