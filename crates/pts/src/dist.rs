//! Sampling-variable distributions `D(r)` with the moments the synthesis
//! algorithms need.

use rand::Rng;

/// A probability distribution assigned to a sampling variable.
///
/// The synthesis algorithms need the mean (Jensen strengthening, §6), the
/// support bounds (RepRSM bounded-difference condition (C4), §5.1) and a
/// closed-form moment-generating function (canonical constraints, §5.2).
/// All three are exact for every variant here.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// A deterministic value.
    PointMass(f64),
    /// A finite discrete distribution over `(value, probability)` pairs.
    Discrete(Vec<(f64, f64)>),
    /// The continuous uniform distribution on `[a, b]`.
    Uniform(f64, f64),
}

impl Distribution {
    /// A fair two-point distribution over `{lo, hi}`.
    pub fn coin(lo: f64, hi: f64) -> Self {
        Distribution::Discrete(vec![(lo, 0.5), (hi, 0.5)])
    }

    /// A Bernoulli-style distribution: `hi` with probability `p`, else `lo`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn bernoulli(p: f64, lo: f64, hi: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "bernoulli probability must be in (0,1)");
        Distribution::Discrete(vec![(lo, 1.0 - p), (hi, p)])
    }

    /// Checks internal consistency (probabilities positive, summing to 1;
    /// uniform bounds ordered).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Distribution::PointMass(v) => {
                if v.is_finite() {
                    Ok(())
                } else {
                    Err("point mass must be finite".into())
                }
            }
            Distribution::Discrete(points) => {
                if points.is_empty() {
                    return Err("discrete distribution needs at least one point".into());
                }
                let total: f64 = points.iter().map(|&(_, p)| p).sum();
                if points.iter().any(|&(_, p)| p <= 0.0) {
                    return Err("discrete probabilities must be positive".into());
                }
                if (total - 1.0).abs() > 1e-9 {
                    return Err(format!("discrete probabilities sum to {total}, expected 1"));
                }
                Ok(())
            }
            Distribution::Uniform(a, b) => {
                if a < b {
                    Ok(())
                } else {
                    Err("uniform support must satisfy a < b".into())
                }
            }
        }
    }

    /// The expectation `E[r]`.
    pub fn mean(&self) -> f64 {
        match self {
            Distribution::PointMass(v) => *v,
            Distribution::Discrete(points) => points.iter().map(|&(v, p)| v * p).sum(),
            Distribution::Uniform(a, b) => (a + b) / 2.0,
        }
    }

    /// The second raw moment `E[r²]` — needed when template exponents are
    /// polynomial (Remark 3/5 of the paper): the expected value of a
    /// quadratic template under an update involves squares of the draws.
    pub fn second_moment(&self) -> f64 {
        match self {
            Distribution::PointMass(v) => v * v,
            Distribution::Discrete(points) => points.iter().map(|&(v, p)| v * v * p).sum(),
            // ∫ x² dx / (b − a) over [a, b] = (a² + ab + b²) / 3.
            Distribution::Uniform(a, b) => (a * a + a * b + b * b) / 3.0,
        }
    }

    /// Inclusive support bounds `(min, max)`.
    pub fn support_bounds(&self) -> (f64, f64) {
        match self {
            Distribution::PointMass(v) => (*v, *v),
            Distribution::Discrete(points) => {
                let lo = points.iter().map(|&(v, _)| v).fold(f64::INFINITY, f64::min);
                let hi = points.iter().map(|&(v, _)| v).fold(f64::NEG_INFINITY, f64::max);
                (lo, hi)
            }
            Distribution::Uniform(a, b) => (*a, *b),
        }
    }

    /// The discrete support as `(value, probability)` pairs, or `None` for
    /// continuous distributions. Point masses read as a single pair.
    pub fn discrete_points(&self) -> Option<Vec<(f64, f64)>> {
        match self {
            Distribution::PointMass(v) => Some(vec![(*v, 1.0)]),
            Distribution::Discrete(points) => Some(points.clone()),
            Distribution::Uniform(..) => None,
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Distribution::PointMass(v) => *v,
            Distribution::Discrete(points) => {
                let mut u: f64 = rng.gen();
                for &(v, p) in points {
                    if u < p {
                        return v;
                    }
                    u -= p;
                }
                points.last().expect("validated nonempty").0
            }
            Distribution::Uniform(a, b) => rng.gen_range(*a..*b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;

    #[test]
    fn means() {
        assert_eq!(Distribution::PointMass(3.0).mean(), 3.0);
        assert_eq!(Distribution::coin(0.0, 1.0).mean(), 0.5);
        assert_eq!(Distribution::Uniform(2.0, 4.0).mean(), 3.0);
        assert!((Distribution::bernoulli(0.25, 0.0, 4.0).mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn support_bounds() {
        assert_eq!(Distribution::coin(-1.0, 2.0).support_bounds(), (-1.0, 2.0));
        assert_eq!(Distribution::Uniform(0.0, 1.0).support_bounds(), (0.0, 1.0));
        assert_eq!(Distribution::PointMass(7.0).support_bounds(), (7.0, 7.0));
    }

    #[test]
    fn validation_rejects_bad_distributions() {
        assert!(Distribution::Discrete(vec![(0.0, 0.4), (1.0, 0.4)]).validate().is_err());
        assert!(Distribution::Discrete(vec![]).validate().is_err());
        assert!(Distribution::Discrete(vec![(0.0, -0.5), (1.0, 1.5)]).validate().is_err());
        assert!(Distribution::Uniform(1.0, 1.0).validate().is_err());
        assert!(Distribution::coin(0.0, 1.0).validate().is_ok());
    }

    #[test]
    fn sampling_respects_support_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Distribution::bernoulli(0.3, 0.0, 1.0);
        let n = 20_000;
        let mut total = 0.0;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!(v == 0.0 || v == 1.0);
            total += v;
        }
        let mean = total / n as f64;
        assert!((mean - 0.3).abs() < 0.02, "empirical mean {mean}");

        let u = Distribution::Uniform(-1.0, 3.0);
        let mut total = 0.0;
        for _ in 0..n {
            let v = u.sample(&mut rng);
            assert!((-1.0..3.0).contains(&v));
            total += v;
        }
        assert!((total / n as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn discrete_points_roundtrip() {
        let d = Distribution::coin(1.0, 2.0);
        assert_eq!(d.discrete_points().unwrap().len(), 2);
        assert!(Distribution::Uniform(0.0, 1.0).discrete_points().is_none());
        assert_eq!(Distribution::PointMass(5.0).discrete_points().unwrap(), vec![(5.0, 1.0)]);
    }
}
