//! Table 2 / Hardware (M1DWalk, Newton, Ref): ExpLowSyn runtime per row,
//! plus the almost-sure-termination certification (RSM synthesis) the
//! lower bounds rely on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qava_core::explowsyn::synthesize_lower_bound_in;
use qava_lp::LpSolver;
use qava_core::rsm::prove_almost_sure_termination;
use qava_core::suite::table2;

fn bench_hardware(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/hardware");
    group.sample_size(10);
    for b in table2() {
        let pts = b.compile();
        group.bench_with_input(
            BenchmarkId::new("explowsyn", format!("{} {}", b.name, b.label)),
            &pts,
            |bench, pts| bench.iter(|| synthesize_lower_bound_in(pts, &mut LpSolver::new()).unwrap()),
        );
        // Ref's nested loops exceed the single-template RSM prover; the
        // paper, too, certifies termination per benchmark by hand.
        if b.name != "Ref" {
            group.bench_with_input(
                BenchmarkId::new("rsm_certificate", format!("{} {}", b.name, b.label)),
                &pts,
                |bench, pts| bench.iter(|| prove_almost_sure_termination(pts).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hardware);
criterion_main!(benches);
