//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. `ablation_azuma` — Remark 2: the Hoeffding constant 8ε/Δ² vs the
//!    Azuma baseline's 4ε/Δ² on the same synthesized RepRSM class. The
//!    *runtime* is near-identical (same LPs); the point is the bound
//!    quality, printed once per run.
//! 2. `ablation_ser` — Theorem C.1's granularity trade-off: Ser iteration
//!    budget vs runtime (each iteration costs two Farkas LPs) and vs the
//!    achieved `8εω` objective.
//! 3. `ablation_barrier` — the interior-point μ schedule of the convex
//!    solver: larger μ takes fewer, harder centering steps.
//! 4. `ablation_jensen` — the Jensen strengthening (one LP) vs the full
//!    convex program on the same lower-bound instance, measuring what the
//!    strengthening buys in runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qava_convex::SolverOptions;
use qava_core::explinsyn::synthesize_upper_bound_with;
use qava_core::explowsyn::synthesize_lower_bound;
use qava_core::hoeffding::{synthesize_reprsm_bound_with, BoundKind};
use qava_core::suite::{m1dwalk_rows, race_rows, rdwalk_rows};

fn ablation_azuma(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/azuma_vs_hoeffding");
    group.sample_size(10);
    let b = &race_rows()[0];
    let pts = b.compile();
    for kind in [BoundKind::Hoeffding, BoundKind::Azuma] {
        let r = synthesize_reprsm_bound_with(&pts, kind, 70).unwrap();
        println!("[ablation_azuma] {kind:?}: bound {}", r.bound);
        group.bench_with_input(
            BenchmarkId::new("race", format!("{kind:?}")),
            &kind,
            |bench, &kind| bench.iter(|| synthesize_reprsm_bound_with(&pts, kind, 70).unwrap()),
        );
    }
    group.finish();
}

fn ablation_ser(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/ser_granularity");
    group.sample_size(10);
    let b = &rdwalk_rows()[0];
    let pts = b.compile();
    for iters in [5usize, 10, 20, 40, 70] {
        let r = synthesize_reprsm_bound_with(&pts, BoundKind::Hoeffding, iters).unwrap();
        println!(
            "[ablation_ser] {iters} iterations: {} LP solves, ln bound {:.4}",
            r.lp_solves,
            r.bound.ln()
        );
        group.bench_with_input(BenchmarkId::new("rdwalk", iters), &iters, |bench, &iters| {
            bench.iter(|| synthesize_reprsm_bound_with(&pts, BoundKind::Hoeffding, iters).unwrap())
        });
    }
    group.finish();
}

fn ablation_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/barrier_mu");
    group.sample_size(10);
    let b = &race_rows()[0];
    let pts = b.compile();
    for mu in [2.0f64, 5.0, 20.0, 50.0] {
        let opts = SolverOptions { mu, ..SolverOptions::default() };
        let r = synthesize_upper_bound_with(&pts, &opts).unwrap();
        println!(
            "[ablation_barrier] mu = {mu}: {} Newton iterations, ln bound {:.4}",
            r.newton_iterations,
            r.bound.ln()
        );
        group.bench_with_input(
            BenchmarkId::new("race", format!("mu{mu}")),
            &opts,
            |bench, opts| bench.iter(|| synthesize_upper_bound_with(&pts, opts).unwrap()),
        );
    }
    group.finish();
}

fn ablation_jensen(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/jensen_vs_convex");
    group.sample_size(10);
    let b = &m1dwalk_rows()[0];
    let pts = b.compile();
    let lo = synthesize_lower_bound(&pts).unwrap();
    println!("[ablation_jensen] Jensen LP lower bound: {:.6}", lo.bound.to_f64());
    group.bench_function("m1dwalk/jensen_lp", |bench| {
        bench.iter(|| synthesize_lower_bound(&pts).unwrap())
    });
    // The upper-bound convex program on the same PTS gives the runtime
    // scale of a full barrier solve for comparison.
    group.bench_function("m1dwalk/barrier_reference", |bench| {
        bench.iter(|| {
            synthesize_upper_bound_with(&pts, &SolverOptions::default()).unwrap()
        })
    });
    group.finish();
}

fn ablation_quadratic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/quadratic_vs_affine");
    group.sample_size(10);
    // The driftless-deadline walk: no affine RepRSM exists; the quadratic
    // class certifies a nontrivial bound. Measures the LP-size cost of the
    // Handelman encoding against the affine Farkas one on the same PTS.
    let src = r"
        x := 0; t := 0;
        while x >= -4 and x <= 4 and t <= 60
            invariant x >= -5 and x <= 5 and t >= 0 and t <= 61 {
            if prob(0.5) { x, t := x + 1, t + 1; } else { x, t := x - 1, t + 1; }
        }
        assert t <= 60;
    ";
    let pts = qava_lang::compile(src, &std::collections::BTreeMap::new()).unwrap();
    let quad =
        qava_core::polyrsm::synthesize_quadratic_bound(&pts, BoundKind::Hoeffding, 20).unwrap();
    println!(
        "[ablation_quadratic] quadratic bound {} ({} LPs); affine: no RepRSM",
        quad.bound, quad.lp_solves
    );
    group.bench_function("driftless/affine_reports_none", |bench| {
        bench.iter(|| synthesize_reprsm_bound_with(&pts, BoundKind::Hoeffding, 20))
    });
    group.bench_function("driftless/quadratic_certifies", |bench| {
        bench.iter(|| {
            qava_core::polyrsm::synthesize_quadratic_bound(&pts, BoundKind::Hoeffding, 20)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_azuma,
    ablation_ser,
    ablation_barrier,
    ablation_jensen,
    ablation_quadratic
);
criterion_main!(benches);
