//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. `ablation_azuma` — Remark 2: the Hoeffding constant 8ε/Δ² vs the
//!    Azuma baseline's 4ε/Δ² on the same synthesized RepRSM class. The
//!    *runtime* is near-identical (same LPs); the point is the bound
//!    quality, printed once per run.
//! 2. `ablation_ser` — Theorem C.1's granularity trade-off: Ser iteration
//!    budget vs runtime (each iteration costs two Farkas LPs) and vs the
//!    achieved `8εω` objective.
//! 3. `ablation_barrier` — the interior-point μ schedule of the convex
//!    solver: larger μ takes fewer, harder centering steps.
//! 4. `ablation_jensen` — the Jensen strengthening (one LP) vs the full
//!    convex program on the same lower-bound instance, measuring what the
//!    strengthening buys in runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qava_convex::SolverOptions;
use qava_core::explinsyn::synthesize_upper_bound_with_in;
use qava_core::explowsyn::synthesize_lower_bound_in;
use qava_core::hoeffding::{synthesize_reprsm_bound_in, BoundKind};
use qava_lp::LpSolver;
use qava_core::suite::{m1dwalk_rows, race_rows, rdwalk_rows};

fn ablation_azuma(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/azuma_vs_hoeffding");
    group.sample_size(10);
    let b = &race_rows()[0];
    let pts = b.compile();
    for kind in [BoundKind::Hoeffding, BoundKind::Azuma] {
        let r = synthesize_reprsm_bound_in(&pts, kind, 70, &mut LpSolver::new()).unwrap();
        println!("[ablation_azuma] {kind:?}: bound {}", r.bound);
        group.bench_with_input(
            BenchmarkId::new("race", format!("{kind:?}")),
            &kind,
            |bench, &kind| bench.iter(|| synthesize_reprsm_bound_in(&pts, kind, 70, &mut LpSolver::new()).unwrap()),
        );
    }
    group.finish();
}

fn ablation_ser(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/ser_granularity");
    group.sample_size(10);
    let b = &rdwalk_rows()[0];
    let pts = b.compile();
    for iters in [5usize, 10, 20, 40, 70] {
        let r = synthesize_reprsm_bound_in(&pts, BoundKind::Hoeffding, iters, &mut LpSolver::new()).unwrap();
        println!(
            "[ablation_ser] {iters} iterations: {} LP solves, ln bound {:.4}",
            r.lp_solves,
            r.bound.ln()
        );
        group.bench_with_input(BenchmarkId::new("rdwalk", iters), &iters, |bench, &iters| {
            bench.iter(|| synthesize_reprsm_bound_in(&pts, BoundKind::Hoeffding, iters, &mut LpSolver::new()).unwrap())
        });
    }
    group.finish();
}

fn ablation_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/barrier_mu");
    group.sample_size(10);
    let b = &race_rows()[0];
    let pts = b.compile();
    for mu in [2.0f64, 5.0, 20.0, 50.0] {
        let opts = SolverOptions { mu, ..SolverOptions::default() };
        let r = synthesize_upper_bound_with_in(&pts, &opts, &mut LpSolver::new()).unwrap();
        println!(
            "[ablation_barrier] mu = {mu}: {} Newton iterations, ln bound {:.4}",
            r.newton_iterations,
            r.bound.ln()
        );
        group.bench_with_input(
            BenchmarkId::new("race", format!("mu{mu}")),
            &opts,
            |bench, opts| bench.iter(|| synthesize_upper_bound_with_in(&pts, opts, &mut LpSolver::new()).unwrap()),
        );
    }
    group.finish();
}

fn ablation_jensen(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/jensen_vs_convex");
    group.sample_size(10);
    let b = &m1dwalk_rows()[0];
    let pts = b.compile();
    let lo = synthesize_lower_bound_in(&pts, &mut LpSolver::new()).unwrap();
    println!("[ablation_jensen] Jensen LP lower bound: {:.6}", lo.bound.to_f64());
    group.bench_function("m1dwalk/jensen_lp", |bench| {
        bench.iter(|| synthesize_lower_bound_in(&pts, &mut LpSolver::new()).unwrap())
    });
    // The upper-bound convex program on the same PTS gives the runtime
    // scale of a full barrier solve for comparison.
    group.bench_function("m1dwalk/barrier_reference", |bench| {
        bench.iter(|| {
            synthesize_upper_bound_with_in(&pts, &SolverOptions::default(), &mut LpSolver::new()).unwrap()
        })
    });
    group.finish();
}

fn ablation_quadratic(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/quadratic_vs_affine");
    group.sample_size(10);
    // The driftless-deadline walk: no affine RepRSM exists; the quadratic
    // class certifies a nontrivial bound. Measures the LP-size cost of the
    // Handelman encoding against the affine Farkas one on the same PTS.
    let src = r"
        x := 0; t := 0;
        while x >= -4 and x <= 4 and t <= 60
            invariant x >= -5 and x <= 5 and t >= 0 and t <= 61 {
            if prob(0.5) { x, t := x + 1, t + 1; } else { x, t := x - 1, t + 1; }
        }
        assert t <= 60;
    ";
    let pts = qava_lang::compile(src, &std::collections::BTreeMap::new()).unwrap();
    let quad =
        qava_core::polyrsm::synthesize_quadratic_bound_in(&pts, BoundKind::Hoeffding, 20, &mut LpSolver::new()).unwrap();
    println!(
        "[ablation_quadratic] quadratic bound {} ({} LPs); affine: no RepRSM",
        quad.bound, quad.lp_solves
    );
    group.bench_function("driftless/affine_reports_none", |bench| {
        bench.iter(|| synthesize_reprsm_bound_in(&pts, BoundKind::Hoeffding, 20, &mut LpSolver::new()))
    });
    group.bench_function("driftless/quadratic_certifies", |bench| {
        bench.iter(|| {
            qava_core::polyrsm::synthesize_quadratic_bound_in(&pts, BoundKind::Hoeffding, 20, &mut LpSolver::new())
                .unwrap()
        })
    });
    group.finish();
}

/// Racing vs. running the default upper lineup sequentially on one
/// suite row (warn-only `suite/` regime: end-to-end numbers are too
/// noisy to gate on shared runners). On a single-core box the race
/// degenerates gracefully — the first engine finishes, the second is
/// cancelled at its first LP solve — so the interesting number is the
/// overhead of the racing machinery, which should be ≈ the cost of the
/// *fastest* engine plus cancellation noise, against the sequential
/// path's sum of both engines.
fn suite_race_vs_sequential(c: &mut Criterion) {
    use qava_core::engine::{race, AnalysisRequest, Direction, EngineRegistry};
    use qava_core::suite::runner::default_engines;
    use qava_lp::BackendChoice;

    let mut group = c.benchmark_group("suite/race_vs_sequential");
    group.sample_size(10);
    let b = &rdwalk_rows()[0];
    let pts = b.compile();
    let registry = EngineRegistry::with_builtins();
    let req = AnalysisRequest::upper(&pts);
    let lineup: Vec<_> = default_engines(Direction::Upper)
        .iter()
        .map(|n| registry.engine(n).expect("built-in"))
        .collect();
    group.bench_function("rdwalk/sequential", |bench| {
        bench.iter(|| {
            lineup
                .iter()
                .map(|e| {
                    registry
                        .run_engine(e.name(), &req, BackendChoice::default())
                        .expect("registered")
                })
                .filter(|r| r.outcome.is_ok())
                .count()
        })
    });
    group.bench_function("rdwalk/race", |bench| {
        bench.iter(|| {
            race(&lineup, &req, BackendChoice::default())
                .winner
                .expect("an upper engine certifies rdwalk")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_azuma,
    ablation_ser,
    ablation_barrier,
    ablation_jensen,
    ablation_quadratic,
    suite_race_vs_sequential
);
criterion_main!(benches);
