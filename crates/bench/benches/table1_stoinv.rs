//! Table 1 / StoInv (1DWalk, 2DWalk, 3DWalk, Race): synthesis runtime per
//! row for both upper-bound algorithms. 3DWalk is the paper's hardest
//! instance (its evaluation reports the maximum 1.72 s for ExpLinSyn).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qava_core::explinsyn::synthesize_upper_bound_in;
use qava_core::hoeffding::{synthesize_reprsm_bound_in, BoundKind, DEFAULT_SER_ITERATIONS};
use qava_lp::LpSolver;
use qava_core::suite::{race_rows, walk1d_rows, walk2d_rows, walk3d_rows};

fn bench_stoinv(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/stoinv");
    group.sample_size(10);
    for b in walk1d_rows()
        .into_iter()
        .chain(walk2d_rows())
        .chain(walk3d_rows())
        .chain(race_rows())
    {
        let pts = b.compile();
        group.bench_with_input(
            BenchmarkId::new("hoeffding", format!("{} {}", b.name, b.label)),
            &pts,
            |bench, pts| {
                bench.iter(|| synthesize_reprsm_bound_in(pts, BoundKind::Hoeffding, DEFAULT_SER_ITERATIONS, &mut LpSolver::new()).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("explinsyn", format!("{} {}", b.name, b.label)),
            &pts,
            |bench, pts| bench.iter(|| synthesize_upper_bound_in(pts, &mut LpSolver::new()).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stoinv);
criterion_main!(benches);
