//! Table 1 / Concentration (Coupon, Prspeed, Rdwalk): synthesis runtime
//! per row for both upper-bound algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qava_core::explinsyn::synthesize_upper_bound_in;
use qava_core::hoeffding::{synthesize_reprsm_bound_in, BoundKind, DEFAULT_SER_ITERATIONS};
use qava_lp::LpSolver;
use qava_core::suite::{coupon_rows, prspeed_rows, rdwalk_rows};

fn bench_concentration(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/concentration");
    group.sample_size(10);
    for b in coupon_rows()
        .into_iter()
        .chain(prspeed_rows())
        .chain(rdwalk_rows())
    {
        let pts = b.compile();
        group.bench_with_input(
            BenchmarkId::new("hoeffding", format!("{} {}", b.name, b.label)),
            &pts,
            |bench, pts| {
                bench.iter(|| synthesize_reprsm_bound_in(pts, BoundKind::Hoeffding, DEFAULT_SER_ITERATIONS, &mut LpSolver::new()).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("explinsyn", format!("{} {}", b.name, b.label)),
            &pts,
            |bench, pts| bench.iter(|| synthesize_upper_bound_in(pts, &mut LpSolver::new()).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concentration);
criterion_main!(benches);
