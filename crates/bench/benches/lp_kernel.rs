//! LP-kernel backend matrix: one Handelman-certificate synthesis
//! workload per size class, solved through each pinned LP backend.
//!
//! Unlike the `table1`/`table2` suite benches (which run whatever
//! `BackendChoice::Auto` routes to and measure the paper's end-to-end
//! numbers), these rows pin the backend so the basis-representation
//! engines compete on identical LP streams:
//!
//! * `rdwalk_small` — the µs-scale Rdwalk Hoeffding LPs the dense
//!   tableau exists for;
//! * `coupon_mid` — mid-size Coupon systems, the dense-inverse revised
//!   simplex's home turf;
//! * `3dwalk_large` — the largest Handelman class in the suite
//!   (m ≈ 64–127 at a few percent density, degenerate εmax systems):
//!   the class the factorized representations target, and where the
//!   `lu` (product-form eta file) and `lu-ft` (Forrest–Tomlin spike
//!   swaps) update schemes race on identical LP streams — the
//!   pivot-heavy runs FT exists for.
//!
//! The `sweep_coupon`/`sweep_epsmax` rows race the two LP strategies a
//! `qava --sweep` chooses between on the harvested reoptimization
//! chains (`crates/lp/tests/corpus/sweep_*.qlp`): `cold` solves every
//! chain member from scratch, `reopt` cold-solves the head and
//! dual-reoptimizes each successor from the previous final basis —
//! the per-point LP cost a sweep actually pays.
//!
//! `bench_compare` holds every `lp/` benchmark to the hard ±25% gate
//! (the suite benches stay warn-only), so a regression in any backend's
//! kernel fails CI even on noisy shared runners.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qava_core::hoeffding::{synthesize_reprsm_bound_in, BoundKind};
use qava_core::suite::{coupon_rows, rdwalk_rows, walk3d_rows};
use qava_linalg::kernel;
use qava_lp::debug::{update_solve_cycle, TraceEngine};
use qava_lp::{BackendChoice, CscMatrix, LpBackend, LpSolver, LuSimplex};

/// Reduced Ser budget: enough ε-probe LPs to exercise warm starts and
/// the εmax knife edge while keeping the matrix quick.
const SER_ITERATIONS: usize = 6;

fn bench_lp_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/kernel");
    group.sample_size(10);
    let classes = [
        ("rdwalk_small", rdwalk_rows().remove(0)),
        ("coupon_mid", coupon_rows().remove(0)),
        ("3dwalk_large", walk3d_rows().remove(0)),
    ];
    for (class, row) in classes {
        let pts = row.compile();
        for backend in
            [BackendChoice::Sparse, BackendChoice::Dense, BackendChoice::Lu, BackendChoice::LuFt]
        {
            group.bench_with_input(BenchmarkId::new(class, backend), &pts, |bench, pts| {
                bench.iter(|| {
                    // A fresh session per iteration: cold warm-start
                    // cache, so the measurement is the backend's own
                    // solve path, not cross-iteration cache luck.
                    let mut solver = LpSolver::with_choice(backend);
                    synthesize_reprsm_bound_in(
                        pts,
                        BoundKind::Hoeffding,
                        SER_ITERATIONS,
                        &mut solver,
                    )
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

/// The vecops backend ladder: each selectable [`kernel::VecKernel`]
/// implementation timed head-to-head on the three access shapes the LP
/// hot loops are made of — dense contiguous (`dot`, the pricing and
/// tableau-elimination shape), gathered (`gather_dot`, the CSC
/// column-against-dense btran shape), and masked-gathered
/// (`masked_gather_dot`, the Forrest–Tomlin row-spike window shape) —
/// at lengths 8 (one vector register, dispatch break-even), 64 (a
/// typical suite basis), and 512 (vector-throughput territory).
///
/// Rows call the kernel trait objects directly (bypassing the
/// `vecops::` free-function dispatch and its short-slice fast path), so
/// each row isolates one backend's code: the committed `BENCH_lp.json`
/// rows are comparable run-over-run regardless of `QAVA_KERNEL`. Every
/// sample loops the kernel `REPS` times over the same buffers so even
/// the 8-length rows are µs-scale — stable under `bench_compare`'s hard
/// 25% `lp/` gate.
fn bench_vecops(c: &mut Criterion) {
    // Keyed pseudo-random data: deterministic, no zero/denormal cliffs.
    fn fill(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(salt);
                ((h >> 11) % 2000) as f64 / 1000.0 - 1.0
            })
            .collect()
    }
    const REPS: usize = 256;
    println!("vec kernel (auto-selected): {}", kernel::provenance());
    let mut group = c.benchmark_group("lp/kernel");
    group.sample_size(10);
    for len in [8usize, 64, 512] {
        let x = fill(len, 1);
        let y = fill(len, 2);
        let vals = fill(len, 3);
        // Gather indices: a scrambled permutation of 0..len, the
        // worst-case (cache-unfriendly, vector-gather-friendly) order.
        let mut idx: Vec<usize> = (0..len).collect();
        for i in (1..len).rev() {
            let h = (i as u64).wrapping_mul(0xD1B54A32D192ED03) >> 17;
            idx.swap(i, h as usize % (i + 1));
        }
        // Positions for the masked shape: pos[r] = r, cutoff at the
        // midpoint, so half the entries fall inside the window.
        let pos: Vec<usize> = (0..len).collect();
        let cutoff = len / 2;
        for k in kernel::available() {
            group.bench_with_input(
                BenchmarkId::new(format!("vecops_dot{len}"), k.name()),
                &(),
                |bench, ()| {
                    bench.iter(|| {
                        let mut acc = 0.0;
                        for _ in 0..REPS {
                            acc += k.dot(black_box(&x), black_box(&y));
                        }
                        acc
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("vecops_gather{len}"), k.name()),
                &(),
                |bench, ()| {
                    bench.iter(|| {
                        let mut acc = 0.0;
                        for _ in 0..REPS {
                            acc += k.gather_dot(black_box(&idx), black_box(&vals), black_box(&x));
                        }
                        acc
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("vecops_masked{len}"), k.name()),
                &(),
                |bench, ()| {
                    bench.iter(|| {
                        let mut acc = 0.0;
                        for _ in 0..REPS {
                            acc += k.masked_gather_dot(
                                black_box(&idx),
                                black_box(&vals),
                                black_box(&x),
                                black_box(&pos),
                                black_box(cutoff),
                            );
                        }
                        acc
                    })
                },
            );
        }
    }
    group.finish();
}

/// A 3dwalk-shaped sparse system for the basis-update micro-bench:
/// m = 96 rows, n = 192 columns at ~4% density, every column carrying
/// one strong entry so the greedy exchange chain never starves.
fn walk3d_like_matrix() -> CscMatrix {
    let m = 96usize;
    let n = 192usize;
    let mut state = 0xD1B54A32D192ED03u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    for j in 0..n {
        let anchor = (next() as usize) % m;
        rows[anchor].push((j, 1.5 + (next() % 1000) as f64 / 1000.0));
        for _ in 0..3 {
            let r = (next() as usize) % m;
            if r != anchor {
                rows[r].push((j, (next() % 2000) as f64 / 1000.0 - 1.0));
            }
        }
    }
    CscMatrix::from_sparse_rows(m, n, &rows)
}

/// The update schemes head to head at **equal refactorization counts**:
/// one (trivial) factorization, an identical deterministic exchange
/// chain of 16/64/128/192 pivots — a short run, the eta file's full
/// between-refactorization budget, FT's, and a pivot-heavier run — then
/// 256 rounds of one sparse ftran + one dense btran, the pivot loop's
/// solve mix. The long rows are the ones the Forrest–Tomlin engine
/// exists for: with the updates absorbed into U there is no eta stack
/// to traverse, so FT's ftran/btran cost stays flat as the chain grows
/// while the eta file's climbs — the gap widens monotonically across
/// the ladder. The short `basis_update16` row watches the other end:
/// with few updates the eta file's one-component pivot checks skip
/// nearly everything, so this is where the eta engine is hardest to
/// beat and where FT's row-eta support masks (which skip ~59% of eta
/// applications on the real suite's sparse right-hand sides) are meant
/// to keep the gap from widening further. The `lu-bg` rows race the
/// Bartels–Golub engine on the same chains: its interchange-based spike
/// elimination buys stability with extra row-eta fill, and these rows
/// bound what that costs on FT's home turf.
fn bench_basis_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/kernel");
    group.sample_size(10);
    let a = walk3d_like_matrix();
    for updates in [16usize, 64, 128, 192] {
        for (engine, name) in [
            (TraceEngine::LuEta, "lu"),
            (TraceEngine::LuFt, "lu-ft"),
            (TraceEngine::LuBg, "lu-bg"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("basis_update{updates}"), name),
                &a,
                |bench, a| bench.iter(|| update_solve_cycle(engine, a, updates, 256)),
            );
        }
    }
    group.finish();
}

/// One member of a harvested sweep chain, ready to solve.
struct ChainInst {
    costs: Vec<f64>,
    a: CscMatrix,
    b: Vec<f64>,
}

/// Loads an ordered `sweep_*_NN.qlp` reoptimization chain from the LP
/// conformance corpus (a minimal reader for the subset of the `.qlp`
/// grammar the chain files use; `crates/lp/tests/corpus.rs` documents
/// the full format and replays the same files for correctness).
fn load_chain(prefix: &str) -> Vec<ChainInst> {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../lp/tests/corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "qlp")
                && p.file_name().is_some_and(|f| f.to_string_lossy().starts_with(prefix))
        })
        .collect();
    files.sort();
    assert!(files.len() >= 3, "{prefix}: sweep chain missing from the corpus");
    files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path).unwrap();
            let (mut costs, mut b) = (Vec::new(), Vec::new());
            let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
            for line in text.lines() {
                let mut t = line.split_whitespace();
                match t.next() {
                    Some("m") => {
                        let m: usize = t.next().unwrap().parse().unwrap();
                        let n: usize = t.nth(1).unwrap().parse().unwrap();
                        costs = vec![0.0; n];
                        b = vec![0.0; m];
                        rows = vec![Vec::new(); m];
                    }
                    Some("c") => {
                        let j: usize = t.next().unwrap().parse().unwrap();
                        costs[j] = t.next().unwrap().parse().unwrap();
                    }
                    Some("b") => {
                        let i: usize = t.next().unwrap().parse().unwrap();
                        b[i] = t.next().unwrap().parse().unwrap();
                    }
                    Some("a") => {
                        let i: usize = t.next().unwrap().parse().unwrap();
                        let j: usize = t.next().unwrap().parse().unwrap();
                        rows[i].push((j, t.next().unwrap().parse().unwrap()));
                    }
                    _ => {}
                }
            }
            let a = CscMatrix::from_sparse_rows(rows.len(), costs.len(), &rows);
            ChainInst { costs, a, b }
        })
        .collect()
}

/// Reoptimized vs cold sweep LP cost on the harvested chains, through
/// the `lu` backend (the engine the sweep harvest captured). `cold` is
/// what a per-point baseline pays; `reopt` is the sweep fast path,
/// falling back cold on a declined attempt exactly like the session
/// does — so the row measures the honest cost, not the happy path.
fn bench_sweep_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/kernel");
    group.sample_size(10);
    for class in ["sweep_coupon", "sweep_epsmax"] {
        let chain = load_chain(&format!("{class}_"));
        group.bench_with_input(BenchmarkId::new(class, "cold"), &chain, |bench, chain| {
            bench.iter(|| {
                let mut pivots = 0usize;
                for inst in chain {
                    pivots +=
                        LuSimplex.solve_core(&inst.costs, &inst.a, &inst.b, None).unwrap().pivots;
                }
                pivots
            })
        });
        group.bench_with_input(BenchmarkId::new(class, "reopt"), &chain, |bench, chain| {
            bench.iter(|| {
                let head =
                    LuSimplex.solve_core(&chain[0].costs, &chain[0].a, &chain[0].b, None).unwrap();
                let mut pivots = head.pivots;
                let mut basis = head.basis;
                for inst in &chain[1..] {
                    let sol = basis
                        .as_deref()
                        .and_then(|p| LuSimplex.reoptimize_core(&inst.costs, &inst.a, &inst.b, p))
                        .unwrap_or_else(|| {
                            LuSimplex.solve_core(&inst.costs, &inst.a, &inst.b, None).unwrap()
                        });
                    pivots += sol.pivots;
                    basis = sol.basis;
                }
                pivots
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vecops, bench_lp_kernel, bench_basis_update, bench_sweep_chains);
criterion_main!(benches);
