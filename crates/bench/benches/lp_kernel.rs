//! LP-kernel backend matrix: one Handelman-certificate synthesis
//! workload per size class, solved through each pinned LP backend.
//!
//! Unlike the `table1`/`table2` suite benches (which run whatever
//! `BackendChoice::Auto` routes to and measure the paper's end-to-end
//! numbers), these rows pin the backend so the basis-representation
//! engines compete on identical LP streams:
//!
//! * `rdwalk_small` — the µs-scale Rdwalk Hoeffding LPs the dense
//!   tableau exists for;
//! * `coupon_mid` — mid-size Coupon systems, the dense-inverse revised
//!   simplex's home turf;
//! * `3dwalk_large` — the largest Handelman class in the suite
//!   (m ≈ 64–127 at a few percent density, degenerate εmax systems):
//!   the class the sparse LU + eta-file representation targets.
//!
//! `bench_compare` holds every `lp/` benchmark to the hard ±25% gate
//! (the suite benches stay warn-only), so a regression in any backend's
//! kernel fails CI even on noisy shared runners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qava_core::hoeffding::{synthesize_reprsm_bound_in, BoundKind};
use qava_core::suite::{coupon_rows, rdwalk_rows, walk3d_rows};
use qava_lp::{BackendChoice, LpSolver};

/// Reduced Ser budget: enough ε-probe LPs to exercise warm starts and
/// the εmax knife edge while keeping the matrix quick.
const SER_ITERATIONS: usize = 6;

fn bench_lp_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp/kernel");
    group.sample_size(10);
    let classes = [
        ("rdwalk_small", rdwalk_rows().remove(0)),
        ("coupon_mid", coupon_rows().remove(0)),
        ("3dwalk_large", walk3d_rows().remove(0)),
    ];
    for (class, row) in classes {
        let pts = row.compile();
        for backend in [BackendChoice::Sparse, BackendChoice::Dense, BackendChoice::Lu] {
            group.bench_with_input(BenchmarkId::new(class, backend), &pts, |bench, pts| {
                bench.iter(|| {
                    // A fresh session per iteration: cold warm-start
                    // cache, so the measurement is the backend's own
                    // solve path, not cross-iteration cache luck.
                    let mut solver = LpSolver::with_choice(backend);
                    synthesize_reprsm_bound_in(
                        pts,
                        BoundKind::Hoeffding,
                        SER_ITERATIONS,
                        &mut solver,
                    )
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lp_kernel);
criterion_main!(benches);
