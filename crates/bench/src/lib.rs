//! Benchmark support library for the `qava` workspace.
//!
//! The interesting entry points are the criterion benches under
//! `benches/` and the `tables` binary that regenerates the paper's
//! evaluation tables (in parallel, via [`qava_core::suite::runner`]).

pub use qava_core::suite;
