//! Benchmark-trajectory comparison: diffs a freshly generated
//! `BENCH_lp.json` against a committed baseline, **warning** on
//! suite-level median regressions and **failing** on LP-kernel ones.
//!
//! ```text
//! cargo run -p qava-bench --bin bench_compare -- \
//!     [--baseline BENCH_lp.baseline.json] [--fresh BENCH_lp.json] \
//!     [--tolerance 0.10] [--kernel-prefix lp/] [--kernel-tolerance 0.25]
//! ```
//!
//! Intended CI flow: copy the committed `BENCH_lp.json` aside, rerun the
//! criterion benches (which rewrite it), then run this tool against the
//! copy. Two regimes, split by benchmark name:
//!
//! * **LP-kernel benches** (names under `--kernel-prefix`, default
//!   `lp/`): pinned-backend solver kernels with little non-LP work, and
//!   the benches this repo's perf PRs are judged on. A median regression
//!   beyond `--kernel-tolerance` (default 25%, wide enough for shared-
//!   runner noise) prints an `::error::` annotation and the exit code is
//!   **1** — a hard CI gate.
//! * **suite-level benches** (everything else): end-to-end synthesis
//!   timings dominated by non-LP work and far noisier. Regressions
//!   beyond `--tolerance` surface as `::warning::` annotations that
//!   GitHub renders on the build, and a human decides — these never
//!   affect the exit code.
//!
//! Missing files are a notice, not an error, so the step stays green on
//! fresh clones without bench results.
//!
//! The bench file is a flat `{"name": median_ns, …}` map written by the
//! vendored criterion shim; the parser below reads exactly that shape
//! (no external JSON dependency in this offline workspace).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: bench_compare [--baseline PATH] [--fresh PATH] [--tolerance FRACTION]
                     [--kernel-prefix PREFIX] [--kernel-tolerance FRACTION]

defaults: --baseline BENCH_lp.baseline.json --fresh BENCH_lp.json --tolerance 0.10
          --kernel-prefix lp/ --kernel-tolerance 0.25
Benchmarks whose name starts with PREFIX are the LP-kernel gate: a median
regression beyond --kernel-tolerance exits 1. Everything else is warn-only
at --tolerance. Relative paths are resolved against the current directory,
then upward to the workspace root (cargo runs benches with the package as
cwd).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = "BENCH_lp.baseline.json".to_string();
    let mut fresh = "BENCH_lp.json".to_string();
    let mut tolerance = 0.10f64;
    let mut kernel_prefix = "lp/".to_string();
    let mut kernel_tolerance = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{what} needs a value"))
        };
        let result = match a.as_str() {
            "--baseline" => take("--baseline").map(|v| baseline = v),
            "--fresh" => take("--fresh").map(|v| fresh = v),
            "--tolerance" => take("--tolerance").and_then(|v| {
                v.parse::<f64>().map(|t| tolerance = t).map_err(|_| format!("bad tolerance `{v}`"))
            }),
            "--kernel-prefix" => take("--kernel-prefix").map(|v| kernel_prefix = v),
            "--kernel-tolerance" => take("--kernel-tolerance").and_then(|v| {
                v.parse::<f64>()
                    .map(|t| kernel_tolerance = t)
                    .map_err(|_| format!("bad tolerance `{v}`"))
            }),
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(msg) = result {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let (Some(base_path), Some(fresh_path)) = (resolve(&baseline), resolve(&fresh)) else {
        println!(
            "bench_compare: baseline `{baseline}` or fresh `{fresh}` not found; \
             nothing to compare (ok on runners without bench results)"
        );
        return ExitCode::SUCCESS;
    };
    let (base, fresh_map) = match (load(&base_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            println!("bench_compare: {e}; skipping comparison");
            return ExitCode::SUCCESS;
        }
    };

    let report = compare(&base, &fresh_map, tolerance, &kernel_prefix, kernel_tolerance);
    for line in &report.lines {
        println!("{line}");
    }
    println!(
        "bench_compare: {} benchmarks compared, {} suite regressions > {:.0}% (warn-only), \
         {} kernel regressions > {:.0}% (gating), {} improvements, \
         {} only-in-baseline, {} only-in-fresh",
        report.compared,
        report.regressions,
        tolerance * 100.0,
        report.kernel_regressions,
        kernel_tolerance * 100.0,
        report.improvements,
        report.only_baseline,
        report.only_fresh,
    );
    // Suite-level regressions are warn-only by design; only the LP-kernel
    // gate fails the build.
    if report.kernel_regressions > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Resolves `path` against the cwd, then each ancestor (cargo sets the
/// package directory as cwd for benches; the bench file lives at the
/// workspace root).
fn resolve(path: &str) -> Option<PathBuf> {
    let p = Path::new(path);
    if p.is_absolute() {
        return p.exists().then(|| p.to_path_buf());
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join(p);
        if candidate.exists() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn load(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    parse_flat_json(&text).map_err(|e| format!("cannot parse `{}`: {e}", path.display()))
}

/// Parses the flat `{"name": number, …}` map the criterion shim emits.
fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let mut rest = text.trim();
    rest = rest.strip_prefix('{').ok_or("expected `{`")?.trim_end();
    rest = rest.strip_suffix('}').ok_or("expected `}`")?;
    loop {
        rest = rest.trim_start_matches([' ', '\t', '\n', '\r', ',']);
        if rest.is_empty() {
            return Ok(out);
        }
        rest = rest.strip_prefix('"').ok_or("expected `\"` before key")?;
        let end = rest.find('"').ok_or("unterminated key")?;
        let key = &rest[..end];
        rest = rest[end + 1..].trim_start();
        rest = rest.strip_prefix(':').ok_or("expected `:` after key")?.trim_start();
        let vend = rest
            .find([',', '}', '\n', ' ', '\t', '\r'])
            .unwrap_or(rest.len());
        let value: f64 = rest[..vend]
            .parse()
            .map_err(|_| format!("bad number for `{key}`: `{}`", &rest[..vend]))?;
        out.insert(key.to_string(), value);
        rest = &rest[vend..];
    }
}

struct Report {
    lines: Vec<String>,
    compared: usize,
    regressions: usize,
    kernel_regressions: usize,
    improvements: usize,
    only_baseline: usize,
    only_fresh: usize,
}

fn compare(
    base: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    tol: f64,
    kernel_prefix: &str,
    kernel_tol: f64,
) -> Report {
    let mut r = Report {
        lines: Vec::new(),
        compared: 0,
        regressions: 0,
        kernel_regressions: 0,
        improvements: 0,
        only_baseline: 0,
        only_fresh: 0,
    };
    for (name, &old) in base {
        match fresh.get(name) {
            None if name.starts_with(kernel_prefix) => {
                // A vanished kernel bench is a gate failure, not a
                // notice: treating it as a pass would let a bench rename
                // (or a silently dropped matrix row) delete the CI gate
                // without anyone noticing.
                r.only_baseline += 1;
                r.kernel_regressions += 1;
                r.lines.push(format!(
                    "::error::bench_compare: LP-kernel bench `{name}` vanished from the fresh \
                     run — renamed or dropped? The kernel gate covers every baseline `lp/` \
                     entry; update the committed baseline in the same change that renames a \
                     bench — gating"
                ));
            }
            None => {
                r.only_baseline += 1;
                r.lines.push(format!("bench_compare: `{name}` missing from fresh run"));
            }
            Some(&new) if old > 0.0 => {
                r.compared += 1;
                let kernel = name.starts_with(kernel_prefix);
                let delta = new / old - 1.0;
                if kernel && delta > kernel_tol {
                    r.kernel_regressions += 1;
                    // `::error::`/`::warning::` render as annotations in
                    // GitHub CI while remaining plain text elsewhere.
                    r.lines.push(format!(
                        "::error::bench_compare: LP-kernel bench `{name}` regressed {:+.1}% \
                         ({old:.0} ns → {new:.0} ns) — gating",
                        delta * 100.0
                    ));
                } else if delta > tol {
                    // Kernel regressions inside the gate's noise band
                    // still warn — the most-watched benches must never
                    // get less visibility than the suite ones.
                    r.regressions += 1;
                    r.lines.push(format!(
                        "::warning::bench_compare: `{name}` regressed {:+.1}% \
                         ({old:.0} ns → {new:.0} ns)",
                        delta * 100.0
                    ));
                } else if delta < -tol {
                    r.improvements += 1;
                    r.lines.push(format!(
                        "bench_compare: `{name}` improved {:+.1}% ({old:.0} ns → {new:.0} ns)",
                        delta * 100.0
                    ));
                }
            }
            Some(_) => r.compared += 1,
        }
    }
    r.only_fresh = fresh.keys().filter(|k| !base.contains_key(*k)).count();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shim_format() {
        let text = "{\n  \"a/b/c\": 123.5,\n  \"d\": 7.0\n}\n";
        let m = parse_flat_json(text).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["a/b/c"], 123.5);
        assert_eq!(m["d"], 7.0);
        assert!(parse_flat_json("nope").is_err());
        assert_eq!(parse_flat_json("{}").unwrap().len(), 0);
    }

    #[test]
    fn flags_only_real_regressions() {
        let base: BTreeMap<String, f64> =
            [("fast", 100.0), ("slow", 100.0), ("noisy", 100.0), ("gone", 5.0)]
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
        let fresh: BTreeMap<String, f64> =
            [("fast", 50.0), ("slow", 140.0), ("noisy", 105.0), ("new", 3.0)]
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
        let r = compare(&base, &fresh, 0.10, "lp/", 0.25);
        assert_eq!(r.compared, 3);
        assert_eq!(r.regressions, 1, "only `slow` is beyond +10%");
        assert_eq!(r.kernel_regressions, 0, "no lp/ benches in this set");
        assert_eq!(r.improvements, 1, "only `fast` is beyond -10%");
        assert_eq!(r.only_baseline, 1);
        assert_eq!(r.only_fresh, 1);
        assert!(r.lines.iter().any(|l| l.contains("::warning::") && l.contains("`slow`")));
    }

    #[test]
    fn kernel_benches_gate_while_suite_benches_warn() {
        let base: BTreeMap<String, f64> = [
            ("lp/kernel/3dwalk_large/lu", 100.0),
            ("lp/kernel/coupon_mid/sparse", 100.0),
            ("lp/kernel/rdwalk_small/dense", 100.0),
            ("table1/concentration/hoeffding/X", 100.0),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        let fresh: BTreeMap<String, f64> = [
            ("lp/kernel/3dwalk_large/lu", 140.0),    // +40%: gates
            ("lp/kernel/coupon_mid/sparse", 120.0),  // +20%: under the gate, still warns
            ("lp/kernel/rdwalk_small/dense", 60.0),  // -40%: improvement
            ("table1/concentration/hoeffding/X", 300.0), // +200%: still warn-only
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        let r = compare(&base, &fresh, 0.10, "lp/", 0.25);
        assert_eq!(r.compared, 4);
        assert_eq!(r.kernel_regressions, 1, "only the +40% kernel bench gates");
        assert_eq!(r.regressions, 2, "the +20% kernel bench and the suite bench warn");
        assert_eq!(r.improvements, 1);
        assert!(r
            .lines
            .iter()
            .any(|l| l.contains("::error::") && l.contains("`lp/kernel/3dwalk_large/lu`")));
        assert!(r
            .lines
            .iter()
            .any(|l| l.contains("::warning::") && l.contains("hoeffding")));
    }

    #[test]
    fn vanished_kernel_bench_is_a_hard_failure() {
        // A suite bench may come and go (notice only), but a baseline
        // `lp/` entry missing from the fresh run must gate: otherwise
        // renaming a kernel bench silently drops it from CI.
        let base: BTreeMap<String, f64> = [
            ("lp/kernel/3dwalk_large/lu-ft", 100.0),
            ("lp/kernel/coupon_mid/sparse", 100.0),
            ("table1/concentration/hoeffding/X", 100.0),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        let fresh: BTreeMap<String, f64> = [
            ("lp/kernel/coupon_mid/sparse", 101.0),
            ("lp/kernel/3dwalk_large/lu_ft", 100.0), // renamed: does not count
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
        let r = compare(&base, &fresh, 0.10, "lp/", 0.25);
        assert_eq!(r.only_baseline, 2, "the vanished kernel and suite benches");
        assert_eq!(r.kernel_regressions, 1, "only the vanished kernel bench gates");
        assert!(r
            .lines
            .iter()
            .any(|l| l.contains("::error::") && l.contains("vanished")));
        // The vanished suite bench stays a plain notice.
        assert!(r
            .lines
            .iter()
            .any(|l| !l.contains("::error::") && l.contains("hoeffding")));
    }
}
