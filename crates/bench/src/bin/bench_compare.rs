//! Benchmark-trajectory comparison: diffs a freshly generated
//! `BENCH_lp.json` against a committed baseline and **warns** on median
//! regressions beyond a tolerance.
//!
//! ```text
//! cargo run -p qava-bench --bin bench_compare -- \
//!     [--baseline BENCH_lp.baseline.json] [--fresh BENCH_lp.json] \
//!     [--tolerance 0.10]
//! ```
//!
//! Intended CI flow: copy the committed `BENCH_lp.json` aside, rerun the
//! criterion benches (which rewrite it), then run this tool against the
//! copy. The exit code is **always 0 on comparisons** — shared CI runners
//! are too noisy for a hard perf gate (see ROADMAP), so regressions are
//! surfaced as `::warning::`-prefixed lines that GitHub renders as
//! annotations, and a human decides. Missing files are likewise a notice,
//! not an error, so the step stays green on fresh clones without bench
//! results.
//!
//! The bench file is a flat `{"name": median_ns, …}` map written by the
//! vendored criterion shim; the parser below reads exactly that shape
//! (no external JSON dependency in this offline workspace).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: bench_compare [--baseline PATH] [--fresh PATH] [--tolerance FRACTION]

defaults: --baseline BENCH_lp.baseline.json --fresh BENCH_lp.json --tolerance 0.10
Relative paths are resolved against the current directory, then upward to
the workspace root (cargo runs benches with the package as cwd).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = "BENCH_lp.baseline.json".to_string();
    let mut fresh = "BENCH_lp.json".to_string();
    let mut tolerance = 0.10f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{what} needs a value"))
        };
        let result = match a.as_str() {
            "--baseline" => take("--baseline").map(|v| baseline = v),
            "--fresh" => take("--fresh").map(|v| fresh = v),
            "--tolerance" => take("--tolerance").and_then(|v| {
                v.parse::<f64>().map(|t| tolerance = t).map_err(|_| format!("bad tolerance `{v}`"))
            }),
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(msg) = result {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let (Some(base_path), Some(fresh_path)) = (resolve(&baseline), resolve(&fresh)) else {
        println!(
            "bench_compare: baseline `{baseline}` or fresh `{fresh}` not found; \
             nothing to compare (ok on runners without bench results)"
        );
        return ExitCode::SUCCESS;
    };
    let (base, fresh_map) = match (load(&base_path), load(&fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            println!("bench_compare: {e}; skipping comparison");
            return ExitCode::SUCCESS;
        }
    };

    let report = compare(&base, &fresh_map, tolerance);
    for line in &report.lines {
        println!("{line}");
    }
    println!(
        "bench_compare: {} benchmarks compared, {} regressions > {:.0}%, {} improvements, \
         {} only-in-baseline, {} only-in-fresh",
        report.compared,
        report.regressions,
        tolerance * 100.0,
        report.improvements,
        report.only_baseline,
        report.only_fresh,
    );
    // Warn-only by design: regressions never fail the build.
    ExitCode::SUCCESS
}

/// Resolves `path` against the cwd, then each ancestor (cargo sets the
/// package directory as cwd for benches; the bench file lives at the
/// workspace root).
fn resolve(path: &str) -> Option<PathBuf> {
    let p = Path::new(path);
    if p.is_absolute() {
        return p.exists().then(|| p.to_path_buf());
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join(p);
        if candidate.exists() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn load(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    parse_flat_json(&text).map_err(|e| format!("cannot parse `{}`: {e}", path.display()))
}

/// Parses the flat `{"name": number, …}` map the criterion shim emits.
fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let mut rest = text.trim();
    rest = rest.strip_prefix('{').ok_or("expected `{`")?.trim_end();
    rest = rest.strip_suffix('}').ok_or("expected `}`")?;
    loop {
        rest = rest.trim_start_matches([' ', '\t', '\n', '\r', ',']);
        if rest.is_empty() {
            return Ok(out);
        }
        rest = rest.strip_prefix('"').ok_or("expected `\"` before key")?;
        let end = rest.find('"').ok_or("unterminated key")?;
        let key = &rest[..end];
        rest = rest[end + 1..].trim_start();
        rest = rest.strip_prefix(':').ok_or("expected `:` after key")?.trim_start();
        let vend = rest
            .find([',', '}', '\n', ' ', '\t', '\r'])
            .unwrap_or(rest.len());
        let value: f64 = rest[..vend]
            .parse()
            .map_err(|_| format!("bad number for `{key}`: `{}`", &rest[..vend]))?;
        out.insert(key.to_string(), value);
        rest = &rest[vend..];
    }
}

struct Report {
    lines: Vec<String>,
    compared: usize,
    regressions: usize,
    improvements: usize,
    only_baseline: usize,
    only_fresh: usize,
}

fn compare(base: &BTreeMap<String, f64>, fresh: &BTreeMap<String, f64>, tol: f64) -> Report {
    let mut r = Report {
        lines: Vec::new(),
        compared: 0,
        regressions: 0,
        improvements: 0,
        only_baseline: 0,
        only_fresh: 0,
    };
    for (name, &old) in base {
        match fresh.get(name) {
            None => {
                r.only_baseline += 1;
                r.lines.push(format!("bench_compare: `{name}` missing from fresh run"));
            }
            Some(&new) if old > 0.0 => {
                r.compared += 1;
                let delta = new / old - 1.0;
                if delta > tol {
                    r.regressions += 1;
                    // `::warning::` renders as an annotation in GitHub CI
                    // while remaining plain text elsewhere.
                    r.lines.push(format!(
                        "::warning::bench_compare: `{name}` regressed {:+.1}% \
                         ({old:.0} ns → {new:.0} ns)",
                        delta * 100.0
                    ));
                } else if delta < -tol {
                    r.improvements += 1;
                    r.lines.push(format!(
                        "bench_compare: `{name}` improved {:+.1}% ({old:.0} ns → {new:.0} ns)",
                        delta * 100.0
                    ));
                }
            }
            Some(_) => r.compared += 1,
        }
    }
    r.only_fresh = fresh.keys().filter(|k| !base.contains_key(*k)).count();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shim_format() {
        let text = "{\n  \"a/b/c\": 123.5,\n  \"d\": 7.0\n}\n";
        let m = parse_flat_json(text).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m["a/b/c"], 123.5);
        assert_eq!(m["d"], 7.0);
        assert!(parse_flat_json("nope").is_err());
        assert_eq!(parse_flat_json("{}").unwrap().len(), 0);
    }

    #[test]
    fn flags_only_real_regressions() {
        let base: BTreeMap<String, f64> =
            [("fast", 100.0), ("slow", 100.0), ("noisy", 100.0), ("gone", 5.0)]
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
        let fresh: BTreeMap<String, f64> =
            [("fast", 50.0), ("slow", 140.0), ("noisy", 105.0), ("new", 3.0)]
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
        let r = compare(&base, &fresh, 0.10);
        assert_eq!(r.compared, 3);
        assert_eq!(r.regressions, 1, "only `slow` is beyond +10%");
        assert_eq!(r.improvements, 1, "only `fast` is beyond -10%");
        assert_eq!(r.only_baseline, 1);
        assert_eq!(r.only_fresh, 1);
        assert!(r.lines.iter().any(|l| l.contains("::warning::") && l.contains("`slow`")));
    }
}
