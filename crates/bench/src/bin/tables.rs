//! Regenerates the paper's evaluation tables.
//!
//! ```text
//! tables            # Tables 1 and 2 (numeric bounds, timings, ratios)
//! tables --table1   # upper bounds only
//! tables --table2   # lower bounds only
//! tables --symbolic # Tables 3–5 (symbolic templates)
//! tables --check    # Monte-Carlo sanity: lower ≤ empirical ≤ upper
//! ```
//!
//! Bounds are reported in the paper's `m.me±EE` notation, timings in
//! seconds, and the last column is the paper's ratio
//! `previous / ours` (Table 1) or `(1 − previous) / (1 − ours)` (Table 2),
//! as orders of magnitude when large.
//!
//! Tables 1 and 2 are produced by the **parallel suite driver**
//! ([`qava_core::suite::runner`]): every (row, algorithm) pair runs on
//! its own worker, and results are reassembled in paper order, so the
//! output is deterministic. Pass `--serial` to force one worker (e.g.
//! for timing columns comparable with the paper's single-core numbers).

use qava_core::engine::{AnalysisRequest, Certificate, Direction, EngineRegistry};
use qava_core::logprob::LogProb;
use qava_core::suite::runner::{default_engines, run_rows_with, suite_lp_stats};
use qava_lp::BackendChoice;
use qava_core::suite::{table1, table2, Benchmark};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    if has("--serial") {
        // One suite worker: timing columns comparable with the paper's
        // single-core numbers. Must run before the first fan-out.
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .expect("configuring the global pool cannot fail");
    }
    // `--lp-backend {auto,sparse,dense,lu,lu-ft,lu-bg}` forwards to every task's solver
    // session (same flag, same parser, as `qava --lp-backend`).
    let backend = match BackendChoice::from_args(&args) {
        Ok(b) => b.unwrap_or_default(),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    let all = args
        .iter()
        .enumerate()
        .all(|(i, a)| a == "--serial" || a == "--lp-backend"
            || (i > 0 && args[i - 1] == "--lp-backend"));

    // Provenance header: the tables below depend on the LP backend *and*
    // on the vecops kernel backend every pivot ran through — bench
    // artifacts must say which produced them.
    println!("lp backend: {backend}; vec kernel: {}", qava_linalg::kernel::provenance());
    println!();

    if all || has("--table1") {
        print_table1(backend);
    }
    if all || has("--table2") {
        print_table2(backend);
    }
    if has("--symbolic") {
        print_symbolic();
    }
    if has("--check") {
        monte_carlo_check();
    }
}

/// `1.52e-7`-style scientific formatting straight from log-space, so that
/// 3DWalk's 1e-3230 prints without underflowing.
fn fmt_log(p: Option<LogProb>) -> String {
    match p {
        None => "—".to_string(),
        Some(p) => {
            let l10 = p.log10();
            if l10.is_infinite() && l10 < 0.0 {
                return "0".to_string();
            }
            let e = l10.floor();
            let m = 10f64.powf(l10 - e);
            format!("{m:.2}e{e:+.0}")
        }
    }
}

/// Orders-of-magnitude ratio column.
fn fmt_ratio(ours: LogProb, previous: Option<LogProb>, lower: bool) -> String {
    let Some(prev) = previous else { return "no result".to_string() };
    let r10 = if lower {
        // (1 − previous) / (1 − ours) for Table 2.
        let a = (1.0 - prev.to_f64()).max(f64::MIN_POSITIVE);
        let b = (1.0 - ours.to_f64()).max(f64::MIN_POSITIVE);
        (a / b).log10()
    } else {
        prev.log10() - ours.log10()
    };
    if r10.abs() < 3.0 {
        format!("{:.2}", 10f64.powf(r10))
    } else {
        format!("1e{r10:+.0}")
    }
}

fn print_table1(backend: BackendChoice) {
    println!("== Table 1: upper bounds on assertion-violation probability ==");
    println!(
        "{:<14} {:<22} {:>10} {:>7}  {:>10} {:>7}  {:>10}  {:>9}",
        "benchmark", "row", "§5.1", "t(s)", "§5.2", "t(s)", "previous", "ratio"
    );
    let rows = table1();
    let reports = run_rows_with(&rows, |b| default_engines(b.direction).to_vec(), backend);
    let mut current = "";
    for (b, report) in rows.iter().zip(&reports) {
        if b.name != current {
            current = b.name;
            println!("-- {} ({})", b.name, b.category);
        }
        let hoeff = report.run("hoeffding-linear").expect("scheduled");
        let exp = report.run("explinsyn").expect("scheduled");
        let ratio = exp
            .bound
            .as_ref()
            .map(|r| fmt_ratio(*r, b.paper.previous, false))
            .unwrap_or_else(|_| "—".to_string());
        println!(
            "{:<14} {:<22} {:>10} {:>7.2}  {:>10} {:>7.2}  {:>10}  {:>9}",
            b.name,
            b.label,
            fmt_log(hoeff.bound.as_ref().ok().copied()),
            hoeff.seconds,
            fmt_log(exp.bound.as_ref().ok().copied()),
            exp.seconds,
            fmt_log(b.paper.previous),
            ratio,
        );
    }
    print!("{}", suite_lp_stats(&reports));
    println!();
}

fn print_table2(backend: BackendChoice) {
    println!("== Table 2: lower bounds on assertion-violation probability ==");
    println!(
        "{:<14} {:<14} {:>12} {:>7}  {:>12}  {:>9}",
        "benchmark", "row", "§6 lower", "t(s)", "previous", "ratio"
    );
    let rows = table2();
    let reports = run_rows_with(&rows, |b| default_engines(b.direction).to_vec(), backend);
    let mut current = "";
    for (b, report) in rows.iter().zip(&reports) {
        if b.name != current {
            current = b.name;
            println!("-- {} ({})", b.name, b.category);
        }
        let low = report.run("explowsyn").expect("scheduled");
        let (bound_str, ratio) = match &low.bound {
            Ok(r) => (format!("{:.6}", r.to_f64()), fmt_ratio(*r, b.paper.previous, true)),
            Err(_) => ("failed".to_string(), "—".to_string()),
        };
        println!(
            "{:<14} {:<14} {:>12} {:>7.2}  {:>12}  {:>9}",
            b.name,
            b.label,
            bound_str,
            low.seconds,
            b.paper.previous.map(|p| format!("{:.6}", p.to_f64())).unwrap_or("—".into()),
            ratio,
        );
    }
    print!("{}", suite_lp_stats(&reports));
    println!();
}

fn symbolic_rows(registry: &EngineRegistry, b: &Benchmark, engine: &str) {
    let pts = b.compile();
    let direction = registry.engine(engine).expect("built-in engine").direction();
    let req = AnalysisRequest::new(&pts, direction);
    let tmpl = registry
        .run_engine(engine, &req, BackendChoice::default())
        .expect("built-in engine")
        .outcome
        .ok()
        .and_then(|c| {
            // The §5.1 header records the Hoeffding factor around η.
            let prefix = c
                .details
                .iter()
                .find(|(k, _)| *k == "epsilon")
                .map_or_else(|| "exp".to_string(), |(_, eps)| format!("exp(8·{eps:.3}·η)"));
            match c.certificate {
                Certificate::Template(t) => Some((prefix, t)),
                Certificate::Quadratic(_) => None,
            }
        });
    match tmpl {
        Some((prefix, t)) if !t.per_location.is_empty() => {
            println!("{:<12} {:<22} {prefix}({})", b.name, b.label, t.exponent_string(0));
        }
        _ => println!("{:<12} {:<22} —", b.name, b.label),
    }
}

fn print_symbolic() {
    let registry = EngineRegistry::with_builtins();
    println!("== Table 3: symbolic Hoeffding bounds (§5.1) ==");
    for b in table1() {
        symbolic_rows(&registry, &b, "hoeffding-linear");
    }
    println!();
    println!("== Table 4: symbolic ExpLinSyn bounds (§5.2) ==");
    for b in table1() {
        symbolic_rows(&registry, &b, "explinsyn");
    }
    println!();
    println!("== Table 5: symbolic ExpLowSyn bounds (§6) ==");
    for b in table2() {
        symbolic_rows(&registry, &b, "explowsyn");
    }
    println!();
}

fn monte_carlo_check() {
    println!("== Monte-Carlo sanity: certified lower ≤ empirical ≤ certified upper ==");
    let registry = EngineRegistry::with_builtins();
    let mut sim = qava_sim::Simulator::new(0xC0FFEE);
    for b in table1().into_iter().chain(table2()) {
        let pts = b.compile();
        let est = sim.estimate_violation(&pts, 20_000, 100_000);
        let bound_via = |engine: &str, direction| {
            registry
                .run_engine(engine, &AnalysisRequest::new(&pts, direction), BackendChoice::default())
                .expect("built-in engine")
                .bound()
        };
        let upper = bound_via("explinsyn", Direction::Upper);
        let lower = bound_via("explowsyn", Direction::Lower);
        let ok_upper = upper.is_none_or(|u| est.lower_ci() <= u.to_f64() + 1e-9);
        let ok_lower = lower.is_none_or(|l| l.to_f64() <= est.upper_ci() + 1e-9);
        println!(
            "{:<12} {:<22} empirical {:.5}  upper {:>10}  lower {:>10}  {}",
            b.name,
            b.label,
            est.probability,
            fmt_log(upper),
            fmt_log(lower),
            if ok_upper && ok_lower { "OK" } else { "VIOLATED" },
        );
    }
}
