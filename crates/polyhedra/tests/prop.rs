//! Property tests for vertex enumeration and Minkowski decomposition.
//!
//! The key oracle: for a *bounded* polyhedron, the support function computed
//! from the enumerated vertices must match the LP optimum in every direction.
//! For unbounded polyhedra we check soundness of the decomposition `P = Q + C`
//! by sampling points of `conv(V) + cone(R) + span(L)` and verifying they lie
//! in `P`.

use proptest::prelude::*;
use qava_lp::{Cmp, LinExpr, LpBuilder};
use qava_polyhedra::{Halfspace, Polyhedron};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Random bounded polytope: a box plus random cuts that keep the origin.
fn random_polytope() -> impl Strategy<Value = Polyhedron> {
    (2usize..4, 0usize..6, any::<u64>()).prop_map(|(dim, ncuts, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cs = Vec::new();
        for j in 0..dim {
            let mut pos = vec![0.0; dim];
            pos[j] = 1.0;
            cs.push(Halfspace::le(pos.clone(), rng.gen_range(0.5..3.0)));
            let mut negc = vec![0.0; dim];
            negc[j] = -1.0;
            cs.push(Halfspace::le(negc, rng.gen_range(0.5..3.0)));
        }
        for _ in 0..ncuts {
            let coeffs: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            cs.push(Halfspace::le(coeffs, rng.gen_range(0.2..2.0)));
        }
        Polyhedron::from_constraints(dim, cs)
    })
}

/// Random possibly-unbounded polyhedron.
fn random_polyhedron() -> impl Strategy<Value = Polyhedron> {
    (2usize..4, 1usize..6, any::<u64>()).prop_map(|(dim, nrows, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let cs = (0..nrows)
            .map(|_| {
                let coeffs: Vec<f64> =
                    (0..dim).map(|_| rng.gen_range(-2.0..2.0_f64).round()).collect();
                Halfspace::le(coeffs, rng.gen_range(-1.0..3.0_f64).round())
            })
            .collect();
        Polyhedron::from_constraints(dim, cs)
    })
}

fn lp_support(p: &Polyhedron, dir: &[f64]) -> Result<f64, qava_lp::LpError> {
    let mut lp = LpBuilder::new();
    let vars: Vec<_> = (0..p.dim()).map(|j| lp.add_var(format!("x{j}"))).collect();
    for h in p.constraints() {
        let mut e = LinExpr::new();
        for (j, &c) in h.coeffs.iter().enumerate() {
            e = e.term(vars[j], c);
        }
        lp.constrain(e, Cmp::Le, h.rhs);
    }
    let mut obj = LinExpr::new();
    for (j, &c) in dir.iter().enumerate() {
        obj = obj.term(vars[j], c);
    }
    lp.maximize(obj);
    lp.solve().map(|s| s.objective)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On bounded polytopes the vertex support function equals the LP optimum.
    #[test]
    fn support_function_matches_lp(p in random_polytope(), dseed in any::<u64>()) {
        let g = p.generators();
        if p.is_empty() {
            prop_assert!(g.vertices.is_empty());
            return Ok(());
        }
        prop_assert!(g.rays.is_empty(), "polytope has unexpected rays");
        prop_assert!(g.lines.is_empty(), "polytope has unexpected lines");
        prop_assert!(!g.vertices.is_empty());

        // Every vertex is feasible.
        for v in &g.vertices {
            prop_assert!(p.closure_contains(v, 1e-6), "vertex {v:?} infeasible");
        }

        let mut rng = StdRng::seed_from_u64(dseed);
        for _ in 0..8 {
            let dir: Vec<f64> = (0..p.dim()).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let lp_val = lp_support(&p, &dir).expect("bounded & nonempty");
            let vert_val = g
                .vertices
                .iter()
                .map(|v| qava_linalg::vecops::dot(&dir, v))
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((lp_val - vert_val).abs() < 1e-5,
                "support mismatch in dir {dir:?}: lp {lp_val} vs vertices {vert_val}");
        }
    }

    /// Sampled combinations of the decomposition generators stay inside P.
    #[test]
    fn minkowski_samples_are_feasible(p in random_polyhedron(), sseed in any::<u64>()) {
        let Some((vertices, cone)) = p.minkowski_decompose() else {
            prop_assert!(p.is_empty(), "decomposition failed on nonempty polyhedron");
            return Ok(());
        };
        let mut rng = StdRng::seed_from_u64(sseed);
        for _ in 0..20 {
            // Random convex combination of the vertices...
            let mut weights: Vec<f64> = vertices.iter().map(|_| rng.gen_range(0.0..1.0)).collect();
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            let mut x = vec![0.0; p.dim()];
            for (w, v) in weights.iter().zip(&vertices) {
                qava_linalg::vecops::axpy(*w, v, &mut x);
            }
            // ... plus non-negative multiples of rays ...
            for r in &cone.rays {
                qava_linalg::vecops::axpy(rng.gen_range(0.0..5.0), r, &mut x);
            }
            // ... plus arbitrary multiples of lines.
            for l in &cone.lines {
                qava_linalg::vecops::axpy(rng.gen_range(-5.0..5.0), l, &mut x);
            }
            prop_assert!(p.closure_contains(&x, 1e-5), "sample {x:?} escaped P");
        }
    }

    /// LP emptiness agrees with generator emptiness.
    #[test]
    fn emptiness_agreement(p in random_polyhedron()) {
        let lp_empty = p.is_empty();
        let gen_empty = p.generators().vertices.is_empty();
        prop_assert_eq!(lp_empty, gen_empty,
            "LP and DD disagree on emptiness of {}", p);
    }
}
