//! The double description method (Motzkin–Burger) for polyhedral cones.
//!
//! Given rows `a₁ … a_m`, [`cone_generators`] computes a generator
//! description of the cone `{x ∈ ℝᵈ | aᵢ·x ≤ 0}` as a pair of
//! *lines* (bidirectional generators spanning the lineality space) and
//! *extreme rays*. Constraints are inserted incrementally; adjacency of
//! rays is decided with the standard combinatorial zero-set test, which is
//! exact for the small dimensions the synthesis algorithms produce
//! (program-variable spaces of dimension ≤ 6).

use qava_linalg::{vecops, EPS};

/// Generator description of a polyhedral cone:
/// `C = span(lines) + cone(rays)`.
#[derive(Debug, Clone, Default)]
pub struct ConeGenerators {
    /// Basis vectors of the lineality space (each usable in both directions).
    pub lines: Vec<Vec<f64>>,
    /// Extreme rays (non-negative combinations only).
    pub rays: Vec<Vec<f64>>,
}

impl ConeGenerators {
    /// `true` when the cone is exactly `{0}`.
    pub fn is_trivial(&self) -> bool {
        self.lines.is_empty() && self.rays.is_empty()
    }

    /// Membership of `x` in `span(lines) + cone(rays)` is not decided here
    /// (it needs an LP); this checks the easy necessary condition that some
    /// generator exists when `x` is nonzero.
    pub fn generator_count(&self) -> usize {
        self.lines.len() + self.rays.len()
    }
}

/// A candidate ray along with the set of already-processed constraints it
/// satisfies with equality.
#[derive(Debug, Clone)]
struct Ray {
    v: Vec<f64>,
    /// Bitmask over constraint indices: bit `i` set ⇔ `aᵢ·v = 0`.
    zero_set: BitSet,
}

/// A tiny growable bitset keyed by constraint index.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        BitSet { words: vec![0; bits.div_ceil(64)] }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn intersection(&self, other: &BitSet) -> BitSet {
        BitSet {
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
        }
    }

    fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }
}

/// Computes lines and extreme rays of `{x | rows·x ≤ 0}`.
///
/// # Panics
///
/// Panics if any row's length differs from `dim`.
pub fn cone_generators(rows: &[Vec<f64>], dim: usize) -> ConeGenerators {
    for r in rows {
        assert_eq!(r.len(), dim, "cone_generators: row width mismatch");
    }
    let m = rows.len();
    // Start from the whole space: a line per coordinate axis, no rays.
    let mut lines: Vec<Vec<f64>> = (0..dim)
        .map(|j| {
            let mut e = vec![0.0; dim];
            e[j] = 1.0;
            e
        })
        .collect();
    let mut rays: Vec<Ray> = Vec::new();

    for (k, a) in rows.iter().enumerate() {
        insert_constraint(k, a, m, &mut lines, &mut rays);
    }

    ConeGenerators { lines, rays: rays.into_iter().map(|r| r.v).collect() }
}

/// Inserts constraint `a·x ≤ 0` (index `k` of `m`) into the generator pair.
fn insert_constraint(k: usize, a: &[f64], m: usize, lines: &mut Vec<Vec<f64>>, rays: &mut Vec<Ray>) {
    // --- Case 1: some line leaves the constraint's hyperplane. ---
    let pivot = lines
        .iter()
        .enumerate()
        .map(|(i, l)| (i, vecops::dot(a, l)))
        .filter(|&(_, d)| d.abs() > EPS)
        .max_by(|x, y| x.1.abs().partial_cmp(&y.1.abs()).unwrap());
    if let Some((idx, d0)) = pivot {
        let l0 = lines.swap_remove(idx);
        // Project the remaining lines and rays onto the hyperplane a·x = 0.
        for l in lines.iter_mut() {
            let d = vecops::dot(a, l);
            if d.abs() > EPS {
                vecops::axpy(-d / d0, &l0, l);
                vecops::normalize_inf(l);
            }
        }
        for r in rays.iter_mut() {
            let d = vecops::dot(a, &r.v);
            if d.abs() > EPS {
                vecops::axpy(-d / d0, &l0, &mut r.v);
                vecops::normalize_inf(&mut r.v);
            }
            // Rays were tight for all previous constraints via the lineality
            // reduction, and are now tight for k as well.
            r.zero_set.set(k);
        }
        // The pivot line itself survives as a one-directional ray pointing
        // into the feasible side of the new halfspace.
        let mut v = l0;
        if d0 > 0.0 {
            for c in v.iter_mut() {
                *c = -*c;
            }
        }
        // As a former line, it is tight at every earlier constraint but
        // strictly inside constraint k.
        let mut zs = BitSet::new(m);
        for i in 0..k {
            zs.set(i);
        }
        rays.push(Ray { v, zero_set: zs });
        return;
    }

    // --- Case 2: all lines lie on the hyperplane; split the rays. ---
    let dots: Vec<f64> = rays.iter().map(|r| vecops::dot(a, &r.v)).collect();
    let any_positive = dots.iter().any(|&d| d > EPS);
    if !any_positive {
        // Nothing is cut off; just update tightness flags.
        for (r, &d) in rays.iter_mut().zip(&dots) {
            if d.abs() <= EPS {
                r.zero_set.set(k);
            }
        }
        return;
    }

    let mut new_rays: Vec<Ray> = Vec::new();
    for (i, (p, &dp)) in rays.iter().zip(&dots).enumerate() {
        if dp <= EPS {
            continue;
        }
        for (j, (n, &dn)) in rays.iter().zip(&dots).enumerate() {
            if dn >= -EPS {
                continue;
            }
            if !adjacent(rays, i, j) {
                continue;
            }
            // Positive combination landing exactly on the hyperplane.
            let mut v = vecops::scale(dp, &n.v);
            vecops::axpy(-dn, &p.v, &mut v);
            vecops::normalize_inf(&mut v);
            if vecops::is_zero(&v, EPS) {
                continue;
            }
            let mut zs = p.zero_set.intersection(&n.zero_set);
            zs.set(k);
            new_rays.push(Ray { v, zero_set: zs });
        }
    }

    let mut kept: Vec<Ray> = Vec::new();
    for (mut r, d) in rays.drain(..).zip(dots) {
        if d > EPS {
            continue; // cut off
        }
        if d.abs() <= EPS {
            r.zero_set.set(k);
        }
        kept.push(r);
    }
    // Deduplicate new rays against each other (identical directions can be
    // produced by distinct adjacent pairs in degenerate configurations).
    for cand in new_rays {
        let dup = kept.iter().any(|r| same_direction(&r.v, &cand.v));
        if !dup {
            kept.push(cand);
        }
    }
    *rays = kept;
}

/// Combinatorial adjacency test: rays `i` and `j` are adjacent iff no third
/// ray's zero set contains the intersection of theirs.
fn adjacent(rays: &[Ray], i: usize, j: usize) -> bool {
    let meet = rays[i].zero_set.intersection(&rays[j].zero_set);
    !rays
        .iter()
        .enumerate()
        .any(|(t, r)| t != i && t != j && meet.is_subset_of(&r.zero_set))
}

/// Whether two ∞-normalized vectors point the same way.
fn same_direction(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() <= 1e-7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neg(v: &[f64]) -> Vec<f64> {
        vecops::scale(-1.0, v)
    }

    #[test]
    fn negative_quadrant() {
        // x <= 0, y <= 0: rays -e1, -e2.
        let g = cone_generators(&[vec![1.0, 0.0], vec![0.0, 1.0]], 2);
        assert!(g.lines.is_empty());
        assert_eq!(g.rays.len(), 2);
        for r in &g.rays {
            assert!(r[0] <= EPS && r[1] <= EPS);
        }
    }

    #[test]
    fn halfspace_cone_keeps_lineality() {
        // x + y <= 0 in 2D: lineality along (1,-1), one ray into x+y<0.
        let g = cone_generators(&[vec![1.0, 1.0]], 2);
        assert_eq!(g.lines.len(), 1);
        assert!((g.lines[0][0] + g.lines[0][1]).abs() < 1e-9);
        assert_eq!(g.rays.len(), 1);
        assert!(g.rays[0][0] + g.rays[0][1] < 0.0);
    }

    #[test]
    fn full_space_when_no_rows() {
        let g = cone_generators(&[], 3);
        assert_eq!(g.lines.len(), 3);
        assert!(g.rays.is_empty());
    }

    #[test]
    fn pointed_cone_in_3d() {
        // The cone x,y,z <= 0 has three extreme rays.
        let rows = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let g = cone_generators(&rows, 3);
        assert!(g.lines.is_empty());
        assert_eq!(g.rays.len(), 3);
    }

    #[test]
    fn trivial_cone() {
        // x <= 0 and -x <= 0 and y <= 0 and -y <= 0: only the origin.
        let rows = vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ];
        let g = cone_generators(&rows, 2);
        assert!(g.is_trivial(), "got {g:?}");
    }

    #[test]
    fn equality_pair_leaves_a_line_through() {
        // x = 0 (two inequalities) in 3D: cone is the (y,z) plane.
        let rows = vec![vec![1.0, 0.0, 0.0], vec![-1.0, 0.0, 0.0]];
        let g = cone_generators(&rows, 3);
        assert_eq!(g.lines.len(), 2);
        assert!(g.rays.is_empty(), "rays collapse into the lineality space");
        for l in &g.lines {
            assert!(l[0].abs() < 1e-9);
        }
    }

    #[test]
    fn square_pyramid_cone() {
        // Cone over a square: z <= 0 with |x| <= -z, |y| <= -z: 4 extreme rays.
        let rows = vec![
            vec![1.0, 0.0, 1.0],  // x + z <= 0  (x <= -z)
            vec![-1.0, 0.0, 1.0], // -x + z <= 0
            vec![0.0, 1.0, 1.0],
            vec![0.0, -1.0, 1.0],
        ];
        let g = cone_generators(&rows, 3);
        assert!(g.lines.is_empty());
        assert_eq!(g.rays.len(), 4, "rays {:?}", g.rays);
        for r in &g.rays {
            assert!(r[2] < 0.0);
            for row in &rows {
                assert!(vecops::dot(row, r) <= 1e-7);
            }
        }
    }

    #[test]
    fn all_rays_feasible_random() {
        use rand::{rngs::StdRng, Rng as _, SeedableRng as _};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50 {
            let dim = rng.gen_range(2..5);
            let nrows = rng.gen_range(1..7);
            let rows: Vec<Vec<f64>> = (0..nrows)
                .map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0_f64).round()).collect())
                .collect();
            let g = cone_generators(&rows, dim);
            for r in &g.rays {
                for row in &rows {
                    assert!(
                        vecops::dot(row, r) <= 1e-6,
                        "infeasible ray {r:?} for rows {rows:?}"
                    );
                }
            }
            for l in &g.lines {
                for row in &rows {
                    assert!(vecops::dot(row, l).abs() <= 1e-6, "line not on hyperplane");
                    assert!(vecops::dot(row, &neg(l)).abs() <= 1e-6);
                }
            }
        }
    }
}
