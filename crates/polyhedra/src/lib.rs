#![warn(missing_docs)]

//! Convex polyhedra in halfspace representation, plus the generator-side
//! machinery the paper's ExpLinSyn algorithm needs (§5.2):
//!
//! * [`Polyhedron`] — `{x | A·x ≤ b}` with optional per-row strictness
//!   (guards of probabilistic transition systems use strict inequalities for
//!   negated conditions; all *geometric* operations work on the closure,
//!   which is sound for the synthesis algorithms because they only ever
//!   require constraints to hold on a superset of the guard);
//! * [`dd`] — the **double description method** (Motzkin–Burger) computing
//!   extreme rays and lines of polyhedral cones;
//! * [`Generators`] / [`Polyhedron::generators`] — vertex/ray/line
//!   enumeration via homogenization;
//! * [`Polyhedron::minkowski_decompose`] — the decomposition `P = Q + C`
//!   of Theorem 5.3 (polytope `Q` from the vertices, recession cone `C`),
//!   which replaces the Parma Polyhedra Library used by the paper's
//!   prototype;
//! * LP-backed predicates: [`Polyhedron::is_empty`],
//!   [`Polyhedron::implies`], [`Polyhedron::interior_point`].
//!
//! # Examples
//!
//! ```
//! use qava_polyhedra::{Halfspace, Polyhedron};
//!
//! // The triangle x >= 0, y >= 0, x + y <= 1.
//! let tri = Polyhedron::from_constraints(2, vec![
//!     Halfspace::le(vec![-1.0, 0.0], 0.0),
//!     Halfspace::le(vec![0.0, -1.0], 0.0),
//!     Halfspace::le(vec![1.0, 1.0], 1.0),
//! ]);
//! let g = tri.generators();
//! assert_eq!(g.vertices.len(), 3);
//! assert!(g.rays.is_empty());
//! ```

pub mod dd;

pub use dd::ConeGenerators;

use qava_linalg::{vecops, EPS};
use qava_lp::{Cmp, LinExpr, LpBuilder, LpError, LpSolver};

/// A single linear constraint `coeffs · x ≤ rhs` (or `<` when `strict`).
#[derive(Debug, Clone, PartialEq)]
pub struct Halfspace {
    /// Row of coefficients, one per dimension.
    pub coeffs: Vec<f64>,
    /// Right-hand side.
    pub rhs: f64,
    /// `true` for a strict inequality `coeffs · x < rhs`.
    pub strict: bool,
}

impl Halfspace {
    /// Non-strict halfspace `coeffs · x ≤ rhs`.
    pub fn le(coeffs: Vec<f64>, rhs: f64) -> Self {
        Halfspace { coeffs, rhs, strict: false }
    }

    /// Strict halfspace `coeffs · x < rhs`.
    pub fn lt(coeffs: Vec<f64>, rhs: f64) -> Self {
        Halfspace { coeffs, rhs, strict: true }
    }

    /// Non-strict halfspace `coeffs · x ≥ rhs`, stored negated.
    pub fn ge(coeffs: Vec<f64>, rhs: f64) -> Self {
        Halfspace::le(vecops::scale(-1.0, &coeffs), -rhs)
    }

    /// The slack `rhs − coeffs·x` (non-negative on the halfspace).
    pub fn slack(&self, x: &[f64]) -> f64 {
        self.rhs - vecops::dot(&self.coeffs, x)
    }

    /// Whether `x` satisfies the constraint (with tolerance `tol`;
    /// strictness requires positive slack beyond the tolerance).
    pub fn satisfied_by(&self, x: &[f64], tol: f64) -> bool {
        let s = self.slack(x);
        if self.strict {
            s > tol
        } else {
            s >= -tol
        }
    }
}

/// Vertex/ray/line generator description of a polyhedron:
/// `P = conv(vertices) + cone(rays) + span(lines)`.
#[derive(Debug, Clone, Default)]
pub struct Generators {
    /// Points spanning the polytope part (minimal-face representatives).
    pub vertices: Vec<Vec<f64>>,
    /// Extreme rays of the recession cone.
    pub rays: Vec<Vec<f64>>,
    /// Basis of the lineality space.
    pub lines: Vec<Vec<f64>>,
}

impl Generators {
    /// `true` when there are no generators at all (empty polyhedron).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.rays.is_empty() && self.lines.is_empty()
    }
}

/// A convex polyhedron `{x ∈ ℝⁿ | A·x ≤ b}` in halfspace representation.
#[derive(Debug, Clone, PartialEq)]
pub struct Polyhedron {
    dim: usize,
    constraints: Vec<Halfspace>,
}

impl Polyhedron {
    /// The full space `ℝ^dim` (no constraints).
    pub fn universe(dim: usize) -> Self {
        Polyhedron { dim, constraints: Vec::new() }
    }

    /// Builds a polyhedron from constraints.
    ///
    /// # Panics
    ///
    /// Panics if any constraint row has the wrong width.
    pub fn from_constraints(dim: usize, constraints: Vec<Halfspace>) -> Self {
        for h in &constraints {
            assert_eq!(h.coeffs.len(), dim, "constraint width mismatch");
        }
        let mut p = Polyhedron { dim, constraints };
        p.dedup_exact();
        p
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Halfspace] {
        &self.constraints
    }

    /// Adds a constraint in place.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the ambient dimension.
    pub fn add(&mut self, h: Halfspace) {
        assert_eq!(h.coeffs.len(), self.dim, "constraint width mismatch");
        self.constraints.push(h);
    }

    /// Membership test honouring strict rows.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|h| h.satisfied_by(x, tol))
    }

    /// Membership in the topological closure (strictness ignored).
    pub fn closure_contains(&self, x: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|h| h.slack(x) >= -tol)
    }

    /// Intersection with another polyhedron over the same space.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn intersection(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.dim, other.dim, "intersection: dimension mismatch");
        let mut c = self.constraints.clone();
        c.extend(other.constraints.iter().cloned());
        let mut p = Polyhedron { dim: self.dim, constraints: c };
        p.dedup_exact();
        p
    }

    /// Removes exactly-duplicated rows (frequent after guard pullbacks and
    /// intersections during PTS simplification); keeps first occurrences.
    fn dedup_exact(&mut self) {
        let mut seen: Vec<Halfspace> = Vec::with_capacity(self.constraints.len());
        self.constraints.retain(|h| {
            if seen.iter().any(|s| s == h) {
                false
            } else {
                seen.push(h.clone());
                true
            }
        });
    }

    /// The recession cone `{x | A·x ≤ 0}` (closure semantics).
    pub fn recession_cone(&self) -> Polyhedron {
        Polyhedron {
            dim: self.dim,
            constraints: self
                .constraints
                .iter()
                .map(|h| Halfspace::le(h.coeffs.clone(), 0.0))
                .collect(),
        }
    }

    /// Re-embeds the polyhedron into a larger space: variable `j` becomes
    /// variable `offset + j`, all other coordinates unconstrained.
    ///
    /// # Panics
    ///
    /// Panics if `offset + self.dim() > new_dim`.
    pub fn embed(&self, new_dim: usize, offset: usize) -> Polyhedron {
        assert!(offset + self.dim <= new_dim, "embed: target too small");
        let constraints = self
            .constraints
            .iter()
            .map(|h| {
                let mut coeffs = vec![0.0; new_dim];
                coeffs[offset..offset + self.dim].copy_from_slice(&h.coeffs);
                Halfspace { coeffs, rhs: h.rhs, strict: h.strict }
            })
            .collect();
        Polyhedron { dim: new_dim, constraints }
    }

    /// Emptiness of the **closure**, decided by an LP feasibility probe
    /// on this thread's default solver session.
    pub fn is_empty(&self) -> bool {
        qava_lp::with_default_solver(|s| self.is_empty_in(s))
    }

    /// [`is_empty`](Self::is_empty) inside an explicit solver session, so
    /// a synthesis run's emptiness probes share its warm-start cache and
    /// statistics.
    pub fn is_empty_in(&self, solver: &mut LpSolver) -> bool {
        match solver.solve(&self.feasibility_lp()) {
            Ok(_) => false,
            Err(LpError::Infeasible) => true,
            // A cancelled racer must not panic its worker: answer
            // conservatively (keep the region) — the run is being wound
            // down and its next real solve surfaces the cancellation.
            Err(LpError::Cancelled) => false,
            Err(e) => panic!("feasibility probe failed unexpectedly: {e}"),
        }
    }

    /// Returns a point of the closure, or `None` when empty.
    pub fn any_point(&self) -> Option<Vec<f64>> {
        qava_lp::with_default_solver(|s| self.any_point_in(s))
    }

    /// [`any_point`](Self::any_point) inside an explicit solver session.
    pub fn any_point_in(&self, solver: &mut LpSolver) -> Option<Vec<f64>> {
        solver.solve(&self.feasibility_lp()).ok().map(|s| s.values()[..self.dim].to_vec())
    }

    /// Returns a point with slack at least `margin` on every constraint, or
    /// `None` when no such point exists. Used to detect full-dimensional
    /// overlap between transition guards.
    pub fn interior_point(&self, margin: f64) -> Option<Vec<f64>> {
        qava_lp::with_default_solver(|s| self.interior_point_in(margin, s))
    }

    /// [`interior_point`](Self::interior_point) inside an explicit solver
    /// session.
    pub fn interior_point_in(&self, margin: f64, solver: &mut LpSolver) -> Option<Vec<f64>> {
        let mut lp = LpBuilder::new();
        let vars: Vec<_> = (0..self.dim).map(|j| lp.add_var(format!("x{j}"))).collect();
        let t = lp.add_var("slackness");
        for h in &self.constraints {
            let mut e = LinExpr::new();
            for (j, &c) in h.coeffs.iter().enumerate() {
                e = e.term(vars[j], c);
            }
            e = e.term(t, 1.0);
            lp.constrain(e, Cmp::Le, h.rhs);
        }
        // Maximize the common slack, capped so the LP stays bounded.
        lp.constrain(LinExpr::var(t, 1.0), Cmp::Le, 1.0);
        lp.maximize(LinExpr::var(t, 1.0));
        let sol = solver.solve(&lp).ok()?;
        if sol.value(t) >= margin {
            Some(vars.iter().map(|&v| sol.value(v)).collect())
        } else {
            None
        }
    }

    /// Checks the implication `closure(self) ⊆ {x | h}` by maximizing the
    /// violated direction with an LP. Empty polyhedra imply everything.
    pub fn implies(&self, h: &Halfspace) -> bool {
        qava_lp::with_default_solver(|s| self.implies_in(h, s))
    }

    /// [`implies`](Self::implies) inside an explicit solver session.
    pub fn implies_in(&self, h: &Halfspace, solver: &mut LpSolver) -> bool {
        let mut lp = LpBuilder::new();
        let vars: Vec<_> = (0..self.dim).map(|j| lp.add_var(format!("x{j}"))).collect();
        for c in &self.constraints {
            let mut e = LinExpr::new();
            for (j, &v) in c.coeffs.iter().enumerate() {
                e = e.term(vars[j], v);
            }
            lp.constrain(e, Cmp::Le, c.rhs);
        }
        let mut obj = LinExpr::new();
        for (j, &v) in h.coeffs.iter().enumerate() {
            obj = obj.term(vars[j], v);
        }
        lp.maximize(obj);
        match solver.solve(&lp) {
            Ok(sol) => sol.objective <= h.rhs + 1e-7,
            Err(LpError::Infeasible) => true,
            Err(LpError::Unbounded) => false,
            // Cancelled racer: answer conservatively ("not implied") and
            // let the caller's next solve report the cancellation.
            Err(LpError::Cancelled) => false,
            Err(e) => panic!("implication probe failed unexpectedly: {e}"),
        }
    }

    /// Enumerates vertices, extreme rays, and lineality basis via the double
    /// description method on the homogenization
    /// `{(x, λ) | A·x − b·λ ≤ 0, −λ ≤ 0}`.
    pub fn generators(&self) -> Generators {
        let hom_dim = self.dim + 1;
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.constraints.len() + 1);
        for h in &self.constraints {
            let mut r = h.coeffs.clone();
            r.push(-h.rhs);
            rows.push(r);
        }
        let mut lam = vec![0.0; hom_dim];
        lam[self.dim] = -1.0;
        rows.push(lam);

        let cone = dd::cone_generators(&rows, hom_dim);

        let mut out = Generators::default();
        for line in cone.lines {
            debug_assert!(line[self.dim].abs() <= 1e-6, "line escaped λ ≥ 0");
            out.lines.push(line[..self.dim].to_vec());
        }
        for ray in cone.rays {
            let lambda = ray[self.dim];
            if lambda > 1e-7 {
                out.vertices.push(ray[..self.dim].iter().map(|v| v / lambda).collect());
            } else {
                let r = ray[..self.dim].to_vec();
                if !vecops::is_zero(&r, EPS) {
                    out.rays.push(r);
                }
            }
        }
        out
    }

    /// The Minkowski decomposition `P = Q + C` of Theorem 5.3: the vertex set
    /// generating the polytope `Q` and the generator description of the
    /// recession cone `C = {x | A·x ≤ 0}`.
    ///
    /// Returns `None` when the polyhedron is empty.
    pub fn minkowski_decompose(&self) -> Option<(Vec<Vec<f64>>, ConeGenerators)> {
        let g = self.generators();
        if g.vertices.is_empty() {
            // A nonempty closed polyhedron always has a λ>0 generator in its
            // homogenization, so no vertices means empty.
            return None;
        }
        Some((g.vertices, ConeGenerators { rays: g.rays, lines: g.lines }))
    }

    fn feasibility_lp(&self) -> LpBuilder {
        let mut lp = LpBuilder::new();
        let vars: Vec<_> = (0..self.dim).map(|j| lp.add_var(format!("x{j}"))).collect();
        for h in &self.constraints {
            let mut e = LinExpr::new();
            for (j, &c) in h.coeffs.iter().enumerate() {
                e = e.term(vars[j], c);
            }
            lp.constrain(e, Cmp::Le, h.rhs);
        }
        lp
    }
}

impl std::fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "true");
        }
        for (i, h) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            let mut first = true;
            for (j, &c) in h.coeffs.iter().enumerate() {
                if c != 0.0 {
                    if first {
                        write!(f, "{c}·x{j}")?;
                        first = false;
                    } else if c < 0.0 {
                        write!(f, " - {}·x{j}", -c)?;
                    } else {
                        write!(f, " + {c}·x{j}")?;
                    }
                }
            }
            if first {
                write!(f, "0")?;
            }
            write!(f, " {} {}", if h.strict { "<" } else { "≤" }, h.rhs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box2d(lo: f64, hi: f64) -> Polyhedron {
        Polyhedron::from_constraints(
            2,
            vec![
                Halfspace::le(vec![1.0, 0.0], hi),
                Halfspace::le(vec![-1.0, 0.0], -lo),
                Halfspace::le(vec![0.0, 1.0], hi),
                Halfspace::le(vec![0.0, -1.0], -lo),
            ],
        )
    }

    #[test]
    fn box_has_four_vertices() {
        let g = box2d(0.0, 1.0).generators();
        assert_eq!(g.vertices.len(), 4);
        assert!(g.rays.is_empty());
        assert!(g.lines.is_empty());
        for v in &g.vertices {
            assert!(v.iter().all(|&c| (c - 0.0).abs() < 1e-9 || (c - 1.0).abs() < 1e-9));
        }
    }

    #[test]
    fn quadrant_is_cone_with_apex_vertex() {
        // x >= 1, y >= 2 is a translated quadrant.
        let p = Polyhedron::from_constraints(
            2,
            vec![Halfspace::ge(vec![1.0, 0.0], 1.0), Halfspace::ge(vec![0.0, 1.0], 2.0)],
        );
        let g = p.generators();
        assert_eq!(g.vertices.len(), 1);
        assert!((g.vertices[0][0] - 1.0).abs() < 1e-9);
        assert!((g.vertices[0][1] - 2.0).abs() < 1e-9);
        assert_eq!(g.rays.len(), 2);
        assert!(g.lines.is_empty());
    }

    #[test]
    fn halfplane_has_lineality() {
        // x <= 3 in 2D: one representative point, one ray (-x), one line (y).
        let p = Polyhedron::from_constraints(2, vec![Halfspace::le(vec![1.0, 0.0], 3.0)]);
        let g = p.generators();
        assert_eq!(g.lines.len(), 1);
        assert!(g.lines[0][0].abs() < 1e-9, "lineality is the y-axis");
        assert_eq!(g.rays.len(), 1);
        assert!(g.rays[0][0] < 0.0, "recession along -x");
        assert_eq!(g.vertices.len(), 1);
        assert!((g.vertices[0][0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_polyhedron_detected() {
        let p = Polyhedron::from_constraints(
            1,
            vec![Halfspace::le(vec![1.0], 0.0), Halfspace::ge(vec![1.0], 1.0)],
        );
        assert!(p.is_empty());
        assert!(p.minkowski_decompose().is_none());
        assert!(p.generators().is_empty());
    }

    #[test]
    fn universe_is_all_lines() {
        let g = Polyhedron::universe(3).generators();
        assert_eq!(g.lines.len(), 3);
        assert_eq!(g.vertices.len(), 1, "a representative point");
        assert!(g.rays.is_empty());
    }

    #[test]
    fn implies_works() {
        let p = box2d(0.0, 1.0);
        assert!(p.implies(&Halfspace::le(vec![1.0, 1.0], 2.0)));
        assert!(p.implies(&Halfspace::le(vec![1.0, 1.0], 2.5)));
        assert!(!p.implies(&Halfspace::le(vec![1.0, 1.0], 1.5)));
    }

    #[test]
    fn empty_implies_everything() {
        let p = Polyhedron::from_constraints(
            1,
            vec![Halfspace::le(vec![1.0], -1.0), Halfspace::ge(vec![1.0], 1.0)],
        );
        assert!(p.implies(&Halfspace::le(vec![1.0], -100.0)));
    }

    #[test]
    fn interior_point_respects_margin() {
        let p = box2d(0.0, 1.0);
        let x = p.interior_point(0.1).expect("unit box has interior");
        assert!(p.contains(&x, 0.0));
        // Degenerate strip x = 0 has no interior.
        let strip = Polyhedron::from_constraints(
            2,
            vec![Halfspace::le(vec![1.0, 0.0], 0.0), Halfspace::ge(vec![1.0, 0.0], 0.0)],
        );
        assert!(strip.interior_point(0.01).is_none());
    }

    #[test]
    fn strict_membership() {
        let h = Halfspace::lt(vec![1.0], 1.0);
        assert!(h.satisfied_by(&[0.5], 1e-9));
        assert!(!h.satisfied_by(&[1.0], 1e-9));
        let closed = Halfspace::le(vec![1.0], 1.0);
        assert!(closed.satisfied_by(&[1.0], 1e-9));
    }

    #[test]
    fn embed_shifts_coordinates() {
        let p = Polyhedron::from_constraints(1, vec![Halfspace::le(vec![2.0], 4.0)]);
        let e = p.embed(3, 1);
        assert_eq!(e.dim(), 3);
        assert!(e.contains(&[100.0, 2.0, -50.0], 1e-9));
        assert!(!e.contains(&[0.0, 3.0, 0.0], 1e-9));
    }

    #[test]
    fn minkowski_decomposition_of_race_guard() {
        // The guard of the tortoise-hare loop: x <= 99 ∧ y <= 99.
        let p = Polyhedron::from_constraints(
            2,
            vec![Halfspace::le(vec![1.0, 0.0], 99.0), Halfspace::le(vec![0.0, 1.0], 99.0)],
        );
        let (vertices, cone) = p.minkowski_decompose().unwrap();
        assert_eq!(vertices.len(), 1);
        assert!((vertices[0][0] - 99.0).abs() < 1e-9);
        assert!((vertices[0][1] - 99.0).abs() < 1e-9);
        assert_eq!(cone.rays.len(), 2, "recession cone is the negative quadrant");
        for r in &cone.rays {
            assert!(r[0] <= 1e-9 && r[1] <= 1e-9);
        }
    }

    #[test]
    fn recession_cone_zeroes_rhs() {
        let p = box2d(0.0, 5.0);
        let c = p.recession_cone();
        assert!(c.contains(&[0.0, 0.0], 1e-9));
        assert!(!c.contains(&[1.0, 0.0], 1e-9), "box recession cone is {{0}}");
    }

    #[test]
    fn simplex_generators() {
        // 3-simplex x,y,z >= 0, x+y+z <= 1: 4 vertices.
        let p = Polyhedron::from_constraints(
            3,
            vec![
                Halfspace::ge(vec![1.0, 0.0, 0.0], 0.0),
                Halfspace::ge(vec![0.0, 1.0, 0.0], 0.0),
                Halfspace::ge(vec![0.0, 0.0, 1.0], 0.0),
                Halfspace::le(vec![1.0, 1.0, 1.0], 1.0),
            ],
        );
        let g = p.generators();
        assert_eq!(g.vertices.len(), 4);
        assert!(g.rays.is_empty());
        assert!(g.lines.is_empty());
    }
}
