#![warn(missing_docs)]

//! Monte-Carlo estimation of assertion-violation probabilities.
//!
//! The paper's algorithms produce *certified* bounds; this crate produces
//! *empirical* estimates by running the PTS process many times. The test
//! suite uses it as ground truth: a synthesized upper bound must lie above
//! the upper end of the confidence interval, a lower bound below its lower
//! end.
//!
//! # Examples
//!
//! ```
//! use qava_pts::{AffineUpdate, Fork, PtsBuilder};
//! use qava_polyhedra::{Halfspace, Polyhedron};
//! use qava_sim::Simulator;
//!
//! // A coin flip: heads -> violation, tails -> termination.
//! let mut b = PtsBuilder::new();
//! b.add_var("x");
//! let start = b.add_location("start");
//! b.set_initial(start, vec![0.0]);
//! b.add_transition(start, Polyhedron::universe(1), vec![
//!     Fork::new(b.failure_location(), 0.5, AffineUpdate::identity(1)),
//!     Fork::new(b.terminal_location(), 0.5, AffineUpdate::identity(1)),
//! ]);
//! let pts = b.finish()?;
//! let est = Simulator::new(42).estimate_violation(&pts, 20_000, 1_000);
//! assert!((est.probability - 0.5).abs() < 0.02);
//! # Ok::<(), qava_pts::PtsError>(())
//! ```

use qava_pts::{Pts, State, StepOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Outcome of a single trial run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// Reached `ℓ_t`.
    Terminated,
    /// Reached `ℓ_f`.
    Violated,
    /// Neither absorbing location reached within the step budget.
    TimedOut,
    /// No guard applied at some state (incomplete PTS).
    Stuck,
}

/// An empirical violation-probability estimate with a normal-approximation
/// confidence interval.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Number of trials run.
    pub trials: usize,
    /// Trials that ended in `ℓ_f`.
    pub violations: usize,
    /// Trials that ran out of steps (counted in neither direction; a large
    /// value makes the estimate untrustworthy).
    pub timeouts: usize,
    /// Trials that got stuck (PTS completeness violation).
    pub stuck: usize,
    /// Point estimate `violations / trials`.
    pub probability: f64,
    /// Half-width of the 99% normal-approximation confidence interval.
    pub ci_half_width: f64,
}

impl Estimate {
    /// Upper end of the 99% confidence interval, clamped to `[0, 1]`;
    /// timed-out trials are counted as potential violations so the interval
    /// stays conservative.
    pub fn upper_ci(&self) -> f64 {
        let p_max = (self.violations + self.timeouts) as f64 / self.trials as f64;
        (p_max + self.ci_half_width).min(1.0)
    }

    /// Lower end of the 99% confidence interval, clamped to `[0, 1]`.
    pub fn lower_ci(&self) -> f64 {
        (self.probability - self.ci_half_width).max(0.0)
    }
}

/// A seeded Monte-Carlo runner.
#[derive(Debug)]
pub struct Simulator {
    rng: StdRng,
}

impl Simulator {
    /// Creates a simulator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Simulator { rng: StdRng::seed_from_u64(seed) }
    }

    /// Runs one trial from the initial state, up to `max_steps` steps.
    pub fn run_trial(&mut self, pts: &Pts, max_steps: usize) -> TrialOutcome {
        let mut state = pts.initial_state();
        for _ in 0..max_steps {
            if state.loc == pts.terminal_location() {
                return TrialOutcome::Terminated;
            }
            if state.loc == pts.failure_location() {
                return TrialOutcome::Violated;
            }
            match pts.step(&state, &mut self.rng) {
                StepOutcome::Moved(next) => state = next,
                StepOutcome::Absorbed => unreachable!("absorbing handled above"),
                StepOutcome::Stuck => return TrialOutcome::Stuck,
            }
        }
        match state.loc {
            l if l == pts.terminal_location() => TrialOutcome::Terminated,
            l if l == pts.failure_location() => TrialOutcome::Violated,
            _ => TrialOutcome::TimedOut,
        }
    }

    /// Runs one trial from an explicit state (used by the value-iteration
    /// cross-checks).
    pub fn run_trial_from(&mut self, pts: &Pts, start: State, max_steps: usize) -> TrialOutcome {
        let mut state = start;
        for _ in 0..max_steps {
            if state.loc == pts.terminal_location() {
                return TrialOutcome::Terminated;
            }
            if state.loc == pts.failure_location() {
                return TrialOutcome::Violated;
            }
            match pts.step(&state, &mut self.rng) {
                StepOutcome::Moved(next) => state = next,
                StepOutcome::Absorbed => unreachable!("absorbing handled above"),
                StepOutcome::Stuck => return TrialOutcome::Stuck,
            }
        }
        TrialOutcome::TimedOut
    }

    /// Estimates the violation probability over `trials` runs.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn estimate_violation(&mut self, pts: &Pts, trials: usize, max_steps: usize) -> Estimate {
        assert!(trials > 0, "at least one trial required");
        let mut violations = 0usize;
        let mut timeouts = 0usize;
        let mut stuck = 0usize;
        for _ in 0..trials {
            match self.run_trial(pts, max_steps) {
                TrialOutcome::Violated => violations += 1,
                TrialOutcome::TimedOut => timeouts += 1,
                TrialOutcome::Stuck => stuck += 1,
                TrialOutcome::Terminated => {}
            }
        }
        let p = violations as f64 / trials as f64;
        // 99% normal-approximation CI (z = 2.576) with a 1/n slack for the
        // degenerate p ∈ {0, 1} cases.
        let half = 2.576 * (p * (1.0 - p) / trials as f64).sqrt() + 1.0 / trials as f64;
        Estimate {
            trials,
            violations,
            timeouts,
            stuck,
            probability: p,
            ci_half_width: half,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qava_pts::{AffineUpdate, Distribution, Fork, PtsBuilder};
    use qava_polyhedra::{Halfspace, Polyhedron};

    /// Fig. 2's asymmetric walk with time bound: x: 0→100 with p=3/4 up;
    /// violation iff more than `tmax` iterations elapse.
    fn rdwalk(tmax: f64) -> Pts {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        b.add_var("t");
        let head = b.add_location("head");
        b.set_initial(head, vec![0.0, 0.0]);
        let step = AffineUpdate::identity(2)
            .with_offset(vec![0.0, 1.0])
            .with_sample(Distribution::bernoulli(0.75, -1.0, 1.0), vec![1.0, 0.0]);
        b.add_transition(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 99.0), Halfspace::le(vec![0.0, 1.0], tmax)],
            ),
            vec![Fork::new(head, 1.0, step)],
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::ge(vec![0.0, 1.0], tmax + 1.0)],
            ),
            vec![Fork::new(b.failure_location(), 1.0, AffineUpdate::identity(2))],
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::ge(vec![1.0, 0.0], 100.0), Halfspace::le(vec![0.0, 1.0], tmax)],
            ),
            vec![Fork::new(b.terminal_location(), 1.0, AffineUpdate::identity(2))],
        );
        b.finish().unwrap()
    }

    #[test]
    fn tight_deadline_often_violated() {
        // 100 net-forward steps need ≥ 100 iterations; a 110-step budget is
        // tight (needs ≥ 195 on average), so violation is overwhelmingly
        // likely.
        let pts = rdwalk(110.0);
        let est = Simulator::new(1).estimate_violation(&pts, 2_000, 5_000);
        assert!(est.probability > 0.99, "got {}", est.probability);
        assert_eq!(est.stuck, 0);
        assert_eq!(est.timeouts, 0);
    }

    #[test]
    fn generous_deadline_rarely_violated() {
        let pts = rdwalk(400.0);
        let est = Simulator::new(2).estimate_violation(&pts, 2_000, 5_000);
        assert!(est.probability < 0.01, "got {}", est.probability);
    }

    #[test]
    fn ci_brackets_coin() {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let start = b.add_location("start");
        b.set_initial(start, vec![0.0]);
        b.add_transition(
            start,
            Polyhedron::universe(1),
            vec![
                Fork::new(b.failure_location(), 0.3, AffineUpdate::identity(1)),
                Fork::new(b.terminal_location(), 0.7, AffineUpdate::identity(1)),
            ],
        );
        let pts = b.finish().unwrap();
        let est = Simulator::new(3).estimate_violation(&pts, 50_000, 10);
        assert!(est.lower_ci() <= 0.3 && 0.3 <= est.upper_ci());
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = rdwalk(150.0);
        let a = Simulator::new(9).estimate_violation(&pts, 500, 2_000);
        let b = Simulator::new(9).estimate_violation(&pts, 500, 2_000);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn timeout_counted() {
        // No exit transitions: always times out.
        let mut b = PtsBuilder::new();
        b.add_var("x");
        let head = b.add_location("head");
        b.set_initial(head, vec![0.0]);
        b.add_transition(
            head,
            Polyhedron::universe(1),
            vec![Fork::new(head, 1.0, AffineUpdate::identity(1))],
        );
        let pts = b.finish().unwrap();
        let est = Simulator::new(4).estimate_violation(&pts, 10, 50);
        assert_eq!(est.timeouts, 10);
        assert!(est.upper_ci() >= 1.0 - 1e-9, "timeouts keep the CI conservative");
    }
}
