//! Statistical behavior of the Monte-Carlo estimator: coverage of the
//! confidence interval, seed determinism, timeout and stuck accounting.

use qava_sim::{Estimate, Simulator, TrialOutcome};
use qava_pts::{AffineUpdate, Fork, Pts, PtsBuilder};
use qava_polyhedra::{Halfspace, Polyhedron};

/// A one-shot coin PTS violating with probability `p`.
fn coin(p: f64) -> Pts {
    let mut b = PtsBuilder::new();
    b.add_var("x");
    let l = b.add_location("flip");
    b.set_initial(l, vec![0.0]);
    b.add_transition(
        l,
        Polyhedron::universe(1),
        vec![
            Fork::new(b.failure_location(), p, AffineUpdate::identity(1)),
            Fork::new(b.terminal_location(), 1.0 - p, AffineUpdate::identity(1)),
        ],
    );
    b.finish().unwrap()
}

/// An infinite counter that never reaches an absorbing location.
fn diverging() -> Pts {
    let mut b = PtsBuilder::new();
    b.add_var("x");
    let l = b.add_location("spin");
    b.set_initial(l, vec![0.0]);
    b.add_transition(
        l,
        Polyhedron::universe(1),
        vec![Fork::new(l, 1.0, AffineUpdate::increment(1, 0, 1.0))],
    );
    b.finish().unwrap()
}

/// A PTS with a guard gap: stuck for x ≥ 10.
fn incomplete() -> Pts {
    let mut b = PtsBuilder::new();
    b.add_var("x");
    let l = b.add_location("gap");
    b.set_initial(l, vec![0.0]);
    b.add_transition(
        l,
        Polyhedron::from_constraints(1, vec![Halfspace::le(vec![1.0], 9.0)]),
        vec![Fork::new(l, 1.0, AffineUpdate::increment(1, 0, 1.0))],
    );
    b.finish().unwrap()
}

#[test]
fn ci_covers_true_coin_probability() {
    for (seed, p) in [(1u64, 0.1), (2, 0.5), (3, 0.93)] {
        let est = Simulator::new(seed).estimate_violation(&coin(p), 30_000, 10);
        assert!(
            (est.probability - p).abs() <= est.ci_half_width,
            "p = {p}: estimate {} ± {} misses",
            est.probability,
            est.ci_half_width
        );
    }
}

#[test]
fn same_seed_same_estimate() {
    let a = Simulator::new(77).estimate_violation(&coin(0.3), 5_000, 10);
    let b = Simulator::new(77).estimate_violation(&coin(0.3), 5_000, 10);
    assert_eq!(a.violations, b.violations);
    let c = Simulator::new(78).estimate_violation(&coin(0.3), 5_000, 10);
    assert_ne!(
        (a.violations, a.timeouts),
        (c.violations, usize::MAX),
        "different seed is a different run (sanity)"
    );
    let _ = c;
}

#[test]
fn diverging_runs_time_out() {
    let est = Simulator::new(0).estimate_violation(&diverging(), 50, 100);
    assert_eq!(est.timeouts, 50);
    assert_eq!(est.violations, 0);
    // Timeouts widen the conservative upper CI all the way to 1.
    assert!(est.upper_ci() >= 1.0 - 1e-12);
    assert_eq!(est.lower_ci(), 0.0);
}

#[test]
fn stuck_states_are_reported_not_hidden() {
    let mut sim = Simulator::new(0);
    assert_eq!(sim.run_trial(&incomplete(), 1_000), TrialOutcome::Stuck);
    let est = sim.estimate_violation(&incomplete(), 10, 1_000);
    assert_eq!(est.stuck, 10);
}

#[test]
fn zero_probability_estimate_keeps_positive_ci() {
    let est = Simulator::new(5).estimate_violation(&coin(1e-12), 1_000, 10);
    assert_eq!(est.probability, 0.0);
    assert!(est.ci_half_width > 0.0, "degenerate p = 0 must keep slack");
    assert!(est.upper_ci() > 0.0);
}

#[test]
fn run_trial_from_explicit_state() {
    let pts = coin(0.5);
    let mut sim = Simulator::new(0);
    // Starting directly at an absorbing location resolves immediately.
    let fail = qava_pts::State { loc: pts.failure_location(), vals: vec![0.0] };
    assert_eq!(sim.run_trial_from(&pts, fail, 10), TrialOutcome::Violated);
    let term = qava_pts::State { loc: pts.terminal_location(), vals: vec![0.0] };
    assert_eq!(sim.run_trial_from(&pts, term, 10), TrialOutcome::Terminated);
}

#[test]
fn estimate_fields_consistent() {
    let est: Estimate = Simulator::new(9).estimate_violation(&coin(0.4), 2_000, 10);
    assert_eq!(est.trials, 2_000);
    assert_eq!(est.violations + est.timeouts + est.stuck, est.violations);
    assert!((est.probability - est.violations as f64 / 2_000.0).abs() < 1e-15);
}
