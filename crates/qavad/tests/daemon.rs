//! End-to-end tests of the resident analysis service: a real daemon on
//! a real Unix socket, driven by real client connections.
//!
//! The heavyweight test is the conformance gate: the full 36-row suite
//! driven through the daemon must certify bit-identical bounds (1e-9 in
//! ln-space) to the in-process driver, a second daemon-mediated run
//! must hit the shared warm-start cache persistently, and a *restarted*
//! daemon reloading the spilled cache file must still start warm. The
//! cheap tests pin the failure modes: disconnect-cancellation freeing
//! the single analysis slot, deadline expiry winding down as cancelled,
//! corrupted cache files booting cold, and protocol-level rejection
//! keeping the connection usable.

use qava_core::suite::runner::{default_engines, run_rows_with, RowReport};
use qava_core::suite::{table1, table2, Benchmark};
use qava_lp::BackendChoice;
use qavad::client::{run_suite_via_daemon, AnalyzeSpec, Client, SUITE_INVARIANT_ITERS};
use qavad::json::Json;
use qavad::server::{Daemon, DaemonConfig};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A unique scratch directory per test (tests run in one process but on
/// different names).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qavad-test-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Boots a daemon on its own thread and waits until it accepts
/// connections. Returns the join handle; stop it with a `shutdown`
/// request.
fn boot(config: DaemonConfig) -> std::thread::JoinHandle<()> {
    let socket = config.socket.clone();
    let daemon = Daemon::bind(config).expect("bind daemon");
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(&socket) {
            Ok(mut client) => {
                client.hello().expect("hello");
                return handle;
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10))
            }
            Err(e) => panic!("daemon never came up on {}: {e}", socket.display()),
        }
    }
}

fn shutdown(socket: &Path, handle: std::thread::JoinHandle<()>) {
    Client::connect(socket).expect("connect for shutdown").shutdown().expect("shutdown");
    handle.join().expect("daemon thread");
}

fn suite_rows() -> Vec<Benchmark> {
    table1().into_iter().chain(table2()).collect()
}

/// Asserts two suite runs certified identical outcomes: same engines in
/// the same order, bounds within 1e-9 in ln-space, failures for
/// failures.
fn assert_conformant(daemon_side: &[RowReport], in_process: &[RowReport]) {
    assert_eq!(daemon_side.len(), in_process.len());
    for (d, p) in daemon_side.iter().zip(in_process) {
        assert_eq!(d.name, p.name, "row order must match");
        assert_eq!(d.runs.len(), p.runs.len(), "{}: run count", d.name);
        for (dr, pr) in d.runs.iter().zip(&p.runs) {
            assert_eq!(dr.engine, pr.engine, "{} ({}): engine", d.name, d.label);
            match (&dr.bound, &pr.bound) {
                (Ok(db), Ok(pb)) => assert!(
                    (db.ln() - pb.ln()).abs() <= 1e-9,
                    "{} ({}) / {}: daemon ln {} vs in-process ln {}",
                    d.name,
                    d.label,
                    dr.engine,
                    db.ln(),
                    pb.ln()
                ),
                (Err(_), Err(_)) => {}
                (daemon, local) => panic!(
                    "{} ({}) / {}: verdicts diverge (daemon {daemon:?}, in-process {local:?})",
                    d.name, d.label, dr.engine
                ),
            }
        }
    }
}

fn persistent_hits(client: &mut Client) -> usize {
    let stats = client.stats().expect("stats");
    stats
        .get("lp")
        .and_then(|lp| lp.get("persistent_warm_hits"))
        .and_then(Json::as_usize)
        .expect("stats carries lp.persistent_warm_hits")
}

/// The acceptance gate of the daemon: full-suite conformance, warm
/// cross-request cache hits on the second run, and restart warmth from
/// the spilled cache file.
#[test]
fn suite_over_daemon_is_conformant_and_warms_across_runs_and_restarts() {
    let dir = scratch("suite");
    let socket = dir.join("qavad.sock");
    let cache = dir.join("warm.cache");
    let rows = suite_rows();
    assert_eq!(rows.len(), 36);

    let reference =
        run_rows_with(&rows, |b| default_engines(b.direction).to_vec(), BackendChoice::default());

    let mut config = DaemonConfig::new(&socket);
    config.cache_file = Some(cache.clone());
    let handle = boot(config.clone());

    // Run 1 (cold daemon): every bound must already match in-process.
    let first = run_suite_via_daemon(&socket, &rows, false, None).expect("daemon suite run 1");
    assert_conformant(&first, &reference);

    // Run 2 (fresh clients, same daemon): the shared cache now carries
    // run 1's bases, so solves must start warm from the persistent
    // store — and the compile-once PTS store must be hitting.
    let second = run_suite_via_daemon(&socket, &rows, false, None).expect("daemon suite run 2");
    assert_conformant(&second, &reference);
    let mut client = Client::connect(&socket).expect("stats client");
    let hits_after_second = persistent_hits(&mut client);
    assert!(
        hits_after_second > 0,
        "second daemon-mediated run must hit the shared warm-start cache"
    );
    let stats = client.stats().expect("stats");
    let pts_hits = stats.get("pts_hits").and_then(Json::as_usize).unwrap_or(0);
    assert!(pts_hits > 0, "repeated rows must reuse compiled programs");
    drop(client);

    shutdown(&socket, handle);
    assert!(cache.exists(), "daemon must spill the warm cache on shutdown");

    // Restart: the new daemon reloads the spilled cache and its very
    // first solves of repeated patterns start warm.
    let restarted = Daemon::bind(config).expect("rebind with spilled cache");
    assert!(restarted.warm_entries() > 0, "restart must reload spilled bases");
    let handle = std::thread::spawn(move || restarted.run().expect("daemon run"));
    let mut client = loop {
        if let Ok(c) = Client::connect(&socket) {
            break c;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let b = &rows[0];
    let response = client
        .analyze(&AnalyzeSpec {
            id: 0,
            source: b.source,
            params: &b.params,
            engines: default_engines(b.direction).iter().map(|e| (*e).to_string()).collect(),
            race: false,
            deadline_ms: None,
            invariant_iters: SUITE_INVARIANT_ITERS,
            lp_backend: None,
        })
        .expect("analyze after restart");
    let reference_row = &reference[0];
    for (dr, pr) in response.runs.iter().zip(&reference_row.runs) {
        let (db, pb) = (dr.bound.as_ref().expect("certifies"), pr.bound.as_ref().expect("certifies"));
        assert!((db.ln() - pb.ln()).abs() <= 1e-9, "restarted daemon diverged");
    }
    let warm_hits: usize = response.runs.iter().map(|r| r.lp.persistent_warm_hits).sum();
    assert!(
        warm_hits > 0,
        "the first solve after a restart must warm-start from the reloaded cache"
    );
    drop(client);
    shutdown(&socket, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Racing through the daemon: same certified values, winner drawn from
/// the raced lineup.
#[test]
fn raced_rows_through_the_daemon_certify_in_process_values() {
    let dir = scratch("race");
    let socket = dir.join("qavad.sock");
    let handle = boot(DaemonConfig::new(&socket));
    // A couple of upper rows (race mode's interesting case: two engines
    // in the lineup) is enough — full-suite racing is covered by the
    // in-process race conformance tests.
    let rows: Vec<Benchmark> = suite_rows().into_iter().take(3).collect();
    let reference =
        run_rows_with(&rows, |b| default_engines(b.direction).to_vec(), BackendChoice::default());
    let raced = run_suite_via_daemon(&socket, &rows, true, None).expect("raced daemon suite");
    for (d, p) in raced.iter().zip(&reference) {
        assert_eq!(d.runs.len(), 1, "{}: race mode reports one run per row", d.name);
        let run = &d.runs[0];
        let won = run.bound.as_ref().expect("race certifies");
        assert!(!run.raced.is_empty(), "race run names its lineup");
        assert!(run.raced.contains(&run.engine), "winner comes from the lineup");
        let local = p
            .runs
            .iter()
            .find(|r| r.engine == run.engine)
            .expect("winner exists in sequential reference")
            .bound
            .as_ref()
            .expect("reference certifies");
        assert!(
            (won.ln() - local.ln()).abs() <= 1e-9,
            "{}: raced daemon bound diverges from that engine alone",
            d.name
        );
    }
    shutdown(&socket, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that vanishes mid-solve must cancel its analysis and free
/// the (only) analysis slot for the next request.
#[test]
fn disconnect_mid_solve_cancels_and_frees_the_worker() {
    let dir = scratch("disconnect");
    let socket = dir.join("qavad.sock");
    let mut config = DaemonConfig::new(&socket);
    config.max_inflight = 1;
    let handle = boot(config);

    // Pick a heavyweight row so the analysis is guaranteed to still be
    // in flight when the client hangs up.
    let rows = suite_rows();
    let heavy = rows.iter().find(|b| b.name == "3DWalk").expect("3DWalk row exists");
    let request = format!(
        "{{\"cmd\":\"analyze\",\"source\":{},\"engines\":[\"explinsyn\"],\"invariant_iters\":8,\"params\":{}}}\n",
        Json::Str(heavy.source.to_string()).render(),
        Json::Obj(heavy.params.iter().map(|(k, &v)| (k.clone(), Json::from_f64(v))).collect())
            .render(),
    );
    let mut vanishing = UnixStream::connect(&socket).expect("connect");
    vanishing.write_all(request.as_bytes()).expect("send analyze");
    std::thread::sleep(Duration::from_millis(100));
    drop(vanishing); // hang up without reading the response

    // With the only slot occupied by the abandoned analysis, this
    // request completes only once cancellation released the permit.
    let mut client = Client::connect(&socket).expect("second client");
    let quick = &rows[0];
    let response = client
        .analyze(&AnalyzeSpec {
            id: 1,
            source: quick.source,
            params: &quick.params,
            engines: vec!["hoeffding-linear".to_string()],
            race: false,
            deadline_ms: None,
            invariant_iters: SUITE_INVARIANT_ITERS,
            lp_backend: None,
        })
        .expect("analysis after an abandoned request");
    assert!(response.runs[0].bound.is_ok(), "follow-up analysis certifies");
    let stats = client.stats().expect("stats");
    assert!(
        stats.get("disconnect_cancels").and_then(Json::as_usize).unwrap_or(0) >= 1,
        "the monitor must have observed the disconnect and cancelled"
    );
    drop(client);
    shutdown(&socket, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deadline expiry winds the request down as cancelled instead of
/// blocking the daemon.
#[test]
fn deadline_expiry_reports_cancelled() {
    let dir = scratch("deadline");
    let socket = dir.join("qavad.sock");
    let handle = boot(DaemonConfig::new(&socket));
    let rows = suite_rows();
    let heavy = rows.iter().find(|b| b.name == "3DWalk").expect("3DWalk row exists");
    let mut client = Client::connect(&socket).expect("client");
    // hoeffding-linear does all its work through LpSolver solves, so the
    // deadline (enforced at solve boundaries) is guaranteed to trip;
    // explinsyn's convex phase only polls the cancel flag.
    let response = client
        .analyze(&AnalyzeSpec {
            id: 7,
            source: heavy.source,
            params: &heavy.params,
            engines: vec!["hoeffding-linear".to_string()],
            race: false,
            deadline_ms: Some(1),
            invariant_iters: SUITE_INVARIANT_ITERS,
            lp_backend: None,
        })
        .expect("deadline-bounded analyze still answers");
    let err = response.runs[0].bound.as_ref().expect_err("1ms is not enough to certify");
    assert!(err.contains("cancelled"), "deadline expiry surfaces as cancellation: {err}");
    drop(client);
    shutdown(&socket, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted cache file must never poison a daemon: it boots cold and
/// analyses still certify.
#[test]
fn corrupted_cache_file_boots_cold_and_solves_fine() {
    let dir = scratch("corrupt");
    let socket = dir.join("qavad.sock");
    let cache = dir.join("warm.cache");
    std::fs::write(&cache, b"QAVWARM\x01 definitely not a basis section").expect("write garbage");
    let mut config = DaemonConfig::new(&socket);
    config.cache_file = Some(cache);
    let daemon = Daemon::bind(config).expect("bind over garbage cache");
    assert_eq!(daemon.warm_entries(), 0, "garbage cache must read as cold, not crash");
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));
    let mut client = loop {
        if let Ok(c) = Client::connect(&socket) {
            break c;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let quick = &suite_rows()[0];
    let response = client
        .analyze(&AnalyzeSpec {
            id: 0,
            source: quick.source,
            params: &quick.params,
            engines: vec!["hoeffding-linear".to_string()],
            race: false,
            deadline_ms: None,
            invariant_iters: SUITE_INVARIANT_ITERS,
            lp_backend: None,
        })
        .expect("cold daemon analyzes");
    assert!(response.runs[0].bound.is_ok());
    drop(client);
    shutdown(&socket, handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Protocol failures cost one request, not the connection: garbage and
/// unknown commands are answered with `ok:false`, then the same
/// connection still serves real requests.
#[test]
fn protocol_errors_keep_the_connection_usable() {
    let dir = scratch("protocol");
    let socket = dir.join("qavad.sock");
    let handle = boot(DaemonConfig::new(&socket));
    let mut client = Client::connect(&socket).expect("client");

    let garbage = client.request(&Json::Str("not an object".to_string()));
    assert!(garbage.is_err(), "a non-object request is rejected");
    let unknown = client.request(&qavad::json::obj(vec![(
        "cmd",
        Json::Str("transmogrify".to_string()),
    )]));
    assert!(unknown.unwrap_err().contains("unknown cmd"));
    let no_engines = client.request(&qavad::json::obj(vec![
        ("cmd", Json::Str("analyze".to_string())),
        ("source", Json::Str("var x; while x > 0 { x := x - 1; }".to_string())),
    ]));
    assert!(no_engines.unwrap_err().contains("engines"));

    // Same connection, real request, still fine.
    client.hello().expect("connection survived the abuse");
    drop(client);
    shutdown(&socket, handle);
    let _ = std::fs::remove_dir_all(&dir);
}
