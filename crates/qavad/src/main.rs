//! The `qavad` binary: parse flags, bind the daemon, serve until a
//! `shutdown` request.

use qavad::server::{banner, Daemon, DaemonConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: qavad --socket PATH [options]

options:
  --socket PATH          Unix-domain socket to listen on (required)
  --cache-file PATH      persist the warm-start basis cache here; loaded
                         on startup (an unreadable file logs a warning
                         and starts cold), spilled after requests that
                         warmed it and on shutdown
  --cache-capacity N     LRU bound of the shared basis cache
                         (default 4096)
  --max-inflight N       concurrent analysis bound (default: the rayon
                         pool width)
  --lp-backend B         auto | sparse | dense | lu | lu-ft | lu-bg
                         (default auto; requests may override)

Clients speak newline-delimited JSON (see the qavad::protocol docs);
`qava --connect PATH` and `qava --suite --connect PATH` are the
first-party clients. Stop the daemon with a {\"cmd\":\"shutdown\"}
request.
";

fn parse_config(args: &[String]) -> Result<DaemonConfig, String> {
    let mut socket: Option<PathBuf> = None;
    let mut config = DaemonConfig::new("");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => socket = Some(it.next().ok_or("--socket needs a path")?.into()),
            "--cache-file" => {
                config.cache_file = Some(it.next().ok_or("--cache-file needs a path")?.into());
            }
            "--cache-capacity" => {
                let n = it.next().ok_or("--cache-capacity needs a count")?;
                config.cache_capacity =
                    n.parse().map_err(|_| format!("bad cache capacity `{n}`"))?;
            }
            "--max-inflight" => {
                let n = it.next().ok_or("--max-inflight needs a count")?;
                config.max_inflight =
                    n.parse().map_err(|_| format!("bad inflight bound `{n}`"))?;
            }
            "--lp-backend" => {
                let b = it
                    .next()
                    .ok_or("--lp-backend needs auto, sparse, dense, lu, lu-ft, or lu-bg")?;
                config.backend = b.parse()?;
            }
            "--help" | "-h" => return Err(String::new()),
            _ => return Err(format!("unknown flag `{a}`")),
        }
    }
    config.socket = socket.ok_or("--socket is required")?;
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&args) {
        Ok(config) => config,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };
    let daemon = match Daemon::bind(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("qavad: {e}");
            return ExitCode::from(1);
        }
    };
    println!("{}", banner(&daemon));
    match daemon.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qavad: {e}");
            ExitCode::from(1)
        }
    }
}
