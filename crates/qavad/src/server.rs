//! The resident analysis service: socket lifecycle, request admission,
//! per-connection workers, and the process-wide caches.
//!
//! # Architecture
//!
//! One [`Daemon`] owns the process state every request shares:
//!
//! * a **PTS store** — compiled programs keyed by a hash of
//!   `(source, params, invariant_iters)`, so a suite row is compiled and
//!   invariant-propagated once per daemon lifetime, not once per request;
//! * the **shared warm-start basis cache** ([`SharedBasisCache`]) —
//!   installed into every request's `LpSolver` sessions, spilled to the
//!   configured cache file whenever a request dirtied it, and reloaded
//!   on startup so warmth survives restarts;
//! * an **admission gate** bounding concurrent analyses to the rayon
//!   pool width: engine racing already fans each admitted request across
//!   the pool, so admitting more requests than workers would only add
//!   queueing *inside* the pool with worse tail latency — the gate
//!   queues excess requests at the boundary instead, where cancellation
//!   can still reject them cheaply;
//! * honest **process totals**: every request's per-run [`LpStats`]
//!   slices (which partition session totals — pinned by a qava-core
//!   concurrency test) are merged into certified/abandoned buckets.
//!
//! Each accepted connection gets a thread that reads one JSON-lines
//! request at a time. During an analysis the connection's socket is
//! watched by a small monitor: a client disconnect raises the request's
//! cancel flag, every racing engine observes it at its next LP-solve
//! boundary ([`qava_lp::LpError::Cancelled`]), and the admission permit
//! is released — an abandoned request frees its worker in bounded time
//! instead of running to completion for nobody.

use crate::json::{obj, parse, Json};
use crate::protocol::{
    engine_run_to_json, intern_name, lp_stats_to_json, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
use qava_core::engine::{race_with, AnalysisRequest, EngineRegistry};
use qava_core::suite::runner::EngineRun;
use qava_core::EngineError;
use qava_lp::{BackendChoice, LpSolver, LpStats, SharedBasisCache};
use qava_pts::Pts;
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How the daemon is wired up; see the field docs for defaults.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix-domain socket path to listen on. A stale socket file (left
    /// by a killed daemon) is removed; a *live* one is a bind error.
    pub socket: PathBuf,
    /// Where the shared warm-start cache spills; `None` keeps it
    /// memory-only (still shared across requests, lost on exit).
    pub cache_file: Option<PathBuf>,
    /// LRU bound of the shared cache.
    pub cache_capacity: usize,
    /// Concurrent-analysis bound; `0` means the rayon pool width.
    pub max_inflight: usize,
    /// Backend policy for request sessions unless a request overrides it
    /// with `"lp_backend"`.
    pub backend: BackendChoice,
}

impl DaemonConfig {
    /// A config with everything defaulted except the socket path.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            socket: socket.into(),
            cache_file: None,
            cache_capacity: qava_lp::DEFAULT_SHARED_CACHE_CAPACITY,
            max_inflight: 0,
            backend: BackendChoice::default(),
        }
    }
}

/// Counting semaphore bounding concurrent analyses (std has none; a
/// mutexed counter + condvar is exactly sufficient at request
/// granularity).
struct Gate {
    max: usize,
    inflight: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(max: usize) -> Gate {
        Gate { max: max.max(1), inflight: Mutex::new(0), freed: Condvar::new() }
    }

    fn acquire(&self) -> Permit<'_> {
        let mut n = self.inflight.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while *n >= self.max {
            n = self.freed.wait(n).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *n += 1;
        Permit { gate: self }
    }
}

/// RAII admission permit: dropping it (normal completion, error paths,
/// and unwinds alike) frees the slot and wakes one queued request.
struct Permit<'a> {
    gate: &'a Gate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut n =
            self.gate.inflight.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *n -= 1;
        self.gate.freed.notify_one();
    }
}

/// State shared by every connection thread.
struct Shared {
    config: DaemonConfig,
    registry: EngineRegistry,
    warm: Arc<SharedBasisCache>,
    pts_store: Mutex<HashMap<u64, Arc<Pts>>>,
    gate: Gate,
    /// Merged certified LP work across all completed requests.
    totals: Mutex<LpStats>,
    /// Merged cancelled-racer LP work (kept apart, like suite footers).
    abandoned: Mutex<LpStats>,
    requests: AtomicUsize,
    disconnect_cancels: AtomicUsize,
    pts_hits: AtomicUsize,
    pts_misses: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Spills the shared cache if a request dirtied it. Best-effort: a
    /// failed spill warns and the daemon keeps serving from memory.
    fn maybe_spill(&self) {
        let Some(path) = &self.config.cache_file else { return };
        if self.warm.take_dirty() == 0 {
            return;
        }
        if let Err(e) = self.warm.save(path) {
            eprintln!("qavad: warm-start cache spill to {} failed: {e}", path.display());
        }
    }
}

/// A bound, not-yet-serving daemon. Construction loads the persistent
/// cache and claims the socket; [`run`](Daemon::run) serves until a
/// `shutdown` request.
pub struct Daemon {
    shared: Arc<Shared>,
    listener: UnixListener,
}

impl Daemon {
    /// Loads the warm-start cache (corruption-tolerant: anything
    /// unreadable logs a warning and starts cold) and binds the socket.
    ///
    /// # Errors
    ///
    /// Socket errors: the path is un-bindable, or a live daemon already
    /// listens there.
    pub fn bind(config: DaemonConfig) -> std::io::Result<Daemon> {
        if config.socket.exists() {
            // Distinguish a live daemon from a stale file left by a
            // killed process: only the latter is ours to clean up.
            if UnixStream::connect(&config.socket).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a daemon is already listening on {}", config.socket.display()),
                ));
            }
            std::fs::remove_file(&config.socket)?;
        }
        let warm = Arc::new(match &config.cache_file {
            Some(path) => SharedBasisCache::load_or_cold(path, config.cache_capacity),
            None => SharedBasisCache::new(config.cache_capacity),
        });
        let listener = UnixListener::bind(&config.socket)?;
        let max_inflight = if config.max_inflight == 0 {
            rayon::current_num_threads()
        } else {
            config.max_inflight
        };
        Ok(Daemon {
            shared: Arc::new(Shared {
                gate: Gate::new(max_inflight),
                registry: EngineRegistry::with_builtins(),
                warm,
                pts_store: Mutex::new(HashMap::new()),
                totals: Mutex::new(LpStats::default()),
                abandoned: Mutex::new(LpStats::default()),
                requests: AtomicUsize::new(0),
                disconnect_cancels: AtomicUsize::new(0),
                pts_hits: AtomicUsize::new(0),
                pts_misses: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                config,
            }),
            listener,
        })
    }

    /// Number of bases the persistent cache started with (restart-warmth
    /// introspection for tests and logs).
    pub fn warm_entries(&self) -> usize {
        self.shared.warm.len()
    }

    /// Serves requests until a `shutdown` request arrives, then removes
    /// the socket file and returns. Connection threads are detached;
    /// connections still open at shutdown die with the process (or, in
    /// tests, when their client disconnects).
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let shared = self.shared.clone();
                    std::thread::spawn(move || serve_connection(&shared, stream));
                }
                Err(e) => eprintln!("qavad: accept failed: {e}"),
            }
        }
        self.shared.maybe_spill();
        let _ = std::fs::remove_file(&self.shared.config.socket);
        Ok(())
    }
}

/// Buffered line reader over a connection, with an explicit hand-back
/// buffer: bytes a [`DisconnectMonitor`] drained off the socket while
/// watching for departure (a pipelined next request) are appended via
/// [`hand_back`](LineReader::hand_back) and consumed before any further
/// socket reads, so no request byte is ever lost to monitoring.
struct LineReader {
    stream: UnixStream,
    pending: Vec<u8>,
}

impl LineReader {
    fn new(stream: UnixStream) -> LineReader {
        LineReader { stream, pending: Vec::new() }
    }

    /// Queues bytes the monitor read ahead. Ordering is sound because
    /// the monitor only runs while this reader is idle, and it always
    /// reads *later* bytes than anything already pending.
    fn hand_back(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
    }

    /// Reads one `\n`-terminated line with a hard size cap, treating
    /// read timeouts (a leftover `SO_RCVTIMEO` from the disconnect
    /// monitor on the shared file description) as retries, not errors.
    /// `Ok(None)` is EOF.
    fn read_line(&mut self, cap: usize) -> std::io::Result<Option<String>> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&self.pending[..pos]).into_owned();
                self.pending.drain(..=pos);
                return Ok(Some(line));
            }
            if self.pending.len() > cap {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("request line exceeds {cap} bytes"),
                ));
            }
            match self.stream.read(&mut chunk) {
                // EOF with a dangling unterminated fragment is still
                // EOF: a vanished client has no request to answer.
                Ok(0) => return Ok(None),
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn write_response(stream: &mut UnixStream, doc: &Json) -> std::io::Result<()> {
    let mut line = doc.render();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn error_response(id: Option<usize>, message: &str) -> Json {
    let mut pairs = vec![("ok", Json::Bool(false))];
    if let Some(id) = id {
        pairs.push(("id", Json::Num(id as f64)));
    }
    pairs.push(("error", Json::Str(message.to_string())));
    obj(pairs)
}

fn serve_connection(shared: &Arc<Shared>, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut writer = stream;
    let mut reader = LineReader::new(read_half);
    loop {
        // The disconnect monitor leaves a read timeout on the shared
        // file description; blocking request reads want none.
        let _ = writer.set_read_timeout(None);
        let line = match reader.read_line(MAX_LINE_BYTES) {
            Ok(Some(line)) => line,
            Ok(None) => return, // client hung up between requests
            Err(e) => {
                let _ = write_response(&mut writer, &error_response(None, &e.to_string()));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse(&line) {
            Ok(doc) => doc,
            Err(e) => {
                let msg = format!("malformed request: {e}");
                if write_response(&mut writer, &error_response(None, &msg)).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request.get("cmd").and_then(Json::as_str) {
            Some("hello") => hello_response(shared),
            Some("stats") => stats_response(shared),
            Some("analyze") => analyze(shared, &request, &mut reader),
            Some("shutdown") => {
                shared.maybe_spill();
                let _ = write_response(&mut writer, &obj(vec![("ok", Json::Bool(true))]));
                shared.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so `run` observes the flag.
                let _ = UnixStream::connect(&shared.config.socket);
                return;
            }
            Some(other) => error_response(None, &format!("unknown cmd \"{other}\"")),
            None => error_response(None, "request has no \"cmd\""),
        };
        if write_response(&mut writer, &response).is_err() {
            return; // client gone; nothing left to tell it
        }
    }
}

fn hello_response(shared: &Shared) -> Json {
    obj(vec![
        ("ok", Json::Bool(true)),
        ("server", Json::Str("qavad".to_string())),
        ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
        ("pid", Json::Num(f64::from(std::process::id()))),
        ("warm_entries", Json::Num(shared.warm.len() as f64)),
        (
            "cache_file",
            match &shared.config.cache_file {
                Some(p) => Json::Str(p.display().to_string()),
                None => Json::Null,
            },
        ),
    ])
}

fn stats_response(shared: &Shared) -> Json {
    obj(vec![
        ("ok", Json::Bool(true)),
        ("requests", Json::Num(shared.requests.load(Ordering::SeqCst) as f64)),
        (
            "disconnect_cancels",
            Json::Num(shared.disconnect_cancels.load(Ordering::SeqCst) as f64),
        ),
        ("pts_hits", Json::Num(shared.pts_hits.load(Ordering::SeqCst) as f64)),
        ("pts_misses", Json::Num(shared.pts_misses.load(Ordering::SeqCst) as f64)),
        ("warm_entries", Json::Num(shared.warm.len() as f64)),
        ("lp", lp_stats_to_json(&Shared::lock(&shared.totals))),
        ("abandoned", lp_stats_to_json(&Shared::lock(&shared.abandoned))),
        ("kernel", Json::Str(qava_lp::kernel_provenance())),
    ])
}

/// FNV-1a over everything that determines a compiled PTS.
fn pts_key(source: &str, params: &BTreeMap<String, f64>, invariant_iters: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(source.as_bytes());
    eat(&[0xff]);
    for (name, value) in params {
        eat(name.as_bytes());
        eat(&[0xfe]);
        eat(&value.to_bits().to_le_bytes());
    }
    eat(&[0xff]);
    eat(&(invariant_iters as u64).to_le_bytes());
    h
}

/// Compile-once store: requests for an already-seen
/// `(source, params, iters)` reuse the compiled, invariant-propagated
/// PTS. `Arc` because racing engines borrow the program concurrently
/// while other requests for the same program are admitted.
fn compile_cached(
    shared: &Shared,
    source: &str,
    params: &BTreeMap<String, f64>,
    invariant_iters: usize,
) -> Result<(Arc<Pts>, bool), String> {
    let key = pts_key(source, params, invariant_iters);
    if let Some(pts) = Shared::lock(&shared.pts_store).get(&key).cloned() {
        shared.pts_hits.fetch_add(1, Ordering::SeqCst);
        return Ok((pts, true));
    }
    shared.pts_misses.fetch_add(1, Ordering::SeqCst);
    let mut pts =
        qava_lang::compile(source, params).map_err(|e| format!("compile error: {e}"))?;
    if invariant_iters > 0 {
        qava_pts::propagate_invariants(&mut pts, invariant_iters);
    }
    let pts = Arc::new(pts);
    // A concurrent request may have compiled the same program; keeping
    // the first insert is fine (compilation is deterministic).
    Shared::lock(&shared.pts_store).entry(key).or_insert_with(|| pts.clone());
    Ok((pts, false))
}

/// Watches a connection for client departure while an analysis runs.
///
/// Short-timeout reads on a cloned handle: EOF (or a hard socket error)
/// means the client hung up → raise the request's cancel flag so every
/// racer winds down at its next LP boundary. Actual bytes are a
/// pipelined next request — stash them and hand them back to the
/// connection's [`LineReader`] when the analysis finishes (the monitor
/// is the *only* reader while it runs, so ordering is preserved).
struct DisconnectMonitor {
    done: Arc<AtomicBool>,
    stash: Arc<Mutex<Vec<u8>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl DisconnectMonitor {
    fn watch(stream: &UnixStream, cancel: Arc<AtomicBool>, shared: Arc<Shared>) -> Self {
        let done = Arc::new(AtomicBool::new(false));
        let stash = Arc::new(Mutex::new(Vec::new()));
        let Ok(mut read_half) = stream.try_clone() else {
            // No monitor: the analysis still runs, it just can't observe
            // a disconnect early.
            return DisconnectMonitor { done, stash, handle: None };
        };
        let flag = done.clone();
        let pending = stash.clone();
        let handle = std::thread::spawn(move || {
            let _ = read_half.set_read_timeout(Some(Duration::from_millis(25)));
            let mut chunk = [0u8; 4096];
            while !flag.load(Ordering::SeqCst) {
                match read_half.read(&mut chunk) {
                    Ok(0) => {
                        // EOF: the client is gone. Cancel and stop.
                        if !cancel.swap(true, Ordering::SeqCst) {
                            shared.disconnect_cancels.fetch_add(1, Ordering::SeqCst);
                        }
                        return;
                    }
                    Ok(n) => {
                        // A pipelined next request; keep it for later.
                        Shared::lock(&pending).extend_from_slice(&chunk[..n]);
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock
                                | std::io::ErrorKind::TimedOut
                                | std::io::ErrorKind::Interrupted
                        ) => {}
                    Err(_) => {
                        // A broken socket is a departure too.
                        if !cancel.swap(true, Ordering::SeqCst) {
                            shared.disconnect_cancels.fetch_add(1, Ordering::SeqCst);
                        }
                        return;
                    }
                }
            }
        });
        DisconnectMonitor { done, stash, handle: Some(handle) }
    }

    /// Stops watching and returns any read-ahead bytes, in order.
    fn finish(mut self) -> Vec<u8> {
        self.done.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        std::mem::take(&mut Shared::lock(&self.stash))
    }
}

fn analyze(shared: &Arc<Shared>, request: &Json, reader: &mut LineReader) -> Json {
    let id = request.get("id").and_then(Json::as_usize);
    shared.requests.fetch_add(1, Ordering::SeqCst);

    let Some(source) = request.get("source").and_then(Json::as_str) else {
        return error_response(id, "analyze request has no \"source\"");
    };
    let mut params = BTreeMap::new();
    if let Some(pairs) = request.get("params").and_then(Json::as_obj) {
        for (name, value) in pairs {
            let Some(v) = value.as_f64() else {
                return error_response(id, &format!("param \"{name}\" is not a number"));
            };
            params.insert(name.clone(), v);
        }
    }
    let engine_names: Vec<&'static str> = match request.get("engines").and_then(Json::as_arr) {
        Some(arr) if !arr.is_empty() => {
            let mut names = Vec::with_capacity(arr.len());
            for item in arr {
                match item.as_str() {
                    Some(name) => names.push(intern_name(name)),
                    None => return error_response(id, "\"engines\" must be strings"),
                }
            }
            names
        }
        _ => return error_response(id, "analyze request needs a non-empty \"engines\" list"),
    };
    let race = request.get("race").and_then(Json::as_bool).unwrap_or(false);
    let invariant_iters =
        request.get("invariant_iters").and_then(Json::as_usize).unwrap_or(0);
    let deadline = request
        .get("deadline_ms")
        .and_then(Json::as_usize)
        .map(|ms| Duration::from_millis(ms as u64));
    let backend = match request.get("lp_backend").and_then(Json::as_str) {
        None => shared.config.backend,
        Some(name) => {
            match BackendChoice::from_args(&["--lp-backend".to_string(), name.to_string()]) {
                Ok(Some(choice)) => choice,
                _ => return error_response(id, &format!("unknown lp backend \"{name}\"")),
            }
        }
    };

    // Compile (or fetch) before admission: the PTS store is cheap and
    // hot, and a compile error should not occupy an analysis slot.
    let (pts, pts_hit) = match compile_cached(shared, source, &params, invariant_iters) {
        Ok(pair) => pair,
        Err(e) => return error_response(id, &e),
    };

    // Admission: one permit per analysis, released on every exit path.
    let permit = shared.gate.acquire();
    let cancel = Arc::new(AtomicBool::new(false));
    let monitor = DisconnectMonitor::watch(&reader.stream, cancel.clone(), shared.clone());

    let runs = if race {
        run_race(shared, &pts, &engine_names, deadline, backend, &cancel)
    } else {
        run_sequential(shared, &pts, &engine_names, deadline, backend, &cancel)
    };
    reader.hand_back(&monitor.finish());
    drop(permit);

    // Fold this request's slices into the process totals (the slices
    // partition per-session work, so the totals stay honest under
    // concurrency) and spill the cache if the request warmed it.
    {
        let mut totals = Shared::lock(&shared.totals);
        for run in &runs {
            totals.merge(&run.lp);
        }
        let mut abandoned = Shared::lock(&shared.abandoned);
        for run in &runs {
            abandoned.merge(&run.abandoned);
        }
    }
    shared.maybe_spill();

    let cancelled = cancel.load(Ordering::SeqCst)
        && runs.iter().all(|r| r.bound.is_err());
    obj(vec![
        ("ok", Json::Bool(true)),
        ("id", Json::Num(id.unwrap_or(0) as f64)),
        ("pts_cache", Json::Str(if pts_hit { "hit" } else { "miss" }.to_string())),
        ("cancelled", Json::Bool(cancelled)),
        ("runs", Json::Arr(runs.iter().map(engine_run_to_json).collect())),
    ])
}

/// Sequential mode: each requested engine runs to completion in its own
/// session — the daemon-side mirror of the suite runner's sequential
/// driver, plus the request's cancel flag and the shared cache.
fn run_sequential(
    shared: &Shared,
    pts: &Pts,
    engine_names: &[&'static str],
    deadline: Option<Duration>,
    backend: BackendChoice,
    cancel: &Arc<AtomicBool>,
) -> Vec<EngineRun> {
    engine_names
        .iter()
        .map(|&name| match shared.registry.engine(name) {
            None => EngineRun {
                engine: name,
                bound: Err(format!("unknown engine `{name}`")),
                seconds: 0.0,
                lp: LpStats::default(),
                abandoned: LpStats::default(),
                raced: Vec::new(),
                fault: None,
            },
            Some(engine) => {
                let mut req = AnalysisRequest::new(pts, engine.direction());
                req.deadline = deadline;
                let mut solver = LpSolver::with_choice(backend);
                solver.set_cancel_flag(cancel.clone());
                solver.set_shared_cache(shared.warm.clone());
                let t0 = Instant::now();
                let report = engine.run(&req, &mut solver);
                EngineRun {
                    engine: name,
                    bound: report
                        .outcome
                        .as_ref()
                        .map(|c| c.bound)
                        .map_err(ToString::to_string),
                    seconds: t0.elapsed().as_secs_f64(),
                    lp: report.lp,
                    abandoned: LpStats::default(),
                    raced: Vec::new(),
                    fault: None,
                }
            }
        })
        .collect()
}

/// Race mode: the daemon-side mirror of the suite runner's race driver —
/// same winner/abandoned semantics, but with the request's cancel flag
/// wired through [`race_with`] (so a disconnect cancels the whole race)
/// and the shared cache installed into every racer's session.
fn run_race(
    shared: &Shared,
    pts: &Pts,
    engine_names: &[&'static str],
    deadline: Option<Duration>,
    backend: BackendChoice,
    cancel: &Arc<AtomicBool>,
) -> Vec<EngineRun> {
    if let Some(unknown) =
        engine_names.iter().find(|n| shared.registry.engine(n).is_none())
    {
        return vec![EngineRun {
            engine: "race",
            bound: Err(format!("unknown engine `{unknown}`")),
            seconds: 0.0,
            lp: LpStats::default(),
            abandoned: LpStats::default(),
            raced: engine_names.to_vec(),
            fault: None,
        }];
    }
    let lineup: Vec<_> =
        engine_names.iter().filter_map(|n| shared.registry.engine(n)).collect();
    let raced: Vec<&'static str> = lineup.iter().map(|e| e.name()).collect();
    // Direction of the race: the lineup's first engine (mixed-direction
    // lineups race the first direction; the rest are skipped, exactly as
    // `race` screens them).
    let mut req = AnalysisRequest::new(pts, lineup[0].direction());
    req.deadline = deadline;
    let warm = shared.warm.clone();
    let t0 = Instant::now();
    let outcome = race_with(&lineup, &req, backend, cancel.clone(), &move |solver| {
        solver.set_shared_cache(warm.clone())
    });
    let seconds = t0.elapsed().as_secs_f64();
    let run = match outcome.winner {
        Some(w) => {
            let report = &outcome.reports[w];
            EngineRun {
                engine: report.engine,
                bound: Ok(report.outcome.as_ref().expect("winner is certified").bound),
                seconds,
                lp: report.lp.clone(),
                abandoned: outcome.abandoned,
                raced,
                fault: None,
            }
        }
        None => {
            let msgs: Vec<String> = outcome
                .reports
                .iter()
                .filter(|r| !r.cancelled())
                .map(|r| {
                    format!(
                        "{}: {}",
                        r.engine,
                        r.outcome
                            .as_ref()
                            .err()
                            .map_or_else(|| "uncertified".to_string(), EngineError::to_string)
                    )
                })
                .collect();
            EngineRun {
                engine: "race",
                bound: Err(if msgs.is_empty() {
                    "cancelled".to_string()
                } else {
                    msgs.join("; ")
                }),
                seconds,
                lp: LpStats::default(),
                abandoned: outcome.abandoned,
                raced,
                fault: None,
            }
        }
    };
    vec![run]
}

/// Renders a one-line startup banner (the binary prints it; tests don't).
pub fn banner(daemon: &Daemon) -> String {
    format!(
        "qavad listening on {} (protocol {PROTOCOL_VERSION}, {} warm bases, \
         cache {}, {} analysis slots)",
        daemon.shared.config.socket.display(),
        daemon.warm_entries(),
        daemon
            .shared
            .config
            .cache_file
            .as_ref()
            .map_or_else(|| "in-memory".to_string(), |p| p.display().to_string()),
        daemon.shared.gate.max,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_bounds_inflight_and_releases_on_drop() {
        let gate = Arc::new(Gate::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let current = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (gate, peak, current) = (gate.clone(), peak.clone(), current.clone());
                s.spawn(move || {
                    let _permit = gate.acquire();
                    let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(5));
                    current.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate must bound concurrency");
        assert_eq!(*gate.inflight.lock().unwrap(), 0, "all permits returned");
    }

    #[test]
    fn pts_key_distinguishes_all_inputs() {
        let mut params = BTreeMap::new();
        params.insert("n".to_string(), 10.0);
        let base = pts_key("x := 1;", &params, 8);
        assert_eq!(base, pts_key("x := 1;", &params, 8), "deterministic");
        assert_ne!(base, pts_key("x := 2;", &params, 8));
        assert_ne!(base, pts_key("x := 1;", &params, 0));
        let mut other = params.clone();
        other.insert("k".to_string(), 1.0);
        assert_ne!(base, pts_key("x := 1;", &other, 8));
        let mut renamed = BTreeMap::new();
        renamed.insert("m".to_string(), 10.0);
        assert_ne!(base, pts_key("x := 1;", &renamed, 8));
    }

    #[test]
    fn direction_str_roundtrip() {
        use crate::protocol::{direction_str, parse_direction};
        for d in [qava_core::Direction::Upper, qava_core::Direction::Lower] {
            assert_eq!(parse_direction(direction_str(d)), Some(d));
        }
    }
}
