//! The `qavad` wire protocol: newline-delimited JSON over a Unix domain
//! socket, plus the [`LpStats`] and suite-report codecs shared by the
//! daemon, the `qava --connect` client, and `qava --suite --json`.
//!
//! # Protocol grammar (version 1)
//!
//! Every request is one JSON object on one line; every request gets
//! exactly one JSON object back on one line, in order. A connection may
//! pipeline any number of requests.
//!
//! ```text
//! request  := hello | analyze | stats | shutdown
//! hello    := {"cmd":"hello"}
//! analyze  := {"cmd":"analyze", "source":string,
//!              "id":int?,                  // echoed back, default 0
//!              "params":{name:number,…}?,  // frontend constants
//!              "engines":[string,…]?,      // default: direction lineup
//!              "race":bool?,               // default false (sequential)
//!              "deadline_ms":int?,         // per-request wall budget
//!              "invariant_iters":int?,     // propagation rounds, default 0
//!              "lp_backend":string?}       // default: daemon-wide policy
//! stats    := {"cmd":"stats"}
//! shutdown := {"cmd":"shutdown"}
//!
//! response := {"ok":true, …} | {"ok":false, "error":string, "id":int?}
//! ```
//!
//! An `analyze` response carries `"runs"`: one entry per engine in
//! sequential mode, exactly one (the race) in race mode. Each run has
//! `"engine"`, `"seconds"`, `"raced"` (race mode), `"lp"` and
//! `"abandoned"` ([`LpStats`] objects), and either `"ln_bound"` (the
//! certified bound in ln-space — the value `qava` prints) or `"error"`.
//! Bounds travel in ln-space only: converting through probability space
//! would round-trip 1e-300-scale numbers through denormals.
//!
//! Unknown request fields are ignored (forward compatibility); unknown
//! `"cmd"` values, malformed JSON, and oversized lines are answered with
//! `"ok":false` and the connection stays up — a client bug costs one
//! request, not the session.

use crate::json::{obj, Json};
use qava_core::suite::runner::{EngineRun, RowReport};
use qava_core::Direction;
use qava_lp::{BackendTally, LpStats};

/// Protocol version, exchanged in `hello` responses. Bump on any
/// incompatible change to the grammar above.
pub const PROTOCOL_VERSION: usize = 1;

/// Hard cap on one request line, bytes. Far above any suite row (the
/// largest benchmark source is ~2 KB) while bounding what a broken
/// client can make the daemon buffer.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Renders a [`Direction`] for the wire.
pub fn direction_str(d: Direction) -> &'static str {
    match d {
        Direction::Upper => "upper",
        Direction::Lower => "lower",
    }
}

/// Parses a wire direction.
pub fn parse_direction(s: &str) -> Option<Direction> {
    match s {
        "upper" => Some(Direction::Upper),
        "lower" => Some(Direction::Lower),
        _ => None,
    }
}

/// Serializes [`LpStats`] exhaustively: destructuring forces this codec
/// to decide about every new stats field at compile time, exactly like
/// [`LpStats::merge`].
pub fn lp_stats_to_json(stats: &LpStats) -> Json {
    let LpStats {
        solves,
        pivots,
        presolve_rows_removed,
        presolve_cols_removed,
        warm_start_hits,
        warm_start_misses,
        cache_evictions,
        persistent_warm_hits,
        watchdog_restarts,
        watchdog_singular,
        watchdog_infeasible,
        bland_retries,
        failovers,
        failover_recoveries,
        reopt_attempts,
        reopt_successes,
        accuracy_refactors,
        bg_interchanges,
        bg_max_growth,
        wall_seconds,
        backends,
    } = stats;
    let n = |v: usize| Json::Num(v as f64);
    obj(vec![
        ("solves", n(*solves)),
        ("pivots", n(*pivots)),
        ("presolve_rows_removed", n(*presolve_rows_removed)),
        ("presolve_cols_removed", n(*presolve_cols_removed)),
        ("warm_start_hits", n(*warm_start_hits)),
        ("warm_start_misses", n(*warm_start_misses)),
        ("cache_evictions", n(*cache_evictions)),
        ("persistent_warm_hits", n(*persistent_warm_hits)),
        ("watchdog_restarts", n(*watchdog_restarts)),
        ("watchdog_singular", n(*watchdog_singular)),
        ("watchdog_infeasible", n(*watchdog_infeasible)),
        ("bland_retries", n(*bland_retries)),
        ("failovers", n(*failovers)),
        ("failover_recoveries", n(*failover_recoveries)),
        ("reopt_attempts", n(*reopt_attempts)),
        ("reopt_successes", n(*reopt_successes)),
        ("accuracy_refactors", n(*accuracy_refactors)),
        ("bg_interchanges", n(*bg_interchanges)),
        ("bg_max_growth", Json::from_f64(*bg_max_growth)),
        ("wall_seconds", Json::from_f64(*wall_seconds)),
        (
            "backends",
            Json::Arr(
                backends
                    .iter()
                    .map(|t| {
                        obj(vec![
                            ("name", Json::Str(t.name.to_string())),
                            ("solves", n(t.solves)),
                            ("pivots", n(t.pivots)),
                            ("wall_seconds", Json::from_f64(t.wall_seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Interns a backend/engine name received off the wire. The live names
/// are a small closed set; an unrecognized one (a newer peer) is leaked
/// — bounded by the number of *distinct* names a connection can carry,
/// not by request volume.
pub fn intern_name(name: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "sparse",
        "dense",
        "lu",
        "lu-ft",
        "lu-bg",
        "hoeffding-linear",
        "azuma",
        "explinsyn",
        "polyrsm-quadratic",
        "explowsyn",
        "polylow",
        "race",
    ];
    KNOWN
        .iter()
        .find(|&&k| k == name)
        .copied()
        .unwrap_or_else(|| Box::leak(name.to_string().into_boxed_str()))
}

/// Deserializes [`LpStats`] (absent fields read as 0, so a newer daemon
/// talking to an older client degrades to partial stats, never an
/// error).
pub fn lp_stats_from_json(json: &Json) -> LpStats {
    let n = |key: &str| json.get(key).and_then(Json::as_usize).unwrap_or(0);
    let f = |key: &str| json.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let mut stats = LpStats {
        solves: n("solves"),
        pivots: n("pivots"),
        presolve_rows_removed: n("presolve_rows_removed"),
        presolve_cols_removed: n("presolve_cols_removed"),
        warm_start_hits: n("warm_start_hits"),
        warm_start_misses: n("warm_start_misses"),
        cache_evictions: n("cache_evictions"),
        persistent_warm_hits: n("persistent_warm_hits"),
        watchdog_restarts: n("watchdog_restarts"),
        watchdog_singular: n("watchdog_singular"),
        watchdog_infeasible: n("watchdog_infeasible"),
        bland_retries: n("bland_retries"),
        failovers: n("failovers"),
        failover_recoveries: n("failover_recoveries"),
        reopt_attempts: n("reopt_attempts"),
        reopt_successes: n("reopt_successes"),
        accuracy_refactors: n("accuracy_refactors"),
        bg_interchanges: n("bg_interchanges"),
        bg_max_growth: f("bg_max_growth"),
        wall_seconds: f("wall_seconds"),
        backends: Vec::new(),
    };
    if let Some(backends) = json.get("backends").and_then(Json::as_arr) {
        for t in backends {
            let Some(name) = t.get("name").and_then(Json::as_str) else { continue };
            stats.backends.push(BackendTally {
                name: intern_name(name),
                solves: t.get("solves").and_then(Json::as_usize).unwrap_or(0),
                pivots: t.get("pivots").and_then(Json::as_usize).unwrap_or(0),
                wall_seconds: t.get("wall_seconds").and_then(Json::as_f64).unwrap_or(0.0),
            });
        }
    }
    stats
}

/// Serializes one suite run (sequential engine outcome or race outcome).
pub fn engine_run_to_json(run: &EngineRun) -> Json {
    let mut pairs = vec![("engine", Json::Str(run.engine.to_string()))];
    match &run.bound {
        Ok(bound) => pairs.push(("ln_bound", Json::from_f64(bound.ln()))),
        Err(err) => pairs.push(("error", Json::Str(err.clone()))),
    }
    pairs.push(("seconds", Json::from_f64(run.seconds)));
    if !run.raced.is_empty() {
        pairs.push((
            "raced",
            Json::Arr(run.raced.iter().map(|e| Json::Str(e.to_string())).collect()),
        ));
    }
    if let Some(fault) = &run.fault {
        pairs.push(("fault", Json::Str(fault.clone())));
    }
    pairs.push(("lp", lp_stats_to_json(&run.lp)));
    pairs.push(("abandoned", lp_stats_to_json(&run.abandoned)));
    obj(pairs)
}

/// Deserializes one suite run.
pub fn engine_run_from_json(json: &Json) -> Result<EngineRun, String> {
    let engine =
        json.get("engine").and_then(Json::as_str).ok_or("run missing \"engine\"")?;
    let bound = match (json.get("ln_bound"), json.get("error")) {
        (Some(v), _) => {
            let ln = v.as_f64().ok_or("bad \"ln_bound\"")?;
            Ok(qava_core::LogProb::from_ln(ln))
        }
        (None, Some(e)) => Err(e.as_str().ok_or("bad \"error\"")?.to_string()),
        (None, None) => return Err("run has neither \"ln_bound\" nor \"error\"".to_string()),
    };
    Ok(EngineRun {
        engine: intern_name(engine),
        bound,
        seconds: json.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
        lp: json.get("lp").map(lp_stats_from_json).unwrap_or_default(),
        abandoned: json.get("abandoned").map(lp_stats_from_json).unwrap_or_default(),
        raced: json
            .get("raced")
            .and_then(Json::as_arr)
            .map(|a| a.iter().filter_map(Json::as_str).map(intern_name).collect())
            .unwrap_or_default(),
        fault: json.get("fault").and_then(Json::as_str).map(str::to_string),
    })
}

/// The machine-readable suite document behind `qava --suite --json`:
/// per-row results plus the two stats footers and kernel provenance.
/// This is what the daemon conformance tests diff against in-process
/// results, so both the daemon-mediated and the in-process suite paths
/// render through this one function.
pub fn suite_json(reports: &[RowReport], race: bool, backend: &str) -> Json {
    let runs: usize = reports.iter().map(|r| r.runs.len()).sum();
    let failures: usize = reports
        .iter()
        .flat_map(|r| &r.runs)
        .filter(|run| run.bound.is_err())
        .count();
    let rows = reports
        .iter()
        .map(|report| {
            obj(vec![
                ("row", Json::Num(report.row as f64)),
                ("name", Json::Str(report.name.to_string())),
                ("label", Json::Str(report.label.clone())),
                ("direction", Json::Str(direction_str(report.direction).to_string())),
                ("runs", Json::Arr(report.runs.iter().map(engine_run_to_json).collect())),
            ])
        })
        .collect();
    obj(vec![
        ("rows", Json::Num(reports.len() as f64)),
        ("runs", Json::Num(runs as f64)),
        ("failures", Json::Num(failures as f64)),
        ("race", Json::Bool(race)),
        ("backend", Json::Str(backend.to_string())),
        ("kernel", Json::Str(qava_lp::kernel_provenance())),
        ("lp", lp_stats_to_json(&qava_core::suite::runner::suite_lp_stats(reports))),
        (
            "abandoned",
            lp_stats_to_json(&qava_core::suite::runner::suite_abandoned_lp_stats(reports)),
        ),
        ("rows_detail", Json::Arr(rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_stats() -> LpStats {
        let mut stats = LpStats {
            solves: 36,
            pivots: 1200,
            warm_start_hits: 9,
            warm_start_misses: 27,
            persistent_warm_hits: 4,
            bg_max_growth: 1.75,
            wall_seconds: 0.125,
            ..LpStats::default()
        };
        stats.merge(&LpStats::default());
        stats.backends.push(BackendTally {
            name: "lu-ft",
            solves: 36,
            pivots: 1200,
            wall_seconds: 0.125,
        });
        stats
    }

    #[test]
    fn lp_stats_roundtrip_is_lossless() {
        let stats = sample_stats();
        let back = lp_stats_from_json(&parse(&lp_stats_to_json(&stats).render()).unwrap());
        assert_eq!(stats, back);
    }

    #[test]
    fn engine_run_roundtrip_preserves_ln_bounds_exactly() {
        let run = EngineRun {
            engine: "explinsyn",
            bound: Ok(qava_core::LogProb::from_ln(-694.127_834_509_2)),
            seconds: 0.75,
            lp: sample_stats(),
            abandoned: LpStats::default(),
            raced: vec!["hoeffding-linear", "explinsyn"],
            fault: None,
        };
        let back =
            engine_run_from_json(&parse(&engine_run_to_json(&run).render()).unwrap()).unwrap();
        assert_eq!(back.engine, "explinsyn");
        assert_eq!(back.bound.as_ref().unwrap().ln(), run.bound.as_ref().unwrap().ln());
        assert_eq!(back.raced, run.raced);
        assert_eq!(back.lp, run.lp);

        let failed = EngineRun { bound: Err("no RepRSM".to_string()), ..run };
        let back =
            engine_run_from_json(&parse(&engine_run_to_json(&failed).render()).unwrap()).unwrap();
        assert_eq!(back.bound.unwrap_err(), "no RepRSM");
    }

    #[test]
    fn intern_name_reuses_known_statics() {
        assert_eq!(intern_name("explinsyn"), "explinsyn");
        assert_eq!(intern_name("lu-ft"), "lu-ft");
        let leaked = intern_name("future-engine");
        assert_eq!(leaked, "future-engine");
    }
}
