//! The connecting side of the protocol: a blocking JSON-lines client
//! plus the suite driver behind `qava --suite --connect`.
//!
//! The suite driver fans the table rows over a small pool of
//! connections (one per worker thread) so a daemon-mediated suite run
//! exercises the daemon's admission gate and shared caches under real
//! concurrency, then reassembles [`RowReport`]s **in row order** — the
//! same invariant the in-process driver keeps — so the CLI prints and
//! the conformance tests diff daemon results with the exact same code
//! paths as in-process results.

use crate::json::{obj, parse, Json};
use crate::protocol::engine_run_from_json;
use qava_core::suite::runner::{default_engines, EngineRun, RowReport};
use qava_core::suite::Benchmark;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Invariant-propagation rounds the suite driver requests, matching
/// [`Benchmark::compile`] — the daemon must analyze the *same* PTS the
/// in-process driver does or the conformance diff is meaningless.
pub const SUITE_INVARIANT_ITERS: usize = 8;

/// One blocking connection to a daemon. Requests are answered in order;
/// dropping the client mid-request is how a caller abandons an analysis
/// (the daemon's disconnect monitor cancels it cooperatively).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

/// Decoded `analyze` response.
pub struct AnalyzeResponse {
    /// One entry per engine (sequential) or one race entry.
    pub runs: Vec<EngineRun>,
    /// Whether the daemon reused an already-compiled PTS.
    pub pts_cache_hit: bool,
    /// Whether the whole request was torn down by cancellation.
    pub cancelled: bool,
}

/// Everything an `analyze` request carries.
pub struct AnalyzeSpec<'a> {
    /// Echoed back in the response; useful when pipelining.
    pub id: usize,
    /// Program source in the qava language.
    pub source: &'a str,
    /// Frontend constants.
    pub params: &'a BTreeMap<String, f64>,
    /// Engine lineup (registry names); must be non-empty.
    pub engines: Vec<String>,
    /// Race the lineup instead of running it sequentially.
    pub race: bool,
    /// Per-request wall-clock budget.
    pub deadline_ms: Option<u64>,
    /// Invariant-propagation rounds applied after compilation.
    pub invariant_iters: usize,
    /// LP backend override (`None`: the daemon's policy).
    pub lp_backend: Option<String>,
}

impl Client {
    /// Connects to a daemon socket.
    ///
    /// # Errors
    ///
    /// The socket is absent, refuses, or cannot be cloned.
    pub fn connect(socket: &Path) -> Result<Client, String> {
        let writer = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {}: {e}", socket.display()))?;
        let read_half = writer
            .try_clone()
            .map_err(|e| format!("cannot clone connection to {}: {e}", socket.display()))?;
        Ok(Client { reader: BufReader::new(read_half), writer })
    }

    /// Sends one request object and decodes the one response line.
    ///
    /// # Errors
    ///
    /// I/O failure, a malformed response, or an `"ok":false` answer
    /// (returned as the daemon's error text).
    pub fn request(&mut self, doc: &Json) -> Result<Json, String> {
        let mut line = doc.render();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .map_err(|e| format!("request write failed: {e}"))?;
        let mut buf = String::new();
        let n = self
            .reader
            .read_line(&mut buf)
            .map_err(|e| format!("response read failed: {e}"))?;
        if n == 0 {
            return Err("daemon closed the connection".to_string());
        }
        let response =
            parse(buf.trim_end()).map_err(|e| format!("malformed response: {e}"))?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            Err(response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("daemon reported an unspecified error")
                .to_string())
        }
    }

    /// Protocol handshake; returns the daemon's `hello` document.
    ///
    /// # Errors
    ///
    /// Transport errors, or a daemon speaking a different protocol
    /// version.
    pub fn hello(&mut self) -> Result<Json, String> {
        let response = self.request(&obj(vec![("cmd", Json::Str("hello".to_string()))]))?;
        match response.get("protocol").and_then(Json::as_usize) {
            Some(v) if v == crate::protocol::PROTOCOL_VERSION => Ok(response),
            Some(v) => Err(format!(
                "daemon speaks protocol {v}, this client speaks {}",
                crate::protocol::PROTOCOL_VERSION
            )),
            None => Err("daemon hello carries no protocol version".to_string()),
        }
    }

    /// Fetches the daemon's counters and merged [`qava_lp::LpStats`].
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.request(&obj(vec![("cmd", Json::Str("stats".to_string()))]))
    }

    /// Asks the daemon to spill its cache and exit.
    ///
    /// # Errors
    ///
    /// Transport errors.
    pub fn shutdown(&mut self) -> Result<Json, String> {
        self.request(&obj(vec![("cmd", Json::Str("shutdown".to_string()))]))
    }

    /// Runs one analysis and decodes the runs.
    ///
    /// # Errors
    ///
    /// Transport errors or a request the daemon rejected.
    pub fn analyze(&mut self, spec: &AnalyzeSpec<'_>) -> Result<AnalyzeResponse, String> {
        let mut pairs = vec![
            ("cmd", Json::Str("analyze".to_string())),
            ("id", Json::Num(spec.id as f64)),
            ("source", Json::Str(spec.source.to_string())),
            (
                "params",
                Json::Obj(
                    spec.params
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::from_f64(v)))
                        .collect(),
                ),
            ),
            (
                "engines",
                Json::Arr(spec.engines.iter().map(|e| Json::Str(e.clone())).collect()),
            ),
            ("race", Json::Bool(spec.race)),
            ("invariant_iters", Json::Num(spec.invariant_iters as f64)),
        ];
        if let Some(ms) = spec.deadline_ms {
            pairs.push(("deadline_ms", Json::Num(ms as f64)));
        }
        if let Some(backend) = &spec.lp_backend {
            pairs.push(("lp_backend", Json::Str(backend.clone())));
        }
        let response = self.request(&obj(pairs))?;
        let runs = response
            .get("runs")
            .and_then(Json::as_arr)
            .ok_or("analyze response has no \"runs\"")?
            .iter()
            .map(engine_run_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AnalyzeResponse {
            runs,
            pts_cache_hit: response.get("pts_cache").and_then(Json::as_str) == Some("hit"),
            cancelled: response.get("cancelled").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// Drives the benchmark suite through a daemon and reassembles in-order
/// [`RowReport`]s, indistinguishable (same types, same row order, same
/// engine lineups) from what the in-process driver returns — the CLI
/// prints both through identical code.
///
/// Rows are claimed atomically by a pool of worker connections, one per
/// rayon thread, so the daemon sees genuinely concurrent requests.
///
/// # Errors
///
/// Any connection or per-row failure aborts the run with every
/// collected error (a *row* that analyzes but fails to certify is not
/// an error here — it reports through `bound: Err(..)` like the
/// in-process driver).
pub fn run_suite_via_daemon(
    socket: &Path,
    rows: &[Benchmark],
    race: bool,
    lp_backend: Option<&str>,
) -> Result<Vec<RowReport>, String> {
    let workers = rows.len().clamp(1, rayon::current_num_threads());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RowReport>>> =
        (0..rows.len()).map(|_| Mutex::new(None)).collect();
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut client = match Client::connect(socket) {
                    Ok(client) => client,
                    Err(e) => {
                        errors.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(e);
                        return;
                    }
                };
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    let Some(b) = rows.get(i) else { return };
                    let spec = AnalyzeSpec {
                        id: i,
                        source: b.source,
                        params: &b.params,
                        engines: default_engines(b.direction)
                            .iter()
                            .map(|e| (*e).to_string())
                            .collect(),
                        race,
                        deadline_ms: None,
                        invariant_iters: SUITE_INVARIANT_ITERS,
                        lp_backend: lp_backend.map(str::to_string),
                    };
                    match client.analyze(&spec) {
                        Ok(response) => {
                            *slots[i]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner) =
                                Some(RowReport {
                                    row: i,
                                    name: b.name,
                                    label: b.label.clone(),
                                    previous: b.paper.previous,
                                    direction: b.direction,
                                    runs: response.runs,
                                });
                        }
                        Err(e) => {
                            errors
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(format!("row {i} ({}): {e}", b.name));
                            return;
                        }
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .ok_or_else(|| format!("row {i} was claimed but never reported"))
        })
        .collect()
}
