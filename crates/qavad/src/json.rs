//! A minimal, dependency-free JSON value type for the daemon's
//! line-oriented wire protocol.
//!
//! The build environment is offline (no serde), and the protocol needs
//! only a small, well-behaved subset: objects, arrays, strings, numbers,
//! booleans, null. Two deliberate deviations from RFC 8259, both on the
//! *writer* side and both round-tripped by this reader:
//!
//! * Non-finite numbers — JSON has no `inf`/`nan` literals, but LP wall
//!   times and `ln`-domain bounds legitimately produce them (`ln 0 =
//!   -inf`). [`Json::from_f64`] encodes them as the strings `"inf"`,
//!   `"-inf"`, `"nan"`, and [`Json::as_f64`] decodes those strings back,
//!   so numeric fields survive a round trip without inventing syntax a
//!   foreign client couldn't parse.
//! * Object keys keep insertion order (a `Vec` of pairs, not a map):
//!   responses render deterministically, which the conformance tests
//!   diff textually.
//!
//! The parser is recursive-descent with an explicit depth limit, so a
//! hostile request line can neither overflow the stack nor allocate
//! unboundedly past its own length.

/// Maximum nesting depth [`parse`] accepts (far above anything the
/// protocol produces; a guard, not a format parameter).
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Always finite — non-finite floats travel as strings (see the
    /// module docs).
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs. Duplicate keys: first wins on
    /// [`get`](Json::get).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number, routing non-finite values through their string
    /// encodings.
    pub fn from_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else if v.is_nan() {
            Json::Str("nan".to_string())
        } else if v > 0.0 {
            Json::Str("inf".to_string())
        } else {
            Json::Str("-inf".to_string())
        }
    }

    /// Object field lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, accepting the non-finite string encodings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Str(s) => match s.as_str() {
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                "nan" => Some(f64::NAN),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional and
    /// negative numbers — protocol counters and ids are exact).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64 * 4096.0 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes to a single line (no interior newlines, ever — the
    /// wire protocol is newline-delimited).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                debug_assert!(v.is_finite(), "non-finite Num; use Json::from_f64");
                // `{:?}` prints round-trippable f64 (shortest form that
                // parses back exactly), unlike `{}` which drops the
                // fractional part of whole floats.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v:?}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input
/// (trailing whitespace allowed).
///
/// # Errors
///
/// A human-readable description with a byte offset; never panics on any
/// input.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected '{}' at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let v: f64 =
            text.parse().map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number at byte {start}"));
        }
        Ok(Json::Num(v))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            // Surrogates (paired or lone) are replaced:
                            // protocol strings are program sources and
                            // engine names, never astral-plane text.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Convenience constructor for object literals.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_subset() {
        let doc = obj(vec![
            ("cmd", Json::Str("analyze".into())),
            ("id", Json::Num(7.0)),
            ("race", Json::Bool(true)),
            ("none", Json::Null),
            ("params", obj(vec![("n", Json::Num(0.5)), ("k", Json::Num(-3.0))])),
            ("engines", Json::Arr(vec![Json::Str("explinsyn".into())])),
            ("source", Json::Str("x := 1;\nassert \"q\\\\\" != \"\";\t".into())),
        ]);
        let line = doc.render();
        assert!(!line.contains('\n'), "wire format is one line: {line}");
        assert_eq!(parse(&line).unwrap(), doc);
    }

    #[test]
    fn nonfinite_numbers_roundtrip_as_strings() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, -0.0, 1.5e-300] {
            let enc = Json::from_f64(v);
            let back = parse(&enc.render()).unwrap().as_f64().unwrap();
            assert!(back == v || (back.is_nan() && v.is_nan()), "{v} -> {back}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(36.0).render(), "36");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        let tricky = 0.1 + 0.2;
        assert_eq!(parse(&Json::Num(tricky).render()).unwrap().as_f64(), Some(tricky));
    }

    #[test]
    fn rejects_malformed_input_without_panicking() {
        for bad in [
            "", "{", "}", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "01x", "\"unterminated",
            "{\"a\":1}garbage", "nan", "--1", "\u{1f980}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err(), "depth limit must trip");
    }

    #[test]
    fn duplicate_keys_first_wins_and_order_is_stable() {
        let doc = parse(r#"{"b":1,"a":2,"b":3}"#).unwrap();
        assert_eq!(doc.get("b"), Some(&Json::Num(1.0)));
        assert_eq!(doc.render(), r#"{"b":1,"a":2,"b":3}"#);
    }

    #[test]
    fn as_usize_is_exact() {
        assert_eq!(Json::Num(12.0).as_usize(), Some(12));
        assert_eq!(Json::Num(12.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Str("12".into()).as_usize(), None);
    }
}
