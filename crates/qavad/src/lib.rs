//! `qavad` — the resident qava analysis service.
//!
//! The one-shot `qava` CLI pays three recurring costs on every
//! invocation: compiling the program, re-deriving invariants, and — by
//! far the largest — solving every LP from a cold basis. The daemon
//! amortizes all three across requests and across *processes*:
//!
//! * [`server`] hosts the long-lived service: a Unix-domain socket
//!   accepting newline-delimited JSON requests, a compile-once PTS
//!   store, an admission gate sized to the rayon pool, and per-request
//!   cancellation wired to client disconnects and deadlines.
//! * The warm-start layer is [`qava_lp::SharedBasisCache`]: one
//!   process-wide basis store installed into every request's solver
//!   sessions and spilled to a versioned on-disk file, so the first
//!   solve of a repeated row pattern starts warm even across daemon
//!   restarts.
//! * [`protocol`] is the wire grammar plus the [`qava_lp::LpStats`] and
//!   suite-report codecs; [`json`] is the tiny self-contained JSON
//!   reader/writer underneath it (the workspace builds offline, so no
//!   serde).
//! * [`client`] is the connecting side: used by `qava --connect` and by
//!   the daemon conformance tests to drive the full benchmark suite
//!   through a daemon and diff the footer against in-process results.
//!
//! The protocol is versioned ([`protocol::PROTOCOL_VERSION`]) and the
//! cache file is self-describing; both fail *cold and loud*, never
//! wrong: an unreadable cache file logs a warning and starts empty, an
//! incompatible request is answered with `"ok":false` while the
//! connection stays usable.

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use server::{Daemon, DaemonConfig};
