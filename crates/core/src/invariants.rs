//! Invariant propagation (re-exported from [`qava_pts::propagate`]).
//!
//! The pass historically lived here; it moved into `qava-pts` so the
//! language frontend can run it as part of [`qava_pts::simplify()`] without a
//! dependency on this crate. The re-export keeps the original public path
//! working for downstream users of `qava-core`.
//!
//! See the module documentation of [`qava_pts::propagate`] for what the
//! pass does and why `I(ℓ_f)` matters for condition (C2) of §5.1.

pub use qava_pts::propagate::propagate_invariants;

#[cfg(test)]
mod tests {
    use super::*;
    use qava_polyhedra::Halfspace;
    use std::collections::BTreeMap;

    #[test]
    fn compiled_programs_arrive_with_propagated_failure_invariant() {
        // The frontend pipeline (lower → simplify → propagate) must already
        // deliver a non-trivial I(ℓ_f) for Fig.-1-style programs.
        let src = r"
            x := 40; y := 0;
            while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
                if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
            }
            assert x >= 100;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let inv = pts.invariant(pts.failure_location());
        assert!(
            inv.implies(&Halfspace::le(vec![1.0, 0.0], 99.0)),
            "ℓ_f must know x ≤ 99: {inv:?}"
        );
        assert!(
            inv.implies(&Halfspace::ge(vec![0.0, 1.0], 100.0)),
            "ℓ_f must know y ≥ 100: {inv:?}"
        );
    }

    #[test]
    fn propagation_is_idempotent_after_pipeline() {
        let src = r"
            x := 0;
            while x <= 9 invariant x >= 0 and x <= 10 { x := x + 1; }
            assert x <= 20;
        ";
        let mut pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        assert_eq!(propagate_invariants(&mut pts, 4), 0, "pipeline already ran it");
    }
}
