//! Sparse multivariate polynomials over **interned monomials**, in two
//! coefficient flavours:
//!
//! * [`CPoly`] — constant `f64` coefficients. Products of invariant
//!   constraints in the Handelman encoding are of this kind.
//! * [`UPoly`] — coefficients that are *affine forms over the template
//!   unknowns* ([`UCoef`]). Templates with polynomial exponents (Remark 3
//!   and 5 of the paper) and everything derived from them linearly —
//!   expectations, differences — are of this kind. Crucially, a `UPoly`
//!   times a `CPoly` is again a `UPoly`, which keeps all constraint
//!   generation linear in the unknowns.
//!
//! # Monomial interning
//!
//! A monomial is an exponent vector over the program variables. The old
//! representation stored every polynomial as a `BTreeMap<Vec<u32>, _>`,
//! which cloned an exponent vector per term on every add, scale and
//! multiply — the dominant allocation cost of the Handelman pipeline.
//! Instead, each exponent vector is now interned once in a per-thread
//! [`MonoTable`] and addressed by a dense [`MonoId`]. Polynomial terms
//! are a `Vec<(MonoId, coeff)>` sorted by id, so merging two polynomials
//! is an allocation-free sorted-list merge and monomial products reduce
//! to a memoized table lookup.
//!
//! Ids are only meaningful on the thread that interned them, so the
//! polynomial types are deliberately **not `Send`/`Sync`** — each
//! synthesis (and each parallel suite worker) builds its polynomials on
//! its own thread, which also keeps the id order, and hence every
//! iteration order below, deterministic for a given synthesis run.

use crate::template::UCoef;
use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;

/// A monomial in exploded form: one exponent per program variable.
pub type Monomial = Vec<u32>;

/// Dense handle of an interned monomial (see [`MonoTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonoId(u32);

/// Marker making a type `!Send + !Sync` (monomial ids are thread-local).
type NotSend = PhantomData<*const ()>;

/// Per-thread interner mapping exponent vectors to [`MonoId`]s, with a
/// memo table for monomial products.
///
/// The table lives for the whole thread; synthesis runs on the same
/// thread share interned monomials (a few hundred distinct exponent
/// vectors even across the whole benchmark suite), so it never needs
/// eviction.
#[derive(Default)]
pub struct MonoTable {
    ids: HashMap<Box<[u32]>, MonoId>,
    exps: Vec<Box<[u32]>>,
    degrees: Vec<u32>,
    products: HashMap<(MonoId, MonoId), MonoId>,
}

thread_local! {
    static TABLE: RefCell<MonoTable> = RefCell::new(MonoTable::default());
}

impl MonoTable {
    /// Runs `f` with the calling thread's table.
    pub fn with<R>(f: impl FnOnce(&mut MonoTable) -> R) -> R {
        TABLE.with(|t| f(&mut t.borrow_mut()))
    }

    /// Interns an exponent vector, returning its id.
    pub fn intern(&mut self, exps: &[u32]) -> MonoId {
        if let Some(&id) = self.ids.get(exps) {
            return id;
        }
        let id = MonoId(u32::try_from(self.exps.len()).expect("monomial table overflow"));
        let boxed: Box<[u32]> = exps.into();
        self.exps.push(boxed.clone());
        self.degrees.push(exps.iter().sum());
        self.ids.insert(boxed, id);
        id
    }

    /// The exponent vector of an id (borrow valid inside [`Self::with`]).
    pub fn exponents(&self, id: MonoId) -> &[u32] {
        &self.exps[id.0 as usize]
    }

    /// Total degree of an interned monomial.
    pub fn degree(&self, id: MonoId) -> u32 {
        self.degrees[id.0 as usize]
    }

    /// The id of the product monomial (componentwise exponent sum),
    /// memoized: repeated products — the Handelman basis times template
    /// monomials — are a single hash lookup after first computation.
    pub fn product(&mut self, a: MonoId, b: MonoId) -> MonoId {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.products.get(&key) {
            return id;
        }
        let sum: Vec<u32> = self
            .exponents(key.0)
            .iter()
            .zip(self.exponents(key.1))
            .map(|(&x, &y)| x + y)
            .collect();
        let id = self.intern(&sum);
        self.products.insert(key, id);
        id
    }

    /// Evaluates an interned monomial at a point.
    pub fn eval(&self, id: MonoId, v: &[f64]) -> f64 {
        self.exponents(id)
            .iter()
            .zip(v)
            .map(|(&e, &x)| x.powi(e as i32))
            .product()
    }

    /// Clones out the exponent vector of an id.
    pub fn resolve(id: MonoId) -> Monomial {
        Self::with(|t| t.exponents(id).to_vec())
    }
}

/// Merges `scale · src` into the sorted term list `dst` (shared kernel of
/// all polynomial addition): a single pass that moves existing slots
/// instead of cloning them. `combine` folds a source coefficient into an
/// existing destination slot; `make` materializes a fresh slot.
fn merge_sorted<C>(
    dst: &mut Vec<(MonoId, C)>,
    src: &[(MonoId, C)],
    mut combine: impl FnMut(&mut C, &C),
    mut make: impl FnMut(&C) -> Option<C>,
    mut is_zero: impl FnMut(&C) -> bool,
) {
    if src.is_empty() {
        return;
    }
    let old = std::mem::take(dst);
    let mut out: Vec<(MonoId, C)> = Vec::with_capacity(old.len() + src.len());
    let mut it = old.into_iter().peekable();
    for (id, c) in src {
        while it.peek().is_some_and(|&(did, _)| did < *id) {
            out.push(it.next().expect("peeked"));
        }
        if it.peek().is_some_and(|&(did, _)| did == *id) {
            let mut slot = it.next().expect("peeked");
            combine(&mut slot.1, c);
            if !is_zero(&slot.1) {
                out.push(slot);
            }
        } else if let Some(v) = make(c) {
            out.push((*id, v));
        }
    }
    out.extend(it);
    *dst = out;
}

/// A polynomial with constant coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct CPoly {
    nvars: usize,
    /// Sorted by [`MonoId`]; coefficients are nonzero.
    terms: Vec<(MonoId, f64)>,
    _marker: NotSend,
}

impl CPoly {
    /// The zero polynomial over `nvars` variables.
    pub fn zero(nvars: usize) -> Self {
        CPoly { nvars, terms: Vec::new(), _marker: PhantomData }
    }

    /// The constant polynomial `k`.
    pub fn constant(nvars: usize, k: f64) -> Self {
        let mut p = CPoly::zero(nvars);
        p.add_term(vec![0; nvars], k);
        p
    }

    /// The affine polynomial `coeffs·v + k`.
    pub fn affine(coeffs: &[f64], k: f64) -> Self {
        let nvars = coeffs.len();
        let mut p = CPoly::constant(nvars, k);
        for (i, &c) in coeffs.iter().enumerate() {
            if c != 0.0 {
                let mut m = vec![0; nvars];
                m[i] = 1;
                p.add_term(m, c);
            }
        }
        p
    }

    /// Number of program variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Adds `k · μ`, dropping the term if it cancels to zero.
    pub fn add_term(&mut self, monomial: Monomial, k: f64) {
        debug_assert_eq!(monomial.len(), self.nvars);
        let id = MonoTable::with(|t| t.intern(&monomial));
        self.add_term_id(id, k);
    }

    /// Adds `k · μ` by interned id (the allocation-free hot path).
    pub fn add_term_id(&mut self, id: MonoId, k: f64) {
        if k == 0.0 {
            return;
        }
        match self.terms.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => {
                self.terms[pos].1 += k;
                if self.terms[pos].1 == 0.0 {
                    self.terms.remove(pos);
                }
            }
            Err(pos) => self.terms.insert(pos, (id, k)),
        }
    }

    /// Adds `scale · other` in place (sorted merge, no interning).
    pub fn add_scaled(&mut self, other: &CPoly, scale: f64) {
        if scale == 0.0 {
            return;
        }
        merge_sorted(
            &mut self.terms,
            &other.terms,
            |dst, src| *dst += scale * src,
            |src| {
                let v = scale * src;
                (v != 0.0).then_some(v)
            },
            |c| *c == 0.0,
        );
    }

    /// The product `self · other` (memoized monomial products).
    #[must_use]
    pub fn mul(&self, other: &CPoly) -> CPoly {
        let mut out = CPoly::zero(self.nvars);
        MonoTable::with(|t| {
            let mut raw: Vec<(MonoId, f64)> = Vec::with_capacity(self.terms.len() * other.terms.len());
            for &(ma, ca) in &self.terms {
                for &(mb, cb) in &other.terms {
                    raw.push((t.product(ma, mb), ca * cb));
                }
            }
            raw.sort_unstable_by_key(|&(id, _)| id);
            for (id, c) in raw {
                match out.terms.last_mut() {
                    Some((last, acc)) if *last == id => *acc += c,
                    _ => out.terms.push((id, c)),
                }
            }
        });
        out.terms.retain(|&(_, c)| c != 0.0);
        out
    }

    /// Total degree (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        MonoTable::with(|t| self.terms.iter().map(|&(id, _)| t.degree(id)).max().unwrap_or(0))
    }

    /// Evaluates at a point.
    pub fn eval(&self, v: &[f64]) -> f64 {
        MonoTable::with(|t| self.terms.iter().map(|&(id, c)| c * t.eval(id, v)).sum())
    }

    /// Iterates `(monomial, coefficient)` pairs in id (interning) order,
    /// materializing each exponent vector. Boundary use only — the hot
    /// paths stay on [`Self::iter_ids`].
    pub fn iter(&self) -> impl Iterator<Item = (Monomial, f64)> + '_ {
        self.terms.iter().map(|&(id, c)| (MonoTable::resolve(id), c))
    }

    /// Iterates `(id, coefficient)` pairs in id order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (MonoId, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// Coefficient of an interned monomial (0 when absent).
    pub fn coeff_of(&self, id: MonoId) -> f64 {
        match self.terms.binary_search_by_key(&id, |&(i, _)| i) {
            Ok(pos) => self.terms[pos].1,
            Err(_) => 0.0,
        }
    }
}

/// A polynomial whose coefficients are affine forms over the template
/// unknowns.
#[derive(Debug, Clone)]
pub struct UPoly {
    nvars: usize,
    n_unknowns: usize,
    /// Sorted by [`MonoId`].
    terms: Vec<(MonoId, UCoef)>,
    _marker: NotSend,
}

impl UPoly {
    /// The zero polynomial over `nvars` program variables and `n_unknowns`
    /// template unknowns.
    pub fn zero(nvars: usize, n_unknowns: usize) -> Self {
        UPoly { nvars, n_unknowns, terms: Vec::new(), _marker: PhantomData }
    }

    /// Number of program variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of template unknowns.
    pub fn n_unknowns(&self) -> usize {
        self.n_unknowns
    }

    /// Adds `coef · μ`.
    pub fn add_term(&mut self, monomial: Monomial, coef: &UCoef) {
        debug_assert_eq!(monomial.len(), self.nvars);
        let id = MonoTable::with(|t| t.intern(&monomial));
        self.add_term_id(id, coef);
    }

    /// Adds `coef · μ` by interned id.
    pub fn add_term_id(&mut self, id: MonoId, coef: &UCoef) {
        match self.terms.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(pos) => self.terms[pos].1.add_scaled(coef, 1.0),
            Err(pos) => {
                let mut c = UCoef::zero(self.n_unknowns);
                c.add_scaled(coef, 1.0);
                self.terms.insert(pos, (id, c));
            }
        }
    }

    /// Adds `scale · unknown_idx · μ` (a pure-unknown coefficient).
    pub fn add_unknown_term(&mut self, monomial: Monomial, unknown_idx: usize, scale: f64) {
        let mut u = UCoef::zero(self.n_unknowns);
        u.add_unknown(unknown_idx, scale);
        self.add_term(monomial, &u);
    }

    /// Adds `scale · other` in place (sorted merge, no interning).
    pub fn add_scaled(&mut self, other: &UPoly, scale: f64) {
        merge_sorted(
            &mut self.terms,
            &other.terms,
            |dst, src| dst.add_scaled(src, scale),
            |src| {
                let mut c = UCoef::zero(src.lin.len());
                c.add_scaled(src, scale);
                Some(c)
            },
            |_| false,
        );
    }

    /// Adds `u · p` where `u` is an unknown-affine coefficient and `p` a
    /// constant polynomial — the linear-in-unknowns product that template
    /// expectation expansion needs.
    pub fn add_ucoef_times_cpoly(&mut self, u: &UCoef, p: &CPoly) {
        for (id, c) in p.iter_ids() {
            match self.terms.binary_search_by_key(&id, |(i, _)| *i) {
                Ok(pos) => self.terms[pos].1.add_scaled(u, c),
                Err(pos) => {
                    let mut scaled = UCoef::zero(self.n_unknowns);
                    scaled.add_scaled(u, c);
                    self.terms.insert(pos, (id, scaled));
                }
            }
        }
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        MonoTable::with(|t| self.terms.iter().map(|(id, _)| t.degree(*id)).max().unwrap_or(0))
    }

    /// Evaluates the polynomial at `(v, x)`: program point and unknown
    /// assignment.
    pub fn eval(&self, v: &[f64], x: &[f64]) -> f64 {
        MonoTable::with(|t| {
            self.terms
                .iter()
                .map(|(id, c)| c.eval(x) * t.eval(*id, v))
                .sum()
        })
    }

    /// Iterates `(monomial, coefficient)` pairs in id (interning) order,
    /// materializing each exponent vector.
    pub fn iter(&self) -> impl Iterator<Item = (Monomial, &UCoef)> {
        self.terms.iter().map(|(id, c)| (MonoTable::resolve(*id), c))
    }

    /// Iterates `(id, coefficient)` pairs in id order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (MonoId, &UCoef)> {
        self.terms.iter().map(|(id, c)| (*id, c))
    }

    /// Coefficient of an interned monomial, if present.
    pub fn coeff_of(&self, id: MonoId) -> Option<&UCoef> {
        self.terms
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|pos| &self.terms[pos].1)
    }

    /// The set of monomials with a (possibly) nonzero coefficient.
    pub fn monomials(&self) -> impl Iterator<Item = Monomial> + '_ {
        self.terms.iter().map(|(id, _)| MonoTable::resolve(*id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpoly_product_expands() {
        // (x + 1)(x − 1) = x² − 1 over one variable.
        let a = CPoly::affine(&[1.0], 1.0);
        let b = CPoly::affine(&[1.0], -1.0);
        let p = a.mul(&b);
        assert_eq!(p.degree(), 2);
        assert_eq!(p.eval(&[3.0]), 8.0);
        assert_eq!(p.eval(&[0.0]), -1.0);
    }

    #[test]
    fn cpoly_cancellation_removes_terms() {
        let mut p = CPoly::affine(&[2.0, 0.0], 0.0);
        p.add_scaled(&CPoly::affine(&[-2.0, 0.0], 0.0), 1.0);
        assert_eq!(p, CPoly::zero(2));
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn upoly_linear_in_unknowns() {
        // p = u0·x² + (2u1 − 1)·y over 2 vars, 2 unknowns.
        let mut p = UPoly::zero(2, 2);
        p.add_unknown_term(vec![2, 0], 0, 1.0);
        let mut c = UCoef::zero(2);
        c.add_unknown(1, 2.0);
        c.constant = -1.0;
        p.add_term(vec![0, 1], &c);
        // At v = (3, 5), x = (u0, u1) = (1, 4): 9 + (8 − 1)·5 = 44.
        assert_eq!(p.eval(&[3.0, 5.0], &[1.0, 4.0]), 44.0);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn ucoef_times_cpoly_distributes() {
        // u0 · (x + 2) = u0·x + 2u0.
        let mut p = UPoly::zero(1, 1);
        let mut u = UCoef::zero(1);
        u.add_unknown(0, 1.0);
        p.add_ucoef_times_cpoly(&u, &CPoly::affine(&[1.0], 2.0));
        assert_eq!(p.eval(&[5.0], &[3.0]), 3.0 * 7.0);
    }

    #[test]
    fn monomial_evaluation() {
        let p = {
            let mut p = CPoly::zero(3);
            p.add_term(vec![1, 2, 0], 4.0); // 4·x·y²
            p
        };
        assert_eq!(p.eval(&[2.0, 3.0, 9.0]), 72.0);
    }

    #[test]
    fn interning_dedupes_and_products_memoize() {
        let (a, b, ab, ab2) = MonoTable::with(|t| {
            let a = t.intern(&[1, 0]);
            let b = t.intern(&[0, 1]);
            let ab = t.product(a, b);
            let ab2 = t.product(b, a);
            (a, b, ab, ab2)
        });
        assert_ne!(a, b);
        assert_eq!(ab, ab2, "product memo is symmetric");
        assert_eq!(MonoTable::resolve(ab), vec![1, 1]);
        assert_eq!(MonoTable::with(|t| t.intern(&[1, 0])), a, "re-interning hits");
    }

    #[test]
    fn add_scaled_merges_sorted_lists() {
        let mut p = CPoly::zero(1);
        p.add_term(vec![0], 1.0);
        p.add_term(vec![2], 3.0);
        let mut q = CPoly::zero(1);
        q.add_term(vec![1], 5.0);
        q.add_term(vec![2], -3.0);
        p.add_scaled(&q, 1.0);
        assert_eq!(p.eval(&[2.0]), 1.0 + 10.0);
        assert_eq!(p.degree(), 1, "x² terms cancelled");
    }

    #[test]
    fn coeff_of_lookup() {
        let mut p = UPoly::zero(1, 1);
        p.add_unknown_term(vec![2], 0, 4.0);
        let id = MonoTable::with(|t| t.intern(&[2]));
        assert_eq!(p.coeff_of(id).unwrap().lin, vec![4.0]);
        let missing = MonoTable::with(|t| t.intern(&[7]));
        assert!(p.coeff_of(missing).is_none());
    }
}
