//! Sparse multivariate polynomials, in two coefficient flavours:
//!
//! * [`CPoly`] — constant `f64` coefficients. Products of invariant
//!   constraints in the Handelman encoding are of this kind.
//! * [`UPoly`] — coefficients that are *affine forms over the template
//!   unknowns* ([`UCoef`]). Templates with polynomial exponents (Remark 3
//!   and 5 of the paper) and everything derived from them linearly —
//!   expectations, differences — are of this kind. Crucially, a `UPoly`
//!   times a `CPoly` is again a `UPoly`, which keeps all constraint
//!   generation linear in the unknowns.
//!
//! Monomials are exponent vectors over the program variables; both types
//! keep a sorted map so that coefficient matching (the heart of the
//! Handelman LP) is deterministic.

use crate::template::UCoef;
use std::collections::BTreeMap;

/// A monomial: one exponent per program variable.
pub type Monomial = Vec<u32>;

/// A polynomial with constant coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct CPoly {
    nvars: usize,
    terms: BTreeMap<Monomial, f64>,
}

impl CPoly {
    /// The zero polynomial over `nvars` variables.
    pub fn zero(nvars: usize) -> Self {
        CPoly { nvars, terms: BTreeMap::new() }
    }

    /// The constant polynomial `k`.
    pub fn constant(nvars: usize, k: f64) -> Self {
        let mut p = CPoly::zero(nvars);
        p.add_term(vec![0; nvars], k);
        p
    }

    /// The affine polynomial `coeffs·v + k`.
    pub fn affine(coeffs: &[f64], k: f64) -> Self {
        let nvars = coeffs.len();
        let mut p = CPoly::constant(nvars, k);
        for (i, &c) in coeffs.iter().enumerate() {
            if c != 0.0 {
                let mut m = vec![0; nvars];
                m[i] = 1;
                p.add_term(m, c);
            }
        }
        p
    }

    /// Number of program variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Adds `k · μ`, dropping the term if it cancels to zero.
    pub fn add_term(&mut self, monomial: Monomial, k: f64) {
        debug_assert_eq!(monomial.len(), self.nvars);
        let entry = self.terms.entry(monomial).or_insert(0.0);
        *entry += k;
        if *entry == 0.0 {
            let key: Vec<u32> = self
                .terms
                .iter()
                .find(|(_, &v)| v == 0.0)
                .map(|(k, _)| k.clone())
                .expect("just inserted");
            self.terms.remove(&key);
        }
    }

    /// Adds `scale · other` in place.
    pub fn add_scaled(&mut self, other: &CPoly, scale: f64) {
        for (m, &c) in &other.terms {
            self.add_term(m.clone(), scale * c);
        }
    }

    /// The product `self · other`.
    #[must_use]
    pub fn mul(&self, other: &CPoly) -> CPoly {
        let mut out = CPoly::zero(self.nvars);
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &other.terms {
                let m: Monomial = ma.iter().zip(mb).map(|(a, b)| a + b).collect();
                out.add_term(m, ca * cb);
            }
        }
        out
    }

    /// Total degree (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(|m| m.iter().sum()).max().unwrap_or(0)
    }

    /// Evaluates at a point.
    pub fn eval(&self, v: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(m, &c)| c * eval_monomial(m, v))
            .sum()
    }

    /// Iterates `(monomial, coefficient)` pairs in monomial order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, f64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }
}

fn eval_monomial(m: &[u32], v: &[f64]) -> f64 {
    m.iter()
        .zip(v)
        .map(|(&e, &x)| x.powi(e as i32))
        .product()
}

/// A polynomial whose coefficients are affine forms over the template
/// unknowns.
#[derive(Debug, Clone)]
pub struct UPoly {
    nvars: usize,
    n_unknowns: usize,
    terms: BTreeMap<Monomial, UCoef>,
}

impl UPoly {
    /// The zero polynomial over `nvars` program variables and `n_unknowns`
    /// template unknowns.
    pub fn zero(nvars: usize, n_unknowns: usize) -> Self {
        UPoly { nvars, n_unknowns, terms: BTreeMap::new() }
    }

    /// Number of program variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of template unknowns.
    pub fn n_unknowns(&self) -> usize {
        self.n_unknowns
    }

    /// Adds `coef · μ`.
    pub fn add_term(&mut self, monomial: Monomial, coef: &UCoef) {
        debug_assert_eq!(monomial.len(), self.nvars);
        self.terms
            .entry(monomial)
            .or_insert_with(|| UCoef::zero(self.n_unknowns))
            .add_scaled(coef, 1.0);
    }

    /// Adds `scale · unknown_idx · μ` (a pure-unknown coefficient).
    pub fn add_unknown_term(&mut self, monomial: Monomial, unknown_idx: usize, scale: f64) {
        let mut u = UCoef::zero(self.n_unknowns);
        u.add_unknown(unknown_idx, scale);
        self.add_term(monomial, &u);
    }

    /// Adds `scale · other` in place.
    pub fn add_scaled(&mut self, other: &UPoly, scale: f64) {
        for (m, c) in &other.terms {
            self.terms
                .entry(m.clone())
                .or_insert_with(|| UCoef::zero(self.n_unknowns))
                .add_scaled(c, scale);
        }
    }

    /// Adds `u · p` where `u` is an unknown-affine coefficient and `p` a
    /// constant polynomial — the linear-in-unknowns product that template
    /// expectation expansion needs.
    pub fn add_ucoef_times_cpoly(&mut self, u: &UCoef, p: &CPoly) {
        for (m, c) in p.iter() {
            let mut scaled = UCoef::zero(self.n_unknowns);
            scaled.add_scaled(u, c);
            self.add_term(m.clone(), &scaled);
        }
    }

    /// Total degree.
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(|m| m.iter().sum()).max().unwrap_or(0)
    }

    /// Evaluates the polynomial at `(v, x)`: program point and unknown
    /// assignment.
    pub fn eval(&self, v: &[f64], x: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(m, c)| c.eval(x) * eval_monomial(m, v))
            .sum()
    }

    /// Iterates `(monomial, coefficient)` pairs in monomial order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &UCoef)> {
        self.terms.iter()
    }

    /// The set of monomials with a (possibly) nonzero coefficient.
    pub fn monomials(&self) -> impl Iterator<Item = &Monomial> {
        self.terms.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpoly_product_expands() {
        // (x + 1)(x − 1) = x² − 1 over one variable.
        let a = CPoly::affine(&[1.0], 1.0);
        let b = CPoly::affine(&[1.0], -1.0);
        let p = a.mul(&b);
        assert_eq!(p.degree(), 2);
        assert_eq!(p.eval(&[3.0]), 8.0);
        assert_eq!(p.eval(&[0.0]), -1.0);
    }

    #[test]
    fn cpoly_cancellation_removes_terms() {
        let mut p = CPoly::affine(&[2.0, 0.0], 0.0);
        p.add_scaled(&CPoly::affine(&[-2.0, 0.0], 0.0), 1.0);
        assert_eq!(p, CPoly::zero(2));
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn upoly_linear_in_unknowns() {
        // p = u0·x² + (2u1 − 1)·y over 2 vars, 2 unknowns.
        let mut p = UPoly::zero(2, 2);
        p.add_unknown_term(vec![2, 0], 0, 1.0);
        let mut c = UCoef::zero(2);
        c.add_unknown(1, 2.0);
        c.constant = -1.0;
        p.add_term(vec![0, 1], &c);
        // At v = (3, 5), x = (u0, u1) = (1, 4): 9 + (8 − 1)·5 = 44.
        assert_eq!(p.eval(&[3.0, 5.0], &[1.0, 4.0]), 44.0);
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn ucoef_times_cpoly_distributes() {
        // u0 · (x + 2) = u0·x + 2u0.
        let mut p = UPoly::zero(1, 1);
        let mut u = UCoef::zero(1);
        u.add_unknown(0, 1.0);
        p.add_ucoef_times_cpoly(&u, &CPoly::affine(&[1.0], 2.0));
        assert_eq!(p.eval(&[5.0], &[3.0]), 3.0 * 7.0);
    }

    #[test]
    fn monomial_evaluation() {
        let p = {
            let mut p = CPoly::zero(3);
            p.add_term(vec![1, 2, 0], 4.0); // 4·x·y²
            p
        };
        assert_eq!(p.eval(&[2.0, 3.0, 9.0]), 72.0);
    }
}
