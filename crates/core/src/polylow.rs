//! Polynomial (quadratic) lower-bound synthesis — the extension of §6 that
//! Remark 5 of the paper sketches.
//!
//! The algorithm is ExpLowSyn with a quadratic exponent
//! `η(ℓ, v) = Σ q_{ij} v_i v_j + a·v + b`:
//!
//! 1. boundedness `η ≤ M` on every invariant (Step 2 of §6), discharged by
//!    Handelman instead of Farkas;
//! 2. the post fixed-point constraint, strengthened by Jensen's inequality
//!    applied to the *whole* random exponent: for
//!    `X = η(dst, upd(v, r))` (a random variable through `r`),
//!    `E[exp(X)] ≥ exp(E[X])`, and `E[X]` is a polynomial in `v` computed
//!    from the first and second moments of the sampling sites
//!    ([`QuadSpace::expected_eta_after`]);
//! 3. one LP, maximizing `η(ℓ_init, v_init)`.
//!
//! As with the affine algorithm, soundness requires almost-sure
//! termination (Theorem 4.4), certifiable via [`crate::rsm`]. The paper
//! would use Positivstellensatz + SDP here; DESIGN.md records the
//! Handelman substitution.

use crate::handelman::encode_poly_nonneg;
use crate::logprob::LogProb;
use crate::poly::UPoly;
use crate::polyrsm::QuadSpace;
use crate::template::UCoef;
use qava_lp::{Cmp, LinExpr, LpBuilder, LpError, LpSolver, VarId};
use qava_pts::Pts;

/// Errors from [`synthesize_quadratic_lower_bound`].
#[derive(Debug, Clone, PartialEq)]
pub enum PolyLowError {
    /// The Handelman-strengthened LP is infeasible at degree 2.
    NoTemplate,
    /// A transition sends all mass to `ℓ_t` from a satisfiable guard.
    DeadEndTransition {
        /// Index of the offending transition.
        transition: usize,
    },
    /// The initial location is absorbing.
    TrivialInitial,
    /// LP failure.
    Lp(LpError),
}

impl std::fmt::Display for PolyLowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyLowError::NoTemplate => {
                write!(f, "no quadratic post fixed-point certifiable via Jensen + Handelman")
            }
            PolyLowError::DeadEndTransition { transition } => write!(
                f,
                "transition {transition} moves to ℓ_t with probability 1; positive templates cannot lower-bound it"
            ),
            PolyLowError::TrivialInitial => write!(f, "initial location is absorbing"),
            PolyLowError::Lp(e) => write!(f, "LP failure: {e}"),
        }
    }
}

impl std::error::Error for PolyLowError {}

/// A synthesized quadratic lower bound.
#[derive(Debug, Clone)]
pub struct PolyLowResult {
    /// Certified lower bound `exp(η(ℓ_init, v_init))` (valid under
    /// almost-sure termination).
    pub bound: LogProb,
    /// Raw solution over the quadratic unknowns.
    pub solution: Vec<f64>,
}

/// Handelman product degree (quadratic targets).
const HANDELMAN_DEGREE: u32 = 2;

/// Runs the quadratic lower-bound synthesis with a private solver
/// session; see [`synthesize_quadratic_lower_bound_in`].
///
/// Deprecated shim; new code goes through the engine API (`polylow` in
/// an [`crate::engine::EngineRegistry`]) or threads an explicit session.
///
/// # Errors
///
/// See [`PolyLowError`].
#[deprecated(note = "use the `polylow` engine via `qava_core::engine`, or \
                     `synthesize_quadratic_lower_bound_in` with an explicit \
                     `LpSolver` session")]
pub fn synthesize_quadratic_lower_bound(pts: &Pts) -> Result<PolyLowResult, PolyLowError> {
    synthesize_quadratic_lower_bound_in(pts, &mut LpSolver::new())
}

/// Runs the quadratic lower-bound synthesis, threading the emptiness
/// probes and the Handelman LP through the given solver session.
///
/// # Errors
///
/// See [`PolyLowError`].
pub fn synthesize_quadratic_lower_bound_in(
    pts: &Pts,
    solver: &mut LpSolver,
) -> Result<PolyLowResult, PolyLowError> {
    let init = pts.initial_state();
    if pts.is_absorbing(init.loc) {
        return Err(PolyLowError::TrivialInitial);
    }
    let space = QuadSpace::new(pts);
    let n = space.len();
    let nvars = pts.num_vars();

    let mut lp = LpBuilder::new();
    let unknowns: Vec<VarId> = (0..n).map(|i| lp.add_var(format!("q{i}"))).collect();
    let m_var = lp.add_var("M");
    let mut xs = unknowns.clone();
    xs.push(m_var);

    let widen = |p: &UPoly| -> UPoly {
        let mut out = UPoly::zero(nvars, n + 1);
        for (id, c) in p.iter_ids() {
            let mut lin = c.lin.clone();
            lin.resize(n + 1, 0.0);
            out.add_term_id(id, &UCoef { lin, constant: c.constant });
        }
        out
    };

    // Step 2 (boundedness): M − η(ℓ, v) ≥ 0 on I(ℓ).
    for l in pts.live_locations() {
        let mut p = UPoly::zero(nvars, n + 1);
        p.add_scaled(&widen(&space.eta(l)), -1.0);
        let mut m_coef = UCoef::zero(n + 1);
        m_coef.add_unknown(n, 1.0);
        p.add_term(vec![0; nvars], &m_coef);
        encode_poly_nonneg(&mut lp, &xs, pts.invariant(l), &p, HANDELMAN_DEGREE);
    }

    // Steps 3–4: for each transition, the Jensen-strengthened post
    // fixed-point row. Forks into ℓ_t contribute nothing to the live mass;
    // θ(ℓ_f) ≡ 1 contributes an exponent of 0.
    for (ti, t) in pts.transitions().iter().enumerate() {
        let psi = pts.invariant(t.src).intersection(&t.guard);
        if psi.is_empty_in(solver) {
            continue;
        }
        let mut live_mass = 0.0;
        // Σ' p_j · E[η_j] with η over the live and failure forks.
        let mut sum = UPoly::zero(nvars, n);
        for fork in &t.forks {
            if fork.dest == pts.terminal_location() {
                continue;
            }
            live_mass += fork.prob;
            if fork.dest == pts.failure_location() {
                continue; // exponent 0
            }
            sum.add_scaled(&space.expected_eta_after(fork.dest, fork), fork.prob);
        }
        if live_mass <= 1e-12 {
            return Err(PolyLowError::DeadEndTransition { transition: ti });
        }
        // Q⁻¹·(sum − Q·η(src)) ≥ −ln Q  ⇔  sum − Q·η(src) + Q·ln Q ≥ 0.
        let mut p = widen(&sum);
        p.add_scaled(&widen(&space.eta(t.src)), -live_mass);
        let shift = UCoef::constant(n + 1, live_mass * live_mass.ln());
        p.add_term(vec![0; nvars], &shift);
        encode_poly_nonneg(&mut lp, &xs, &psi, &p, HANDELMAN_DEGREE);
    }

    // The bound cannot certify above 1, and the LP must stay bounded:
    // η(init) ≤ 0, maximized.
    let eta_init = space.eta(init.loc);
    let mut obj = LinExpr::new();
    let mut obj_const = 0.0;
    for (m, c) in eta_init.iter() {
        let mono: f64 = m
            .iter()
            .zip(&init.vals)
            .map(|(&e, &x)| x.powi(e as i32))
            .product();
        for (idx, &coef) in c.lin.iter().enumerate() {
            if coef != 0.0 {
                obj = obj.term(unknowns[idx], coef * mono);
            }
        }
        obj_const += c.constant * mono;
    }
    lp.constrain(obj.clone(), Cmp::Le, -obj_const);
    lp.maximize(obj);

    let sol = match solver.solve(&lp) {
        Ok(s) => s,
        Err(LpError::Infeasible) => return Err(PolyLowError::NoTemplate),
        Err(e) => return Err(PolyLowError::Lp(e)),
    };
    let x: Vec<f64> = unknowns.iter().map(|&v| sol.value(v)).collect();
    Ok(PolyLowResult {
        bound: LogProb::from_ln(sol.objective + obj_const).clamp_to_unit(),
        solution: x,
    })
}

#[cfg(test)]
// The deprecated session-less shims keep their behavioral coverage here
// until they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::explowsyn::synthesize_lower_bound;
    use std::collections::BTreeMap;

    fn m1dwalk(p: f64) -> Pts {
        let src = r"
            param p = 1e-7;
            x := 1;
            while x <= 99 invariant x >= -1000 and x <= 100 {
                switch {
                    prob(p): { exit; }
                    prob(0.75 * (1 - p)): { x := x + 1; }
                    prob(0.25 * (1 - p)): { x := x - 1; }
                }
            }
            assert false;
        ";
        let mut params = BTreeMap::new();
        params.insert("p".to_string(), p);
        qava_lang::compile(src, &params).unwrap()
    }

    #[test]
    fn quadratic_lower_bound_at_least_affine() {
        // The quadratic class contains the affine templates, and the
        // Handelman certificate at degree 2 subsumes the Farkas one, so
        // the quadratic lower bound must be at least as tight where both
        // succeed. (The invariant here is a bounded box so Handelman has
        // the compactness it likes.)
        let pts = m1dwalk(1e-4);
        let affine = synthesize_lower_bound(&pts).unwrap();
        let quad = synthesize_quadratic_lower_bound(&pts).unwrap();
        assert!(
            quad.bound.ln() >= affine.bound.ln() - 1e-6,
            "quadratic {} below affine {}",
            quad.bound,
            affine.bound
        );
    }

    #[test]
    fn quadratic_lower_bound_sound_against_oracle() {
        let pts = m1dwalk(1e-3);
        let quad = synthesize_quadratic_lower_bound(&pts).unwrap();
        let oracle = crate::fixpoint::VpfOracle::explore(&pts, 2_000_000);
        // The walk ranges over a wide grid; if the oracle fits, check
        // exact soundness, otherwise fall back to simulation.
        match oracle {
            Ok(o) => {
                let (lo, hi) = o.interval(200_000);
                assert!(hi - lo < 1e-6, "oracle converged: [{lo}, {hi}]");
                assert!(
                    quad.bound.to_f64() <= lo + 1e-9,
                    "lower bound {} above true vpf {lo}",
                    quad.bound
                );
            }
            Err(_) => {
                let est =
                    qava_sim::Simulator::new(9).estimate_violation(&pts, 50_000, 1_000_000);
                assert!(quad.bound.to_f64() <= est.upper_ci());
            }
        }
    }

    #[test]
    fn trivial_initial_detected() {
        let pts = qava_lang::compile("x := 0; assert false;", &BTreeMap::new()).unwrap();
        assert!(matches!(
            synthesize_quadratic_lower_bound(&pts),
            Err(PolyLowError::TrivialInitial)
        ));
    }

    #[test]
    fn dead_end_detected() {
        let src = r"
            x := 0;
            while x <= 9 invariant x >= 0 and x <= 10 { x := x + 1; }
            exit;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        assert!(matches!(
            synthesize_quadratic_lower_bound(&pts),
            Err(PolyLowError::DeadEndTransition { .. })
        ));
    }
}
