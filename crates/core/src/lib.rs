#![warn(missing_docs)]

//! # qava-core — quantitative assertion-violation analysis
//!
//! A from-scratch Rust reproduction of *"Quantitative Analysis of Assertion
//! Violations in Probabilistic Programs"* (PLDI 2021): given an affine
//! probabilistic transition system and affine invariants, derive certified
//! **upper and lower bounds** on the probability that execution reaches the
//! assertion-violation location.
//!
//! ## The engine lineup
//!
//! Every synthesis algorithm is a [`engine::BoundEngine`] — a named,
//! runtime-dispatchable handle with a bound direction, an applicability
//! screen, and a uniform run interface ([`engine::AnalysisRequest`] in,
//! [`engine::AnalysisReport`] out: certified bound + certificate +
//! per-engine LP statistics + wall time). Six built-ins ship in the
//! [`engine::EngineRegistry`]:
//!
//! | Engine | Module | Paper | Certifies | Method |
//! |---|---|---|---|---|
//! | `hoeffding-linear` | [`hoeffding`] | §5.1 | upper | affine RepRSM + Hoeffding's lemma, Farkas LPs, Ser ternary search |
//! | `azuma` | [`hoeffding`] | Remark 2 | upper | the POPL'17 Azuma baseline on the same template class |
//! | `explinsyn` | [`explinsyn`] | §5.2 | upper, **complete** for affine exponents | Minkowski decomposition, quantifier elimination, convex programming |
//! | `polyrsm-quadratic` | [`polyrsm`] | Remark 3 | upper | quadratic RepRSM via Handelman certificates |
//! | `explowsyn` | [`explowsyn`] | §6 | lower (under a.s. termination) | Jensen strengthening + Farkas LP |
//! | `polylow` | [`polylow`] | Remark 5 | lower (under a.s. termination) | quadratic templates via Handelman |
//!
//! External engines attach with
//! [`register_engine`](engine::EngineRegistry::register_engine), exactly
//! like LP backends attach to `LpSolver::register_backend` one layer
//! down — and like there, re-registering a name shadows the built-in.
//!
//! ## Racing
//!
//! [`engine::race`] runs the applicable engines of one direction
//! concurrently on the rayon pool, each in its own `LpSolver` session.
//! The first **certified** bound wins; losers are cancelled
//! cooperatively via a shared flag their sessions poll at LP-solve
//! boundaries. Each engine's bound is individually certified, so the
//! race trades tightness for latency, never soundness — and a winner's
//! value is bit-identical to that engine run alone. Loser statistics are
//! kept in a separate `abandoned` bucket
//! ([`engine::RaceOutcome::abandoned`]) so aggregate footers never
//! double-count cancelled work. `qava --race`, `qava --suite --race` and
//! the suite runner's [`suite::runner::race_rows_with`] ride on this.
//!
//! ## Parametric sweeps
//!
//! [`sweep::run_sweep`] walks a benchmark family's points (Coupon
//! `Pr[T > n]`, the Ref `p` ladder, the 3DWalk εmax ladder) in order
//! through one shared `LpSolver` session with **dual-simplex
//! reoptimization** enabled: neighboring points differ only in
//! RHS/objective values, so each LP restarts from the previous optimal
//! basis with a few dual pivots instead of a cold two-phase solve, and
//! the previous point's certified template seeds the next point's ε
//! search ([`engine::AnalysisRequest::eps_seed`]). Every reuse layer
//! falls back to the cold path on failure, and
//! [`sweep::SweepRequest::check_cold`] re-solves each point cold and
//! reports the cold bound if the sweep bound drifts beyond a relative
//! `1e-7` — a sweep is faster than the per-point baseline, never
//! looser. Surfaced as `qava --sweep` /
//! [`suite::runner::sweep_families_with`].
//!
//! ## Failure semantics
//!
//! A certified bound only ever comes from a run that *succeeded*; every
//! failure mode below degrades into an explicit, attributable loser —
//! nothing is silently retried into a different answer.
//!
//! * **Panics.** Each racer runs behind a panic boundary: a candidate
//!   that panics is recorded as [`engine::EngineError::Panicked`] with
//!   empty LP statistics and the remaining candidates keep racing.
//!   Running an engine directly (outside a race) propagates the panic.
//! * **Deadlines.** [`engine::AnalysisRequest::deadline`] sets a
//!   wall-clock budget per engine run, enforced at LP-solve boundaries
//!   through the session deadline — an expired run winds down with
//!   [`engine::EngineError::Cancelled`], exactly like a lost race.
//! * **LP-level degradation.** Inside a session, transient solver
//!   failures are first absorbed by in-backend recovery (watchdog
//!   refactorization, Bland retries) and then by `qava_lp`'s failover
//!   ladder, which re-runs the solve on the next backend rung; the
//!   `LpStats` failover counters in every [`engine::AnalysisReport`]
//!   say when that happened. The chaos suite
//!   ([`suite::runner::run_rows_chaos`], `qava --suite --chaos SEED`)
//!   injects one deterministic recoverable fault per task and asserts
//!   every row still certifies the fault-free bound.
//!
//! ## Deprecation path
//!
//! The historical free-function entry points (`synthesize_reprsm_bound`,
//! `synthesize_upper_bound`, `synthesize_lower_bound`,
//! `synthesize_quadratic_bound`, `synthesize_quadratic_lower_bound` and
//! their `_with` variants) remain as **deprecated** thin shims over the
//! session-threaded `*_in` implementations, so downstream code and old
//! doctests keep compiling. The `*_in` variants themselves are stable —
//! they are what the engine adapters call. Migrate by picking an engine
//! name and going through the registry; see the quickstart below.
//!
//! ## Supporting theory and tooling
//!
//! * [`fixpoint`] — executable Theorems 4.3/4.4: value iteration from `⊥`
//!   and `⊤` brackets the true violation probability on finite instances
//!   (the conformance tests hold every registered engine to it);
//! * [`rsm`] — ranking-supermartingale certificates for the almost-sure
//!   termination side condition;
//! * [`invariants`] — sound invariant propagation onto intermediate control
//!   locations;
//! * [`verify`] — independent numerical re-checking of synthesized pre/post
//!   fixed-points;
//! * [`suite`] — all twelve benchmark programs of the paper's evaluation
//!   (§7, Figures 1–12) with their parameters and the published numbers,
//!   plus the parallel suite driver ([`suite::runner`]) in sequential and
//!   racing modes;
//! * [`logprob`] — log-domain probabilities (bounds reach `1e-3230`).
//!
//! ## Quickstart
//!
//! ```
//! use qava_core::engine::{AnalysisRequest, EngineRegistry};
//!
//! // Fig. 1: the tortoise-hare race. Upper-bound the hare's win probability.
//! let src = r"
//!     x := 40; y := 0;
//!     while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
//!         if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
//!     }
//!     assert x >= 100;
//! ";
//! let pts = qava_lang::compile(src, &Default::default())?;
//! let registry = EngineRegistry::with_builtins();
//! let report = registry
//!     .run_engine("explinsyn", &AnalysisRequest::upper(&pts), Default::default())
//!     .expect("built-in engine");
//! let upper = report.outcome?;
//! assert!(upper.bound.ln() < -15.0); // ≈ 1.5e-7, §3.1 of the paper
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The deprecated shims stay source-compatible:
//!
//! ```
//! # #![allow(deprecated)]
//! # let pts = qava_lang::compile(
//! #     "x := 0; if prob(0.3) { assert false; } else { exit; }",
//! #     &Default::default(),
//! # )?;
//! let upper = qava_core::explinsyn::synthesize_upper_bound(&pts)?;
//! assert!((upper.bound.to_f64() - 0.3).abs() < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod canonical;
pub mod engine;
pub mod explinsyn;
pub mod explowsyn;
pub mod farkas;
pub mod handelman;
pub mod fixpoint;
pub mod hoeffding;
pub mod invariants;
pub mod logprob;
pub mod poly;
pub mod polylow;
pub mod polyrsm;
pub mod rsm;
pub mod suite;
pub mod sweep;
pub mod template;
pub mod verify;

pub use engine::{
    race, race_with, AnalysisReport, AnalysisRequest, BoundEngine, Certificate, Certified,
    Direction, EngineError, EngineRegistry, RaceOutcome,
};
pub use explinsyn::ExpLinSynResult;
pub use explowsyn::ExpLowSynResult;
pub use hoeffding::{BoundKind, RepRsmResult};
pub use logprob::LogProb;
pub use polylow::PolyLowResult;
pub use polyrsm::PolyRsmResult;
pub use rsm::{prove_almost_sure_termination, RsmCertificate};
pub use sweep::{run_sweep, SweepPoint, SweepReport, SweepRequest};
#[allow(deprecated)]
pub use {
    explinsyn::synthesize_upper_bound, explowsyn::synthesize_lower_bound,
    hoeffding::synthesize_reprsm_bound, polylow::synthesize_quadratic_lower_bound,
    polyrsm::synthesize_quadratic_bound,
};
