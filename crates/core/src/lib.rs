#![warn(missing_docs)]

//! # qava-core — quantitative assertion-violation analysis
//!
//! A from-scratch Rust reproduction of *"Quantitative Analysis of Assertion
//! Violations in Probabilistic Programs"* (PLDI 2021): given an affine
//! probabilistic transition system and affine invariants, derive certified
//! **upper and lower bounds** on the probability that execution reaches the
//! assertion-violation location.
//!
//! ## The three algorithms
//!
//! | Module | Paper | Certifies | Method |
//! |---|---|---|---|
//! | [`hoeffding`] | §5.1 | upper bound | RepRSM + Hoeffding's lemma, Farkas LPs, Ser ternary search (plus the POPL'17 Azuma baseline) |
//! | [`explinsyn`] | §5.2 | upper bound, **complete** for affine exponents | Minkowski decomposition, quantifier elimination, convex programming |
//! | [`explowsyn`] | §6 | lower bound (under a.s. termination) | Jensen strengthening + Farkas LP |
//!
//! ## Supporting theory and tooling
//!
//! * [`fixpoint`] — executable Theorems 4.3/4.4: value iteration from `⊥`
//!   and `⊤` brackets the true violation probability on finite instances;
//! * [`rsm`] — ranking-supermartingale certificates for the almost-sure
//!   termination side condition;
//! * [`invariants`] — sound invariant propagation onto intermediate control
//!   locations;
//! * [`verify`] — independent numerical re-checking of synthesized pre/post
//!   fixed-points;
//! * [`suite`] — all twelve benchmark programs of the paper's evaluation
//!   (§7, Figures 1–12) with their parameters and the published numbers;
//! * [`logprob`] — log-domain probabilities (bounds reach `1e-3230`).
//!
//! ## Quickstart
//!
//! ```
//! use qava_core::explinsyn;
//!
//! // Fig. 1: the tortoise-hare race. Upper-bound the hare's win probability.
//! let src = r"
//!     x := 40; y := 0;
//!     while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
//!         if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
//!     }
//!     assert x >= 100;
//! ";
//! let pts = qava_lang::compile(src, &Default::default())?;
//! let upper = explinsyn::synthesize_upper_bound(&pts)?;
//! assert!(upper.bound.ln() < -15.0); // ≈ 1.5e-7, §3.1 of the paper
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod canonical;
pub mod explinsyn;
pub mod explowsyn;
pub mod farkas;
pub mod handelman;
pub mod fixpoint;
pub mod hoeffding;
pub mod invariants;
pub mod logprob;
pub mod poly;
pub mod polylow;
pub mod polyrsm;
pub mod rsm;
pub mod suite;
pub mod template;
pub mod verify;

pub use explinsyn::{synthesize_upper_bound, ExpLinSynResult};
pub use explowsyn::{synthesize_lower_bound, ExpLowSynResult};
pub use hoeffding::{synthesize_reprsm_bound, BoundKind, RepRsmResult};
pub use logprob::LogProb;
pub use polylow::{synthesize_quadratic_lower_bound, PolyLowResult};
pub use polyrsm::{synthesize_quadratic_bound, PolyRsmResult};
pub use rsm::{prove_almost_sure_termination, RsmCertificate};
