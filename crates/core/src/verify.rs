//! Independent numerical verification of synthesized templates.
//!
//! A synthesized template is only as trustworthy as the constraint
//! generation that produced it, so this module re-checks the fixed-point
//! inequalities *semantically*: it samples points of each transition's
//! `Ψ = I ∧ guard` (via the Minkowski generators) and evaluates
//!
//! ```text
//! Σ_j p_j · exp(α_j·v + β_j) · Π_s E[exp(γ_{j,s}·r_s)]
//! ```
//!
//! exactly (discrete sites by summation, uniform sites by closed-form MGF),
//! confirming `≤ 1` for pre fixed-points (upper bounds, Theorem 4.1/(1))
//! or `≥ 1` for post fixed-points (lower bounds, Theorem 4.1/(2)).

use crate::canonical::{canonicalize, CanonicalConstraint};
use crate::template::TemplateSpace;
use qava_convex::UniformMgf;
use qava_pts::Pts;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// A single fixed-point violation found by sampling.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Transition whose canonical constraint failed.
    pub transition_index: usize,
    /// The sampled valuation.
    pub point: Vec<f64>,
    /// The canonical left-hand side at that point.
    pub lhs: f64,
}

/// Checks the **pre** fixed-point property (`LHS ≤ 1`) of an exponential
/// template given by the raw solution vector over a fresh
/// `TemplateSpace::new(pts, false)` allocation.
///
/// # Errors
///
/// The list of sampled violations, if any.
pub fn check_pre_fixed_point(
    pts: &Pts,
    solution: &[f64],
    samples_per_constraint: usize,
    seed: u64,
) -> Result<(), Vec<Violation>> {
    check(pts, solution, samples_per_constraint, seed, true)
}

/// Checks the **post** fixed-point property (`LHS ≥ 1`).
///
/// # Errors
///
/// The list of sampled violations, if any.
pub fn check_post_fixed_point(
    pts: &Pts,
    solution: &[f64],
    samples_per_constraint: usize,
    seed: u64,
) -> Result<(), Vec<Violation>> {
    check(pts, solution, samples_per_constraint, seed, false)
}

fn check(
    pts: &Pts,
    solution: &[f64],
    samples_per_constraint: usize,
    seed: u64,
    pre: bool,
) -> Result<(), Vec<Violation>> {
    let space = TemplateSpace::new(pts, false);
    assert!(
        solution.len() >= space.len(),
        "solution vector shorter than the template space"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut violations = Vec::new();
    for con in canonicalize(pts, &space) {
        if con.terms.is_empty() {
            continue;
        }
        let Some((vertices, cone)) = con.guard.minkowski_decompose() else {
            continue;
        };
        for _ in 0..samples_per_constraint {
            let point = sample_point(&vertices, &cone, &mut rng);
            let lhs = canonical_lhs(&con, solution, &point);
            let ok = if pre { lhs <= 1.0 + 1e-6 } else { lhs >= 1.0 - 1e-6 };
            if !ok {
                violations.push(Violation {
                    transition_index: con.transition_index,
                    point,
                    lhs,
                });
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

/// Samples a point of `conv(V) + cone(R) + span(L)`.
fn sample_point(
    vertices: &[Vec<f64>],
    cone: &qava_polyhedra::ConeGenerators,
    rng: &mut StdRng,
) -> Vec<f64> {
    let dim = vertices[0].len();
    let mut weights: Vec<f64> = vertices.iter().map(|_| rng.gen_range(0.0..1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut x = vec![0.0; dim];
    for (w, v) in weights.iter_mut().zip(vertices) {
        *w /= total;
        qava_linalg::vecops::axpy(*w, v, &mut x);
    }
    for r in &cone.rays {
        qava_linalg::vecops::axpy(rng.gen_range(0.0..20.0), r, &mut x);
    }
    for l in &cone.lines {
        qava_linalg::vecops::axpy(rng.gen_range(-20.0..20.0), l, &mut x);
    }
    x
}

/// Evaluates the canonical left-hand side exactly at a concrete valuation.
pub(crate) fn canonical_lhs(con: &CanonicalConstraint, solution: &[f64], v: &[f64]) -> f64 {
    let mut total = 0.0;
    for term in &con.terms {
        let mut exponent = term.beta.eval(solution);
        for (a, &vk) in term.alpha.iter().zip(v) {
            exponent += a.eval(solution) * vk;
        }
        let mut factor = 1.0;
        for (dist, gamma) in &term.gammas {
            let g = gamma.eval(solution);
            factor *= match dist.discrete_points() {
                Some(points) => points.iter().map(|&(val, p)| p * (g * val).exp()).sum::<f64>(),
                None => {
                    let (lo, hi) = dist.support_bounds();
                    UniformMgf::new(lo, hi).value(g)
                }
            };
        }
        total += term.prob * exponent.exp() * factor;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn a_wrong_template_is_caught() {
        let src = r"
            x := 0;
            while x <= 9 invariant x <= 10 {
                if prob(0.5) { x := x + 1; } else { x := x + 1; }
            }
            assert x <= 5;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let space = TemplateSpace::new(&pts, false);
        // The all-zeros template means θ ≡ 1 everywhere; the violation
        // transition contributes exp(0) = 1 and the loop 1 ≤ 1 holds, but a
        // positive slope on x breaks the loop constraint.
        let mut bad = vec![0.0; space.len()];
        let head = pts.loc_by_name("while@3").unwrap();
        bad[space.a_index(head, 0)] = 1.0; // θ grows with x but the loop increments x
        let r = check_pre_fixed_point(&pts, &bad, 50, 1);
        assert!(r.is_err(), "growing exponent cannot be a pre fixed-point");
    }
}
