//! Log-domain probabilities.
//!
//! The paper's bounds reach values like `1e-3230` (Table 1, 3DWalk), far
//! below `f64::MIN_POSITIVE`, so every bound in `qava` is carried as a
//! natural-log value and only exponentiated for display when representable.

/// A probability stored as its natural logarithm.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct LogProb(f64);

impl LogProb {
    /// Probability 1 (`ln 1 = 0`).
    pub const ONE: LogProb = LogProb(0.0);

    /// Probability 0 (`ln 0 = −∞`).
    pub const ZERO: LogProb = LogProb(f64::NEG_INFINITY);

    /// Wraps a natural-log value.
    pub fn from_ln(ln: f64) -> Self {
        LogProb(ln)
    }

    /// Converts from a linear-domain probability.
    ///
    /// # Panics
    ///
    /// Panics if `p < 0`.
    pub fn from_prob(p: f64) -> Self {
        assert!(p >= 0.0, "probabilities cannot be negative");
        LogProb(p.ln())
    }

    /// The natural log.
    pub fn ln(self) -> f64 {
        self.0
    }

    /// The base-10 log, convenient for order-of-magnitude reporting.
    pub fn log10(self) -> f64 {
        self.0 / std::f64::consts::LN_10
    }

    /// The linear-domain value; underflows to 0 below ~1e-308.
    pub fn to_f64(self) -> f64 {
        self.0.exp()
    }

    /// Clamps to `[0, 1]` in the log domain (bounds above 1 are reported
    /// as the trivial bound 1).
    #[must_use]
    pub fn clamp_to_unit(self) -> Self {
        LogProb(self.0.min(0.0))
    }

    /// Ratio `self / other` in orders of magnitude (base 10) — the
    /// "Ratio" column of the paper's Table 1.
    pub fn ratio_log10(self, other: LogProb) -> f64 {
        self.log10() - other.log10()
    }
}

impl std::fmt::Display for LogProb {
    /// Formats as a scientific-notation probability, falling back to
    /// `10^…` notation below the f64 range.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 == f64::NEG_INFINITY {
            return write!(f, "0");
        }
        if self.0 > -690.0 {
            write!(f, "{:.3e}", self.0.exp())
        } else {
            let l10 = self.log10();
            let exp = l10.floor();
            let mantissa = 10f64.powf(l10 - exp);
            write!(f, "{mantissa:.2}e{exp:.0}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = LogProb::from_prob(0.25);
        assert!((p.to_f64() - 0.25).abs() < 1e-15);
        assert!((p.log10() - (-0.602)).abs() < 1e-3);
    }

    #[test]
    fn deep_underflow_displays() {
        let p = LogProb::from_ln(-7437.0); // ~1e-3230, the 3DWalk scale
        let s = p.to_string();
        assert!(s.contains("e-3230"), "got {s}");
        assert_eq!(p.to_f64(), 0.0, "linear domain underflows as expected");
    }

    #[test]
    fn clamp() {
        assert_eq!(LogProb::from_ln(3.0).clamp_to_unit(), LogProb::ONE);
        assert_eq!(LogProb::from_ln(-1.0).clamp_to_unit(), LogProb::from_ln(-1.0));
    }

    #[test]
    fn ordering() {
        assert!(LogProb::from_prob(0.1) < LogProb::from_prob(0.2));
        assert!(LogProb::ZERO < LogProb::from_prob(1e-300));
    }

    #[test]
    fn zero_and_one_display() {
        assert_eq!(LogProb::ZERO.to_string(), "0");
        assert_eq!(LogProb::ONE.to_string(), "1.000e0");
    }

    #[test]
    fn ratio_in_orders_of_magnitude() {
        let paper = LogProb::from_prob(1e-4);
        let ours = LogProb::from_ln(-7437.0);
        assert!(paper.ratio_log10(ours) > 3000.0, "thousands of orders of magnitude");
    }
}
