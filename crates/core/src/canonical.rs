//! Canonicalization of pre/post fixed-point constraints (Step 3 of
//! ExpLinSyn, §5.2, shared with ExpLowSyn, §6).
//!
//! For a transition `τ = (ℓ, φ, F₁ … F_k)` and exponential templates
//! `θ(ℓ, v) = exp(a_ℓ·v + b_ℓ)`, dividing the fixed-point inequality by
//! `θ(ℓ, v)` yields the canonical form
//!
//! ```text
//! Σ_j p_j · exp(α_j·v + β_j) · Π_s E[exp(γ_{j,s}·r_s)]   ⋚   1
//! ```
//!
//! over `Ψ = I(ℓ) ∧ φ`, where for a fork with destination `d`, update
//! `v' = Q·v + Σ_s c_s·r_s + e`:
//!
//! * `α_j = a_d·Q − a_ℓ`,
//! * `β_j = a_d·e + b_d − b_ℓ`,
//! * `γ_{j,s} = a_d·c_s`;
//!
//! forks to `ℓ_f` contribute `α = −a_ℓ, β = −b_ℓ` (since `θ(ℓ_f) ≡ 1`), and
//! forks to `ℓ_t` vanish (`θ(ℓ_t) ≡ 0`) but their probability mass is
//! remembered for the `Q = Σ' p_j` factor of the Jensen strengthening.

use crate::template::{TemplateSpace, UCoef};
use qava_pts::{Distribution, LocId, Pts};
use qava_polyhedra::Polyhedron;

/// One fork of a canonical constraint.
#[derive(Debug, Clone)]
pub struct CanonicalTerm {
    /// Fork probability `p_j`.
    pub prob: f64,
    /// `α_j` — one affine-in-unknowns coefficient per program variable.
    pub alpha: Vec<UCoef>,
    /// `β_j`.
    pub beta: UCoef,
    /// `(distribution, γ_{j,s})` per sampling site of the fork's update.
    pub gammas: Vec<(Distribution, UCoef)>,
}

/// The canonical constraint of one transition.
#[derive(Debug, Clone)]
pub struct CanonicalConstraint {
    /// Source location.
    pub src: LocId,
    /// Index of the transition in `pts.transitions()`.
    pub transition_index: usize,
    /// `Ψ = I(src) ∧ guard` (closure).
    pub guard: Polyhedron,
    /// Non-vanishing fork terms.
    pub terms: Vec<CanonicalTerm>,
    /// Probability mass of forks into `ℓ_t` (vanishing terms).
    pub mass_to_terminal: f64,
}

impl CanonicalConstraint {
    /// `Q = Σ' p_j`, the paper's normalization constant of Step 4 (§6).
    pub fn live_mass(&self) -> f64 {
        1.0 - self.mass_to_terminal
    }
}

/// Canonicalizes every transition of `pts` whose `Ψ` is nonempty, probing
/// emptiness on this thread's default solver session.
///
/// The `space` must have been created with `include_absorbing = false`:
/// absorbing locations have no template in the exponential algorithms.
pub fn canonicalize(pts: &Pts, space: &TemplateSpace) -> Vec<CanonicalConstraint> {
    qava_lp::with_default_solver(|s| canonicalize_in(pts, space, s))
}

/// [`canonicalize`] with the `Ψ`-emptiness probes threaded through an
/// explicit solver session.
pub fn canonicalize_in(
    pts: &Pts,
    space: &TemplateSpace,
    solver: &mut qava_lp::LpSolver,
) -> Vec<CanonicalConstraint> {
    let n = space.len();
    let nvars = pts.num_vars();
    let mut out = Vec::new();
    for (ti, t) in pts.transitions().iter().enumerate() {
        let psi = pts.invariant(t.src).intersection(&t.guard);
        if psi.is_empty_in(solver) {
            continue;
        }
        let mut terms = Vec::new();
        let mut mass_to_terminal = 0.0;
        for fork in &t.forks {
            if fork.dest == pts.terminal_location() {
                mass_to_terminal += fork.prob;
                continue;
            }
            let mut alpha: Vec<UCoef> = (0..nvars).map(|_| UCoef::zero(n)).collect();
            let mut beta = UCoef::zero(n);
            let mut gammas = Vec::new();
            // −a_ℓ·v − b_ℓ from dividing by θ(src).
            for (k, a) in alpha.iter_mut().enumerate() {
                a.add_unknown(space.a_index(t.src, k), -1.0);
            }
            beta.add_unknown(space.b_index(t.src), -1.0);
            if fork.dest != pts.failure_location() {
                let q = fork.update.matrix();
                let e = fork.update.offset();
                for k in 0..nvars {
                    // (a_d·Q)_k = Σ_m a_d[m]·Q[m,k].
                    for m in 0..nvars {
                        if q[(m, k)] != 0.0 {
                            alpha[k].add_unknown(space.a_index(fork.dest, m), q[(m, k)]);
                        }
                    }
                }
                for (m, &em) in e.iter().enumerate() {
                    if em != 0.0 {
                        beta.add_unknown(space.a_index(fork.dest, m), em);
                    }
                }
                beta.add_unknown(space.b_index(fork.dest), 1.0);
                for site in fork.update.samples() {
                    let mut gamma = UCoef::zero(n);
                    for (m, &cm) in site.coeffs.iter().enumerate() {
                        if cm != 0.0 {
                            gamma.add_unknown(space.a_index(fork.dest, m), cm);
                        }
                    }
                    gammas.push((site.dist.clone(), gamma));
                }
            }
            terms.push(CanonicalTerm { prob: fork.prob, alpha, beta, gammas });
        }
        out.push(CanonicalConstraint {
            src: t.src,
            transition_index: ti,
            guard: psi,
            terms,
            mass_to_terminal,
        });
    }
    out
}

/// Weighted exp-affine summands from discrete sites: `(weight, exponent)`.
pub type DiscreteSummands = Vec<(f64, UCoef)>;

/// Uniform-site MGF factors shared by all summands: `(lo, hi, γ)`.
pub type ContinuousSummands = Vec<(f64, f64, UCoef)>;

/// Expands a canonical term at a fixed valuation `v*` into weighted
/// exp-affine summands by multiplying out the *discrete* sampling sites:
/// each combination of discrete support points becomes one
/// `(weight, exponent)` pair; uniform sites are returned separately for the
/// convex solver's MGF factors.
///
/// Returns `(summands, uniform_sites)` where each summand is
/// `(weight, exponent-UCoef)` and `uniform_sites` is shared by all
/// summands (`(lo, hi, γ)` per site).
pub fn expand_term_at_vertex(
    term: &CanonicalTerm,
    vertex: &[f64],
    n_unknowns: usize,
) -> (DiscreteSummands, ContinuousSummands) {
    // Base exponent α·v* + β.
    let mut base = UCoef::zero(n_unknowns);
    base.add_scaled(&term.beta, 1.0);
    for (a, &vk) in term.alpha.iter().zip(vertex) {
        base.add_scaled(a, vk);
    }

    let mut summands: Vec<(f64, UCoef)> = vec![(term.prob, base)];
    let mut uniform_sites = Vec::new();
    for (dist, gamma) in &term.gammas {
        match dist.discrete_points() {
            Some(points) => {
                let mut next = Vec::with_capacity(summands.len() * points.len());
                for (w, expo) in &summands {
                    for &(value, p) in &points {
                        let mut e = expo.clone();
                        e.add_scaled(gamma, value);
                        next.push((w * p, e));
                    }
                }
                summands = next;
            }
            None => {
                let (lo, hi) = dist.support_bounds();
                uniform_sites.push((lo, hi, gamma.clone()));
            }
        }
    }
    (summands, uniform_sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qava_pts::{AffineUpdate, Fork, PtsBuilder};
    use qava_polyhedra::Halfspace;

    /// The tortoise-hare race PTS (Fig. 1) built directly.
    fn race() -> Pts {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        b.add_var("y");
        let head = b.add_location("head");
        b.set_initial(head, vec![40.0, 0.0]);
        b.set_invariant(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 100.0), Halfspace::le(vec![0.0, 1.0], 101.0)],
            ),
        );
        let step1 = AffineUpdate::identity(2).with_offset(vec![1.0, 2.0]);
        let step2 = AffineUpdate::identity(2).with_offset(vec![1.0, 0.0]);
        b.add_transition(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 99.0), Halfspace::le(vec![0.0, 1.0], 99.0)],
            ),
            vec![Fork::new(head, 0.5, step1), Fork::new(head, 0.5, step2)],
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(2, vec![Halfspace::ge(vec![1.0, 0.0], 100.0)]),
            vec![Fork::new(b.terminal_location(), 1.0, AffineUpdate::identity(2))],
        );
        b.add_transition(
            head,
            Polyhedron::from_constraints(
                2,
                vec![Halfspace::le(vec![1.0, 0.0], 99.0), Halfspace::ge(vec![0.0, 1.0], 100.0)],
            ),
            vec![Fork::new(b.failure_location(), 1.0, AffineUpdate::identity(2))],
        );
        b.finish().unwrap()
    }

    #[test]
    fn race_canonicalization_matches_example_5() {
        let pts = race();
        let space = TemplateSpace::new(&pts, false);
        let cons = canonicalize(&pts, &space);
        assert_eq!(cons.len(), 3);

        // Loop transition: identity Q, offsets (1,2) and (1,0) — α must be
        // zero (a_head − a_head) and β = a·e (same location).
        let head = pts.loc_by_name("head").unwrap();
        let loop_c = &cons[0];
        assert_eq!(loop_c.terms.len(), 2);
        let x = {
            // a = (2, 3), b = 7.
            let mut x = vec![0.0; space.len()];
            x[space.a_index(head, 0)] = 2.0;
            x[space.a_index(head, 1)] = 3.0;
            x[space.b_index(head)] = 7.0;
            x
        };
        for k in 0..2 {
            assert_eq!(loop_c.terms[0].alpha[k].eval(&x), 0.0, "identity update ⇒ α = 0");
        }
        // β₁ = a·(1,2) = 2 + 6 = 8 (b cancels).
        assert!((loop_c.terms[0].beta.eval(&x) - 8.0).abs() < 1e-12);
        // β₂ = a·(1,0) = 2.
        assert!((loop_c.terms[1].beta.eval(&x) - 2.0).abs() < 1e-12);

        // Terminal transition: no terms, all mass to ℓ_t.
        assert!(cons[1].terms.is_empty());
        assert!((cons[1].mass_to_terminal - 1.0).abs() < 1e-12);
        assert_eq!(cons[1].live_mass(), 0.0);

        // Failure transition: α = −a, β = −b.
        let fail_c = &cons[2];
        assert_eq!(fail_c.terms.len(), 1);
        assert_eq!(fail_c.terms[0].alpha[0].eval(&x), -2.0);
        assert_eq!(fail_c.terms[0].alpha[1].eval(&x), -3.0);
        assert_eq!(fail_c.terms[0].beta.eval(&x), -7.0);
    }

    #[test]
    fn empty_psi_transitions_skipped() {
        let mut pts = race();
        // Shrink the invariant to make the failure guard unsatisfiable.
        pts.set_invariant(
            pts.loc_by_name("head").unwrap(),
            Polyhedron::from_constraints(2, vec![Halfspace::le(vec![0.0, 1.0], 50.0)]),
        );
        let space = TemplateSpace::new(&pts, false);
        let cons = canonicalize(&pts, &space);
        assert_eq!(cons.len(), 2, "y ≥ 100 conflicts with y ≤ 50");
    }

    #[test]
    fn expansion_multiplies_discrete_sites() {
        let pts = race();
        let space = TemplateSpace::new(&pts, false);
        let n = space.len();
        let head = pts.loc_by_name("head").unwrap();
        // A synthetic term with one two-point site and one uniform site.
        let mut gamma = UCoef::zero(n);
        gamma.add_unknown(space.a_index(head, 0), 1.0);
        let term = CanonicalTerm {
            prob: 0.5,
            alpha: vec![UCoef::zero(n), UCoef::zero(n)],
            beta: UCoef::zero(n),
            gammas: vec![
                (Distribution::coin(-1.0, 1.0), gamma.clone()),
                (Distribution::Uniform(0.0, 2.0), gamma.clone()),
            ],
        };
        let (summands, uniforms) = expand_term_at_vertex(&term, &[0.0, 0.0], n);
        assert_eq!(summands.len(), 2, "coin expands to two summands");
        assert!((summands[0].0 - 0.25).abs() < 1e-12);
        assert_eq!(uniforms.len(), 1);
        assert_eq!(uniforms[0].0, 0.0);
        assert_eq!(uniforms[0].1, 2.0);
    }
}
