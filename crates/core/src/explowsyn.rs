//! **ExpLowSyn** (§6): sound polynomial-time synthesis of exponential
//! *lower* bounds on the assertion-violation probability of almost-surely
//! terminating affine PTSs.
//!
//! By Theorem 4.4 the fixed point of the probability transformer is unique
//! under almost-sure termination, so every *bounded post fixed-point* is a
//! lower bound on `vpf` (Theorem 4.1, equation (2)). The algorithm:
//!
//! 1. exponential templates `θ(ℓ, v) = exp(a_ℓ·v + b_ℓ)` per live location;
//! 2. boundedness (Step 2): `a_ℓ·v + b_ℓ ≤ M` on `I(ℓ)` with a fresh
//!    unknown `M` — this puts `θ` inside some lattice `K_M`;
//! 3. canonical post fixed-point constraints
//!    `Σ_j p_j·exp(α_j·v+β_j)·E[exp(γ_j·r)] ≥ 1` over `Ψ`;
//! 4. **Jensen strengthening** (Theorem 6.1): with `Q = Σ' p_j`,
//!    `Q⁻¹·Σ_j p_j·(α_j·v + β_j + γ_j·E[r]) ≥ −ln Q` — linear in the
//!    unknowns (sound but incomplete);
//! 5. Farkas' lemma and one LP, maximizing `a_init·v_init + b_init`.
//!
//! Callers are responsible for the almost-sure-termination side condition
//! (provable with [`crate::rsm`]).

use crate::canonical::canonicalize_in;
use crate::farkas::encode_implication;
use crate::logprob::LogProb;
use crate::template::{SolvedTemplate, TemplateSpace, UCoef};
use qava_lp::{Cmp, LinExpr, LpBuilder, LpError, LpSolver, VarId};
use qava_pts::Pts;

/// Errors from [`synthesize_lower_bound`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExpLowSynError {
    /// The Jensen-strengthened LP is infeasible: no exponential post
    /// fixed-point with affine exponent is certifiable this way.
    NoTemplate,
    /// Some transition sends all probability mass to `ℓ_t` from a
    /// satisfiable guard — an exponential (hence positive) template cannot
    /// be a post fixed-point there.
    DeadEndTransition {
        /// Index of the offending transition.
        transition: usize,
    },
    /// The initial location is absorbing.
    TrivialInitial,
    /// LP failure.
    Lp(LpError),
}

impl std::fmt::Display for ExpLowSynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpLowSynError::NoTemplate => {
                write!(f, "no exponential post fixed-point certifiable via Jensen strengthening")
            }
            ExpLowSynError::DeadEndTransition { transition } => write!(
                f,
                "transition {transition} moves to ℓ_t with probability 1; positive templates cannot lower-bound it"
            ),
            ExpLowSynError::TrivialInitial => write!(f, "initial location is absorbing"),
            ExpLowSynError::Lp(e) => write!(f, "LP failure: {e}"),
        }
    }
}

impl std::error::Error for ExpLowSynError {}

/// A synthesized exponential lower bound.
#[derive(Debug, Clone)]
pub struct ExpLowSynResult {
    /// Certified lower bound `exp(a_init·v_init + b_init)` on the violation
    /// probability (valid only under almost-sure termination).
    pub bound: LogProb,
    /// The synthesized template (for the symbolic Table 5).
    pub template: SolvedTemplate,
    /// Raw solution over the template unknowns.
    pub solution: Vec<f64>,
    /// The boundedness witness `M` of Step 2.
    pub lattice_bound: f64,
}

/// Runs ExpLowSyn.
///
/// The result is a sound lower bound **provided** the PTS terminates almost
/// surely from every reachable state (the paper's standing assumption for
/// LQAVA; see [`crate::rsm::prove_almost_sure_termination`]).
///
/// Deprecated shim over [`synthesize_lower_bound_in`] with a private
/// throwaway session; new code goes through the engine API (`explowsyn`
/// in an [`crate::engine::EngineRegistry`]) or threads an explicit
/// session.
///
/// # Errors
///
/// See [`ExpLowSynError`].
#[deprecated(note = "use the `explowsyn` engine via `qava_core::engine`, \
                     or `synthesize_lower_bound_in` with an explicit \
                     `LpSolver` session")]
pub fn synthesize_lower_bound(pts: &Pts) -> Result<ExpLowSynResult, ExpLowSynError> {
    synthesize_lower_bound_in(pts, &mut LpSolver::new())
}

/// [`synthesize_lower_bound`] threading the canonicalization emptiness
/// probes and the Jensen-strengthened LP through the given solver
/// session.
///
/// # Errors
///
/// See [`ExpLowSynError`].
pub fn synthesize_lower_bound_in(
    pts: &Pts,
    solver: &mut LpSolver,
) -> Result<ExpLowSynResult, ExpLowSynError> {
    let init = pts.initial_state();
    if pts.is_absorbing(init.loc) {
        return Err(ExpLowSynError::TrivialInitial);
    }
    let mut space = TemplateSpace::new(pts, false);
    let m_idx = space.add_extra("M");
    let n = space.len();

    let mut lp = LpBuilder::new();
    let unknowns: Vec<VarId> = (0..n).map(|i| lp.add_var(format!("u{i}"))).collect();

    // Step 2 (boundedness): ∀v ∈ I(ℓ): a_ℓ·v + b_ℓ − M ≤ 0.
    let nvars = pts.num_vars();
    for l in pts.live_locations() {
        let c: Vec<UCoef> = (0..nvars)
            .map(|k| {
                let mut u = UCoef::zero(n);
                u.add_unknown(space.a_index(l, k), 1.0);
                u
            })
            .collect();
        let mut d = UCoef::zero(n);
        d.add_unknown(space.b_index(l), -1.0);
        d.add_unknown(m_idx, 1.0);
        encode_implication(&mut lp, &unknowns, pts.invariant(l), &c, &d);
    }

    // Steps 3–4: Jensen-strengthened post fixed-point rows.
    for con in canonicalize_in(pts, &space, solver) {
        let q = con.live_mass();
        if q <= 1e-12 {
            return Err(ExpLowSynError::DeadEndTransition {
                transition: con.transition_index,
            });
        }
        // Q⁻¹·Σ_j p_j·(α_j·v + β_j + Σ_s γ_s·E[r_s]) ≥ −ln Q
        //  ⇔  −Σ c(x)·v ≤ κ(x) + Q·ln Q   (after multiplying by Q > 0).
        let mut c: Vec<UCoef> = (0..nvars).map(|_| UCoef::zero(n)).collect();
        let mut kappa = UCoef::zero(n);
        for term in &con.terms {
            for (ck, a) in c.iter_mut().zip(&term.alpha) {
                ck.add_scaled(a, term.prob);
            }
            kappa.add_scaled(&term.beta, term.prob);
            for (dist, gamma) in &term.gammas {
                kappa.add_scaled(gamma, term.prob * dist.mean());
            }
        }
        let neg_c: Vec<UCoef> = c.iter().map(UCoef::negated).collect();
        let mut d = kappa;
        d.constant += q * q.ln();
        encode_implication(&mut lp, &unknowns, &con.guard, &neg_c, &d);
    }

    // The bound can never certify above 1: a_init·v_init + b_init ≤ 0.
    // (Implied by soundness at any solution; keeps the LP bounded above.)
    let eta_init = space.eta_at(init.loc, &init.vals);
    let mut cut = LinExpr::new();
    for (i, &coef) in eta_init.lin.iter().enumerate() {
        if coef != 0.0 {
            cut = cut.term(unknowns[i], coef);
        }
    }
    lp.constrain(cut.clone(), Cmp::Le, -eta_init.constant);

    lp.maximize(cut);
    let sol = match solver.solve(&lp) {
        Ok(s) => s,
        Err(LpError::Infeasible) => return Err(ExpLowSynError::NoTemplate),
        Err(e) => return Err(ExpLowSynError::Lp(e)),
    };
    let x: Vec<f64> = unknowns.iter().map(|&v| sol.value(v)).collect();
    Ok(ExpLowSynResult {
        bound: LogProb::from_ln(sol.objective).clamp_to_unit(),
        template: SolvedTemplate::from_solution(pts, &space, &x),
        lattice_bound: x[m_idx],
        solution: x,
    })
}

#[cfg(test)]
// The deprecated session-less shims keep their behavioral coverage here
// until they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// §3.3 / Fig. 3: the random walk on unreliable hardware.
    fn m1dwalk(p: f64) -> Pts {
        let src = r"
            param p = 1e-7;
            x := 1;
            while x <= 99 invariant x <= 100 {
                switch {
                    prob(p): { exit; }
                    prob(0.75 * (1 - p)): { x := x + 1; }
                    prob(0.25 * (1 - p)): { x := x - 1; }
                }
            }
            assert false;
        ";
        let mut params = BTreeMap::new();
        params.insert("p".to_string(), p);
        qava_lang::compile(src, &params).unwrap()
    }

    #[test]
    fn m1dwalk_matches_paper_row() {
        // The optimal Jensen-strengthened solution is a = −2·ln(1−p) (from
        // 0.75a − 0.25a ≥ −ln(1−p)) and b = −100a (boundedness of a·x + b
        // over the invariant x ≤ 100), giving exp(−99a) at x = 1. For
        // p = 1e-7 that is exp(−1.98e-5) ≈ 0.99998 — exactly the number the
        // paper derives in §3.3 and prints symbolically in Table 5
        // (exp(2e-7·x − 2e-5)). Table 2's figures (e.g. 0.999984) are
        // slightly looser/inconsistent with the paper's own symbolic rows,
        // so we assert against the closed form.
        for p in [1e-7f64, 1e-5, 1e-4] {
            let a = -2.0 * (1.0 - p).ln();
            let expected = (-99.0 * a).exp();
            let r = synthesize_lower_bound(&m1dwalk(p)).unwrap();
            let got = r.bound.to_f64();
            assert!(
                (got - expected).abs() < 1e-6,
                "p = {p}: expected ≈ {expected}, got {got}"
            );
        }
    }

    #[test]
    fn lower_bound_is_post_fixed_point() {
        let pts = m1dwalk(1e-5);
        let r = synthesize_lower_bound(&pts).unwrap();
        let report = crate::verify::check_post_fixed_point(&pts, &r.solution, 300, 5);
        assert!(report.is_ok(), "violations: {report:?}");
    }

    #[test]
    fn lower_never_exceeds_upper() {
        let pts = m1dwalk(1e-4);
        let lo = synthesize_lower_bound(&pts).unwrap();
        let hi = crate::explinsyn::synthesize_upper_bound(&pts).unwrap();
        assert!(
            lo.bound.ln() <= hi.bound.ln() + 1e-6,
            "lower {} above upper {}",
            lo.bound,
            hi.bound
        );
    }

    #[test]
    fn coin_flip_lower_bound_exact() {
        let src = r"
            x := 0;
            if prob(0.3) { assert false; } else { exit; }
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let r = synthesize_lower_bound(&pts).unwrap();
        assert!(
            (r.bound.to_f64() - 0.3).abs() < 1e-6,
            "expected 0.3, got {}",
            r.bound.to_f64()
        );
    }

    #[test]
    fn dead_end_detected() {
        // A guard region from which the program always terminates silently:
        // the post fixed-point cannot be exponential there.
        let src = r"
            x := 0;
            while x <= 9 invariant x <= 10 { x := x + 1; }
            exit;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let r = synthesize_lower_bound(&pts);
        assert!(
            matches!(r, Err(ExpLowSynError::DeadEndTransition { .. })),
            "got {r:?}"
        );
    }
}
