//! The twelve benchmark programs and their table rows.

use super::{sci, Benchmark, Category, Direction, PaperReference};
use std::collections::BTreeMap;

fn params(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
}

// ---------------------------------------------------------------- Deviation

/// RdAdder (Fig 4, reconstructed): 500 fair random increments; deviation of
/// the sum `x` from its mean 250 by at least `d`.
pub const RDADDER: &str = r"
    param n = 500;
    param d = 25;
    i := 0; x := 0;
    while i <= n - 1 invariant i >= 0 and i <= n and x >= 0 and x <= i {
        if prob(0.5) { i, x := i + 1, x + 1; } else { i := i + 1; }
    }
    assert x <= n / 2 - 1 + d;
";

/// The three RdAdder rows of Table 1.
pub fn rdadder_rows() -> Vec<Benchmark> {
    [
        (25.0, sci(7.54, -2), sci(7.43, -2), sci(8.00, -2)),
        (50.0, sci(3.95, -5), sci(3.54, -5), sci(4.54, -5)),
        (75.0, sci(1.44, -10), sci(9.17, -11), sci(1.69, -10)),
    ]
    .into_iter()
    .map(|(d, h, e, p)| Benchmark {
        name: "RdAdder",
        category: Category::Deviation,
        direction: Direction::Upper,
        label: format!("Pr[X − E[X] ≥ {d}]"),
        source: RDADDER,
        params: params(&[("d", d)]),
        paper: PaperReference {
            hoeffding: Some(h),
            explinsyn: Some(e),
            previous: Some(p),
            ..Default::default()
        },
    })
    .collect()
}

/// Robot (Fig 5, abstracted): the dead-reckoning drift `d = x − ex` takes a
/// ±0.05 noise kick on the noisy move command (probability 0.1 — Fig 5
/// elides the other commands, and the paper's own Table 4 exponent
/// coefficient ≈13.85 on `x − ex` pins the kick probability to 0.1; a 0.4
/// kick rate would cap every sound exponential bound near `e^{-3}`, far
/// above the paper's `9.64e-6`) over 500 iterations.
pub const ROBOT: &str = r"
    param n = 500;
    param dev = 1.8;
    i := 0; d := 0;
    while i <= n - 1 invariant i >= 0 and i <= n and d <= 0.05 * i and d >= -(0.05 * i) {
        switch {
            prob(0.05): { i, d := i + 1, d + 0.05; }
            prob(0.05): { i, d := i + 1, d - 0.05; }
            prob(0.9): { i := i + 1; }
        }
    }
    assert d <= dev - 0.05;
";

/// The three Robot rows of Table 1.
pub fn robot_rows() -> Vec<Benchmark> {
    [
        (1.8, sci(1.66, -1), sci(9.64, -6), sci(2.04, -5)),
        (2.0, sci(6.81, -3), sci(4.78, -7), sci(1.62, -6)),
        (2.2, sci(5.66, -5), sci(1.51, -8), sci(9.85, -8)),
    ]
    .into_iter()
    .map(|(dev, h, e, p)| Benchmark {
        name: "Robot",
        category: Category::Deviation,
        direction: Direction::Upper,
        label: format!("Pr[X − E[X] ≥ {dev}]"),
        source: ROBOT,
        params: params(&[("dev", dev)]),
        paper: PaperReference {
            hoeffding: Some(h),
            explinsyn: Some(e),
            previous: Some(p),
            ..Default::default()
        },
    })
    .collect()
}

// ------------------------------------------------------------ Concentration

/// Coupon (Fig 9): coupon collector with 5 items and phase-dependent success
/// probabilities; violation iff collection exceeds `n` rounds.
pub const COUPON: &str = r"
    param n = 100;
    i := 0; t := 0;
    while i <= 4 and t <= n invariant i >= 0 and i <= 5 and t >= 0 and t <= n + 1 {
        if i == 0 { i, t := i + 1, t + 1; } else {
        if i == 1 {
            switch { prob(0.8): { i, t := i + 1, t + 1; } prob(0.2): { t := t + 1; } }
        } else {
        if i == 2 {
            switch { prob(0.6): { i, t := i + 1, t + 1; } prob(0.4): { t := t + 1; } }
        } else {
        if i == 3 {
            switch { prob(0.4): { i, t := i + 1, t + 1; } prob(0.6): { t := t + 1; } }
        } else {
            switch { prob(0.2): { i, t := i + 1, t + 1; } prob(0.8): { t := t + 1; } }
        } } } }
    }
    assert i >= 5;
";

/// The three Coupon rows of Table 1.
pub fn coupon_rows() -> Vec<Benchmark> {
    [
        (100.0, sci(1.02, -1), sci(7.01, -5), sci(6.00, -3)),
        (300.0, sci(4.02, -5), sci(7.44, -22), sci(9.01, -10)),
        (500.0, sci(1.40, -8), sci(4.01, -40), sci(1.05, -16)),
    ]
    .into_iter()
    .map(|(n, h, e, p)| Benchmark {
        name: "Coupon",
        category: Category::Concentration,
        direction: Direction::Upper,
        label: format!("Pr[T > {n}]"),
        source: COUPON,
        params: params(&[("n", n)]),
        paper: PaperReference {
            hoeffding: Some(h),
            explinsyn: Some(e),
            previous: Some(p),
            ..Default::default()
        },
    })
    .collect()
}

/// Prspeed (Fig 10): a walk whose speed is randomized after a warm-up phase;
/// violation iff more than `n` steps are taken.
pub const PRSPEED: &str = r"
    param n = 150;
    x := 0; y := 0; t := 0;
    while x + 3 <= 50 and t <= n
        invariant x >= 0 and x <= 50 and y >= 0 and y <= 50 and t >= 0 and t <= n + 1 {
        if y <= 49 {
            if prob(0.5) { y, t := y + 1, t + 1; } else { t := t + 1; }
        } else {
            switch {
                prob(0.25): { t := t + 1; }
                prob(0.25): { x, t := x + 1, t + 1; }
                prob(0.25): { x, t := x + 2, t + 1; }
                prob(0.25): { x, t := x + 3, t + 1; }
            }
        }
    }
    assert x + 3 >= 51;
";

/// The three Prspeed rows of Table 1.
pub fn prspeed_rows() -> Vec<Benchmark> {
    [
        (150.0, sci(5.42, -7), sci(7.43, -23), sci(5.00, -3)),
        (200.0, sci(1.89, -10), sci(8.03, -36), sci(2.59, -5)),
        (250.0, sci(5.65, -14), sci(2.71, -49), sci(9.17, -8)),
    ]
    .into_iter()
    .map(|(n, h, e, p)| Benchmark {
        name: "Prspeed",
        category: Category::Concentration,
        direction: Direction::Upper,
        label: format!("Pr[T > {n}]"),
        source: PRSPEED,
        params: params(&[("n", n)]),
        paper: PaperReference {
            hoeffding: Some(h),
            explinsyn: Some(e),
            previous: Some(p),
            ..Default::default()
        },
    })
    .collect()
}

/// Rdwalk (Fig 2): the asymmetric random walk of §3.2; violation iff the
/// walk fails to reach 100 within `n` steps.
pub const RDWALK: &str = r"
    param n = 400;
    x := 0; t := 0;
    while x <= 99 and t <= n
        invariant x >= -(n + 1) and x <= 100 and t >= 0 and t <= n + 1 {
        switch {
            prob(0.75): { x, t := x + 1, t + 1; }
            prob(0.25): { x, t := x - 1, t + 1; }
        }
    }
    assert x >= 100;
";

/// The three Rdwalk rows of Table 1.
pub fn rdwalk_rows() -> Vec<Benchmark> {
    [
        (400.0, sci(1.85, -3), sci(2.12, -7), sci(3.18, -6)),
        (500.0, sci(1.43, -5), sci(1.57, -12), sci(1.40, -10)),
        (600.0, sci(5.47, -8), sci(4.81, -18), sci(2.68, -15)),
    ]
    .into_iter()
    .map(|(n, h, e, p)| Benchmark {
        name: "Rdwalk",
        category: Category::Concentration,
        direction: Direction::Upper,
        label: format!("Pr[T > {n}]"),
        source: RDWALK,
        params: params(&[("n", n)]),
        paper: PaperReference {
            hoeffding: Some(h),
            explinsyn: Some(e),
            previous: Some(p),
            ..Default::default()
        },
    })
    .collect()
}

// ----------------------------------------------------------------- StoInv

/// 1DWalk (Fig 6): downward-drifting walk with an in-loop assertion
/// `x ≤ 1000`.
pub const WALK1D: &str = r"
    param x0 = 10;
    x := x0;
    while x >= 0 invariant x >= -2 and x <= 1001 {
        if x >= 1001 { assert false; } else { skip; }
        switch {
            prob(0.5): { x := x - 2; }
            prob(0.5): { x := x + 1; }
        }
    }
";

/// The three 1DWalk rows of Table 1.
pub fn walk1d_rows() -> Vec<Benchmark> {
    [
        (10.0, sci(1.73, -64), sci(7.82, -208), sci(5.1, -5)),
        (50.0, sci(6.77, -62), sci(1.79, -199), sci(1.0, -4)),
        (100.0, sci(1.04, -58), sci(5.03, -189), sci(2.5, -4)),
    ]
    .into_iter()
    .map(|(x0, h, e, p)| Benchmark {
        name: "1DWalk",
        category: Category::StoInv,
        direction: Direction::Upper,
        label: format!("x = {x0}"),
        source: WALK1D,
        params: params(&[("x0", x0)]),
        paper: PaperReference {
            hoeffding: Some(h),
            explinsyn: Some(e),
            previous: Some(p),
            ..Default::default()
        },
    })
    .collect()
}

/// 2DWalk (Fig 7): x drifts up while y drifts down; the in-loop assertion
/// `x ≥ 1` is violated if x hits zero before y does.
pub const WALK2D: &str = r"
    param x0 = 1000;
    param y0 = 10;
    x := x0; y := y0;
    while y >= 1 invariant x >= 0 and y >= 0 {
        if x <= 0 { assert false; } else { skip; }
        if prob(0.5) {
            switch { prob(0.75): { x := x + 1; } prob(0.25): { x := x - 1; } }
        } else {
            switch { prob(0.75): { y := y - 1; } prob(0.25): { y := y + 1; } }
        }
    }
";

/// The three 2DWalk rows of Table 1.
pub fn walk2d_rows() -> Vec<Benchmark> {
    [
        (1000.0, 10.0, sci(4.14, -73), sci(1.0, -655), sci(2.4, -11)),
        (500.0, 40.0, sci(6.43, -37), sci(9.61, -278), sci(5.5, -4)),
        (400.0, 50.0, sci(1.11, -29), sci(1.02, -218), sci(1.9, -2)),
    ]
    .into_iter()
    .map(|(x0, y0, h, e, p)| Benchmark {
        name: "2DWalk",
        category: Category::StoInv,
        direction: Direction::Upper,
        label: format!("(x, y) = ({x0}, {y0})"),
        source: WALK2D,
        params: params(&[("x0", x0), ("y0", y0)]),
        paper: PaperReference {
            hoeffding: Some(h),
            explinsyn: Some(e),
            previous: Some(p),
            ..Default::default()
        },
    })
    .collect()
}

/// 3DWalk (Fig 8): three coordinates drift down in big steps and up in
/// small ones; the in-loop assertion bounds their sum by 1000.
pub const WALK3D: &str = r"
    param x0 = 100;
    param y0 = 100;
    param z0 = 100;
    x := x0; y := y0; z := z0;
    while x >= 0 and y >= 0 and z >= 0
        invariant x >= -1 and y >= -1 and z >= -1 and x + y + z <= 1000.2 {
        if x + y + z >= 1000.1 { assert false; } else { skip; }
        if prob(0.9) {
            if prob(0.5) { x, y := x - 1, y - 1; } else { z := z - 1; }
        } else {
            if prob(0.5) { x, y := x + 0.1, y + 0.1; } else { z := z + 0.1; }
        }
    }
";

/// The three 3DWalk rows of Table 1.
pub fn walk3d_rows() -> Vec<Benchmark> {
    [
        (100.0, 100.0, 100.0, sci(4.83, -281), sci(1.0, -3230), sci(4.4, -17)),
        (100.0, 150.0, 200.0, sci(6.66, -221), sci(1.0, -2538), sci(2.9, -9)),
        (300.0, 100.0, 150.0, sci(7.86, -181), sci(1.0, -2076), sci(1.3, -7)),
    ]
    .into_iter()
    .map(|(x0, y0, z0, h, e, p)| Benchmark {
        name: "3DWalk",
        category: Category::StoInv,
        direction: Direction::Upper,
        label: format!("(x, y, z) = ({x0}, {y0}, {z0})"),
        source: WALK3D,
        params: params(&[("x0", x0), ("y0", y0), ("z0", z0)]),
        paper: PaperReference {
            hoeffding: Some(h),
            explinsyn: Some(e),
            previous: Some(p),
            ..Default::default()
        },
    })
    .collect()
}

/// Race (Fig 1, §3.1): the tortoise-hare race.
pub const RACE: &str = r"
    param start = 40;
    x := start; y := 0;
    while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 and y >= 0 {
        if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
    }
    assert x >= 100;
";

/// The three Race rows of Table 1 (no previous results exist).
pub fn race_rows() -> Vec<Benchmark> {
    [
        (40.0, sci(9.08, -4), sci(1.52, -7)),
        (35.0, sci(6.84, -3), sci(2.16, -5)),
        (45.0, sci(6.65, -5), sci(8.65, -11)),
    ]
    .into_iter()
    .map(|(start, h, e)| Benchmark {
        name: "Race",
        category: Category::StoInv,
        direction: Direction::Upper,
        label: format!("(x, y) = ({start}, 0)"),
        source: RACE,
        params: params(&[("start", start)]),
        paper: PaperReference {
            hoeffding: Some(h),
            explinsyn: Some(e),
            ..Default::default()
        },
    })
    .collect()
}

// ---------------------------------------------------------------- Hardware

/// M1DWalk (Fig 3, §3.3): the asymmetric walk on hardware that fails with
/// probability `p` per iteration; `assert false` at the end, so the
/// violation probability is exactly the probability of a fully correct run.
pub const M1DWALK: &str = r"
    param p = 1e-7;
    x := 1;
    while x <= 99 invariant x <= 100 {
        switch {
            prob(p): { exit; }
            prob(0.75 * (1 - p)): { x := x + 1; }
            prob(0.25 * (1 - p)): { x := x - 1; }
        }
    }
    assert false;
";

/// The three M1DWalk rows of Table 2 (no prior tool applies).
pub fn m1dwalk_rows() -> Vec<Benchmark> {
    [(1e-7, 0.999984), (1e-5, 0.998401), (1e-4, 0.984126)]
        .into_iter()
        .map(|(p, low)| Benchmark {
            name: "M1DWalk",
            category: Category::Hardware,
            direction: Direction::Lower,
            label: format!("p = {p:.0e}"),
            source: M1DWALK,
            params: params(&[("p", p)]),
            paper: PaperReference {
                explowsyn: Some(crate::logprob::LogProb::from_prob(low)),
                ..Default::default()
            },
        })
        .collect()
}

/// Newton (Fig 11, abstracted): 41 iterations of Newton's method on
/// unreliable hardware, each passing five failure gates.
pub const NEWTON: &str = r"
    param p = 5e-4;
    i := 0;
    while i <= 40 invariant i >= 0 and i <= 41 {
        if prob((1-p) * (1-p) * (1-p) * (1-p) * (1-p)) { skip; } else { exit; }
        if prob(0.9999) { skip; } else { exit; }
        if prob(0.9999) { skip; } else { exit; }
        if prob((1-p) * (1-p) * (1-p)) { skip; } else { exit; }
        if prob((1-p) * (1-p) * (1-p) * (1-p) * (1-p) * (1-p)) { skip; } else { exit; }
        i := i + 1;
    }
    assert false;
";

/// The three Newton rows of Table 2 (no prior numbers published).
pub fn newton_rows() -> Vec<Benchmark> {
    [(5e-4, 0.728492), (1e-3, 0.534989), (1.5e-3, 0.392823)]
        .into_iter()
        .map(|(p, low)| Benchmark {
            name: "Newton",
            category: Category::Hardware,
            direction: Direction::Lower,
            label: format!("p = {p:.1e}"),
            source: NEWTON,
            params: params(&[("p", p)]),
            paper: PaperReference {
                explowsyn: Some(crate::logprob::LogProb::from_prob(low)),
                ..Default::default()
            },
        })
        .collect()
}

/// Ref (Fig 12, abstracted): the `Searchref` triple loop on unreliable
/// hardware — 20×16×16 inner gates of strength `(1−p)³` plus one `(1−p)`
/// gate per outer iteration.
pub const REFSEARCH: &str = r"
    param p = 1e-7;
    i := 0;
    while i <= 19
        invariant i >= 0 and i <= 20 and j >= 0 and j <= 16 and k >= 0 and k <= 16 {
        j := 0;
        while j <= 15
            invariant j >= 0 and j <= 16 and i >= 0 and i <= 19 and k >= 0 and k <= 16 {
            k := 0;
            while k <= 15
                invariant k >= 0 and k <= 16 and j >= 0 and j <= 15 and i >= 0 and i <= 19 {
                if prob((1-p) * (1-p) * (1-p)) { skip; } else { exit; }
                k := k + 1;
            }
            j := j + 1;
        }
        if prob(1 - p) { skip; } else { exit; }
        i := i + 1;
    }
    assert false;
";

/// The three Ref rows of Table 2; `p = 1e-7` has prior numbers from
/// Carbin–Misailovic–Rinard \[5\] (0.994885) and Smith–Hsu–Albarghouthi \[41\]
/// (0.992832) — we report the tighter one.
pub fn refsearch_rows() -> Vec<Benchmark> {
    [
        (1e-7, 0.998463, Some(0.994885)),
        (1e-6, 0.984738, None),
        (1e-5, 0.857443, None),
    ]
    .into_iter()
    .map(|(p, low, prev)| Benchmark {
        name: "Ref",
        category: Category::Hardware,
        direction: Direction::Lower,
        label: format!("p = {p:.0e}"),
        source: REFSEARCH,
        params: params(&[("p", p)]),
        paper: PaperReference {
            explowsyn: Some(crate::logprob::LogProb::from_prob(low)),
            previous: prev.map(crate::logprob::LogProb::from_prob),
            ..Default::default()
        },
    })
    .collect()
}

/// The parametric families the sweep driver walks (`crate::sweep`,
/// `qava --sweep`), each already ordered by its sweep parameter so
/// neighboring points differ by one small RHS/objective perturbation:
/// Coupon's deadline `n`, 3DWalk's εmax ladder, Ref's per-operation
/// fault probability `p`.
pub fn sweep_families() -> Vec<Vec<Benchmark>> {
    vec![coupon_rows(), walk3d_rows(), refsearch_rows()]
}
