//! Parallel driver for the benchmark suite.
//!
//! The paper's evaluation (Tables 1–2) runs up to four synthesis
//! algorithms over 36 program rows. Each (row, algorithm) pair is an
//! independent piece of work: compilation, invariant propagation and
//! synthesis share nothing across pairs (the monomial interner and
//! Handelman product caches are thread-local by design, and every task
//! owns its private [`LpSolver`] session — warm-start bases and solver
//! statistics live in the session, not in ambient state). The driver
//! therefore fans the pairs out over a rayon-style thread pool and
//! reassembles the results **in input order**, so the emitted tables are
//! byte-identical regardless of scheduling; the per-task [`LpStats`] are
//! merged into one suite-wide total for the stats footer.
//!
//! Used by the `tables` binary (`crates/bench`) and the `qava --suite`
//! CLI mode (both expose `--lp-backend` and forward it here); the
//! criterion benches keep calling the synthesis entry points directly so
//! that measured times stay single-threaded.

use crate::logprob::LogProb;
use crate::suite::{Benchmark, Direction};
use crate::{explinsyn, explowsyn, hoeffding};
use qava_lp::{BackendChoice, LpSolver, LpStats};
use rayon::prelude::*;
use std::time::Instant;

/// A synthesis algorithm the driver can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// §5.1 RepRSM + Hoeffding upper bound.
    Hoeffding,
    /// POPL'17 Azuma baseline (same template class as Hoeffding).
    Azuma,
    /// §5.2 complete exponential upper bound.
    ExpLinSyn,
    /// §6 exponential lower bound (needs almost-sure termination).
    ExpLowSyn,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Algorithm::Hoeffding => "hoeffding",
            Algorithm::Azuma => "azuma",
            Algorithm::ExpLinSyn => "explinsyn",
            Algorithm::ExpLowSyn => "explowsyn",
        };
        write!(f, "{s}")
    }
}

/// The algorithms the paper's tables run for a bound direction.
pub fn default_algorithms(direction: Direction) -> &'static [Algorithm] {
    match direction {
        Direction::Upper => &[Algorithm::Hoeffding, Algorithm::ExpLinSyn],
        Direction::Lower => &[Algorithm::ExpLowSyn],
    }
}

/// Outcome of one algorithm on one table row.
#[derive(Debug, Clone)]
pub struct AlgoRun {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Certified bound, or the failure rendered as text.
    pub bound: Result<LogProb, String>,
    /// Wall-clock synthesis time (excluding compilation), seconds.
    pub seconds: f64,
    /// LP solver statistics of this run's private session.
    pub lp: LpStats,
}

/// All requested algorithm outcomes for one table row, in request order.
#[derive(Debug, Clone)]
pub struct RowReport {
    /// Index of the row in the input slice.
    pub row: usize,
    /// Benchmark name (e.g. `Race`).
    pub name: &'static str,
    /// Row label (e.g. `Pr[T > 500]`).
    pub label: String,
    /// Published "previous results" number, for ratio columns.
    pub previous: Option<LogProb>,
    /// Bound direction of the row.
    pub direction: Direction,
    /// One entry per requested algorithm.
    pub runs: Vec<AlgoRun>,
}

/// Runs one algorithm on a compiled program inside an explicit solver
/// session.
fn run_algorithm(
    pts: &qava_pts::Pts,
    algo: Algorithm,
    solver: &mut LpSolver,
) -> Result<LogProb, String> {
    match algo {
        Algorithm::Hoeffding => hoeffding::synthesize_reprsm_bound_in(
            pts,
            hoeffding::BoundKind::Hoeffding,
            hoeffding::DEFAULT_SER_ITERATIONS,
            solver,
        )
        .map(|r| r.bound)
        .map_err(|e| e.to_string()),
        Algorithm::Azuma => hoeffding::synthesize_reprsm_bound_in(
            pts,
            hoeffding::BoundKind::Azuma,
            hoeffding::DEFAULT_SER_ITERATIONS,
            solver,
        )
        .map(|r| r.bound)
        .map_err(|e| e.to_string()),
        Algorithm::ExpLinSyn => explinsyn::synthesize_upper_bound_in(pts, solver)
            .map(|r| r.bound)
            .map_err(|e| e.to_string()),
        Algorithm::ExpLowSyn => explowsyn::synthesize_lower_bound_in(pts, solver)
            .map(|r| r.bound)
            .map_err(|e| e.to_string()),
    }
}

/// [`run_rows`] with the default backend policy.
pub fn run_rows(
    rows: &[Benchmark],
    algorithms: impl Fn(&Benchmark) -> Vec<Algorithm>,
) -> Vec<RowReport> {
    run_rows_with(rows, algorithms, BackendChoice::default())
}

/// Fans `rows × algorithms(row)` out over the thread pool and returns
/// one report per row, in input order. Every task runs inside its own
/// [`LpSolver`] session created with the given backend policy; the
/// session's statistics are attached to the task's [`AlgoRun`] (merge
/// them with [`suite_lp_stats`] for a fleet-wide total).
///
/// `algorithms` picks the algorithm set per row; use
/// [`default_algorithms`] composed over [`Benchmark::direction`] for the
/// paper's tables.
pub fn run_rows_with(
    rows: &[Benchmark],
    algorithms: impl Fn(&Benchmark) -> Vec<Algorithm>,
    backend: BackendChoice,
) -> Vec<RowReport> {
    // Flatten to (row, algorithm) tasks so a slow row does not serialize
    // the algorithms behind it.
    let tasks: Vec<(usize, Algorithm)> = rows
        .iter()
        .enumerate()
        .flat_map(|(i, b)| algorithms(b).into_iter().map(move |a| (i, a)))
        .collect();

    let outcomes: Vec<(usize, AlgoRun)> = tasks
        .par_iter()
        .map(|&(i, algo)| {
            // Compile per task: compilation is cheap next to synthesis,
            // and it keeps every task self-contained on its worker
            // thread (monomial ids never cross threads). The solver
            // session is equally task-private: one synthesis run is
            // exactly the scope over which warm starts are sound ideas
            // and statistics are attributable.
            let pts = rows[i].compile();
            let mut solver = LpSolver::with_choice(backend);
            let t0 = Instant::now();
            let bound = run_algorithm(&pts, algo, &mut solver);
            let seconds = t0.elapsed().as_secs_f64();
            (i, AlgoRun { algorithm: algo, bound, seconds, lp: solver.take_stats() })
        })
        .collect();

    let mut reports: Vec<RowReport> = rows
        .iter()
        .enumerate()
        .map(|(i, b)| RowReport {
            row: i,
            name: b.name,
            label: b.label.clone(),
            previous: b.paper.previous,
            direction: b.direction,
            runs: Vec::new(),
        })
        .collect();
    // `outcomes` is in task order (the shim's parallel map is
    // order-preserving), which is row-major by construction.
    for (i, run) in outcomes {
        reports[i].runs.push(run);
    }
    reports
}

/// Merges every run's LP session statistics into one suite-wide total
/// (the `qava --suite` stats footer).
pub fn suite_lp_stats(reports: &[RowReport]) -> LpStats {
    let mut total = LpStats::default();
    for report in reports {
        for run in &report.runs {
            total.merge(&run.lp);
        }
    }
    total
}

/// Convenience accessor: the run of a given algorithm, if requested.
impl RowReport {
    /// Returns the outcome of `algo` on this row, if it was scheduled.
    pub fn run(&self, algo: Algorithm) -> Option<&AlgoRun> {
        self.runs.iter().find(|r| r.algorithm == algo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{table1, table2};

    #[test]
    fn parallel_results_deterministic_and_ordered() {
        // Three quick rows from table 2 (the affine lower bound is the
        // fastest synthesis); run twice and compare bounds exactly.
        let rows: Vec<Benchmark> = table2().into_iter().take(3).collect();
        let a = run_rows(&rows, |b| default_algorithms(b.direction).to_vec());
        let b = run_rows(&rows, |b| default_algorithms(b.direction).to_vec());
        assert_eq!(a.len(), 3);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.row, rb.row);
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.runs.len(), rb.runs.len());
            for (xa, xb) in ra.runs.iter().zip(&rb.runs) {
                match (&xa.bound, &xb.bound) {
                    (Ok(pa), Ok(pb)) => assert_eq!(pa.ln(), pb.ln(), "{}", ra.name),
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                    _ => panic!("{}: run outcomes diverged across executions", ra.name),
                }
            }
        }
    }

    #[test]
    fn suite_collects_lp_stats_per_backend() {
        let rows: Vec<Benchmark> = table2().into_iter().take(1).collect();
        let reports = run_rows_with(
            &rows,
            |b| default_algorithms(b.direction).to_vec(),
            BackendChoice::Sparse,
        );
        let stats = suite_lp_stats(&reports);
        assert!(stats.solves > 0, "lower-bound synthesis must solve LPs");
        assert_eq!(stats.backends.len(), 1, "forced policy uses one backend");
        assert_eq!(stats.backends[0].name, "sparse");
        let per_run: usize = reports
            .iter()
            .flat_map(|r| &r.runs)
            .map(|run| run.lp.backends.iter().map(|t| t.solves).sum::<usize>())
            .sum();
        assert_eq!(stats.backends[0].solves, per_run, "merge must preserve totals");
    }

    #[test]
    fn upper_rows_get_two_algorithms() {
        let rows: Vec<Benchmark> = table1().into_iter().take(1).collect();
        let reports = run_rows(&rows, |b| default_algorithms(b.direction).to_vec());
        assert_eq!(reports[0].runs.len(), 2);
        assert_eq!(reports[0].runs[0].algorithm, Algorithm::Hoeffding);
        assert_eq!(reports[0].runs[1].algorithm, Algorithm::ExpLinSyn);
        assert!(reports[0].run(Algorithm::ExpLinSyn).is_some());
        assert!(reports[0].run(Algorithm::ExpLowSyn).is_none());
    }
}
