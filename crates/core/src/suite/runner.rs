//! Parallel driver for the benchmark suite, built on the engine API.
//!
//! The paper's evaluation (Tables 1–2) runs several bound engines over
//! 36 program rows. In **sequential mode** each (row, engine) pair is an
//! independent piece of work: compilation, invariant propagation and
//! synthesis share nothing across pairs (the monomial interner and
//! Handelman product caches are thread-local by design, and every task
//! owns its private [`LpSolver`] session — warm-start bases and solver
//! statistics live in the session, not in ambient state). The driver
//! fans the pairs out over a rayon-style thread pool and reassembles the
//! results **in input order**, so the emitted tables are byte-identical
//! regardless of scheduling.
//!
//! In **race mode** ([`race_rows_with`]) the unit of work is a row: the
//! row's engines race in-process ([`crate::engine::race`]), the first
//! *certified* bound wins, the losers are cancelled cooperatively, and
//! the row reports the winner plus the losers' LP statistics in a
//! separate `abandoned` bucket — [`suite_lp_stats`] only ever counts
//! certified work, [`suite_abandoned_lp_stats`] only cancelled work, so
//! footers never double-count pivots spent by losing candidates.
//!
//! Engines are resolved by name through an [`EngineRegistry`]
//! ([`run_rows_in`] takes an explicit registry for externally registered
//! engines; the convenience wrappers use the built-ins). Used by the
//! `tables` binary (`crates/bench`) and the `qava --suite` CLI mode
//! (both expose `--lp-backend`/`--race` and forward them here); the
//! criterion benches keep calling the synthesis entry points directly so
//! that measured times stay single-threaded.

use crate::engine::{race, AnalysisRequest, Direction, EngineError, EngineRegistry};
use crate::logprob::LogProb;
use crate::suite::Benchmark;
use qava_lp::{BackendChoice, FaultPlan, LpSolver, LpStats};
use rayon::prelude::*;
use std::time::Instant;

/// The engines the paper's tables run for a bound direction, by
/// registry name.
pub fn default_engines(direction: Direction) -> &'static [&'static str] {
    match direction {
        Direction::Upper => &["hoeffding-linear", "explinsyn"],
        Direction::Lower => &["explowsyn"],
    }
}

/// Outcome of one engine (or one race) on one table row.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Engine that produced this outcome — in race mode, the winner.
    pub engine: &'static str,
    /// Certified bound, or the failure rendered as text.
    pub bound: Result<LogProb, String>,
    /// Wall-clock synthesis time (excluding compilation), seconds.
    pub seconds: f64,
    /// LP statistics behind the reported bound (the winner's session in
    /// race mode).
    pub lp: LpStats,
    /// LP statistics of cancelled/losing racers; empty in sequential
    /// mode. Kept apart from `lp` so suite totals stay honest.
    pub abandoned: LpStats,
    /// Every engine that raced for this outcome (empty in sequential
    /// mode), in race order.
    pub raced: Vec<&'static str>,
    /// In chaos mode ([`run_rows_chaos`]): the spec label of the fault
    /// plan that actually fired during this run (`"pivot-limit:2"`),
    /// `None` when the planned site was never reached or no chaos was
    /// requested.
    pub fault: Option<String>,
}

/// All requested engine outcomes for one table row, in request order.
#[derive(Debug, Clone)]
pub struct RowReport {
    /// Index of the row in the input slice.
    pub row: usize,
    /// Benchmark name (e.g. `Race`).
    pub name: &'static str,
    /// Row label (e.g. `Pr[T > 500]`).
    pub label: String,
    /// Published "previous results" number, for ratio columns.
    pub previous: Option<LogProb>,
    /// Bound direction of the row.
    pub direction: Direction,
    /// One entry per requested engine (or one racing entry per row).
    pub runs: Vec<EngineRun>,
}

impl RowReport {
    /// Returns the outcome of the engine with the given name, if it was
    /// scheduled (in race mode: if it won).
    pub fn run(&self, engine: &str) -> Option<&EngineRun> {
        self.runs.iter().find(|r| r.engine == engine)
    }
}

/// [`run_rows_with`] with the default backend policy.
pub fn run_rows(
    rows: &[Benchmark],
    engines: impl Fn(&Benchmark) -> Vec<&'static str> + Sync,
) -> Vec<RowReport> {
    run_rows_with(rows, engines, BackendChoice::default())
}

/// Sequential mode over the built-in registry: fans
/// `rows × engines(row)` out over the thread pool and returns one report
/// per row, in input order.
pub fn run_rows_with(
    rows: &[Benchmark],
    engines: impl Fn(&Benchmark) -> Vec<&'static str> + Sync,
    backend: BackendChoice,
) -> Vec<RowReport> {
    run_rows_in(&EngineRegistry::with_builtins(), rows, engines, backend)
}

/// Sequential mode with an explicit registry (externally registered
/// engines included). Every task runs inside its own [`LpSolver`]
/// session created with the given backend policy; the session's
/// statistics are attached to the task's [`EngineRun`] (merge them with
/// [`suite_lp_stats`] for a fleet-wide total).
///
/// `engines` picks the engine names per row; use [`default_engines`]
/// composed over [`Benchmark::direction`] for the paper's tables. An
/// unknown name reports as a failed run rather than panicking the
/// worker.
pub fn run_rows_in(
    registry: &EngineRegistry,
    rows: &[Benchmark],
    engines: impl Fn(&Benchmark) -> Vec<&'static str> + Sync,
    backend: BackendChoice,
) -> Vec<RowReport> {
    run_rows_inner(registry, rows, engines, backend, None)
}

/// Chaos mode: sequential mode over the built-in registry, with one
/// pseudo-random *recoverable* fault plan injected into every task's
/// solver session. The plan for a task is derived from `seed` and the
/// task's `(row, engine)` identity — never from scheduling — so the
/// same seed always injects the same faults regardless of thread
/// interleaving. The robustness contract under test: every row must
/// still certify, and every certified bound must agree with the
/// fault-free run (the `qava --suite --chaos` driver asserts both).
pub fn run_rows_chaos(
    rows: &[Benchmark],
    engines: impl Fn(&Benchmark) -> Vec<&'static str> + Sync,
    backend: BackendChoice,
    seed: u64,
) -> Vec<RowReport> {
    run_rows_inner(&EngineRegistry::with_builtins(), rows, engines, backend, Some(seed))
}

/// Mixes a suite-level chaos seed with a task's stable identity. FNV-1a
/// over the engine name folded into the row index keeps the per-task
/// seed independent of how rayon schedules the tasks.
fn chaos_task_seed(seed: u64, row: usize, engine: &str) -> u64 {
    let mut h = seed ^ (row as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &byte in engine.as_bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run_rows_inner(
    registry: &EngineRegistry,
    rows: &[Benchmark],
    engines: impl Fn(&Benchmark) -> Vec<&'static str> + Sync,
    backend: BackendChoice,
    chaos: Option<u64>,
) -> Vec<RowReport> {
    // Flatten to (row, engine) tasks so a slow row does not serialize
    // the engines behind it.
    let tasks: Vec<(usize, &'static str)> = rows
        .iter()
        .enumerate()
        .flat_map(|(i, b)| engines(b).into_iter().map(move |e| (i, e)))
        .collect();

    let outcomes: Vec<(usize, EngineRun)> = tasks
        .par_iter()
        .map(|&(i, name)| {
            // Compile per task: compilation is cheap next to synthesis,
            // and it keeps every task self-contained on its worker
            // thread (monomial ids never cross threads). The solver
            // session is equally task-private: one synthesis run is
            // exactly the scope over which warm starts are sound ideas
            // and statistics are attributable.
            let pts = rows[i].compile();
            let run = match registry.engine(name) {
                None => EngineRun {
                    engine: name,
                    bound: Err(format!("unknown engine `{name}`")),
                    seconds: 0.0,
                    lp: LpStats::default(),
                    abandoned: LpStats::default(),
                    raced: Vec::new(),
                    fault: None,
                },
                Some(engine) => {
                    let req = AnalysisRequest::new(&pts, engine.direction());
                    let mut solver = LpSolver::with_choice(backend);
                    let plan =
                        chaos.map(|seed| FaultPlan::chaos(chaos_task_seed(seed, i, name)));
                    if let Some(plan) = &plan {
                        solver.install_fault_plan(plan.clone());
                    }
                    let t0 = Instant::now();
                    let report = engine.run(&req, &mut solver);
                    let seconds = t0.elapsed().as_secs_f64();
                    let fault = plan.filter(|_| solver.fault_fired()).map(|p| p.label());
                    EngineRun {
                        engine: name,
                        bound: report
                            .outcome
                            .as_ref()
                            .map(|c| c.bound)
                            .map_err(ToString::to_string),
                        seconds,
                        lp: report.lp,
                        abandoned: LpStats::default(),
                        raced: Vec::new(),
                        fault,
                    }
                }
            };
            (i, run)
        })
        .collect();

    assemble(rows, outcomes)
}

/// Race mode over the built-in registry: one racing task per row, over
/// that row's [`default_engines`] lineup (falling back across every
/// registered engine of the direction would change which bound a row
/// reports; the default lineup mirrors what the paper's tables print).
pub fn race_rows_with(rows: &[Benchmark], backend: BackendChoice) -> Vec<RowReport> {
    race_rows_in(&EngineRegistry::with_builtins(), rows, |b| {
        default_engines(b.direction).to_vec()
    }, backend)
}

/// Race mode with an explicit registry and per-row lineup: each row's
/// engines race in-process, the first certified bound is reported under
/// the winner's name, and cancelled racers' LP statistics land in the
/// run's `abandoned` bucket.
pub fn race_rows_in(
    registry: &EngineRegistry,
    rows: &[Benchmark],
    engines: impl Fn(&Benchmark) -> Vec<&'static str> + Sync,
    backend: BackendChoice,
) -> Vec<RowReport> {
    let tasks: Vec<usize> = (0..rows.len()).collect();
    let outcomes: Vec<(usize, EngineRun)> = tasks
        .par_iter()
        .map(|&i| {
            let b = &rows[i];
            let pts = b.compile();
            let req = AnalysisRequest::new(&pts, b.direction);
            let names = engines(b);
            // An unknown name fails the row loudly, exactly like the
            // sequential driver — silently racing a smaller lineup would
            // report a winner the caller never asked to trust alone.
            if let Some(unknown) = names.iter().find(|n| registry.engine(n).is_none()) {
                let run = EngineRun {
                    engine: "race",
                    bound: Err(format!("unknown engine `{unknown}`")),
                    seconds: 0.0,
                    lp: LpStats::default(),
                    abandoned: LpStats::default(),
                    raced: names,
                    fault: None,
                };
                return (i, run);
            }
            let lineup: Vec<_> =
                names.iter().filter_map(|n| registry.engine(n)).collect();
            let raced: Vec<&'static str> = lineup.iter().map(|e| e.name()).collect();
            let t0 = Instant::now();
            let outcome = race(&lineup, &req, backend);
            let seconds = t0.elapsed().as_secs_f64();
            let run = match outcome.winner {
                Some(w) => {
                    let report = &outcome.reports[w];
                    EngineRun {
                        engine: report.engine,
                        bound: Ok(report.outcome.as_ref().expect("winner is certified").bound),
                        seconds,
                        lp: report.lp.clone(),
                        abandoned: outcome.abandoned,
                        raced,
                        fault: None,
                    }
                }
                None => {
                    // No racer certified: render every failure, skipping
                    // pure cancellations (there are none without a
                    // winner, but an engine may decline mid-race).
                    let msgs: Vec<String> = outcome
                        .reports
                        .iter()
                        .filter(|r| !r.cancelled())
                        .map(|r| {
                            format!(
                                "{}: {}",
                                r.engine,
                                r.outcome.as_ref().err().map_or_else(
                                    || "uncertified".to_string(),
                                    EngineError::to_string
                                )
                            )
                        })
                        .collect();
                    EngineRun {
                        engine: "race",
                        bound: Err(if msgs.is_empty() {
                            "no applicable engine".to_string()
                        } else {
                            msgs.join("; ")
                        }),
                        seconds,
                        lp: LpStats::default(),
                        abandoned: outcome.abandoned,
                        raced,
                        fault: None,
                    }
                }
            };
            (i, run)
        })
        .collect();

    assemble(rows, outcomes)
}

/// Sweep mode (`qava --sweep`): walks every parametric family of the
/// suite ([`crate::suite::sweep_families`]) through the sweep driver
/// ([`crate::sweep::run_sweep`]) — families in parallel on the thread
/// pool, each family's points strictly in order inside one shared
/// reoptimizing `LpSolver` session. `check_cold` additionally re-solves
/// every point cold and falls back to the cold bound on drift (the
/// certification mode the CLI runs).
pub fn sweep_families_with(
    backend: BackendChoice,
    check_cold: bool,
) -> Vec<crate::sweep::SweepReport> {
    let families = crate::suite::sweep_families();
    families
        .par_iter()
        .map(|rows| {
            let req = crate::sweep::SweepRequest {
                rows,
                engine: None,
                backend,
                check_cold,
            };
            crate::sweep::run_sweep(&req)
        })
        .collect()
}

/// Reassembles per-task outcomes into per-row reports, in input order.
fn assemble(rows: &[Benchmark], outcomes: Vec<(usize, EngineRun)>) -> Vec<RowReport> {
    let mut reports: Vec<RowReport> = rows
        .iter()
        .enumerate()
        .map(|(i, b)| RowReport {
            row: i,
            name: b.name,
            label: b.label.clone(),
            previous: b.paper.previous,
            direction: b.direction,
            runs: Vec::new(),
        })
        .collect();
    // `outcomes` is in task order (the shim's parallel map is
    // order-preserving), which is row-major by construction.
    for (i, run) in outcomes {
        reports[i].runs.push(run);
    }
    reports
}

/// Merges every run's **certified** LP statistics into one suite-wide
/// total (the `qava --suite` stats footer). Abandoned racer work is
/// deliberately excluded; see [`suite_abandoned_lp_stats`].
pub fn suite_lp_stats(reports: &[RowReport]) -> LpStats {
    let mut total = LpStats::default();
    for report in reports {
        for run in &report.runs {
            total.merge(&run.lp);
        }
    }
    total
}

/// Merges every run's **abandoned** LP statistics (cancelled racers)
/// into one suite-wide total. Zero everywhere in sequential mode.
pub fn suite_abandoned_lp_stats(reports: &[RowReport]) -> LpStats {
    let mut total = LpStats::default();
    for report in reports {
        for run in &report.runs {
            total.merge(&run.abandoned);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{table1, table2};

    #[test]
    fn parallel_results_deterministic_and_ordered() {
        // Three quick rows from table 2 (the affine lower bound is the
        // fastest synthesis); run twice and compare bounds exactly.
        let rows: Vec<Benchmark> = table2().into_iter().take(3).collect();
        let a = run_rows(&rows, |b| default_engines(b.direction).to_vec());
        let b = run_rows(&rows, |b| default_engines(b.direction).to_vec());
        assert_eq!(a.len(), 3);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.row, rb.row);
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.runs.len(), rb.runs.len());
            for (xa, xb) in ra.runs.iter().zip(&rb.runs) {
                assert_eq!(xa.engine, xb.engine);
                match (&xa.bound, &xb.bound) {
                    (Ok(pa), Ok(pb)) => assert_eq!(pa.ln(), pb.ln(), "{}", ra.name),
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                    _ => panic!("{}: run outcomes diverged across executions", ra.name),
                }
            }
        }
    }

    #[test]
    fn suite_collects_lp_stats_per_backend() {
        let rows: Vec<Benchmark> = table2().into_iter().take(1).collect();
        let reports = run_rows_with(
            &rows,
            |b| default_engines(b.direction).to_vec(),
            BackendChoice::Sparse,
        );
        let stats = suite_lp_stats(&reports);
        assert!(stats.solves > 0, "lower-bound synthesis must solve LPs");
        assert_eq!(stats.backends.len(), 1, "forced policy uses one backend");
        assert_eq!(stats.backends[0].name, "sparse");
        let per_run: usize = reports
            .iter()
            .flat_map(|r| &r.runs)
            .map(|run| run.lp.backends.iter().map(|t| t.solves).sum::<usize>())
            .sum();
        assert_eq!(stats.backends[0].solves, per_run, "merge must preserve totals");
        assert_eq!(suite_abandoned_lp_stats(&reports).solves, 0, "no racing, no abandonment");
    }

    #[test]
    fn upper_rows_get_two_engines() {
        let rows: Vec<Benchmark> = table1().into_iter().take(1).collect();
        let reports = run_rows(&rows, |b| default_engines(b.direction).to_vec());
        assert_eq!(reports[0].runs.len(), 2);
        assert_eq!(reports[0].runs[0].engine, "hoeffding-linear");
        assert_eq!(reports[0].runs[1].engine, "explinsyn");
        assert!(reports[0].run("explinsyn").is_some());
        assert!(reports[0].run("explowsyn").is_none());
    }

    #[test]
    fn unknown_engine_reports_failure_not_panic() {
        let rows: Vec<Benchmark> = table2().into_iter().take(1).collect();
        let reports = run_rows(&rows, |_| vec!["interior-point"]);
        let run = &reports[0].runs[0];
        assert!(run.bound.as_ref().unwrap_err().contains("unknown engine"));
    }

    #[test]
    fn chaos_mode_is_deterministic_and_value_preserving() {
        let rows: Vec<Benchmark> = table2().into_iter().take(2).collect();
        let clean = run_rows(&rows, |b| default_engines(b.direction).to_vec());
        let engines = |b: &Benchmark| default_engines(b.direction).to_vec();
        let a = run_rows_chaos(&rows, engines, BackendChoice::default(), 4242);
        let b = run_rows_chaos(&rows, engines, BackendChoice::default(), 4242);
        for ((ra, rb), rc) in a.iter().zip(&b).zip(&clean) {
            for ((xa, xb), xc) in ra.runs.iter().zip(&rb.runs).zip(&rc.runs) {
                assert_eq!(xa.fault, xb.fault, "{}: same seed, same plan fired", ra.name);
                let (la, lb) = (xa.bound.as_ref().unwrap().ln(), xb.bound.as_ref().unwrap().ln());
                assert_eq!(la, lb, "{}: chaos must be deterministic", ra.name);
                let lc = xc.bound.as_ref().unwrap().ln();
                assert!(
                    (la - lc).abs() <= 1e-7 * (1.0 + lc.abs()),
                    "{}: chaos bound {la} diverged from clean {lc}",
                    ra.name
                );
            }
        }
    }

    #[test]
    fn race_mode_reports_winner_and_abandoned_bucket() {
        let rows: Vec<Benchmark> = table2().into_iter().take(2).collect();
        let reports = race_rows_with(&rows, BackendChoice::default());
        for report in &reports {
            assert_eq!(report.runs.len(), 1, "one racing run per row");
            let run = &report.runs[0];
            let bound = run.bound.as_ref().expect("lower rows certify");
            assert_eq!(run.raced, vec!["explowsyn"], "lower lineup races explowsyn");
            assert_eq!(run.engine, "explowsyn");
            // Single-engine race: nothing abandoned; the sequential run
            // must agree exactly.
            assert_eq!(run.abandoned.solves, 0);
            let seq = run_rows(
                &rows[report.row..=report.row],
                |b| default_engines(b.direction).to_vec(),
            );
            let seq_bound = seq[0].runs[0].bound.as_ref().unwrap();
            assert_eq!(bound.ln(), seq_bound.ln(), "{}: race must not change the value", report.name);
        }
    }
}
