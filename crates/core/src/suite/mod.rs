//! The paper's benchmark suite (§7, Appendix E): all twelve programs of
//! Tables 1 and 2, written in the `qava` surface language, with the
//! invariants the paper derived manually and the published numbers for
//! comparison.
//!
//! Several benchmarks are parameter *families* — the same program at
//! three neighboring parameter values ([`sweep_families`] lists the
//! ones the `qava --sweep` driver walks). The table drivers treat each
//! row independently; the sweep driver ([`crate::sweep`],
//! [`runner::sweep_families_with`]) exploits the family structure with
//! dual-simplex reoptimization and template seeding between neighbors.
//!
//! Sources are transcriptions of Figures 1–12. Two reconstructions were
//! necessary (documented in DESIGN.md):
//!
//! * **RdAdder** (Fig 4): the arXiv listing is garbled (its `assert` can
//!   never fail); we encode the randomized accumulator whose optimal
//!   Chernoff bounds reproduce the paper's Table 1 column (500 fair
//!   increments, deviation `d` from the mean 250).
//! * **Robot** (Fig 5): the dead-reckoning robot is abstracted to the drift
//!   variable `d = x − ex`, which changes by ±0.05 only on the x-affecting
//!   move commands (total probability 0.4) — the only dynamics the assertion
//!   `x − ex ≥ dev` observes.

mod programs;
pub mod runner;

pub use programs::*;

use crate::logprob::LogProb;
use qava_pts::Pts;
use std::collections::BTreeMap;

/// Benchmark family, mirroring the grouping of Tables 1–2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Large-deviation bounds (vs. Chakarov–Sankaranarayanan \[6\]).
    Deviation,
    /// Termination-time concentration (vs. TOPLAS'18 \[11\]).
    Concentration,
    /// Stochastic invariants (vs. POPL'17 \[12\]).
    StoInv,
    /// Unreliable-hardware reliability (lower bounds, vs. \[5\]/\[41\]).
    Hardware,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::Deviation => "Deviation",
            Category::Concentration => "Concentration",
            Category::StoInv => "StoInv",
            Category::Hardware => "Hardware",
        };
        write!(f, "{s}")
    }
}

/// Which bound direction the table row reports (Table 1 = upper,
/// Table 2 = lower). Re-exported from the engine layer: the direction a
/// row reports is exactly the direction its engines certify.
pub use crate::engine::Direction;

/// Numbers printed in the paper, for the ratio columns of Tables 1–2.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperReference {
    /// The paper's §5.1 (Hoeffding) bound.
    pub hoeffding: Option<LogProb>,
    /// The paper's §5.2 (ExpLinSyn) bound.
    pub explinsyn: Option<LogProb>,
    /// The paper's §6 (ExpLowSyn) lower bound.
    pub explowsyn: Option<LogProb>,
    /// The "Previous Results" column (\[6\]/\[11\]/\[12\]/\[5\]/\[41\]).
    pub previous: Option<LogProb>,
}

/// One table row: a program instance with fixed parameters.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (e.g. `Race`).
    pub name: &'static str,
    /// Table grouping.
    pub category: Category,
    /// Bound direction.
    pub direction: Direction,
    /// Row label (e.g. `Pr[T > 500]` or `(x, y) = (40, 0)`).
    pub label: String,
    /// Program source in the `qava` language.
    pub source: &'static str,
    /// Parameter overrides for this row.
    pub params: BTreeMap<String, f64>,
    /// Published numbers.
    pub paper: PaperReference,
}

impl Benchmark {
    /// Compiles the program, applies this row's parameters, and runs the
    /// invariant-propagation pass.
    ///
    /// # Panics
    ///
    /// Panics if the embedded source fails to compile — a bug in the suite,
    /// covered by tests.
    pub fn compile(&self) -> Pts {
        let mut pts = qava_lang::compile(self.source, &self.params)
            .unwrap_or_else(|e| panic!("benchmark {} failed to compile: {e}", self.name));
        crate::invariants::propagate_invariants(&mut pts, 8);
        pts
    }
}

/// Builds a [`LogProb`] from scientific notation `mantissa × 10^exp10`.
pub(crate) fn sci(mantissa: f64, exp10: i32) -> LogProb {
    LogProb::from_ln(mantissa.ln() + f64::from(exp10) * std::f64::consts::LN_10)
}

/// All Table 1 (upper-bound) rows in paper order.
pub fn table1() -> Vec<Benchmark> {
    let mut rows = Vec::new();
    rows.extend(programs::rdadder_rows());
    rows.extend(programs::robot_rows());
    rows.extend(programs::coupon_rows());
    rows.extend(programs::prspeed_rows());
    rows.extend(programs::rdwalk_rows());
    rows.extend(programs::walk1d_rows());
    rows.extend(programs::walk2d_rows());
    rows.extend(programs::walk3d_rows());
    rows.extend(programs::race_rows());
    rows
}

/// All Table 2 (lower-bound) rows in paper order.
pub fn table2() -> Vec<Benchmark> {
    let mut rows = Vec::new();
    rows.extend(programs::m1dwalk_rows());
    rows.extend(programs::newton_rows());
    rows.extend(programs::refsearch_rows());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_benchmark_compiles_and_validates() {
        for b in table1().into_iter().chain(table2()) {
            let pts = b.compile();
            pts.check_determinism(1e-6).unwrap_or_else(|e| {
                panic!("benchmark {} ({}): guards overlap: {e}", b.name, b.label)
            });
            assert!(pts.num_vars() >= 1);
        }
    }

    #[test]
    fn row_counts_match_paper() {
        assert_eq!(table1().len(), 27, "9 upper benchmarks x 3 parameter rows");
        assert_eq!(table2().len(), 9, "3 lower benchmarks x 3 parameter rows");
    }

    #[test]
    fn sweep_families_are_ordered_parameter_ladders() {
        let families = sweep_families();
        assert_eq!(families.len(), 3, "Coupon, 3DWalk, Ref");
        for rows in &families {
            assert_eq!(rows.len(), 3, "each family sweeps three points");
            assert!(rows.iter().all(|b| b.name == rows[0].name), "one program per family");
            assert!(
                rows.iter().all(|b| b.direction == rows[0].direction),
                "one direction per family"
            );
        }
    }

    #[test]
    fn sci_helper() {
        let p = sci(1.52, -7);
        assert!((p.to_f64() - 1.52e-7).abs() < 1e-16);
    }

    #[test]
    fn lower_benchmarks_terminate_almost_surely() {
        // The side condition of Theorem 4.4, certified by RSM synthesis.
        for b in table2() {
            if b.name == "Ref" {
                continue; // nested loops need a non-global treatment, see below
            }
            let pts = b.compile();
            crate::rsm::prove_almost_sure_termination(&pts).unwrap_or_else(|e| {
                panic!("{} ({}) should terminate a.s.: {e}", b.name, b.label)
            });
        }
    }
}
