//! The fixed-point characterization of the violation probability, made
//! executable (§4 of the paper).
//!
//! For PTSs whose reachable state space is finite and whose randomness is
//! discrete, the probability transformer `ptf` (Definition in §4.2) can be
//! iterated explicitly:
//!
//! * iterating from `⊥` (all-zero) yields an increasing chain converging to
//!   `lfp ptf = vpf` — Theorem 4.3 — giving certified *under*-estimates;
//! * iterating from `⊤` (all-one on live states) yields a decreasing chain
//!   converging to `gfp ptf`, which equals `vpf` under almost-sure
//!   termination — Theorem 4.4 — giving certified *over*-estimates.
//!
//! [`VpfOracle::interval`] returns both, bracketing the true violation
//! probability. The test suite uses this as ground truth to validate the
//! synthesis algorithms on benchmarks small enough to enumerate.

use qava_pts::{LocId, Pts};
use std::collections::HashMap;

/// Errors from state-space exploration.
#[derive(Debug, Clone, PartialEq)]
pub enum OracleError {
    /// A sampling distribution is continuous; exact enumeration impossible.
    ContinuousDistribution,
    /// Exploration exceeded the state budget.
    TooManyStates {
        /// The configured budget.
        budget: usize,
    },
    /// A reachable state had no enabled transition.
    StuckState {
        /// Location name of the stuck state.
        location: String,
        /// Its valuation.
        vals: Vec<f64>,
    },
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::ContinuousDistribution => {
                write!(f, "value iteration needs discrete distributions")
            }
            OracleError::TooManyStates { budget } => {
                write!(f, "reachable state space exceeds {budget} states")
            }
            OracleError::StuckState { location, vals } => {
                write!(f, "stuck at {location} with valuation {vals:?}")
            }
        }
    }
}

impl std::error::Error for OracleError {}

/// Hash key for a state: location index plus valuation quantized to a fine
/// grid (absorbs floating-point drift on lattice-valued programs).
fn key(loc: LocId, vals: &[f64]) -> (usize, Vec<i64>) {
    (loc.index(), vals.iter().map(|v| (v * 1e6).round() as i64).collect())
}

/// An enumerated finite-state model of a PTS.
#[derive(Debug)]
pub struct VpfOracle {
    /// For each enumerated state: outgoing `(probability, successor index)`.
    successors: Vec<Vec<(f64, usize)>>,
    /// 1 for `ℓ_f`, 0 for `ℓ_t`, `None` for live states.
    fixed: Vec<Option<f64>>,
    init_index: usize,
}

impl VpfOracle {
    /// Explores the reachable state space (breadth-first), failing if it
    /// exceeds `max_states` or involves continuous sampling.
    ///
    /// # Errors
    ///
    /// See [`OracleError`].
    pub fn explore(pts: &Pts, max_states: usize) -> Result<Self, OracleError> {
        let init = pts.initial_state();
        let mut index: HashMap<(usize, Vec<i64>), usize> = HashMap::new();
        let mut states: Vec<(LocId, Vec<f64>)> = Vec::new();
        let mut queue = std::collections::VecDeque::new();

        let mut intern = |loc: LocId,
                          vals: Vec<f64>,
                          states: &mut Vec<(LocId, Vec<f64>)>,
                          queue: &mut std::collections::VecDeque<usize>|
         -> usize {
            let k = key(loc, &vals);
            if let Some(&i) = index.get(&k) {
                return i;
            }
            let i = states.len();
            index.insert(k, i);
            states.push((loc, vals));
            queue.push_back(i);
            i
        };

        let init_index = intern(init.loc, init.vals, &mut states, &mut queue);
        let mut successors: Vec<Vec<(f64, usize)>> = Vec::new();
        let mut fixed: Vec<Option<f64>> = Vec::new();

        while let Some(i) = queue.pop_front() {
            if states.len() > max_states {
                return Err(OracleError::TooManyStates { budget: max_states });
            }
            let (loc, vals) = states[i].clone();
            while successors.len() <= i {
                successors.push(Vec::new());
                fixed.push(None);
            }
            if loc == pts.failure_location() {
                fixed[i] = Some(1.0);
                continue;
            }
            if loc == pts.terminal_location() {
                fixed[i] = Some(0.0);
                continue;
            }
            let Some(t) = pts
                .transitions()
                .iter()
                .find(|t| t.src == loc && t.guard.contains(&vals, 1e-9))
            else {
                return Err(OracleError::StuckState {
                    location: pts.loc_name(loc).to_string(),
                    vals,
                });
            };
            let mut outs = Vec::new();
            for fork in &t.forks {
                // Expand the discrete supports of the fork's sampling sites.
                let mut draws: Vec<(f64, Vec<f64>)> = vec![(fork.prob, Vec::new())];
                for site in fork.update.samples() {
                    let Some(points) = site.dist.discrete_points() else {
                        return Err(OracleError::ContinuousDistribution);
                    };
                    let mut next = Vec::with_capacity(draws.len() * points.len());
                    for (p, combo) in &draws {
                        for &(value, q) in &points {
                            let mut c = combo.clone();
                            c.push(value);
                            next.push((p * q, c));
                        }
                    }
                    draws = next;
                }
                for (p, combo) in draws {
                    let nv = fork.update.apply_with_draws(&vals, &combo);
                    let j = intern(fork.dest, nv, &mut states, &mut queue);
                    outs.push((p, j));
                }
            }
            successors[i] = outs;
        }
        while successors.len() < states.len() {
            successors.push(Vec::new());
            fixed.push(None);
        }
        Ok(VpfOracle { successors, fixed, init_index })
    }

    /// Number of enumerated states.
    pub fn num_states(&self) -> usize {
        self.successors.len()
    }

    /// Iterates `ptf` for `iters` rounds from both lattice extremes,
    /// returning `(lower, upper)` brackets of `vpf(ℓ_init, v_init)`.
    ///
    /// The lower value is always a sound under-estimate (Theorem 4.3); the
    /// upper value over-estimates `vpf` whenever the PTS terminates almost
    /// surely (Theorem 4.4).
    pub fn interval(&self, iters: usize) -> (f64, f64) {
        let n = self.successors.len();
        let mut lo: Vec<f64> = (0..n).map(|i| self.fixed[i].unwrap_or(0.0)).collect();
        let mut hi: Vec<f64> = (0..n).map(|i| self.fixed[i].unwrap_or(1.0)).collect();
        for _ in 0..iters {
            let mut changed: f64 = 0.0;
            for i in 0..n {
                if self.fixed[i].is_some() {
                    continue;
                }
                let new_lo: f64 = self.successors[i].iter().map(|&(p, j)| p * lo[j]).sum();
                let new_hi: f64 = self.successors[i].iter().map(|&(p, j)| p * hi[j]).sum();
                changed = changed.max((new_lo - lo[i]).abs()).max((new_hi - hi[i]).abs());
                lo[i] = new_lo;
                hi[i] = new_hi;
            }
            if changed < 1e-14 {
                break;
            }
        }
        (lo[self.init_index], hi[self.init_index])
    }

    /// The midpoint of [`Self::interval`], convenient for comparisons.
    pub fn estimate(&self, iters: usize) -> f64 {
        let (lo, hi) = self.interval(iters);
        (lo + hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn coin_flip_exact() {
        let src = "x := 0; if prob(0.3) { assert false; } else { exit; }";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let oracle = VpfOracle::explore(&pts, 100).unwrap();
        let (lo, hi) = oracle.interval(10);
        assert!((lo - 0.3).abs() < 1e-12);
        assert!((hi - 0.3).abs() < 1e-12);
    }

    #[test]
    fn race_interval_brackets_paper_value() {
        let src = r"
            x := 40; y := 0;
            while x <= 99 and y <= 99 {
                if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
            }
            assert x >= 100;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let oracle = VpfOracle::explore(&pts, 100_000).unwrap();
        let (lo, hi) = oracle.interval(5_000);
        assert!(hi - lo < 1e-9, "interval must collapse: [{lo}, {hi}]");
        // True vpf for the race from (40, 0); the certified ExpLinSyn bound
        // 1.52e-7 must sit above it.
        assert!(lo > 0.0 && hi < 1.52e-7, "[{lo}, {hi}]");
        assert!(hi > 1e-12, "violation genuinely possible");
    }

    #[test]
    fn gambler_ruin_closed_form() {
        // Fair gambler: from x = 3, absorb at 0 (fail) or 10 (ok); classic
        // ruin probability = 1 - 3/10 = 0.7.
        let src = r"
            x := 3;
            while x >= 1 and x <= 9 {
                if prob(0.5) { x := x + 1; } else { x := x - 1; }
            }
            assert x >= 10;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let oracle = VpfOracle::explore(&pts, 1_000).unwrap();
        let (lo, hi) = oracle.interval(100_000);
        assert!((lo - 0.7).abs() < 1e-6, "lo = {lo}");
        assert!((hi - 0.7).abs() < 1e-6, "hi = {hi}");
    }

    #[test]
    fn continuous_rejected() {
        let src = r"
            sample r ~ uniform(0, 1);
            x := 0;
            while x <= 1 { x := x + r; }
            assert false;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        assert_eq!(
            VpfOracle::explore(&pts, 100).unwrap_err(),
            OracleError::ContinuousDistribution
        );
    }

    #[test]
    fn budget_respected() {
        let src = r"
            x := 0; t := 0;
            while x <= 99 and t <= 500 {
                if prob(0.75) { x, t := x + 1, t + 1; } else { x, t := x - 1, t + 1; }
            }
            assert x >= 100;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        assert!(matches!(
            VpfOracle::explore(&pts, 50),
            Err(OracleError::TooManyStates { .. })
        ));
    }
}
