//! Template machinery shared by all three synthesis algorithms.
//!
//! Every algorithm sets up an affine template `η(ℓ, v) = a_ℓ·v + b_ℓ` per
//! location with unknown coefficients (Step 1 of each algorithm in the
//! paper). [`TemplateSpace`] allocates a dense unknown vector holding all
//! `a_ℓ`/`b_ℓ` plus any algorithm-specific extras (`ε`, `β`, `ω`, `M`), and
//! [`UCoef`] is an affine form over those unknowns used when generating
//! constraints.

use qava_pts::{LocId, Pts};

/// A dense affine form `lin · x + constant` over the template unknowns `x`.
#[derive(Debug, Clone, PartialEq)]
pub struct UCoef {
    /// Coefficients, one per unknown.
    pub lin: Vec<f64>,
    /// Constant offset.
    pub constant: f64,
}

impl UCoef {
    /// The zero form over `n` unknowns.
    pub fn zero(n: usize) -> Self {
        UCoef { lin: vec![0.0; n], constant: 0.0 }
    }

    /// A constant form.
    pub fn constant(n: usize, value: f64) -> Self {
        UCoef { lin: vec![0.0; n], constant: value }
    }

    /// Adds `scale · x_idx`.
    pub fn add_unknown(&mut self, idx: usize, scale: f64) {
        self.lin[idx] += scale;
    }

    /// Adds `scale · other` in place.
    pub fn add_scaled(&mut self, other: &UCoef, scale: f64) {
        for (a, b) in self.lin.iter_mut().zip(&other.lin) {
            *a += scale * b;
        }
        self.constant += scale * other.constant;
    }

    /// Returns `-self`.
    #[must_use]
    pub fn negated(&self) -> UCoef {
        UCoef { lin: self.lin.iter().map(|c| -c).collect(), constant: -self.constant }
    }

    /// Evaluates against a concrete unknown assignment.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.constant + self.lin.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
    }

    /// `true` when every coefficient and the constant are zero.
    pub fn is_zero(&self) -> bool {
        self.constant == 0.0 && self.lin.iter().all(|&c| c == 0.0)
    }
}

/// Allocation of template unknowns for a PTS.
#[derive(Debug, Clone)]
pub struct TemplateSpace {
    /// Per-location offset into the unknown vector (`None` = no template).
    offsets: Vec<Option<usize>>,
    nvars: usize,
    len: usize,
    extra_names: Vec<String>,
}

impl TemplateSpace {
    /// Allocates `a_ℓ ∈ ℝ^n, b_ℓ ∈ ℝ` for every live location, and also for
    /// `ℓ_t`/`ℓ_f` when `include_absorbing` (RepRSM synthesis templates η on
    /// all locations; the exponential syntheses fix `θ(ℓ_t) = 0, θ(ℓ_f) = 1`
    /// instead).
    pub fn new(pts: &Pts, include_absorbing: bool) -> Self {
        let nvars = pts.num_vars();
        let mut offsets = vec![None; pts.num_locations()];
        let mut len = 0usize;
        for (l, slot) in offsets.iter_mut().enumerate() {
            let live = l >= 2;
            if live || include_absorbing {
                *slot = Some(len);
                len += nvars + 1;
            }
        }
        TemplateSpace { offsets, nvars, len, extra_names: Vec::new() }
    }

    /// Appends an algorithm-specific scalar unknown (`ε`, `ω`, `M`, …) and
    /// returns its index.
    pub fn add_extra(&mut self, name: impl Into<String>) -> usize {
        self.extra_names.push(name.into());
        self.len += 1;
        self.len - 1
    }

    /// Total number of unknowns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no unknowns were allocated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of program variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// `true` when the location carries a template.
    pub fn has_template(&self, l: LocId) -> bool {
        self.offsets[l.index()].is_some()
    }

    /// Index of the coefficient `a_ℓ[var]`.
    ///
    /// # Panics
    ///
    /// Panics if the location has no template.
    pub fn a_index(&self, l: LocId, var: usize) -> usize {
        debug_assert!(var < self.nvars);
        self.offsets[l.index()].expect("location has no template") + var
    }

    /// Index of the offset unknown `b_ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if the location has no template.
    pub fn b_index(&self, l: LocId) -> usize {
        self.offsets[l.index()].expect("location has no template") + self.nvars
    }

    /// The affine form `a_ℓ · point + b_ℓ` (e.g. `η(ℓ_init, v_init)`).
    pub fn eta_at(&self, l: LocId, point: &[f64]) -> UCoef {
        let mut u = UCoef::zero(self.len);
        for (k, &p) in point.iter().enumerate() {
            u.add_unknown(self.a_index(l, k), p);
        }
        u.add_unknown(self.b_index(l), 1.0);
        u
    }

    /// Extracts the synthesized affine template of a location from a solved
    /// unknown vector as `(a, b)`.
    pub fn extract(&self, l: LocId, x: &[f64]) -> (Vec<f64>, f64) {
        let a = (0..self.nvars).map(|k| x[self.a_index(l, k)]).collect();
        (a, x[self.b_index(l)])
    }
}

/// A solved template, pretty-printable in the style of the paper's
/// symbolic Tables 3–5 (`exp(−1.18·x + 0.85·y + 31.79)`).
#[derive(Debug, Clone)]
pub struct SolvedTemplate {
    /// `(location name, a coefficients, b)` triples for live locations.
    pub per_location: Vec<(String, Vec<f64>, f64)>,
    /// Program-variable names, aligned with the coefficient vectors.
    pub var_names: Vec<String>,
}

impl SolvedTemplate {
    /// Builds the solved template for every live location.
    pub fn from_solution(pts: &Pts, space: &TemplateSpace, x: &[f64]) -> Self {
        let var_names = (0..pts.num_vars())
            .map(|k| pts.var_name(qava_pts::VarId::from_index(k)).to_string())
            .collect();
        let per_location = pts
            .live_locations()
            .filter(|&l| space.has_template(l))
            .map(|l| {
                let (a, b) = space.extract(l, x);
                (pts.loc_name(l).to_string(), a, b)
            })
            .collect();
        SolvedTemplate { per_location, var_names }
    }

    /// Formats one location's exponent as `c1·x + c2·y + b`.
    pub fn exponent_string(&self, loc_index: usize) -> String {
        let (_, a, b) = &self.per_location[loc_index];
        let mut s = String::new();
        for (coef, name) in a.iter().zip(&self.var_names) {
            if coef.abs() > 1e-12 {
                if s.is_empty() {
                    s.push_str(&format!("{coef:.4}·{name}"));
                } else if *coef < 0.0 {
                    s.push_str(&format!(" - {:.4}·{name}", -coef));
                } else {
                    s.push_str(&format!(" + {coef:.4}·{name}"));
                }
            }
        }
        if s.is_empty() {
            format!("{b:.4}")
        } else if *b < 0.0 {
            format!("{s} - {:.4}", -b)
        } else {
            format!("{s} + {b:.4}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qava_pts::{AffineUpdate, Fork, PtsBuilder};
    use qava_polyhedra::Polyhedron;

    fn tiny_pts() -> Pts {
        let mut b = PtsBuilder::new();
        b.add_var("x");
        b.add_var("y");
        let head = b.add_location("head");
        b.set_initial(head, vec![1.0, 2.0]);
        b.add_transition(
            head,
            Polyhedron::universe(2),
            vec![Fork::new(b.terminal_location(), 1.0, AffineUpdate::identity(2))],
        );
        b.finish().unwrap()
    }

    #[test]
    fn allocation_live_only() {
        let pts = tiny_pts();
        let space = TemplateSpace::new(&pts, false);
        assert_eq!(space.len(), 3, "a_x, a_y, b for the single live location");
        assert!(!space.has_template(pts.terminal_location()));
        assert!(space.has_template(pts.loc_by_name("head").unwrap()));
    }

    #[test]
    fn allocation_with_absorbing() {
        let pts = tiny_pts();
        let space = TemplateSpace::new(&pts, true);
        assert_eq!(space.len(), 9, "three locations x three unknowns");
        assert!(space.has_template(pts.failure_location()));
    }

    #[test]
    fn eta_at_evaluates() {
        let pts = tiny_pts();
        let mut space = TemplateSpace::new(&pts, false);
        let head = pts.loc_by_name("head").unwrap();
        let eta = space.eta_at(head, &[1.0, 2.0]);
        // With a = (3, 4), b = 5: η = 3 + 8 + 5 = 16.
        let mut x = vec![0.0; space.len()];
        x[space.a_index(head, 0)] = 3.0;
        x[space.a_index(head, 1)] = 4.0;
        x[space.b_index(head)] = 5.0;
        assert_eq!(eta.eval(&x), 16.0);
        let extra = space.add_extra("epsilon");
        assert_eq!(extra, 3);
        assert_eq!(space.len(), 4);
    }

    #[test]
    fn ucoef_arithmetic() {
        let mut u = UCoef::zero(2);
        u.add_unknown(0, 2.0);
        u.add_unknown(1, -1.0);
        let mut v = UCoef::constant(2, 3.0);
        v.add_scaled(&u, 0.5);
        assert_eq!(v.eval(&[4.0, 2.0]), 3.0 + 0.5 * (8.0 - 2.0));
        assert_eq!(u.negated().eval(&[1.0, 1.0]), -1.0);
        assert!(UCoef::zero(3).is_zero());
        assert!(!u.is_zero());
    }

    #[test]
    fn exponent_string_formats() {
        let t = SolvedTemplate {
            per_location: vec![("head".into(), vec![-1.18, 0.85], 31.79)],
            var_names: vec!["x".into(), "y".into()],
        };
        let s = t.exponent_string(0);
        assert!(s.contains("-1.1800·x"), "{s}");
        assert!(s.contains("+ 0.8500·y"), "{s}");
        assert!(s.contains("31.79"), "{s}");
    }
}
