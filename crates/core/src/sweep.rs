//! Parametric sweeps: certified bound-vs-parameter curves at
//! near-single-solve cost.
//!
//! The suite's benchmark families — Coupon `Pr[T > 100/300/500]`, the
//! Ref `p` ladder, the 3DWalk εmax ladder — are the *same program* at
//! neighboring parameter values, yet the table drivers re-solve every
//! point from scratch. A sweep ([`run_sweep`]) instead walks one
//! family's points **in order** through a single shared [`LpSolver`]
//! session with dual-simplex reoptimization enabled
//! (`LpSolver::set_reoptimize`): each point's LPs find the previous
//! point's optimal basis in the session's warm-start cache and try a
//! handful of dual pivots on the perturbed RHS/objective instead of a
//! cold two-phase primal solve. On top of the LP reuse, the previous
//! point's certified template seeds the next point's synthesis: its ε\*
//! narrows the RepRSM Ser search window
//! ([`AnalysisRequest::eps_seed`]), skipping the εmax LP.
//!
//! ## Fallback and honesty semantics
//!
//! Reuse is a fast path, never a verdict source, at every layer:
//!
//! * a dual reoptimization that fails for any reason (stale or singular
//!   cached basis, lost dual feasibility, degenerate stall, injected
//!   `dual-pivot` fault) degrades inside the session to the ordinary
//!   cold primal solve;
//! * a seeded ε search whose optimum pins to the seeded window boundary
//!   (or lands infeasible) discards the seeded attempt and reruns the
//!   full search, εmax LP included;
//! * with [`SweepRequest::check_cold`] (the `qava --sweep` default),
//!   every point is additionally re-solved in a fresh cold session and
//!   the two certified bounds are compared at the same relative `1e-7`
//!   tolerance the chaos suite uses. A drifted point **reports the cold
//!   bound** — the sweep-session attempt moves to the point's
//!   [`abandoned`](SweepPoint::abandoned) bucket — so a sweep can be
//!   faster than the per-point baseline, never looser.
//!
//! Per-point reopt-vs-cold statistics (`LpStats::reopt_attempts` /
//! `reopt_successes`) ride on the ordinary stats plumbing and surface in
//! the `qava --sweep` footer.

use crate::engine::{AnalysisRequest, Direction, EngineRegistry};
use crate::logprob::LogProb;
use crate::suite::Benchmark;
use qava_lp::{BackendChoice, LpSolver, LpStats};
use std::time::Instant;

/// Relative tolerance of the cold cross-check, matching the chaos
/// suite's value-preservation contract.
pub const DRIFT_TOL: f64 = 1e-7;

/// The engine a sweep runs per point when [`SweepRequest::engine`] is
/// `None`: the direction's primary table engine that benefits from both
/// LP reoptimization and template seeding.
pub fn primary_engine(direction: Direction) -> &'static str {
    match direction {
        Direction::Upper => "hoeffding-linear",
        Direction::Lower => "explowsyn",
    }
}

/// One family sweep: an *ordered* list of neighboring points plus the
/// reuse/verification policy.
#[derive(Debug, Clone)]
pub struct SweepRequest<'a> {
    /// The family's points, in sweep order. Order matters: point `k+1`
    /// reuses point `k`'s basis and template, so neighbors should differ
    /// by small parameter steps (the suite families are already ordered
    /// this way).
    pub rows: &'a [Benchmark],
    /// Engine to run per point; `None` picks [`primary_engine`] of the
    /// row's direction.
    pub engine: Option<&'static str>,
    /// LP backend policy for both the shared sweep session and the cold
    /// cross-check sessions.
    pub backend: BackendChoice,
    /// Re-solve every point in a fresh cold session and fall back to the
    /// cold bound when the sweep bound drifts beyond [`DRIFT_TOL`].
    pub check_cold: bool,
}

impl<'a> SweepRequest<'a> {
    /// A sweep over `rows` with the default engine, backend and the cold
    /// cross-check enabled.
    pub fn new(rows: &'a [Benchmark]) -> Self {
        SweepRequest { rows, engine: None, backend: BackendChoice::default(), check_cold: true }
    }
}

/// Outcome of one sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Benchmark name (e.g. `Coupon`).
    pub name: &'static str,
    /// Row label (e.g. `Pr[T > 300]`).
    pub label: String,
    /// Engine that ran this point.
    pub engine: &'static str,
    /// The certified bound backing this point, or the failure rendered
    /// as text.
    pub bound: Result<LogProb, String>,
    /// Wall-clock time of the point, seconds — sweep run plus (when
    /// enabled) the cold cross-check.
    pub seconds: f64,
    /// LP statistics behind the **reported** bound (the shared sweep
    /// session's share, or the cold session's after a fallback),
    /// including this point's `reopt_attempts`/`reopt_successes`.
    pub lp: LpStats,
    /// LP statistics of a sweep-session attempt that was discarded in
    /// favor of its cold cross-check; empty otherwise. Kept apart from
    /// [`lp`](Self::lp) so sweep totals never double-count, mirroring
    /// the race driver's abandoned bucket.
    pub abandoned: LpStats,
    /// LP statistics of a cold cross-check that *confirmed* the sweep
    /// bound; empty when the check was off or the point fell back cold.
    pub audit: LpStats,
    /// Whether this point's synthesis was seeded by the previous point's
    /// template.
    pub seeded: bool,
    /// Whether the point reports its cold solve (sweep run failed or
    /// drifted past [`DRIFT_TOL`]).
    pub cold_fallback: bool,
    /// `|Δ ln bound|` between the sweep run and the cold cross-check,
    /// when both certified.
    pub drift: Option<f64>,
}

/// A certified bound-vs-parameter curve with per-point reuse statistics.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Family name (the benchmark name of the first row).
    pub family: &'static str,
    /// One entry per requested row, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepReport {
    /// Merged LP statistics behind the reported bounds (cold
    /// cross-checks and discarded attempts excluded).
    pub fn lp_stats(&self) -> LpStats {
        let mut total = LpStats::default();
        for p in &self.points {
            total.merge(&p.lp);
        }
        total
    }

    /// Points whose bound is a failure.
    pub fn failures(&self) -> usize {
        self.points.iter().filter(|p| p.bound.is_err()).count()
    }

    /// Points that fell back to their cold solve.
    pub fn cold_fallbacks(&self) -> usize {
        self.points.iter().filter(|p| p.cold_fallback).count()
    }

    /// Largest observed sweep-vs-cold drift, when any point was checked.
    pub fn max_drift(&self) -> Option<f64> {
        self.points.iter().filter_map(|p| p.drift).fold(None, |m, d| Some(m.map_or(d, |x: f64| x.max(d))))
    }
}

/// Runs one family sweep over the built-in engine registry.
pub fn run_sweep(req: &SweepRequest<'_>) -> SweepReport {
    run_sweep_in(&EngineRegistry::with_builtins(), req)
}

/// Runs one family sweep with an explicit registry: the points run
/// strictly in order inside one shared reoptimizing [`LpSolver`]
/// session, threading the previous point's ε\* into the next point's
/// request; see the module docs for the fallback semantics.
pub fn run_sweep_in(registry: &EngineRegistry, req: &SweepRequest<'_>) -> SweepReport {
    let family = req.rows.first().map_or("", |b| b.name);
    let mut points = Vec::with_capacity(req.rows.len());
    let mut solver = LpSolver::with_choice(req.backend);
    solver.set_reoptimize(true);
    let mut seed: Option<f64> = None;

    for b in req.rows {
        let name = req.engine.unwrap_or_else(|| primary_engine(b.direction));
        let Some(engine) = registry.engine(name) else {
            points.push(SweepPoint {
                name: b.name,
                label: b.label.clone(),
                engine: name,
                bound: Err(format!("unknown engine `{name}`")),
                seconds: 0.0,
                lp: LpStats::default(),
                abandoned: LpStats::default(),
                audit: LpStats::default(),
                seeded: false,
                cold_fallback: false,
                drift: None,
            });
            seed = None;
            continue;
        };
        let pts = b.compile();
        let t0 = Instant::now();
        let mut areq = AnalysisRequest::new(&pts, engine.direction());
        areq.eps_seed = seed;
        let seeded = areq.eps_seed.is_some();
        let report = engine.run(&areq, &mut solver);

        let mut lp = report.lp;
        let mut outcome = report.outcome;
        let mut abandoned = LpStats::default();
        let mut audit = LpStats::default();
        let mut cold_fallback = false;
        let mut drift = None;

        if req.check_cold || outcome.is_err() {
            // The authority: same engine, fresh session, no seed, no
            // reoptimization.
            let cold_req = AnalysisRequest::new(&pts, engine.direction());
            let mut cold_solver = LpSolver::with_choice(req.backend);
            let cold = engine.run(&cold_req, &mut cold_solver);
            match (&outcome, &cold.outcome) {
                (Ok(fast), Ok(authority)) => {
                    let (lf, lc) = (fast.bound.ln(), authority.bound.ln());
                    let d = (lf - lc).abs();
                    drift = Some(d);
                    if d > DRIFT_TOL * (1.0 + lc.abs()) {
                        abandoned = std::mem::take(&mut lp);
                        lp = cold.lp;
                        outcome = cold.outcome;
                        cold_fallback = true;
                    } else {
                        audit = cold.lp;
                    }
                }
                (Err(_), Ok(_)) => {
                    abandoned = std::mem::take(&mut lp);
                    lp = cold.lp;
                    outcome = cold.outcome;
                    cold_fallback = true;
                }
                // Both failed (or only the cold check failed): keep the
                // sweep outcome, bank the check's work.
                _ => audit = cold.lp,
            }
        }
        let seconds = t0.elapsed().as_secs_f64();

        // The next point is seeded by whatever template this point
        // *reports* — after a cold fallback, the cold template.
        seed = outcome
            .as_ref()
            .ok()
            .and_then(|c| {
                c.details.iter().find(|(k, _)| *k == "epsilon").map(|&(_, v)| v)
            })
            .filter(|e| e.is_finite() && *e > 0.0);

        points.push(SweepPoint {
            name: b.name,
            label: b.label.clone(),
            engine: name,
            bound: outcome.map(|c| c.bound).map_err(|e| e.to_string()),
            seconds,
            lp,
            abandoned,
            audit,
            seeded,
            cold_fallback,
            drift,
        });
    }

    SweepReport { family, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::{coupon_rows, refsearch_rows};

    #[test]
    fn ref_sweep_certifies_and_matches_cold() {
        // The lower-bound family is the cheapest synthesis; the sweep
        // must certify every point and agree with its cold authority.
        let rows = refsearch_rows();
        let report = run_sweep(&SweepRequest::new(&rows));
        assert_eq!(report.family, "Ref");
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.failures(), 0);
        for p in &report.points {
            assert!(p.bound.is_ok(), "{}: {:?}", p.label, p.bound);
            let d = p.drift.expect("check_cold compares every certified point");
            assert!(d <= DRIFT_TOL * (1.0 + p.bound.as_ref().unwrap().ln().abs()) || p.cold_fallback);
        }
        // explowsyn has no ε detail, so no point is seeded.
        assert!(report.points.iter().all(|p| !p.seeded));
    }

    #[test]
    fn coupon_sweep_seeds_neighbors_and_is_monotone() {
        let rows = coupon_rows();
        let report = run_sweep(&SweepRequest::new(&rows));
        assert_eq!(report.failures(), 0);
        // Template threading: every point after the first is seeded by
        // its neighbor's ε*.
        assert!(!report.points[0].seeded);
        assert!(report.points[1].seeded && report.points[2].seeded);
        // Metamorphic monotonicity: Pr[T > n] is non-increasing in n.
        let lns: Vec<f64> =
            report.points.iter().map(|p| p.bound.as_ref().unwrap().ln()).collect();
        assert!(
            lns.windows(2).all(|w| w[1] <= w[0] + 1e-12),
            "coupon bounds must be non-increasing in n: {lns:?}"
        );
    }

    #[test]
    fn unknown_engine_fails_points_without_panicking() {
        let rows = refsearch_rows();
        let mut req = SweepRequest::new(&rows);
        req.engine = Some("interior-point");
        let report = run_sweep(&req);
        assert_eq!(report.failures(), 3);
        assert!(report.points[0].bound.as_ref().unwrap_err().contains("unknown engine"));
    }
}
