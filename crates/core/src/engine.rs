//! The unified bound-engine API: one runtime-dispatchable handle over
//! every bound-synthesis algorithm in the crate, an [`EngineRegistry`]
//! mirroring `LpSolver::register_backend` one layer up, and in-process
//! **candidate racing** ([`race`]).
//!
//! The paper's evaluation runs several synthesis algorithms side by side
//! per benchmark; historically each lived behind its own free-function
//! family (`synthesize_reprsm_bound*`, `synthesize_upper_bound*`, …) and
//! every caller — suite runner, CLI, `tables` — glued them together by
//! hand. This module promotes the algorithm to a value:
//!
//! * [`BoundEngine`] is the pluggable synthesis interface: a name, a
//!   bound [`Direction`], a cheap [`applicable`](BoundEngine::applicable)
//!   screen, and [`run`](BoundEngine::run), which takes an
//!   [`AnalysisRequest`] (compiled PTS + budget/tolerance knobs) and an
//!   `LpSolver` session and returns a uniform [`AnalysisReport`]
//!   (certified bound, certificate, per-engine `LpStats`, wall time).
//! * The six built-in engines wrap the existing algorithms:
//!   `hoeffding-linear` and `azuma` (§5.1 / Remark 2), `explinsyn`
//!   (§5.2), `polyrsm-quadratic` (Remark 3), `explowsyn` (§6) and
//!   `polylow` (Remark 5). The legacy free functions remain as thin
//!   deprecated shims over the same `*_in` implementations.
//! * [`EngineRegistry`] holds engines by name;
//!   [`register_engine`](EngineRegistry::register_engine) attaches
//!   external implementations exactly like `LpSolver::register_backend`
//!   attaches LP backends.
//! * [`race`] runs the applicable engines of a direction concurrently on
//!   the rayon pool, each inside its **own** `LpSolver` session, and
//!   returns the first *certified* bound; the losers are cancelled
//!   cooperatively through a shared flag their sessions poll at LP-solve
//!   boundaries ([`qava_lp::LpError::Cancelled`]). Loser statistics are
//!   kept honest in a separate `abandoned` bucket
//!   ([`RaceOutcome::abandoned`]) so suite footers never double-count
//!   pivots spent by cancelled candidates.
//!
//! Soundness of racing: every engine's bound is individually certified
//! (it comes with a checked certificate), so returning whichever
//! certified bound arrives first is sound for *bounds* — the race trades
//! tightness for latency, never correctness. Determinism of the value:
//! a racer's result is computed entirely inside its private session, so
//! the bound reported for a winning engine is bit-identical to what that
//! engine reports when run alone (pinned by
//! `tests/engine_conformance.rs`).

use crate::hoeffding::{self, BoundKind};
use crate::logprob::LogProb;
use crate::template::SolvedTemplate;
use crate::{explinsyn, explowsyn, polylow, polyrsm};
use qava_convex::SolverOptions;
use qava_lp::{BackendChoice, LpError, LpSolver, LpStats};
use qava_pts::Pts;
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which side of the true violation probability a bound certifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Upper bounds (UQAVA; Table 1 of the paper).
    Upper,
    /// Lower bounds (LQAVA; Table 2 — sound under a.s. termination).
    Lower,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Upper => write!(f, "upper"),
            Direction::Lower => write!(f, "lower"),
        }
    }
}

/// Everything an engine needs to run on one program: the compiled PTS
/// plus the budget/tolerance knobs the algorithms expose. One request is
/// shared (immutably) by every engine of a run or race.
#[derive(Debug, Clone)]
pub struct AnalysisRequest<'a> {
    /// The compiled, invariant-annotated transition system.
    pub pts: &'a Pts,
    /// The bound direction being asked for. Engines of the other
    /// direction are filtered out by the registry/race helpers.
    pub direction: Direction,
    /// Ser ternary-search iteration budget for the RepRSM engines
    /// (Theorem C.1's granularity/LP-count trade-off).
    pub ser_iterations: usize,
    /// Interior-point options for the convex-programming engine.
    pub convex: SolverOptions,
    /// Optional wall-clock budget for each engine run. Enforced at
    /// LP-solve boundaries through the session's deadline check, so an
    /// expired run winds down with [`EngineError::Cancelled`] rather
    /// than being killed mid-pivot — the same cooperative path a lost
    /// race uses.
    pub deadline: Option<Duration>,
    /// Optional ε seed from a neighboring parametric-sweep point's
    /// certified template ([`crate::sweep`]). Only the RepRSM engines
    /// (`hoeffding-linear`, `azuma`) consume it — they narrow the Ser
    /// ternary-search window around the seed instead of solving the εmax
    /// LP, with boundary/infeasibility guards falling back to the full
    /// search (see `hoeffding::synthesize_reprsm_bound_seeded_in`).
    /// Other engines ignore it.
    pub eps_seed: Option<f64>,
}

impl<'a> AnalysisRequest<'a> {
    /// A request with the default budgets.
    pub fn new(pts: &'a Pts, direction: Direction) -> Self {
        AnalysisRequest {
            pts,
            direction,
            ser_iterations: hoeffding::DEFAULT_SER_ITERATIONS,
            convex: SolverOptions::default(),
            deadline: None,
            eps_seed: None,
        }
    }

    /// Sets a per-run wall-clock budget (see [`Self::deadline`]).
    #[must_use]
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Seeds the RepRSM ε search from a neighboring sweep point (see
    /// [`Self::eps_seed`]).
    #[must_use]
    pub fn seed_epsilon(mut self, eps: f64) -> Self {
        self.eps_seed = Some(eps);
        self
    }

    /// Shorthand for an upper-bound request with default budgets.
    pub fn upper(pts: &'a Pts) -> Self {
        Self::new(pts, Direction::Upper)
    }

    /// Shorthand for a lower-bound request with default budgets.
    pub fn lower(pts: &'a Pts) -> Self {
        Self::new(pts, Direction::Lower)
    }
}

/// The certificate backing a certified bound — what a caller would
/// re-check or print symbolically (Tables 3–5).
#[derive(Debug, Clone)]
pub enum Certificate {
    /// An exponential template with affine exponent per live location
    /// (RepRSM η or pre/post fixed-point exponent).
    Template(SolvedTemplate),
    /// A raw solution vector over quadratic-template unknowns (the
    /// Handelman engines; see `polyrsm`/`polylow` for the layout).
    Quadratic(Vec<f64>),
}

/// A certified bound with its certificate and engine-specific scalars.
#[derive(Debug, Clone)]
pub struct Certified {
    /// The certified bound on the violation probability.
    pub bound: LogProb,
    /// The certificate that backs it.
    pub certificate: Certificate,
    /// Engine-specific diagnostics (`("epsilon", …)`, `("lp_solves", …)`,
    /// …), for display layers that used to read result-struct fields.
    pub details: Vec<(&'static str, f64)>,
}

/// Why an engine produced no certified bound.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The run was cooperatively cancelled: it lost a [`race`] and its
    /// session's cancel flag was raised, or its request's deadline
    /// expired. No verdict of any kind.
    Cancelled,
    /// The engine genuinely declined or failed (no certificate exists,
    /// numerical failure, …), rendered exactly as the legacy error.
    Failed(String),
    /// The engine panicked mid-run. Only [`race`] produces this — it
    /// isolates each racer behind a panic boundary so one buggy
    /// candidate cannot take down the whole race; running an engine
    /// directly propagates the panic as usual.
    Panicked(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Cancelled => {
                write!(f, "cancelled (lost the candidate race or ran out of deadline)")
            }
            EngineError::Failed(msg) => write!(f, "{msg}"),
            EngineError::Panicked(msg) => write!(f, "engine panicked: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The uniform outcome of one engine on one request.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// [`BoundEngine::name`] of the engine that ran.
    pub engine: &'static str,
    /// The engine's bound direction.
    pub direction: Direction,
    /// The certified bound, or why there is none.
    pub outcome: Result<Certified, EngineError>,
    /// LP statistics this run added to its session (solves, pivots,
    /// warm-start traffic, wall time inside the LP pipeline).
    pub lp: LpStats,
    /// Wall-clock time of the whole run, seconds.
    pub wall_seconds: f64,
}

impl AnalysisReport {
    /// The certified bound, if any.
    pub fn bound(&self) -> Option<LogProb> {
        self.outcome.as_ref().ok().map(|c| c.bound)
    }

    /// Whether the run ended because it was cancelled (vs. failed or
    /// succeeded).
    pub fn cancelled(&self) -> bool {
        matches!(self.outcome, Err(EngineError::Cancelled))
    }
}

/// A runtime-dispatchable bound-synthesis algorithm.
///
/// `Send + Sync` is part of the contract so registries can be shared
/// across the suite driver's worker threads and engines can race.
pub trait BoundEngine: Send + Sync {
    /// Short stable name, used for registry lookup, `--engines` lists
    /// and statistics attribution.
    fn name(&self) -> &'static str;

    /// Which bound direction this engine certifies.
    fn direction(&self) -> Direction;

    /// Cheap applicability screen, checked before scheduling a run. The
    /// default rejects programs whose initial location is absorbing (the
    /// answer is trivially 0 or 1 and every algorithm declines).
    fn applicable(&self, pts: &Pts) -> bool {
        !pts.is_absorbing(pts.initial_state().loc)
    }

    /// Runs the engine inside the given solver session.
    ///
    /// Implementations must confine all LP work to `solver` (so
    /// statistics and cooperative cancellation work), must report the
    /// statistics *this run* added to the session in
    /// [`AnalysisReport::lp`] while leaving the session-wide running
    /// total intact (see [`scoped_stats`]), and must map a cancelled
    /// session ([`qava_lp::LpError::Cancelled`]) to
    /// [`EngineError::Cancelled`].
    fn run(&self, req: &AnalysisRequest<'_>, solver: &mut LpSolver) -> AnalysisReport;
}

/// Runs `f` against the session while carving its [`LpStats`] into a
/// private slice: the returned stats are exactly what `f` added, and the
/// session's own running total (anything accumulated before plus `f`'s
/// share) is preserved. The building block every engine adapter uses to
/// fill [`AnalysisReport::lp`] honestly even when the caller shares one
/// session across several analyses (as `qava` single-file mode does).
pub fn scoped_stats<T>(
    solver: &mut LpSolver,
    f: impl FnOnce(&mut LpSolver) -> T,
) -> (T, LpStats) {
    let before = solver.take_stats();
    let out = f(solver);
    let mine = solver.take_stats();
    solver.merge_stats(&before);
    solver.merge_stats(&mine);
    (out, mine)
}

/// Shared `run` plumbing: timing, stats scoping, report assembly.
fn run_report(
    name: &'static str,
    direction: Direction,
    req: &AnalysisRequest<'_>,
    solver: &mut LpSolver,
    f: impl FnOnce(&AnalysisRequest<'_>, &mut LpSolver) -> Result<Certified, EngineError>,
) -> AnalysisReport {
    let started = Instant::now();
    if let Some(budget) = req.deadline {
        solver.set_deadline_in(budget);
    }
    let (outcome, lp) = scoped_stats(solver, |solver| f(req, solver));
    if req.deadline.is_some() {
        solver.clear_deadline();
    }
    AnalysisReport {
        engine: name,
        direction,
        outcome,
        lp,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// §5.1: affine RepRSM + Hoeffding's lemma (`hoeffding-linear`).
#[derive(Debug, Clone, Copy, Default)]
pub struct HoeffdingLinear;

/// POPL'17 baseline: affine RepRSM + Azuma's inequality (`azuma`).
#[derive(Debug, Clone, Copy, Default)]
pub struct AzumaLinear;

/// §5.2: complete exponential upper bounds via convex programming
/// (`explinsyn`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpLinSyn;

/// Remark 3: quadratic RepRSM via Handelman certificates
/// (`polyrsm-quadratic`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PolyRsmQuadratic;

/// §6: exponential lower bounds via Jensen strengthening (`explowsyn`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpLowSyn;

/// Remark 5: quadratic lower bounds via Handelman certificates
/// (`polylow`).
#[derive(Debug, Clone, Copy, Default)]
pub struct PolyLowQuadratic;

/// The shared adapter behind both affine RepRSM engines — they differ
/// only in the concentration inequality ([`BoundKind`]).
fn run_reprsm(
    name: &'static str,
    kind: BoundKind,
    req: &AnalysisRequest<'_>,
    solver: &mut LpSolver,
) -> AnalysisReport {
    run_report(name, Direction::Upper, req, solver, |req, solver| {
        hoeffding::synthesize_reprsm_bound_seeded_in(
            req.pts,
            kind,
            req.ser_iterations,
            req.eps_seed,
            solver,
        )
            .map(|r| Certified {
                bound: r.bound,
                certificate: Certificate::Template(r.template),
                details: vec![
                    ("epsilon", r.epsilon),
                    ("omega", r.omega),
                    ("lp_solves", r.lp_solves as f64),
                ],
            })
            .map_err(|e| match e {
                hoeffding::RepRsmError::Lp(LpError::Cancelled) => EngineError::Cancelled,
                other => EngineError::Failed(other.to_string()),
            })
    })
}

impl BoundEngine for HoeffdingLinear {
    fn name(&self) -> &'static str {
        "hoeffding-linear"
    }

    fn direction(&self) -> Direction {
        Direction::Upper
    }

    fn run(&self, req: &AnalysisRequest<'_>, solver: &mut LpSolver) -> AnalysisReport {
        run_reprsm(self.name(), BoundKind::Hoeffding, req, solver)
    }
}

impl BoundEngine for AzumaLinear {
    fn name(&self) -> &'static str {
        "azuma"
    }

    fn direction(&self) -> Direction {
        Direction::Upper
    }

    fn run(&self, req: &AnalysisRequest<'_>, solver: &mut LpSolver) -> AnalysisReport {
        run_reprsm(self.name(), BoundKind::Azuma, req, solver)
    }
}

impl BoundEngine for ExpLinSyn {
    fn name(&self) -> &'static str {
        "explinsyn"
    }

    fn direction(&self) -> Direction {
        Direction::Upper
    }

    fn run(&self, req: &AnalysisRequest<'_>, solver: &mut LpSolver) -> AnalysisReport {
        run_report(self.name(), self.direction(), req, solver, |req, solver| {
            explinsyn::synthesize_upper_bound_with_in(req.pts, &req.convex, solver)
                .map(|r| Certified {
                    bound: r.bound,
                    certificate: Certificate::Template(r.template),
                    details: vec![
                        ("floored", f64::from(u8::from(r.floored))),
                        ("newton_iterations", r.newton_iterations as f64),
                    ],
                })
                .map_err(|e| match e {
                    explinsyn::ExpLinSynError::Cancelled => EngineError::Cancelled,
                    other => EngineError::Failed(other.to_string()),
                })
        })
    }
}

impl BoundEngine for PolyRsmQuadratic {
    fn name(&self) -> &'static str {
        "polyrsm-quadratic"
    }

    fn direction(&self) -> Direction {
        Direction::Upper
    }

    fn run(&self, req: &AnalysisRequest<'_>, solver: &mut LpSolver) -> AnalysisReport {
        run_report(self.name(), self.direction(), req, solver, |req, solver| {
            polyrsm::synthesize_quadratic_bound_in(
                req.pts,
                BoundKind::Hoeffding,
                req.ser_iterations,
                solver,
            )
            .map(|r| Certified {
                bound: r.bound,
                certificate: Certificate::Quadratic(r.solution),
                details: vec![
                    ("epsilon", r.epsilon),
                    ("omega", r.omega),
                    ("lp_solves", r.lp_solves as f64),
                ],
            })
            .map_err(|e| match e {
                polyrsm::PolyRsmError::Lp(LpError::Cancelled) => EngineError::Cancelled,
                other => EngineError::Failed(other.to_string()),
            })
        })
    }
}

impl BoundEngine for ExpLowSyn {
    fn name(&self) -> &'static str {
        "explowsyn"
    }

    fn direction(&self) -> Direction {
        Direction::Lower
    }

    fn run(&self, req: &AnalysisRequest<'_>, solver: &mut LpSolver) -> AnalysisReport {
        run_report(self.name(), self.direction(), req, solver, |req, solver| {
            explowsyn::synthesize_lower_bound_in(req.pts, solver)
                .map(|r| Certified {
                    bound: r.bound,
                    certificate: Certificate::Template(r.template),
                    details: vec![("lattice_bound", r.lattice_bound)],
                })
                .map_err(|e| match e {
                    explowsyn::ExpLowSynError::Lp(LpError::Cancelled) => EngineError::Cancelled,
                    other => EngineError::Failed(other.to_string()),
                })
        })
    }
}

impl BoundEngine for PolyLowQuadratic {
    fn name(&self) -> &'static str {
        "polylow"
    }

    fn direction(&self) -> Direction {
        Direction::Lower
    }

    fn run(&self, req: &AnalysisRequest<'_>, solver: &mut LpSolver) -> AnalysisReport {
        run_report(self.name(), self.direction(), req, solver, |req, solver| {
            polylow::synthesize_quadratic_lower_bound_in(req.pts, solver)
                .map(|r| Certified {
                    bound: r.bound,
                    certificate: Certificate::Quadratic(r.solution),
                    details: Vec::new(),
                })
                .map_err(|e| match e {
                    polylow::PolyLowError::Lp(LpError::Cancelled) => EngineError::Cancelled,
                    other => EngineError::Failed(other.to_string()),
                })
        })
    }
}

/// A by-name collection of [`BoundEngine`]s — the synthesis-layer mirror
/// of `LpSolver`'s backend registry.
pub struct EngineRegistry {
    engines: Vec<Box<dyn BoundEngine>>,
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry").field("engines", &self.names()).finish()
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl EngineRegistry {
    /// An empty registry (no built-ins).
    pub fn new() -> Self {
        EngineRegistry { engines: Vec::new() }
    }

    /// A registry holding the six built-in engines, upper before lower:
    /// `hoeffding-linear`, `azuma`, `explinsyn`, `polyrsm-quadratic`,
    /// `explowsyn`, `polylow`.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register_engine(Box::new(HoeffdingLinear));
        r.register_engine(Box::new(AzumaLinear));
        r.register_engine(Box::new(ExpLinSyn));
        r.register_engine(Box::new(PolyRsmQuadratic));
        r.register_engine(Box::new(ExpLowSyn));
        r.register_engine(Box::new(PolyLowQuadratic));
        r
    }

    /// Registers an engine. Lookup scans newest-first, so registering a
    /// name again shadows the earlier engine (externals can override a
    /// built-in without removing it).
    pub fn register_engine(&mut self, engine: Box<dyn BoundEngine>) {
        self.engines.push(engine);
    }

    /// Looks an engine up by [`name`](BoundEngine::name).
    pub fn engine(&self, name: &str) -> Option<&dyn BoundEngine> {
        self.engines.iter().rev().find(|e| e.name() == name).map(Box::as_ref)
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// All registered engines, in registration order.
    pub fn engines(&self) -> impl Iterator<Item = &dyn BoundEngine> {
        self.engines.iter().map(Box::as_ref)
    }

    /// The registered engines certifying `direction`, in registration
    /// order (shadowed duplicates excluded). Dedup is by name with the
    /// newest registration winning — never by pointer identity, which
    /// is meaningless for the zero-sized built-in engine types.
    pub fn for_direction(&self, direction: Direction) -> Vec<&dyn BoundEngine> {
        self.engines
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                e.direction() == direction
                    && self.engines.iter().rposition(|o| o.name() == e.name()) == Some(*i)
            })
            .map(|(_, e)| e.as_ref())
            .collect()
    }

    /// The engines that would race for `req`: right direction and
    /// applicable to the program.
    pub fn applicable(&self, req: &AnalysisRequest<'_>) -> Vec<&dyn BoundEngine> {
        self.for_direction(req.direction).into_iter().filter(|e| e.applicable(req.pts)).collect()
    }

    /// Runs one engine by name inside a fresh session with the given
    /// backend policy. Returns `None` for unknown names.
    pub fn run_engine(
        &self,
        name: &str,
        req: &AnalysisRequest<'_>,
        backend: BackendChoice,
    ) -> Option<AnalysisReport> {
        let engine = self.engine(name)?;
        let mut solver = LpSolver::with_choice(backend);
        Some(engine.run(req, &mut solver))
    }
}

/// Outcome of one candidate race.
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// One report per raced engine, in input order — the winner's with
    /// its certified bound, the losers' typically
    /// [`EngineError::Cancelled`].
    pub reports: Vec<AnalysisReport>,
    /// Index into [`reports`](Self::reports) of the first engine to
    /// certify a bound; `None` when every racer failed.
    pub winner: Option<usize>,
    /// Engines that were filtered out before the start (wrong direction
    /// or inapplicable to the program).
    pub skipped: Vec<&'static str>,
    /// Merged LP statistics of every **non-winning** racer. Kept apart
    /// from the winner's [`AnalysisReport::lp`] so aggregate footers can
    /// report certified work and abandoned work separately instead of
    /// double-counting pivots spent by cancelled candidates.
    pub abandoned: LpStats,
}

impl RaceOutcome {
    /// The winning report, if any racer certified a bound.
    pub fn winning_report(&self) -> Option<&AnalysisReport> {
        self.winner.map(|i| &self.reports[i])
    }
}

/// Renders a panic payload the way the default panic hook would: the
/// `&str`/`String` message when there is one, a placeholder otherwise.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Races `engines` on `req`: every engine of the right direction that is
/// applicable to the program runs concurrently on the rayon pool, each
/// inside its own fresh [`LpSolver`] session (with the given backend
/// policy). The first engine to return a **certified** bound wins and
/// raises a shared cancellation flag; the others observe it at their
/// next LP-solve boundary and wind down with
/// [`qava_lp::LpError::Cancelled`] → [`EngineError::Cancelled`].
///
/// Every racer's result is computed entirely inside its private session,
/// so the winner's bound is identical to what that engine reports when
/// run alone — racing affects *which* engine answers, never *what* an
/// engine answers.
///
/// Each racer additionally runs behind a panic boundary: a candidate
/// that panics is recorded as [`EngineError::Panicked`] (an ordinary
/// loser with empty stats) and the remaining candidates keep racing.
pub fn race(
    engines: &[&dyn BoundEngine],
    req: &AnalysisRequest<'_>,
    backend: BackendChoice,
) -> RaceOutcome {
    race_with(engines, req, backend, Arc::new(AtomicBool::new(false)), &|_| {})
}

/// [`race`] with the two hooks a resident service needs.
///
/// * `cancel` is the race's shared cancellation flag, supplied by the
///   caller instead of freshly allocated: raising it externally (a
///   client disconnect monitor, a server shutting down) winds down
///   *every* racer at its next LP-solve boundary, exactly as the winner
///   normally winds down the losers. A race whose flag was raised before
///   any engine certified ends with `winner == None` and all-Cancelled
///   reports. (The winner still raises this same flag on certifying, so
///   a caller-observed `true` does not by itself mean the race was
///   aborted — check `winner`.)
/// * `configure` runs on each racer's freshly created private session
///   before the engine starts — the seam for installing process-wide
///   state such as a [`qava_lp::SharedBasisCache`], a deadline, or a
///   non-default cache capacity. It must not install anything that could
///   change a certified *verdict* (shared warm-start bases are advisory
///   by construction, so they are safe).
pub fn race_with(
    engines: &[&dyn BoundEngine],
    req: &AnalysisRequest<'_>,
    backend: BackendChoice,
    cancel: Arc<AtomicBool>,
    configure: &(dyn Fn(&mut LpSolver) + Sync),
) -> RaceOutcome {
    let mut skipped = Vec::new();
    let racers: Vec<&dyn BoundEngine> = engines
        .iter()
        .copied()
        .filter(|e| {
            let runs = e.direction() == req.direction && e.applicable(req.pts);
            if !runs {
                skipped.push(e.name());
            }
            runs
        })
        .collect();

    let first_certified = Arc::new(AtomicUsize::new(usize::MAX));
    let tasks: Vec<(usize, &dyn BoundEngine)> = racers.into_iter().enumerate().collect();
    let reports: Vec<AnalysisReport> = tasks
        .par_iter()
        .map(|&(i, engine)| {
            let mut solver = LpSolver::with_choice(backend);
            solver.set_cancel_flag(cancel.clone());
            configure(&mut solver);
            let started = Instant::now();
            // Panic boundary: a racer that panics becomes an ordinary
            // loser (Err(Panicked), no stats) instead of poisoning the
            // pool and aborting the race — it never claims the winner
            // slot and never cancels the healthy candidates.
            let report = catch_unwind(AssertUnwindSafe(|| engine.run(req, &mut solver)))
                .unwrap_or_else(|payload| AnalysisReport {
                    engine: engine.name(),
                    direction: engine.direction(),
                    outcome: Err(EngineError::Panicked(panic_message(payload.as_ref()))),
                    lp: LpStats::default(),
                    wall_seconds: started.elapsed().as_secs_f64(),
                });
            if report.outcome.is_ok()
                && first_certified
                    .compare_exchange(usize::MAX, i, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                cancel.store(true, Ordering::SeqCst);
            }
            report
        })
        .collect();

    let w = first_certified.load(Ordering::SeqCst);
    let winner = (w != usize::MAX).then_some(w);
    let mut abandoned = LpStats::default();
    for (i, report) in reports.iter().enumerate() {
        if winner != Some(i) {
            abandoned.merge(&report.lp);
        }
    }
    RaceOutcome { reports, winner, skipped, abandoned }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn race_pts() -> Pts {
        let src = r"
            x := 40; y := 0;
            while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
                if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
            }
            assert x >= 100;
        ";
        qava_lang::compile(src, &BTreeMap::new()).unwrap()
    }

    #[test]
    fn builtin_registry_lineup() {
        let reg = EngineRegistry::with_builtins();
        assert_eq!(
            reg.names(),
            vec![
                "hoeffding-linear",
                "azuma",
                "explinsyn",
                "polyrsm-quadratic",
                "explowsyn",
                "polylow"
            ]
        );
        let upper: Vec<_> =
            reg.for_direction(Direction::Upper).iter().map(|e| e.name()).collect();
        assert_eq!(upper, vec!["hoeffding-linear", "azuma", "explinsyn", "polyrsm-quadratic"]);
        let lower: Vec<_> =
            reg.for_direction(Direction::Lower).iter().map(|e| e.name()).collect();
        assert_eq!(lower, vec!["explowsyn", "polylow"]);
        assert!(reg.engine("explinsyn").is_some());
        assert!(reg.engine("interior-point").is_none());
    }

    #[test]
    fn registered_external_engine_shadows_builtin() {
        struct Stub;
        impl BoundEngine for Stub {
            fn name(&self) -> &'static str {
                "explinsyn"
            }
            fn direction(&self) -> Direction {
                Direction::Upper
            }
            fn run(&self, req: &AnalysisRequest<'_>, solver: &mut LpSolver) -> AnalysisReport {
                run_report(self.name(), self.direction(), req, solver, |_, _| {
                    Err(EngineError::Failed("stub".into()))
                })
            }
        }
        let mut reg = EngineRegistry::with_builtins();
        reg.register_engine(Box::new(Stub));
        let pts = race_pts();
        let report = reg
            .run_engine("explinsyn", &AnalysisRequest::upper(&pts), BackendChoice::default())
            .unwrap();
        assert!(
            matches!(&report.outcome, Err(EngineError::Failed(m)) if m == "stub"),
            "external engine must shadow the built-in: {:?}",
            report.outcome.as_ref().err()
        );
        // The shadowed built-in no longer appears in the direction lineup
        // (one entry per live name).
        let upper = reg.for_direction(Direction::Upper);
        assert_eq!(upper.iter().filter(|e| e.name() == "explinsyn").count(), 1);
        // Re-registering the *same zero-sized type* must dedup too —
        // ZST boxes share data pointers, so identity cannot be the test.
        let mut reg = EngineRegistry::with_builtins();
        reg.register_engine(Box::new(ExpLinSyn));
        let upper = reg.for_direction(Direction::Upper);
        assert_eq!(upper.iter().filter(|e| e.name() == "explinsyn").count(), 1);
    }

    #[test]
    fn engine_report_matches_direct_call() {
        let pts = race_pts();
        let reg = EngineRegistry::with_builtins();
        let report = reg
            .run_engine("hoeffding-linear", &AnalysisRequest::upper(&pts), BackendChoice::default())
            .unwrap();
        let direct = hoeffding::synthesize_reprsm_bound_in(
            &pts,
            BoundKind::Hoeffding,
            hoeffding::DEFAULT_SER_ITERATIONS,
            &mut LpSolver::new(),
        )
        .unwrap();
        assert_eq!(report.bound().unwrap().ln(), direct.bound.ln());
        assert!(report.lp.solves > 0, "the report must carry this run's LP stats");
        assert!(report.wall_seconds >= 0.0);
        match &report.outcome.as_ref().unwrap().certificate {
            Certificate::Template(t) => assert!(!t.per_location.is_empty()),
            other => panic!("RepRSM certificate must be a template, got {other:?}"),
        }
    }

    #[test]
    fn scoped_stats_preserves_session_totals() {
        let pts = race_pts();
        let mut solver = LpSolver::new();
        // Pre-existing work on the session.
        let _ = hoeffding::synthesize_reprsm_bound_in(&pts, BoundKind::Hoeffding, 2, &mut solver);
        let before_total = solver.stats().solves;
        assert!(before_total > 0);
        let (_, mine) = scoped_stats(&mut solver, |s| {
            hoeffding::synthesize_reprsm_bound_in(&pts, BoundKind::Azuma, 2, s)
        });
        assert!(mine.solves > 0);
        assert_eq!(
            solver.stats().solves,
            before_total + mine.solves,
            "session total = pre-existing + scoped share"
        );
    }

    #[test]
    fn race_returns_first_certified_and_banks_loser_stats() {
        let pts = race_pts();
        let reg = EngineRegistry::with_builtins();
        let req = AnalysisRequest::upper(&pts);
        let engines = reg.for_direction(Direction::Upper);
        let outcome = race(&engines, &req, BackendChoice::default());
        let winner = outcome.winning_report().expect("some upper engine certifies Race");
        let report_named: Vec<_> = outcome.reports.iter().map(|r| r.engine).collect();
        assert_eq!(
            report_named,
            vec!["hoeffding-linear", "azuma", "explinsyn", "polyrsm-quadratic"]
        );
        // The winner's bound equals that engine run alone.
        let alone = reg
            .run_engine(winner.engine, &req, BackendChoice::default())
            .unwrap()
            .bound()
            .unwrap();
        assert_eq!(winner.bound().unwrap().ln(), alone.ln());
        // Loser stats all land in the abandoned bucket, none in the
        // winner's.
        let loser_solves: usize = outcome
            .reports
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != outcome.winner)
            .map(|(_, r)| r.lp.solves)
            .sum();
        assert_eq!(outcome.abandoned.solves, loser_solves);
    }

    #[test]
    fn race_skips_wrong_direction_and_inapplicable() {
        let pts = race_pts();
        let reg = EngineRegistry::with_builtins();
        let req = AnalysisRequest::upper(&pts);
        let all: Vec<&dyn BoundEngine> = reg.engines().collect();
        let outcome = race(&all, &req, BackendChoice::default());
        assert!(outcome.skipped.contains(&"explowsyn"));
        assert!(outcome.skipped.contains(&"polylow"));
        assert_eq!(outcome.reports.len(), 4);
    }

    #[test]
    fn race_with_no_applicable_engine_reports_no_winner() {
        let pts = qava_lang::compile("x := 0; assert false;", &BTreeMap::new()).unwrap();
        let reg = EngineRegistry::with_builtins();
        let req = AnalysisRequest::upper(&pts);
        let engines = reg.for_direction(Direction::Upper);
        let outcome = race(&engines, &req, BackendChoice::default());
        assert!(outcome.winner.is_none());
        assert_eq!(outcome.reports.len(), 0, "absorbing initial: everything screened out");
        assert_eq!(outcome.skipped.len(), 4);
    }

    #[test]
    fn race_with_externally_raised_flag_cancels_every_racer() {
        let pts = race_pts();
        let reg = EngineRegistry::with_builtins();
        let req = AnalysisRequest::upper(&pts);
        let engines = reg.for_direction(Direction::Upper);
        // The daemon's client-disconnect path in miniature: the flag is
        // up before the race starts (a disconnect observed between
        // admission and launch), so no engine may certify.
        let cancel = Arc::new(AtomicBool::new(true));
        let outcome = race_with(&engines, &req, BackendChoice::default(), cancel, &|_| {});
        assert!(outcome.winner.is_none(), "a cancelled race has no winner");
        for report in &outcome.reports {
            assert!(
                matches!(report.outcome, Err(EngineError::Cancelled)),
                "{}: {:?}",
                report.engine,
                report.outcome.as_ref().err()
            );
        }
    }

    #[test]
    fn race_with_configure_shares_warmth_across_races() {
        let pts = race_pts();
        let reg = EngineRegistry::with_builtins();
        let req = AnalysisRequest::upper(&pts);
        let engines = reg.for_direction(Direction::Upper);
        let shared = Arc::new(qava_lp::SharedBasisCache::default());
        let run = |shared: &Arc<qava_lp::SharedBasisCache>| {
            let shared = shared.clone();
            race_with(
                &engines,
                &req,
                BackendChoice::default(),
                Arc::new(AtomicBool::new(false)),
                &move |solver| solver.set_shared_cache(shared.clone()),
            )
        };
        let first = run(&shared);
        let second = run(&shared);
        let baseline = race(&engines, &req, BackendChoice::default());
        let ln = |o: &RaceOutcome| o.winning_report().unwrap().bound().unwrap().ln();
        // Shared warmth may change which LPs run warm, never a verdict.
        assert_eq!(ln(&first), ln(&baseline), "shared cache must not change the bound");
        assert_eq!(ln(&second), ln(&baseline));
        let persistent: usize = second
            .reports
            .iter()
            .map(|r| r.lp.persistent_warm_hits)
            .chain(std::iter::once(second.abandoned.persistent_warm_hits))
            .sum();
        assert!(persistent > 0, "second race must inherit first-race bases");
    }

    /// Pins the accounting contract a resident daemon relies on: with one
    /// private session per concurrent request, the per-request
    /// [`scoped_stats`] slices **partition** the process totals — every
    /// solve, pivot and wall-clock second lands in exactly one slice, and
    /// merging the slices reproduces merging the session totals. Without
    /// this, concurrent requests could double-count (or lose) work in the
    /// daemon's `stats` response.
    #[test]
    fn scoped_stats_slices_partition_process_totals_under_concurrency() {
        use qava_lp::{Cmp, LinExpr, LpBuilder};
        let slices = std::sync::Mutex::new(Vec::new());
        let sessions = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8usize {
                let slices = &slices;
                let sessions = &sessions;
                s.spawn(move || {
                    let mut solver = LpSolver::default();
                    for i in 0..6usize {
                        let (_, slice) = scoped_stats(&mut solver, |solver| {
                            let mut lp = LpBuilder::new();
                            let x = lp.add_var_nonneg("x");
                            let y = lp.add_var_nonneg("y");
                            lp.constrain(
                                LinExpr::new().term(x, 1.0).term(y, 1.0),
                                Cmp::Le,
                                1.0 + (t * 6 + i) as f64,
                            );
                            lp.maximize(LinExpr::new().term(x, 2.0).term(y, 1.0));
                            solver.solve(&lp).unwrap()
                        });
                        assert!(slice.solves >= 1, "a slice sees its own work");
                        assert!(slice.wall_seconds >= 0.0);
                        slices.lock().unwrap().push(slice);
                    }
                    sessions.lock().unwrap().push(solver.take_stats());
                });
            }
        });
        let fold = |parts: &[LpStats]| {
            let mut total = LpStats::default();
            for p in parts {
                total.merge(p);
            }
            total
        };
        let from_slices = fold(&slices.lock().unwrap());
        let from_sessions = fold(&sessions.lock().unwrap());
        // Counters must match *exactly*; wall time is f64 so the two
        // merge orders may round differently in the last bits.
        let strip = |mut s: LpStats| {
            s.wall_seconds = 0.0;
            s.backends.sort_by_key(|t| t.name);
            for t in &mut s.backends {
                t.wall_seconds = 0.0;
            }
            s
        };
        assert_eq!(
            strip(from_slices.clone()),
            strip(from_sessions.clone()),
            "slices must partition session totals"
        );
        assert!(
            (from_slices.wall_seconds - from_sessions.wall_seconds).abs() < 1e-6,
            "every wall-clock second lands in exactly one slice: {} vs {}",
            from_slices.wall_seconds,
            from_sessions.wall_seconds
        );
        assert_eq!(from_slices.solves, 48, "6 solves per each of 8 threads");
    }
}
