//! Almost-sure termination certificates via linear ranking
//! supermartingales (RSMs).
//!
//! The lower-bound theory (Theorem 4.4, §6) assumes the PTS terminates
//! almost surely. The paper proves this side condition manually, noting it
//! can be automated with ranking-supermartingale synthesis [6, 11]; this
//! module *is* that automation for the affine/linear case: synthesize
//! `η(ℓ, v) = a_ℓ·v + b_ℓ` with
//!
//! * `η ≥ 0` on `I(ℓ)` for every live location, and
//! * expected decrease by at least 1 along every transition (absorbing
//!   destinations count as rank 0),
//!
//! via Farkas' lemma and one LP. A feasible solution certifies positive
//! almost-sure termination (finite expected time), which implies the
//! almost-sure termination ExpLowSyn needs.

use crate::farkas::{encode_implication, encode_nonnegativity};
use crate::template::{SolvedTemplate, TemplateSpace, UCoef};
use qava_lp::{LpBuilder, LpError, LpSolver, VarId};
use qava_pts::Pts;

/// A successfully synthesized ranking supermartingale.
#[derive(Debug, Clone)]
pub struct RsmCertificate {
    /// The ranking function per live location.
    pub template: SolvedTemplate,
    /// `η(ℓ_init, v_init)` — an upper bound on the expected termination
    /// time in transition steps.
    pub initial_rank: f64,
}

/// Errors from [`prove_almost_sure_termination`].
#[derive(Debug, Clone, PartialEq)]
pub enum RsmError {
    /// No linear RSM exists — termination may still hold, but this prover
    /// cannot certify it.
    NoLinearRsm,
    /// LP failure.
    Lp(LpError),
}

impl std::fmt::Display for RsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsmError::NoLinearRsm => write!(f, "no linear ranking supermartingale exists"),
            RsmError::Lp(e) => write!(f, "LP failure: {e}"),
        }
    }
}

impl std::error::Error for RsmError {}

/// Attempts to certify positive almost-sure termination with a private
/// solver session; see [`prove_almost_sure_termination_in`].
///
/// # Errors
///
/// See [`RsmError`].
pub fn prove_almost_sure_termination(pts: &Pts) -> Result<RsmCertificate, RsmError> {
    prove_almost_sure_termination_in(pts, &mut LpSolver::new())
}

/// Attempts to certify positive almost-sure termination, threading all
/// LP work (satisfiability probes and the synthesis LP) through the
/// given solver session.
///
/// # Errors
///
/// See [`RsmError`].
pub fn prove_almost_sure_termination_in(
    pts: &Pts,
    solver: &mut LpSolver,
) -> Result<RsmCertificate, RsmError> {
    let space = TemplateSpace::new(pts, false);
    let n = space.len();
    let nvars = pts.num_vars();
    let mut lp = LpBuilder::new();
    let unknowns: Vec<VarId> = (0..n).map(|i| lp.add_var(format!("u{i}"))).collect();

    // Non-negativity on every live location's invariant.
    for l in pts.live_locations() {
        let c: Vec<UCoef> = (0..nvars)
            .map(|k| {
                let mut u = UCoef::zero(n);
                u.add_unknown(space.a_index(l, k), 1.0);
                u
            })
            .collect();
        let mut d = UCoef::zero(n);
        d.add_unknown(space.b_index(l), 1.0);
        encode_nonnegativity(&mut lp, &unknowns, pts.invariant(l), &c, &d);
    }

    // Expected decrease ≥ 1 along every transition with satisfiable Ψ.
    for t in pts.transitions() {
        let psi = pts.invariant(t.src).intersection(&t.guard);
        if psi.is_empty_in(solver) {
            continue;
        }
        // Σ_j p_j·E[η(dst_j)] − η(src) ≤ −1, absorbing dsts contribute 0.
        let mut c: Vec<UCoef> = (0..nvars).map(|_| UCoef::zero(n)).collect();
        let mut d = UCoef::constant(n, -1.0);
        for (k, ck) in c.iter_mut().enumerate() {
            ck.add_unknown(space.a_index(t.src, k), -1.0);
        }
        d.add_unknown(space.b_index(t.src), 1.0);
        for fork in &t.forks {
            if pts.is_absorbing(fork.dest) {
                continue;
            }
            let q = fork.update.matrix();
            for k in 0..nvars {
                for m in 0..nvars {
                    if q[(m, k)] != 0.0 {
                        c[k].add_unknown(space.a_index(fork.dest, m), fork.prob * q[(m, k)]);
                    }
                }
            }
            let mut mean_offset = fork.update.offset().to_vec();
            for site in fork.update.samples() {
                let mu = site.dist.mean();
                for (m, &cm) in site.coeffs.iter().enumerate() {
                    mean_offset[m] += mu * cm;
                }
            }
            for (m, &em) in mean_offset.iter().enumerate() {
                if em != 0.0 {
                    d.add_unknown(space.a_index(fork.dest, m), -fork.prob * em);
                }
            }
            d.add_unknown(space.b_index(fork.dest), -fork.prob);
        }
        encode_implication(&mut lp, &unknowns, &psi, &c, &d);
    }

    // Any feasible solution certifies; minimize the initial rank to report
    // a tight expected-time bound.
    let init = pts.initial_state();
    let eta_init = space.eta_at(init.loc, &init.vals);
    let mut obj = qava_lp::LinExpr::new();
    for (i, &coef) in eta_init.lin.iter().enumerate() {
        if coef != 0.0 {
            obj = obj.term(unknowns[i], coef);
        }
    }
    lp.minimize(obj);
    match solver.solve(&lp) {
        Ok(sol) => {
            let x: Vec<f64> = unknowns.iter().map(|&v| sol.value(v)).collect();
            Ok(RsmCertificate {
                template: SolvedTemplate::from_solution(pts, &space, &x),
                initial_rank: sol.objective,
            })
        }
        Err(LpError::Infeasible) => Err(RsmError::NoLinearRsm),
        Err(e) => Err(RsmError::Lp(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn bounded_loop_certified() {
        let src = r"
            x := 0;
            while x <= 9 invariant x <= 10 { x := x + 1; }
            assert false;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let cert = prove_almost_sure_termination(&pts).unwrap();
        assert!(cert.initial_rank >= 10.0, "at least 10 steps needed");
        assert!(cert.initial_rank <= 60.0, "rank {} too loose", cert.initial_rank);
    }

    #[test]
    fn positive_drift_walk_certified() {
        let src = r"
            x := 0;
            while x <= 99 invariant x <= 100 {
                if prob(0.75) { x := x + 1; } else { x := x - 1; }
            }
            assert false;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        prove_almost_sure_termination(&pts).expect("drift +1/2 walk terminates a.s.");
    }

    #[test]
    fn symmetric_walk_has_no_linear_rsm() {
        // The fair unbounded walk terminates a.s. but not in finite expected
        // time — no RSM can exist.
        let src = r"
            x := 10;
            while x >= 1 {
                if prob(0.5) { x := x + 1; } else { x := x - 1; }
            }
            assert false;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        assert_eq!(
            prove_almost_sure_termination(&pts).unwrap_err(),
            RsmError::NoLinearRsm
        );
    }

    #[test]
    fn nonterminating_loop_rejected() {
        let src = r"
            x := 0;
            while x >= 0 invariant x >= 0 { x := x + 1; }
            assert false;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        assert_eq!(
            prove_almost_sure_termination(&pts).unwrap_err(),
            RsmError::NoLinearRsm
        );
    }
}
