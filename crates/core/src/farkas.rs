//! Farkas' lemma as a constraint compiler (Lemma 2 of the paper).
//!
//! Every quantified implication the LP-based algorithms generate has the
//! shape
//!
//! ```text
//! ∀v ∈ P = {v | A·v ≤ b} :   c(x)·v ≤ d(x)
//! ```
//!
//! with `c`, `d` affine in the template unknowns `x`. For nonempty `P`,
//! Farkas' lemma makes this equivalent to
//!
//! ```text
//! ∃y ≥ 0 :   yᵀA = c(x)  ∧  yᵀb ≤ d(x)
//! ```
//!
//! which is *jointly linear* in `(x, y)` because `A`, `b` are constants.
//! [`encode_implication`] emits exactly these rows into an [`LpBuilder`],
//! allocating the fresh multipliers. The empty-`A` degenerate case (`P` is
//! the whole space) compiles to `c(x) = 0 ∧ 0 ≤ d(x)`.
//!
//! This module only *encodes*; solving happens wherever the synthesis
//! layer threads its [`qava_lp::LpSolver`] session, so consecutive Farkas
//! LPs of one run share that session's warm-start cache.

use crate::template::UCoef;
use qava_lp::{Cmp, LinExpr, LpBuilder, VarId};
use qava_polyhedra::Polyhedron;

/// Emits the Farkas encoding of `∀v ∈ closure(poly): c(x)·v ≤ d(x)`.
///
/// `unknowns[i]` must be the LP variable of template unknown `i`; `c` has
/// one entry per dimension of `poly`.
///
/// # Panics
///
/// Panics if `c.len() != poly.dim()`.
pub fn encode_implication(
    lp: &mut LpBuilder,
    unknowns: &[VarId],
    poly: &Polyhedron,
    c: &[UCoef],
    d: &UCoef,
) {
    assert_eq!(c.len(), poly.dim(), "coefficient count must match dimension");
    let rows = poly.constraints();
    let ys: Vec<VarId> = (0..rows.len())
        .map(|i| lp.add_var_nonneg(format!("farkas_y{i}")))
        .collect();

    // yᵀA = c(x): one equality per dimension.
    for (j, cj) in c.iter().enumerate() {
        let mut e = LinExpr::new();
        for (i, h) in rows.iter().enumerate() {
            e = e.term(ys[i], h.coeffs[j]);
        }
        // Move c(x) to the left: yᵀA − c(x) = 0.
        e = sub_ucoef(e, cj, unknowns);
        lp.constrain(e, Cmp::Eq, cj.constant);
    }

    // yᵀb ≤ d(x)  ⇔  yᵀb − d(x) ≤ 0.
    let mut e = LinExpr::new();
    for (i, h) in rows.iter().enumerate() {
        e = e.term(ys[i], h.rhs);
    }
    e = sub_ucoef(e, d, unknowns);
    lp.constrain(e, Cmp::Le, d.constant);
}

/// Subtracts the linear part of a [`UCoef`] from an expression (its constant
/// is handled by the caller on the right-hand side).
fn sub_ucoef(mut e: LinExpr, u: &UCoef, unknowns: &[VarId]) -> LinExpr {
    for (idx, &coef) in u.lin.iter().enumerate() {
        if coef != 0.0 {
            e = e.term(unknowns[idx], -coef);
        }
    }
    e
}

/// Convenience: `∀v ∈ closure(poly): lhs(x, v) ≥ 0` where
/// `lhs = c(x)·v + d(x)`, encoded as the implication `−c(x)·v ≤ d(x)`.
pub fn encode_nonnegativity(
    lp: &mut LpBuilder,
    unknowns: &[VarId],
    poly: &Polyhedron,
    c: &[UCoef],
    d: &UCoef,
) {
    let neg: Vec<UCoef> = c.iter().map(UCoef::negated).collect();
    encode_implication(lp, unknowns, poly, &neg, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qava_polyhedra::Halfspace;

    /// Solves: does there exist a template value making the implication
    /// hold, optimizing `objective` over the single unknown? Solved
    /// through an explicit session, as the synthesis layers do.
    fn probe(
        poly: &Polyhedron,
        mk: impl Fn(usize) -> (Vec<UCoef>, UCoef),
        maximize: bool,
    ) -> Result<f64, qava_lp::LpError> {
        let mut solver = qava_lp::LpSolver::new();
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x0");
        let (c, d) = mk(1);
        encode_implication(&mut lp, &[x], poly, &c, &d);
        if maximize {
            lp.maximize(LinExpr::var(x, 1.0));
        } else {
            lp.minimize(LinExpr::var(x, 1.0));
        }
        solver.solve(&lp).map(|s| s.value(x))
    }

    #[test]
    fn bound_recovery_on_interval() {
        // ∀v ∈ [0, 5]: v ≤ x  ⇔  x ≥ 5. Minimizing x must yield 5.
        let poly = Polyhedron::from_constraints(
            1,
            vec![Halfspace::le(vec![1.0], 5.0), Halfspace::ge(vec![1.0], 0.0)],
        );
        let x_min = probe(
            &poly,
            |n| {
                // c(x)·v = 1·v, d(x) = x.
                let c = vec![UCoef::constant(n, 1.0)];
                let mut d = UCoef::zero(n);
                d.add_unknown(0, 1.0);
                (c, d)
            },
            false,
        )
        .unwrap();
        assert!((x_min - 5.0).abs() < 1e-7, "got {x_min}");
    }

    #[test]
    fn slope_forced_on_unbounded_set() {
        // ∀v ≥ 0: x·v ≤ 1 forces x ≤ 0. Maximizing x gives 0.
        let poly = Polyhedron::from_constraints(1, vec![Halfspace::ge(vec![1.0], 0.0)]);
        let x_max = probe(
            &poly,
            |n| {
                let mut cx = UCoef::zero(n);
                cx.add_unknown(0, 1.0);
                (vec![cx], UCoef::constant(n, 1.0))
            },
            true,
        )
        .unwrap();
        assert!(x_max.abs() < 1e-7, "got {x_max}");
    }

    #[test]
    fn whole_space_forces_zero_coefficients() {
        // ∀v ∈ ℝ: x·v ≤ 0 forces x = 0 (empty A ⇒ c(x) = 0).
        let poly = Polyhedron::universe(1);
        let x_max = probe(
            &poly,
            |n| {
                let mut cx = UCoef::zero(n);
                cx.add_unknown(0, 1.0);
                (vec![cx], UCoef::zero(n))
            },
            true,
        )
        .unwrap();
        assert!(x_max.abs() < 1e-9);
    }

    #[test]
    fn infeasible_implication_detected() {
        // ∀v ∈ ℝ: 1·v ≤ x is impossible for any x (c constant nonzero,
        // universe quantification).
        let poly = Polyhedron::universe(1);
        let r = probe(
            &poly,
            |n| {
                let c = vec![UCoef::constant(n, 1.0)];
                let mut d = UCoef::zero(n);
                d.add_unknown(0, 1.0);
                (c, d)
            },
            false,
        );
        assert_eq!(r.unwrap_err(), qava_lp::LpError::Infeasible);
    }

    #[test]
    fn nonnegativity_helper() {
        // ∀v ∈ [2, 3]: v + x ≥ 0  ⇔  x ≥ −2. Minimizing x gives −2.
        let poly = Polyhedron::from_constraints(
            1,
            vec![Halfspace::le(vec![1.0], 3.0), Halfspace::ge(vec![1.0], 2.0)],
        );
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x0");
        let c = vec![UCoef::constant(1, 1.0)];
        let mut d = UCoef::zero(1);
        d.add_unknown(0, 1.0);
        encode_nonnegativity(&mut lp, &[x], &poly, &c, &d);
        lp.minimize(LinExpr::var(x, 1.0));
        let sol = qava_lp::LpSolver::new().solve(&lp).unwrap();
        assert!((sol.value(x) + 2.0).abs() < 1e-7, "got {}", sol.value(x));
    }
}
