//! Polynomial (quadratic) RepRSM synthesis — the extension of §5.1 that
//! Remark 3 of the paper sketches.
//!
//! The template is `η(ℓ, v) = Σ_{i≤j} q_{ij}·v_i·v_j + Σ_i a_i·v_i + b`
//! per location. Conditions (C1)–(C4) are the same as the affine case; the
//! quantified polynomial implications are discharged with **Handelman's
//! theorem** ([`crate::handelman`]) instead of Farkas' lemma, which keeps
//! everything in LP land (the paper suggests Positivstellensatz + SDP;
//! Handelman is the LP-complete member of that family on compact regions —
//! DESIGN.md records the substitution).
//!
//! The bilinear `8·ε·ω` objective is handled by the same Ser ternary
//! search as the affine algorithm. Expected values of quadratic templates
//! need second moments of the sampling distributions
//! ([`qava_pts::Distribution::second_moment`]).
//!
//! The quadratic class strictly extends the affine one: a symmetric
//! (driftless) random walk with a step deadline has *no* affine RepRSM —
//! every affine `η` must decrease in expectation while ending non-negative
//! at a failure that only happens after many steps — but `t − k·x²`-shaped
//! templates certify it (see the module tests).

use crate::hoeffding::BoundKind;
use crate::logprob::LogProb;
use crate::poly::{CPoly, UPoly};
use crate::template::UCoef;
use qava_lp::{Cmp, LinExpr, LpBuilder, LpError, LpSolver, VarId};
use qava_pts::{Fork, LocId, Pts};
use qava_polyhedra::Polyhedron;

/// Errors from [`synthesize_quadratic_bound`].
#[derive(Debug, Clone, PartialEq)]
pub enum PolyRsmError {
    /// No quadratic RepRSM certifiable at the configured Handelman degree.
    NoQuadraticRepRsm,
    /// The initial location is absorbing.
    TrivialInitial,
    /// A sampling site uses a continuous distribution; condition (C4)
    /// enumeration currently supports discrete supports only.
    ContinuousDistribution,
    /// The discrete-support product of some fork is too large.
    SupportTooLarge {
        /// The offending transition index.
        transition: usize,
    },
    /// LP failure.
    Lp(LpError),
}

impl std::fmt::Display for PolyRsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolyRsmError::NoQuadraticRepRsm => {
                write!(f, "no quadratic repulsing ranking supermartingale certifiable")
            }
            PolyRsmError::TrivialInitial => write!(f, "initial location is absorbing"),
            PolyRsmError::ContinuousDistribution => {
                write!(f, "continuous sampling unsupported in quadratic (C4) enumeration")
            }
            PolyRsmError::SupportTooLarge { transition } => {
                write!(f, "transition {transition}: discrete support product too large")
            }
            PolyRsmError::Lp(e) => write!(f, "LP failure: {e}"),
        }
    }
}

impl std::error::Error for PolyRsmError {}

/// A synthesized quadratic RepRSM bound.
#[derive(Debug, Clone)]
pub struct PolyRsmResult {
    /// The certified upper bound `exp(factor·ε·ω)`, clamped to `[0, 1]`.
    pub bound: LogProb,
    /// The decrease parameter found by the Ser search.
    pub epsilon: f64,
    /// `ω = η(ℓ_init, v_init)` at the optimum.
    pub omega: f64,
    /// Raw unknown vector (see [`QuadSpace`] for the layout).
    pub solution: Vec<f64>,
    /// Number of LPs solved.
    pub lp_solves: usize,
}

/// Unknown layout for quadratic templates: per live-or-absorbing location,
/// `n·(n+1)/2` quadratic coefficients (row-major upper triangle), `n`
/// linear ones and a constant.
#[derive(Debug, Clone)]
pub struct QuadSpace {
    nvars: usize,
    per_loc: usize,
    offsets: Vec<usize>,
    len: usize,
}

impl QuadSpace {
    /// Allocates a quadratic template for every location (absorbing ones
    /// included, as in the affine RepRSM synthesis).
    pub fn new(pts: &Pts) -> Self {
        let n = pts.num_vars();
        let per_loc = n * (n + 1) / 2 + n + 1;
        let offsets = (0..pts.num_locations()).map(|i| i * per_loc).collect();
        QuadSpace { nvars: n, per_loc, offsets, len: pts.num_locations() * per_loc }
    }

    /// Total number of template unknowns.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when there are no unknowns (zero-variable PTS).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn quad_index(&self, l: LocId, i: usize, j: usize) -> usize {
        debug_assert!(i <= j && j < self.nvars);
        // Upper-triangle row-major: (i, j) with i ≤ j.
        let row_start: usize = (0..i).map(|r| self.nvars - r).sum();
        self.offsets[l.index()] + row_start + (j - i)
    }

    fn lin_index(&self, l: LocId, i: usize) -> usize {
        self.offsets[l.index()] + self.nvars * (self.nvars + 1) / 2 + i
    }

    fn const_index(&self, l: LocId) -> usize {
        self.offsets[l.index()] + self.per_loc - 1
    }

    /// `η(ℓ, ·)` as a polynomial with unknown-affine coefficients.
    pub fn eta(&self, l: LocId) -> UPoly {
        let n = self.nvars;
        let mut p = UPoly::zero(n, self.len);
        for i in 0..n {
            for j in i..n {
                let mut m = vec![0u32; n];
                m[i] += 1;
                m[j] += 1;
                p.add_unknown_term(m, self.quad_index(l, i, j), 1.0);
            }
            let mut m = vec![0u32; n];
            m[i] = 1;
            p.add_unknown_term(m, self.lin_index(l, i), 1.0);
        }
        p.add_unknown_term(vec![0; n], self.const_index(l), 1.0);
        p
    }

    /// `E[η(dst, upd(v, r))]` as a polynomial in `v`, using first and
    /// second moments of the sampling sites.
    pub fn expected_eta_after(&self, dst: LocId, fork: &Fork) -> UPoly {
        let n = self.nvars;
        let u = &fork.update;
        // L_i(v) = (Qv + e)_i; m_i = E[R_i]; M_ij = E[R_i R_j].
        let l_poly: Vec<CPoly> =
            (0..n).map(|i| CPoly::affine(u.matrix().row(i), u.offset()[i])).collect();
        let mut mean_r = vec![0.0; n];
        let mut second_r = vec![vec![0.0; n]; n];
        for s in u.samples() {
            let mu = s.dist.mean();
            let m2 = s.dist.second_moment();
            for (mri, &ci) in mean_r.iter_mut().zip(&s.coeffs) {
                *mri += mu * ci;
            }
            // Cross-site independence: E[R_i R_j] picks up m2 on the same
            // site and μ_s·μ_t across sites; the cross part is folded in
            // below via mean_r ⊗ mean_r corrected by per-site covariance.
            for (row, &ci) in second_r.iter_mut().zip(&s.coeffs) {
                for (slot, &cj) in row.iter_mut().zip(&s.coeffs) {
                    *slot += (m2 - mu * mu) * ci * cj;
                }
            }
        }
        // E[R_i R_j] = Cov(R_i, R_j) + E[R_i]E[R_j].
        for i in 0..n {
            for j in 0..n {
                second_r[i][j] += mean_r[i] * mean_r[j];
            }
        }

        let mut out = UPoly::zero(n, self.len);
        for i in 0..n {
            for j in i..n {
                // E[v'_i v'_j] = L_i L_j + m_j L_i + m_i L_j + E[R_i R_j].
                let mut p = l_poly[i].mul(&l_poly[j]);
                p.add_scaled(&l_poly[i], mean_r[j]);
                p.add_scaled(&l_poly[j], mean_r[i]);
                p.add_scaled(&CPoly::constant(n, second_r[i][j]), 1.0);
                let mut q = UCoef::zero(self.len);
                q.add_unknown(self.quad_index(dst, i, j), 1.0);
                out.add_ucoef_times_cpoly(&q, &p);
            }
            // E[v'_i] = L_i + m_i.
            let mut p = l_poly[i].clone();
            p.add_scaled(&CPoly::constant(n, mean_r[i]), 1.0);
            let mut a = UCoef::zero(self.len);
            a.add_unknown(self.lin_index(dst, i), 1.0);
            out.add_ucoef_times_cpoly(&a, &p);
        }
        let mut b = UCoef::zero(self.len);
        b.add_unknown(self.const_index(dst), 1.0);
        out.add_ucoef_times_cpoly(&b, &CPoly::constant(n, 1.0));
        out
    }

    /// `η(dst, upd(v, r̂))` for a concrete draw vector `r̂` (one value per
    /// sampling site), as a polynomial in `v`.
    pub fn eta_after_draws(&self, dst: LocId, fork: &Fork, draws: &[f64]) -> UPoly {
        let n = self.nvars;
        let u = &fork.update;
        let mut offset = u.offset().to_vec();
        for (s, &r) in u.samples().iter().zip(draws) {
            for (oi, &ci) in offset.iter_mut().zip(&s.coeffs) {
                *oi += r * ci;
            }
        }
        let l_poly: Vec<CPoly> =
            (0..n).map(|i| CPoly::affine(u.matrix().row(i), offset[i])).collect();
        let mut out = UPoly::zero(n, self.len);
        for i in 0..n {
            for j in i..n {
                let p = l_poly[i].mul(&l_poly[j]);
                let mut q = UCoef::zero(self.len);
                q.add_unknown(self.quad_index(dst, i, j), 1.0);
                out.add_ucoef_times_cpoly(&q, &p);
            }
            let mut a = UCoef::zero(self.len);
            a.add_unknown(self.lin_index(dst, i), 1.0);
            out.add_ucoef_times_cpoly(&a, &l_poly[i]);
        }
        let mut b = UCoef::zero(self.len);
        b.add_unknown(self.const_index(dst), 1.0);
        out.add_ucoef_times_cpoly(&b, &CPoly::constant(n, 1.0));
        out
    }

    /// Evaluates the solved template at a state.
    pub fn eval(&self, l: LocId, v: &[f64], x: &[f64]) -> f64 {
        self.eta(l).eval(v, x)
    }
}

/// Cap on enumerated discrete-support combinations per fork in (C4).
const MAX_SUPPORT_COMBOS: usize = 1024;
/// ε search cap (Δ is normalized to 1, so larger ε is vacuous).
const EPS_CAP: f64 = 1.0;
/// Handelman product degree: the templates are quadratic, so degree-2
/// products match every monomial that can appear.
const HANDELMAN_DEGREE: u32 = 2;

/// Synthesizes a quadratic RepRSM bound `exp(factor·ε·η(init))`.
///
/// Deprecated shim over [`synthesize_quadratic_bound_in`] with a private
/// throwaway session; new code goes through the engine API
/// (`polyrsm-quadratic` in an [`crate::engine::EngineRegistry`]) or
/// threads an explicit session.
///
/// # Errors
///
/// See [`PolyRsmError`].
#[deprecated(note = "use the `polyrsm-quadratic` engine via \
                     `qava_core::engine`, or `synthesize_quadratic_bound_in` \
                     with an explicit `LpSolver` session")]
pub fn synthesize_quadratic_bound(
    pts: &Pts,
    kind: BoundKind,
    ser_iterations: usize,
) -> Result<PolyRsmResult, PolyRsmError> {
    synthesize_quadratic_bound_in(pts, kind, ser_iterations, &mut LpSolver::new())
}

/// [`synthesize_quadratic_bound`] threading every Handelman LP of the Ser
/// search through the given solver session.
///
/// # Errors
///
/// See [`PolyRsmError`].
pub fn synthesize_quadratic_bound_in(
    pts: &Pts,
    kind: BoundKind,
    ser_iterations: usize,
    solver: &mut LpSolver,
) -> Result<PolyRsmResult, PolyRsmError> {
    let init = pts.initial_state();
    if pts.is_absorbing(init.loc) {
        return Err(PolyRsmError::TrivialInitial);
    }
    let space = QuadSpace::new(pts);
    let gen = Generator::new(pts, &space, kind, solver)?;
    let mut lp_solves = 0usize;

    let eps_max = {
        let (lp, _, eps_var) = gen.build_lp(None);
        lp_solves += 1;
        match solver.solve(&lp) {
            Ok(sol) => sol.value(eps_var.expect("eps variable present")).min(EPS_CAP),
            Err(LpError::Infeasible) => return Err(PolyRsmError::NoQuadraticRepRsm),
            Err(e) => return Err(PolyRsmError::Lp(e)),
        }
    };

    let omega_at =
        |eps: f64, count: &mut usize, solver: &mut LpSolver| -> Result<f64, PolyRsmError> {
            let (lp, _, _) = gen.build_lp(Some(eps));
            *count += 1;
            match solver.solve(&lp) {
                Ok(sol) => Ok(sol.objective.min(0.0)),
                Err(LpError::Infeasible) => Ok(f64::INFINITY),
                Err(e) => Err(PolyRsmError::Lp(e)),
            }
        };

    let mut lo = 0.0f64;
    let mut hi = eps_max;
    for _ in 0..ser_iterations {
        if hi - lo < 1e-10 {
            break;
        }
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        let f1 = m1 * omega_at(m1, &mut lp_solves, solver)?;
        let f2 = m2 * omega_at(m2, &mut lp_solves, solver)?;
        if f1 < f2 {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    let eps_star = (lo + hi) / 2.0;

    let (lp, unknowns, _) = gen.build_lp(Some(eps_star));
    lp_solves += 1;
    let sol = match solver.solve(&lp) {
        Ok(s) => s,
        Err(LpError::Infeasible) => return Err(PolyRsmError::NoQuadraticRepRsm),
        Err(e) => return Err(PolyRsmError::Lp(e)),
    };
    let x: Vec<f64> = unknowns.iter().map(|&v| sol.value(v)).collect();
    let omega = sol.objective.min(0.0);
    let factor = match kind {
        BoundKind::Hoeffding => 8.0,
        BoundKind::Azuma => 4.0,
    };
    Ok(PolyRsmResult {
        bound: LogProb::from_ln(factor * eps_star * omega).clamp_to_unit(),
        epsilon: eps_star,
        omega,
        solution: x,
        lp_solves,
    })
}

/// Pre-generated constraint material shared across ε probes.
struct Generator<'a> {
    pts: &'a Pts,
    space: &'a QuadSpace,
    kind: BoundKind,
    /// (C3): `(Ψ, η(src) − Σ p·E[η(dst, upd)])`; ε is appended per probe.
    c3: Vec<(Polyhedron, UPoly)>,
    /// (C4): `(Ψ, diff)` per fork and support combination; β bounds are
    /// appended per probe.
    c4: Vec<(Polyhedron, UPoly)>,
}

impl<'a> Generator<'a> {
    fn new(
        pts: &'a Pts,
        space: &'a QuadSpace,
        kind: BoundKind,
        solver: &mut LpSolver,
    ) -> Result<Self, PolyRsmError> {
        let mut c3 = Vec::new();
        let mut c4 = Vec::new();
        for (ti, t) in pts.transitions().iter().enumerate() {
            let psi = pts.invariant(t.src).intersection(&t.guard);
            if psi.is_empty_in(solver) {
                continue;
            }
            // (C3): η(src) − Σ_j p_j·E[η(dst_j)] − ε ≥ 0 on Ψ.
            let mut lhs = space.eta(t.src);
            for fork in &t.forks {
                lhs.add_scaled(&space.expected_eta_after(fork.dest, fork), -fork.prob);
            }
            c3.push((psi.clone(), lhs));

            // (C4): β ≤ η(dst, upd(v, r̂)) − η(src, v) ≤ β + 1 per combo.
            for fork in &t.forks {
                let sites = fork.update.samples();
                if sites.iter().any(|s| s.dist.discrete_points().is_none()) {
                    return Err(PolyRsmError::ContinuousDistribution);
                }
                let mut combos: Vec<Vec<f64>> = vec![Vec::new()];
                for s in sites {
                    let points = s.dist.discrete_points().expect("checked discrete");
                    let mut next = Vec::with_capacity(combos.len() * points.len());
                    for combo in &combos {
                        for &(value, _) in &points {
                            let mut c2 = combo.clone();
                            c2.push(value);
                            next.push(c2);
                        }
                    }
                    combos = next;
                    if combos.len() > MAX_SUPPORT_COMBOS {
                        return Err(PolyRsmError::SupportTooLarge { transition: ti });
                    }
                }
                for combo in combos {
                    let mut diff = space.eta_after_draws(fork.dest, fork, &combo);
                    diff.add_scaled(&space.eta(t.src), -1.0);
                    c4.push((psi.clone(), diff));
                }
            }
        }
        Ok(Generator { pts, space, kind, c3, c4 })
    }

    /// Builds the LP; with `eps = None`, ε is a variable maximized for
    /// εmax, otherwise it is substituted and `η(init)` is minimized.
    fn build_lp(&self, eps: Option<f64>) -> (LpBuilder, Vec<VarId>, Option<VarId>) {
        let n = self.space.len();
        let mut lp = LpBuilder::new();
        let unknowns: Vec<VarId> = (0..n).map(|i| lp.add_var(format!("q{i}"))).collect();
        let beta = lp.add_var("beta");
        let eps_var = match eps {
            None => {
                let e = lp.add_var_nonneg("epsilon");
                lp.constrain(LinExpr::var(e, 1.0), Cmp::Le, EPS_CAP);
                Some(e)
            }
            Some(_) => None,
        };
        if self.kind == BoundKind::Azuma {
            lp.constrain(LinExpr::var(beta, 1.0), Cmp::Eq, -0.5);
        }

        // Widened basis: template unknowns + β (+ ε). Handelman sees the
        // widened UCoefs.
        let mut xs = unknowns.clone();
        xs.push(beta);
        let extra = if let Some(e) = eps_var {
            xs.push(e);
            2
        } else {
            1
        };
        let widen = |p: &UPoly, beta_coef: f64, eps_coef: f64, eps_val: f64| -> UPoly {
            let mut out = UPoly::zero(p.nvars(), n + extra);
            for (id, c) in p.iter_ids() {
                let mut lin = c.lin.clone();
                lin.resize(n + extra, 0.0);
                let w = UCoef { lin, constant: c.constant };
                out.add_term_id(id, &w);
            }
            let zero_m = vec![0u32; p.nvars()];
            let mut konst = UCoef::zero(n + extra);
            konst.lin[n] = beta_coef;
            if extra == 2 {
                konst.lin[n + 1] = eps_coef;
            } else {
                konst.constant += eps_coef * eps_val;
            }
            out.add_term(zero_m, &konst);
            out
        };

        // (C1): η(init) ≤ 0.
        let init = self.pts.initial_state();
        let eta_init = self.space.eta(init.loc);
        let mut c1 = LinExpr::new();
        let mut c1_const = 0.0;
        for (m, c) in eta_init.iter() {
            let mono: f64 = m
                .iter()
                .zip(&init.vals)
                .map(|(&e, &x)| x.powi(e as i32))
                .product();
            for (idx, &coef) in c.lin.iter().enumerate() {
                if coef != 0.0 {
                    c1 = c1.term(unknowns[idx], coef * mono);
                }
            }
            c1_const += c.constant * mono;
        }
        lp.constrain(c1, Cmp::Le, -c1_const);

        // (C2): η(ℓ_f, ·) ≥ 0 on I(ℓ_f).
        let fail = self.pts.failure_location();
        let eta_fail = widen(&self.space.eta(fail), 0.0, 0.0, 0.0);
        crate::handelman::encode_poly_nonneg(
            &mut lp,
            &xs,
            self.pts.invariant(fail),
            &eta_fail,
            HANDELMAN_DEGREE,
        );

        // (C3): lhs − ε ≥ 0 on Ψ.
        for (psi, lhs) in &self.c3 {
            let p = widen(lhs, 0.0, -1.0, eps.unwrap_or(0.0));
            crate::handelman::encode_poly_nonneg(&mut lp, &xs, psi, &p, HANDELMAN_DEGREE);
        }

        // (C4): diff − β ≥ 0 and β + 1 − diff ≥ 0 on Ψ.
        for (psi, diff) in &self.c4 {
            let lower = widen(diff, -1.0, 0.0, 0.0);
            crate::handelman::encode_poly_nonneg(&mut lp, &xs, psi, &lower, HANDELMAN_DEGREE);
            let mut negated = UPoly::zero(diff.nvars(), diff.n_unknowns());
            negated.add_scaled(diff, -1.0);
            let mut upper = widen(&negated, 1.0, 0.0, 0.0);
            let one = UCoef::constant(n + extra, 1.0);
            upper.add_term(vec![0; diff.nvars()], &one);
            crate::handelman::encode_poly_nonneg(&mut lp, &xs, psi, &upper, HANDELMAN_DEGREE);
        }

        // Objective.
        match eps_var {
            Some(e) => lp.maximize(LinExpr::var(e, 1.0)),
            None => {
                let mut obj = LinExpr::new();
                for (m, c) in self.space.eta(init.loc).iter() {
                    let mono: f64 = m
                        .iter()
                        .zip(&init.vals)
                        .map(|(&e2, &x)| x.powi(e2 as i32))
                        .product();
                    for (idx, &coef) in c.lin.iter().enumerate() {
                        if coef != 0.0 {
                            obj = obj.term(unknowns[idx], coef * mono);
                        }
                    }
                }
                lp.minimize(obj);
            }
        }
        (lp, unknowns, eps_var)
    }
}

#[cfg(test)]
// The deprecated session-less shims keep their behavioral coverage here
// until they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::hoeffding::{synthesize_reprsm_bound, RepRsmError};
    use std::collections::BTreeMap;

    /// A driftless walk with a step deadline: fail if neither boundary of
    /// [−4, 4] is hit within 60 steps.
    fn symmetric_deadline_walk() -> Pts {
        let src = r"
            x := 0; t := 0;
            while x >= -4 and x <= 4 and t <= 60
                invariant x >= -5 and x <= 5 and t >= 0 and t <= 61 {
                if prob(0.5) { x, t := x + 1, t + 1; } else { x, t := x - 1, t + 1; }
            }
            assert t <= 60;
        ";
        qava_lang::compile(src, &BTreeMap::new()).unwrap()
    }

    #[test]
    fn no_affine_reprsm_for_driftless_walk() {
        // The affine synthesis cannot certify anything nontrivial here:
        // E[Δx] = 0, so only the t-direction can decrease, but η must be
        // ≥ 0 at the late failure and ≤ 0 initially.
        let pts = symmetric_deadline_walk();
        match synthesize_reprsm_bound(&pts, BoundKind::Hoeffding) {
            Err(RepRsmError::NoRepRsm) => {}
            Ok(r) => assert!(
                r.bound.ln() > -1e-6,
                "affine RepRSM should be trivial here, got {}",
                r.bound
            ),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn quadratic_reprsm_certifies_driftless_walk() {
        let pts = symmetric_deadline_walk();
        let r = synthesize_quadratic_bound(&pts, BoundKind::Hoeffding, 40).unwrap();
        assert!(r.epsilon > 0.0, "ε must be positive");
        assert!(r.omega < 0.0, "ω must be negative for a nontrivial bound");
        assert!(
            r.bound.ln() < -1e-4,
            "quadratic template must certify a bound below 1, got {}",
            r.bound
        );
    }

    #[test]
    fn quadratic_bound_is_sound_against_oracle() {
        let pts = symmetric_deadline_walk();
        let r = synthesize_quadratic_bound(&pts, BoundKind::Hoeffding, 40).unwrap();
        let oracle = crate::fixpoint::VpfOracle::explore(&pts, 100_000).unwrap();
        let (lo, hi) = oracle.interval(10_000);
        assert!(hi - lo < 1e-9, "oracle converged");
        assert!(
            r.bound.to_f64() >= lo - 1e-9,
            "certified bound {} below true vpf {lo}",
            r.bound
        );
    }

    #[test]
    fn quadratic_subsumes_affine_on_biased_walk() {
        // Where an affine RepRSM exists, the quadratic class (which
        // contains it) must certify at least as good a bound up to Ser
        // search resolution.
        let src = r"
            x := 0;
            while x >= -9 and x <= 9 invariant x >= -10 and x <= 10 {
                if prob(0.75) { x := x + 1; } else { x := x - 1; }
            }
            assert x <= -10;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let affine = synthesize_reprsm_bound(&pts, BoundKind::Hoeffding).unwrap();
        let quad = synthesize_quadratic_bound(&pts, BoundKind::Hoeffding, 40).unwrap();
        assert!(
            quad.bound.ln() <= affine.bound.ln() + 0.5,
            "quadratic {} much worse than affine {}",
            quad.bound,
            affine.bound
        );
    }

    #[test]
    fn eta_evaluation_matches_layout() {
        let pts = symmetric_deadline_walk();
        let space = QuadSpace::new(&pts);
        let head = pts.initial_state().loc;
        let mut x = vec![0.0; space.len()];
        // η(head) = x² + 2xt + 3t² + 4x + 5t + 6 (vars are x, t in
        // declaration order).
        x[space.quad_index(head, 0, 0)] = 1.0;
        x[space.quad_index(head, 0, 1)] = 2.0;
        x[space.quad_index(head, 1, 1)] = 3.0;
        x[space.lin_index(head, 0)] = 4.0;
        x[space.lin_index(head, 1)] = 5.0;
        x[space.const_index(head)] = 6.0;
        let v = [2.0, 3.0];
        let want = 4.0 + 12.0 + 27.0 + 8.0 + 15.0 + 6.0;
        assert_eq!(space.eval(head, &v, &x), want);
    }

    #[test]
    fn expected_eta_uses_second_moments() {
        // One location, x' = x + r with r = ±1 fair: E[x'²] = x² + 1
        // because E[r] = 0, E[r²] = 1.
        let src = r"
            x := 0;
            while x >= -3 and x <= 3 invariant x >= -4 and x <= 4 {
                if prob(0.5) { x := x + 1; } else { x := x - 1; }
            }
            assert x <= -4;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let space = QuadSpace::new(&pts);
        let head = pts.initial_state().loc;
        let loop_t = pts
            .transitions()
            .iter()
            .find(|t| t.forks.len() == 2)
            .expect("loop transition");
        // Combined over both forks with η(head) = x²: Σ p·E[η] at x = 2 is
        // 0.5·(3²) + 0.5·(1²) = 5 = x² + 1.
        let mut x = vec![0.0; space.len()];
        x[space.quad_index(head, 0, 0)] = 1.0;
        let total: f64 = loop_t
            .forks
            .iter()
            .map(|f| f.prob * space.expected_eta_after(f.dest, f).eval(&[2.0], &x))
            .sum();
        assert!((total - 5.0).abs() < 1e-12, "got {total}");
    }
}
