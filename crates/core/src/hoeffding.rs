//! **HoeffdingSynthesis** (§5.1): sound polynomial-time upper bounds via
//! repulsing ranking supermartingales (RepRSMs) and Hoeffding's lemma, plus
//! the Azuma-inequality baseline of Chatterjee–Novotný–Žikelić (POPL'17)
//! that Remark 2 compares against.
//!
//! A `(β, Δ, ε)`-RepRSM is an affine `η(ℓ, v) = a_ℓ·v + b_ℓ` satisfying
//!
//! * (C1) `η(ℓ_init, v_init) ≤ 0`;
//! * (C2) `η(ℓ_f, ·) ≥ 0` on `I(ℓ_f)`;
//! * (C3) expected decrease by at least `ε` along every transition;
//! * (C4) one-step differences within `[β, β + Δ]`.
//!
//! Theorem 5.1: `exp((8ε/Δ²)·η)` is then a pre fixed-point, so
//! `exp((8ε/Δ²)·η(ℓ_init, v_init))` bounds the violation probability. The
//! Azuma variant pins `β = −Δ/2` and only certifies the weaker
//! `exp((4ε/Δ²)·η)` — always at least the square root of our bound.
//!
//! Scaling fixes `Δ = 1` (Appendix C.2). The remaining objective `8·ε·ω`
//! (with `ω = η(ℓ_init, v_init)`) is bilinear, so the **Ser** procedure
//! ternary-searches over `ε`, solving one Farkas LP per probe — the
//! uniqueness of the local optimum is Proposition 5 of the paper.

use crate::farkas::encode_implication;
use crate::logprob::LogProb;
use crate::template::{SolvedTemplate, TemplateSpace, UCoef};
use qava_lp::{Cmp, LinExpr, LpBuilder, LpError, LpSolver, VarId};
use qava_pts::{Fork, Pts, Transition};
use qava_polyhedra::{Halfspace, Polyhedron};

/// Which concentration inequality converts the RepRSM into a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// This paper's bound `exp((8ε/Δ²)·η)` (Theorem 5.1).
    Hoeffding,
    /// The POPL'17 baseline `exp((4ε/Δ²)·η)` with `β = −Δ/2` (Remark 2).
    Azuma,
}

impl BoundKind {
    fn factor(self) -> f64 {
        match self {
            BoundKind::Hoeffding => 8.0,
            BoundKind::Azuma => 4.0,
        }
    }
}

/// Errors from RepRSM synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum RepRsmError {
    /// No affine RepRSM exists for this PTS and invariant.
    NoRepRsm,
    /// The initial location is absorbing.
    TrivialInitial,
    /// The discrete-support product of some fork is too large to enumerate.
    SupportTooLarge {
        /// The offending transition index.
        transition: usize,
    },
    /// LP solver failure.
    Lp(LpError),
}

impl std::fmt::Display for RepRsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepRsmError::NoRepRsm => write!(f, "no affine repulsing ranking supermartingale exists"),
            RepRsmError::TrivialInitial => write!(f, "initial location is absorbing"),
            RepRsmError::SupportTooLarge { transition } => {
                write!(f, "transition {transition}: discrete support product too large")
            }
            RepRsmError::Lp(e) => write!(f, "LP failure: {e}"),
        }
    }
}

impl std::error::Error for RepRsmError {}

/// A synthesized RepRSM bound.
#[derive(Debug, Clone)]
pub struct RepRsmResult {
    /// The certified upper bound `exp(factor·ε·ω)`, clamped to `[0, 1]`.
    pub bound: LogProb,
    /// The decrease parameter `ε` found by the Ser search.
    pub epsilon: f64,
    /// `ω = η(ℓ_init, v_init)` at the optimum (non-positive).
    pub omega: f64,
    /// The synthesized RepRSM (live locations; for the symbolic Table 3).
    pub template: SolvedTemplate,
    /// Number of LPs solved by the Ser search.
    pub lp_solves: usize,
}

/// Cap on enumerated discrete-support combinations per fork in (C4).
const MAX_SUPPORT_COMBOS: usize = 4096;
/// Upper limit of the ε search window (`Δ = 1` makes larger ε useless:
/// differences bounded by 1 cannot decrease by more than 1 in expectation).
const EPS_CAP: f64 = 1.0;

/// Default number of Ser ternary-search iterations: `(2/3)^70` shrinks the
/// ε window by ~1e-12, matching Theorem C.1's `O(log(εmax/μ))` with the
/// tightest μ that still makes sense in f64.
pub const DEFAULT_SER_ITERATIONS: usize = 70;

/// Synthesizes a RepRSM upper bound with the Ser ternary search.
///
/// Deprecated shim over [`synthesize_reprsm_bound_in`] with a private
/// throwaway session; new code goes through the engine API
/// (`engine::HoeffdingLinear` / `engine::AzumaLinear` in an
/// [`crate::engine::EngineRegistry`]) or threads an explicit session.
///
/// # Errors
///
/// See [`RepRsmError`].
#[deprecated(note = "use the `hoeffding-linear`/`azuma` engines via \
                     `qava_core::engine`, or `synthesize_reprsm_bound_in` \
                     with an explicit `LpSolver` session")]
pub fn synthesize_reprsm_bound(pts: &Pts, kind: BoundKind) -> Result<RepRsmResult, RepRsmError> {
    synthesize_reprsm_bound_in(pts, kind, DEFAULT_SER_ITERATIONS, &mut LpSolver::new())
}

/// [`synthesize_reprsm_bound`] with an explicit Ser iteration budget — the
/// granularity/LP-count trade-off of Theorem C.1.
///
/// Deprecated shim; see [`synthesize_reprsm_bound`].
///
/// # Errors
///
/// See [`RepRsmError`].
#[deprecated(note = "use the engine API (`qava_core::engine`) or \
                     `synthesize_reprsm_bound_in` with an explicit session")]
pub fn synthesize_reprsm_bound_with(
    pts: &Pts,
    kind: BoundKind,
    ser_iterations: usize,
) -> Result<RepRsmResult, RepRsmError> {
    synthesize_reprsm_bound_in(pts, kind, ser_iterations, &mut LpSolver::new())
}

/// [`synthesize_reprsm_bound_with`] threading every LP of the Ser search
/// through the given solver session: the ε probes share one sparsity
/// pattern, so each probe beyond the first warm-starts from its
/// predecessor's basis.
///
/// # Errors
///
/// See [`RepRsmError`].
pub fn synthesize_reprsm_bound_in(
    pts: &Pts,
    kind: BoundKind,
    ser_iterations: usize,
    solver: &mut LpSolver,
) -> Result<RepRsmResult, RepRsmError> {
    synthesize_reprsm_bound_seeded_in(pts, kind, ser_iterations, None, solver)
}

/// Seeded search window, as a multiple of the neighbor's ε\*: wide enough
/// that ε\* rarely grows past it between neighboring sweep points, narrow
/// enough that the ternary search converges in fewer probes than the
/// full `[0, εmax]` window needs.
const SEED_WINDOW: f64 = 8.0;

/// Fraction of the seeded window's ceiling beyond which the landed ε\* is
/// treated as boundary-pinned — the true optimum may lie above the
/// window, so the seeded result is discarded and the full search
/// (εmax LP included) runs instead.
const SEED_BOUNDARY: f64 = 0.9;

/// [`synthesize_reprsm_bound_in`] with an optional ε seed from a
/// neighboring parametric-sweep point (`crate::sweep`).
///
/// With `eps_seed = Some(ε₀)` from the *previous* point's certified
/// template, the εmax LP is skipped and the Ser ternary search runs on
/// the seeded window `[0, min(`[`SEED_WINDOW`]`·ε₀, 1))`. Honesty guards
/// make seeding a pure acceleration, never an answer change beyond the
/// ternary search's own `1e-10` convergence slack:
///
/// * **boundary fallback** — if ε\* lands within [`SEED_BOUNDARY`] of the
///   seeded ceiling (and the ceiling is not the global [`EPS_CAP`]), the
///   optimum may lie above the window: the seeded attempt is discarded
///   and the full `[0, εmax]` search runs;
/// * **infeasibility fallback** — probes above the true εmax are
///   infeasible and prune themselves inside the search, but a final
///   solve landing infeasible (ε\* a hair past εmax) likewise discards
///   the attempt instead of misreporting `NoRepRsm`.
///
/// The bound is certified by the final LP solve at ε\* exactly as in the
/// unseeded search; `f(ε) = ε·ω(ε)` is unimodal (Proposition 5), so both
/// windows converge to the same optimum when the guard does not fire.
///
/// # Errors
///
/// See [`RepRsmError`].
pub fn synthesize_reprsm_bound_seeded_in(
    pts: &Pts,
    kind: BoundKind,
    ser_iterations: usize,
    eps_seed: Option<f64>,
    solver: &mut LpSolver,
) -> Result<RepRsmResult, RepRsmError> {
    let init = pts.initial_state();
    if pts.is_absorbing(init.loc) {
        return Err(RepRsmError::TrivialInitial);
    }
    let space = TemplateSpace::new(pts, true);
    let gen = ConstraintGen::new(pts, &space, kind, solver)?;
    let mut lp_solves = 0usize;

    // f(ε) = ε·ω_opt(ε), minimized by ternary search (Appendix C.2).
    let omega_at =
        |eps: f64, count: &mut usize, solver: &mut LpSolver| -> Result<f64, RepRsmError> {
            let (lp, _, _) = gen.build_lp(Some(eps));
            *count += 1;
            match solver.solve(&lp) {
                Ok(sol) => Ok(sol.objective.min(0.0)),
                Err(LpError::Infeasible) => Ok(f64::INFINITY), // probe outside feasible ε range
                Err(e) => Err(RepRsmError::Lp(e)),
            }
        };
    let ternary = |mut lo: f64,
                   mut hi: f64,
                   count: &mut usize,
                   solver: &mut LpSolver|
     -> Result<f64, RepRsmError> {
        for _ in 0..ser_iterations {
            if hi - lo < 1e-10 {
                break;
            }
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            let f1 = m1 * omega_at(m1, count, solver)?;
            let f2 = m2 * omega_at(m2, count, solver)?;
            if f1 < f2 {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        Ok((lo + hi) / 2.0)
    };
    // Final certifying solve at ε*; `Ok(None)` = infeasible there.
    let finish = |eps_star: f64,
                  count: &mut usize,
                  solver: &mut LpSolver|
     -> Result<Option<RepRsmResult>, RepRsmError> {
        let (lp, unknowns, _) = gen.build_lp(Some(eps_star));
        *count += 1;
        let sol = match solver.solve(&lp) {
            Ok(s) => s,
            Err(LpError::Infeasible) => return Ok(None),
            Err(e) => return Err(RepRsmError::Lp(e)),
        };
        let x: Vec<f64> = unknowns.iter().map(|&v| sol.value(v)).collect();
        let omega = sol.objective.min(0.0);
        let log_bound = kind.factor() * eps_star * omega;
        Ok(Some(RepRsmResult {
            bound: LogProb::from_ln(log_bound).clamp_to_unit(),
            epsilon: eps_star,
            omega,
            template: SolvedTemplate::from_solution(pts, &space, &x),
            lp_solves: 0, // caller stamps the running total
        }))
    };

    // Seeded fast path: search the neighbor-derived window, fall back to
    // the full search when the guards fire.
    if let Some(seed) = eps_seed.filter(|e| e.is_finite() && *e > 0.0) {
        let hi = (SEED_WINDOW * seed).min(EPS_CAP);
        let eps_star = ternary(0.0, hi, &mut lp_solves, solver)?;
        if eps_star <= SEED_BOUNDARY * hi || hi >= EPS_CAP {
            if let Some(mut r) = finish(eps_star, &mut lp_solves, solver)? {
                r.lp_solves = lp_solves;
                return Ok(r);
            }
        }
    }

    // εmax: maximize ε subject to everything (ε itself capped for
    // boundedness).
    let eps_max = {
        let (lp, _, eps_var) = gen.build_lp(None);
        lp_solves += 1;
        match solver.solve(&lp) {
            Ok(sol) => sol.value(eps_var.expect("eps is a variable here")).min(EPS_CAP),
            Err(LpError::Infeasible) => return Err(RepRsmError::NoRepRsm),
            Err(e) => return Err(RepRsmError::Lp(e)),
        }
    };
    let eps_star = ternary(0.0, eps_max, &mut lp_solves, solver)?;
    match finish(eps_star, &mut lp_solves, solver)? {
        Some(mut r) => {
            r.lp_solves = lp_solves;
            Ok(r)
        }
        None => Err(RepRsmError::NoRepRsm),
    }
}

/// Shared constraint-generation state: everything except the value of ε.
struct ConstraintGen<'a> {
    pts: &'a Pts,
    space: &'a TemplateSpace,
    kind: BoundKind,
    /// Pre-enumerated (C4) instances:
    /// `(extended Ψ, coefficient rows c(x), offset d-part, fork identity)`.
    c4_instances: Vec<C4Instance>,
    /// (C3) instances: `(Ψ, c rows, constant part of d excluding ε)`.
    c3_instances: Vec<C3Instance>,
}

struct C3Instance {
    psi: Polyhedron,
    c: Vec<UCoef>,
    d_no_eps: UCoef,
}

struct C4Instance {
    extended_psi: Polyhedron,
    /// Coefficients of `diff(v, r)` over the extended space, affine in x.
    diff_coeffs: Vec<UCoef>,
    diff_const: UCoef,
}

impl<'a> ConstraintGen<'a> {
    fn new(
        pts: &'a Pts,
        space: &'a TemplateSpace,
        kind: BoundKind,
        solver: &mut LpSolver,
    ) -> Result<Self, RepRsmError> {
        let mut c3 = Vec::new();
        let mut c4 = Vec::new();
        for (ti, t) in pts.transitions().iter().enumerate() {
            let psi = pts.invariant(t.src).intersection(&t.guard);
            if psi.is_empty_in(solver) {
                continue;
            }
            c3.push(Self::c3_instance(pts, space, t, &psi));
            for fork in &t.forks {
                Self::c4_instances(pts, space, t, fork, &psi, ti, &mut c4)?;
            }
        }
        Ok(ConstraintGen { pts, space, kind, c3_instances: c3, c4_instances: c4 })
    }

    /// (C3): `Σ_j p_j·E[η(dst_j, upd_j(v, r))] − η(src, v) + ε ≤ 0`.
    fn c3_instance(pts: &Pts, space: &TemplateSpace, t: &Transition, psi: &Polyhedron) -> C3Instance {
        let n = space.len();
        let nvars = pts.num_vars();
        let mut c: Vec<UCoef> = (0..nvars).map(|_| UCoef::zero(n)).collect();
        let mut d = UCoef::zero(n);
        for (k, ck) in c.iter_mut().enumerate() {
            ck.add_unknown(space.a_index(t.src, k), -1.0);
        }
        d.add_unknown(space.b_index(t.src), -1.0);
        for fork in &t.forks {
            let q = fork.update.matrix();
            for k in 0..nvars {
                for m in 0..nvars {
                    if q[(m, k)] != 0.0 {
                        c[k].add_unknown(space.a_index(fork.dest, m), fork.prob * q[(m, k)]);
                    }
                }
            }
            // Mean contribution of offsets and sampling sites.
            let mut mean_offset = fork.update.offset().to_vec();
            for site in fork.update.samples() {
                let mu = site.dist.mean();
                for (m, &cm) in site.coeffs.iter().enumerate() {
                    mean_offset[m] += mu * cm;
                }
            }
            for (m, &em) in mean_offset.iter().enumerate() {
                if em != 0.0 {
                    d.add_unknown(space.a_index(fork.dest, m), fork.prob * em);
                }
            }
            d.add_unknown(space.b_index(fork.dest), fork.prob);
        }
        // Encoded later as: c(x)·v ≤ −d(x) − ε.
        C3Instance { psi: psi.clone(), c, d_no_eps: d }
    }

    /// (C4): for every discrete-support combination, over `(v, r_uniform)`:
    /// `β ≤ diff ≤ β + 1` where `diff = η(dst, upd(v, r)) − η(src, v)`.
    fn c4_instances(
        pts: &Pts,
        space: &TemplateSpace,
        t: &Transition,
        fork: &Fork,
        psi: &Polyhedron,
        ti: usize,
        out: &mut Vec<C4Instance>,
    ) -> Result<(), RepRsmError> {
        let n = space.len();
        let nvars = pts.num_vars();
        let sites = fork.update.samples();
        let uniform_sites: Vec<usize> = (0..sites.len())
            .filter(|&s| sites[s].dist.discrete_points().is_none())
            .collect();
        let discrete_sites: Vec<usize> = (0..sites.len())
            .filter(|&s| sites[s].dist.discrete_points().is_some())
            .collect();

        // Cartesian product of the discrete supports.
        let mut combos: Vec<Vec<f64>> = vec![Vec::new()];
        for &s in &discrete_sites {
            let points = sites[s].dist.discrete_points().expect("filtered discrete");
            let mut next = Vec::with_capacity(combos.len() * points.len());
            for combo in &combos {
                for &(value, _) in &points {
                    let mut c2 = combo.clone();
                    c2.push(value);
                    next.push(c2);
                }
            }
            combos = next;
            if combos.len() > MAX_SUPPORT_COMBOS {
                return Err(RepRsmError::SupportTooLarge { transition: ti });
            }
        }

        let ext_dim = nvars + uniform_sites.len();
        let mut extended_psi = psi.embed(ext_dim, 0);
        for (u, &s) in uniform_sites.iter().enumerate() {
            let (lo, hi) = sites[s].dist.support_bounds();
            let mut row = vec![0.0; ext_dim];
            row[nvars + u] = 1.0;
            extended_psi.add(Halfspace::le(row.clone(), hi));
            let mut neg = vec![0.0; ext_dim];
            neg[nvars + u] = -1.0;
            extended_psi.add(Halfspace::le(neg, -lo));
        }

        for combo in combos {
            // diff = (a_d·Q − a_src)·v + Σ_u (a_d·c_u)·r_u
            //      + a_d·(e + Σ_disc c_s·val) + b_d − b_src.
            let mut coeffs: Vec<UCoef> = (0..ext_dim).map(|_| UCoef::zero(n)).collect();
            let mut konst = UCoef::zero(n);
            let q = fork.update.matrix();
            for k in 0..nvars {
                coeffs[k].add_unknown(space.a_index(t.src, k), -1.0);
                for m in 0..nvars {
                    if q[(m, k)] != 0.0 {
                        coeffs[k].add_unknown(space.a_index(fork.dest, m), q[(m, k)]);
                    }
                }
            }
            for (u, &s) in uniform_sites.iter().enumerate() {
                for (m, &cm) in sites[s].coeffs.iter().enumerate() {
                    if cm != 0.0 {
                        coeffs[nvars + u].add_unknown(space.a_index(fork.dest, m), cm);
                    }
                }
            }
            let mut offset = fork.update.offset().to_vec();
            for (ci, &s) in discrete_sites.iter().enumerate() {
                for (m, &cm) in sites[s].coeffs.iter().enumerate() {
                    offset[m] += combo[ci] * cm;
                }
            }
            for (m, &em) in offset.iter().enumerate() {
                if em != 0.0 {
                    konst.add_unknown(space.a_index(fork.dest, m), em);
                }
            }
            konst.add_unknown(space.b_index(fork.dest), 1.0);
            konst.add_unknown(space.b_index(t.src), -1.0);
            out.push(C4Instance {
                extended_psi: extended_psi.clone(),
                diff_coeffs: coeffs,
                diff_const: konst,
            });
        }
        Ok(())
    }

    /// Builds the LP. When `eps` is `None`, ε is a decision variable and the
    /// objective is `max ε` (for εmax); otherwise ε is substituted and the
    /// objective is `min η(ℓ_init, v_init)`.
    fn build_lp(&self, eps: Option<f64>) -> (LpBuilder, Vec<VarId>, Option<VarId>) {
        let n = self.space.len();
        let mut lp = LpBuilder::new();
        let unknowns: Vec<VarId> = (0..n).map(|i| lp.add_var(format!("u{i}"))).collect();
        let beta = lp.add_var("beta");
        let eps_var = match eps {
            None => {
                let e = lp.add_var_nonneg("epsilon");
                lp.constrain(LinExpr::var(e, 1.0), Cmp::Le, EPS_CAP);
                Some(e)
            }
            Some(_) => None,
        };

        if self.kind == BoundKind::Azuma {
            lp.constrain(LinExpr::var(beta, 1.0), Cmp::Eq, -0.5);
        }

        // (C1): η(init) ≤ 0.
        let init = self.pts.initial_state();
        let eta_init = self.space.eta_at(init.loc, &init.vals);
        let mut c1 = LinExpr::new();
        for (i, &coef) in eta_init.lin.iter().enumerate() {
            if coef != 0.0 {
                c1 = c1.term(unknowns[i], coef);
            }
        }
        lp.constrain(c1, Cmp::Le, -eta_init.constant);

        // (C2): η(ℓ_f, ·) ≥ 0 on I(ℓ_f):  −a_f·v ≤ b_f.
        let fail = self.pts.failure_location();
        let nvars = self.pts.num_vars();
        let c2: Vec<UCoef> = (0..nvars)
            .map(|k| {
                let mut u = UCoef::zero(n);
                u.add_unknown(self.space.a_index(fail, k), -1.0);
                u
            })
            .collect();
        let mut d2 = UCoef::zero(n);
        d2.add_unknown(self.space.b_index(fail), 1.0);
        encode_implication(&mut lp, &unknowns, self.pts.invariant(fail), &c2, &d2);

        // (C3): c(x)·v ≤ −d(x) − ε over Ψ.
        for inst in &self.c3_instances {
            let mut d = inst.d_no_eps.negated();
            match (eps, eps_var) {
                (Some(e), _) => d.constant -= e,
                (None, Some(_)) => {
                    // ε as a variable: append it to the unknown basis below.
                }
                (None, None) => unreachable!(),
            }
            // encode with extended unknown list (template unknowns + β + ε?).
            // β does not appear in C3; ε appears with coefficient −1 when a
            // variable. We splice it via a widened UCoef basis.
            let (xs, c_rows, d_row) = self.widen(&unknowns, beta, eps_var, &inst.c, &d, -1.0);
            encode_implication(&mut lp, &xs, &inst.psi, &c_rows, &d_row);
        }

        // (C4): β − diff ≤ 0 and diff − β − 1 ≤ 0 over the extended Ψ.
        for inst in &self.c4_instances {
            // β ≤ diff  ⇔  −diff_coeffs·(v,r) ≤ diff_const − β.
            let c_lower: Vec<UCoef> = inst.diff_coeffs.iter().map(UCoef::negated).collect();
            let d_lower = inst.diff_const.clone();
            let (xs, c_rows, d_row) = self.widen(&unknowns, beta, eps_var, &c_lower, &d_lower, 0.0);
            // The β term: d = diff_const − β → coefficient −1 on β.
            let mut d_row = d_row;
            d_row.lin[n] = -1.0;
            encode_implication(&mut lp, &xs, &inst.extended_psi, &c_rows, &d_row);

            // diff ≤ β + 1  ⇔  diff_coeffs·(v,r) ≤ β + 1 − diff_const.
            let d_upper = {
                let mut d = inst.diff_const.negated();
                d.constant += 1.0;
                d
            };
            let (xs, c_rows, d_row) =
                self.widen(&unknowns, beta, eps_var, &inst.diff_coeffs, &d_upper, 0.0);
            let mut d_row = d_row;
            d_row.lin[n] = 1.0;
            encode_implication(&mut lp, &xs, &inst.extended_psi, &c_rows, &d_row);
        }

        // Objective.
        match eps_var {
            Some(e) => lp.maximize(LinExpr::var(e, 1.0)),
            None => {
                let mut obj = LinExpr::new();
                for (i, &coef) in eta_init.lin.iter().enumerate() {
                    if coef != 0.0 {
                        obj = obj.term(unknowns[i], coef);
                    }
                }
                lp.minimize(obj);
            }
        }
        (lp, unknowns, eps_var)
    }

    /// Widens template-space [`UCoef`]s (length `n`) to the LP's full
    /// unknown basis `n + β (+ ε)`, putting `eps_coef` on ε inside `d`.
    fn widen(
        &self,
        unknowns: &[VarId],
        beta: VarId,
        eps_var: Option<VarId>,
        c: &[UCoef],
        d: &UCoef,
        eps_coef: f64,
    ) -> (Vec<VarId>, Vec<UCoef>, UCoef) {
        let n = self.space.len();
        let mut xs: Vec<VarId> = unknowns.to_vec();
        xs.push(beta);
        let extra = if let Some(e) = eps_var {
            xs.push(e);
            2
        } else {
            1
        };
        let widen_one = |u: &UCoef| {
            let mut lin = u.lin.clone();
            lin.resize(n + extra, 0.0);
            UCoef { lin, constant: u.constant }
        };
        let c_rows: Vec<UCoef> = c.iter().map(widen_one).collect();
        let mut d_row = widen_one(d);
        if let Some(_e) = eps_var {
            d_row.lin[n + 1] = eps_coef;
        }
        (xs, c_rows, d_row)
    }
}

#[cfg(test)]
// The deprecated session-less shims keep their behavioral coverage here
// until they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn race() -> Pts {
        let src = r"
            x := 40; y := 0;
            while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
                if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
            }
            assert x >= 100;
        ";
        qava_lang::compile(src, &BTreeMap::new()).unwrap()
    }

    #[test]
    fn race_hoeffding_bound_nontrivial() {
        let r = synthesize_reprsm_bound(&race(), BoundKind::Hoeffding).unwrap();
        // Paper Table 1: 9.08e-4 for Race (40, 0) via §5.1.
        assert!(r.bound.ln() < -4.0, "bound {} too weak", r.bound);
        assert!(r.bound.ln() > -25.0, "bound {} suspiciously strong", r.bound);
        assert!(r.epsilon > 0.0);
        assert!(r.omega < 0.0);
    }

    #[test]
    fn azuma_is_weaker_than_hoeffding() {
        let pts = race();
        let h = synthesize_reprsm_bound(&pts, BoundKind::Hoeffding).unwrap();
        let a = synthesize_reprsm_bound(&pts, BoundKind::Azuma).unwrap();
        assert!(
            a.bound.ln() >= h.bound.ln() - 1e-6,
            "Remark 2: Azuma ({}) must be looser than Hoeffding ({})",
            a.bound,
            h.bound
        );
    }

    #[test]
    fn hoeffding_looser_than_explinsyn() {
        let pts = race();
        let h = synthesize_reprsm_bound(&pts, BoundKind::Hoeffding).unwrap();
        let e = crate::explinsyn::synthesize_upper_bound(&pts).unwrap();
        assert!(
            h.bound.ln() >= e.bound.ln() - 1e-6,
            "the complete algorithm dominates: {} vs {}",
            h.bound,
            e.bound
        );
    }

    #[test]
    fn no_reprsm_when_violation_not_repelled() {
        // Violation certain: walk straight into the assertion failure.
        let src = r"
            x := 0;
            while x <= 9 invariant x <= 10 { x := x + 1; }
            assert x <= 5;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let r = synthesize_reprsm_bound(&pts, BoundKind::Hoeffding);
        // Any RepRSM must put η(init) ≤ 0 while ending ≥ 0 with ε-decrease —
        // impossible here; alternatively the bound degenerates to ~1.
        match r {
            Err(RepRsmError::NoRepRsm) => {}
            Ok(res) => assert!(res.bound.ln() > -1e-3, "cannot certify below 1, got {}", res.bound),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
