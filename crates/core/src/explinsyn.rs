//! **ExpLinSyn** (§5.2): the sound and *complete* synthesis of exponential
//! upper bounds `θ(ℓ, v) = exp(a_ℓ·v + b_ℓ)` on the assertion-violation
//! probability of affine PTSs.
//!
//! Pipeline, matching the paper's five steps:
//!
//! 1. templates per live location ([`crate::template::TemplateSpace`]);
//! 2. pre fixed-point constraints per transition;
//! 3. canonicalization to `Σ_j p_j·exp(α_j·v+β_j)·E[exp(γ_j·r)] ≤ 1` over
//!    `Ψ` ([`crate::canonical`]);
//! 4. quantifier elimination via the Minkowski decomposition `Ψ = Q + C`
//!    (Theorem 5.3 / Proposition 1): the recession-cone condition (D1)
//!    becomes linear rows `α_j·ray ≤ 0` (and equalities on lineality
//!    directions), the generator condition (D2) becomes one convex
//!    exp-sum constraint per vertex of `Q`;
//! 5. convex optimization of `exp(a_init·v_init + b_init)` (Theorem 5.4)
//!    with the `qava-convex` interior-point solver.
//!
//! The paper encodes (D1) through Farkas multipliers; since our double
//! description method already yields the *generators* of `C`, we impose
//! (D1) directly on rays and lines — an equivalent but smaller encoding
//! (documented deviation, see DESIGN.md).

use crate::canonical::{canonicalize_in, expand_term_at_vertex};
use crate::logprob::LogProb;
use crate::template::{SolvedTemplate, TemplateSpace, UCoef};
use qava_convex::{
    ConvexError, ConvexProblem, ExpSumConstraint, ExpTerm, SolverOptions, UniformMgf,
};
use qava_lp::LpSolver;
use qava_pts::Pts;

/// Errors from [`synthesize_upper_bound`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExpLinSynError {
    /// No exponential pre fixed-point with affine exponent exists (the
    /// convex program is infeasible) — completeness makes this a definitive
    /// "no such template" answer, not a solver limitation.
    NoTemplate,
    /// The initial location is absorbing; the answer is trivially 0 or 1.
    TrivialInitial,
    /// Numerical failure inside the convex solver.
    Solver(String),
    /// The session's cooperative cancellation flag was raised (a lost
    /// candidate race) before the convex solve started.
    Cancelled,
}

impl std::fmt::Display for ExpLinSynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpLinSynError::NoTemplate =>

                write!(f, "no exponential pre fixed-point with affine exponent exists"),
            ExpLinSynError::TrivialInitial => {
                write!(f, "initial location is absorbing; the bound is trivial")
            }
            ExpLinSynError::Solver(m) => write!(f, "convex solver failed: {m}"),
            ExpLinSynError::Cancelled => write!(f, "cancelled before the convex solve"),
        }
    }
}

impl std::error::Error for ExpLinSynError {}

/// A synthesized exponential upper bound.
#[derive(Debug, Clone)]
pub struct ExpLinSynResult {
    /// Certified upper bound on the violation probability from the initial
    /// state, `exp(a_init·v_init + b_init)`, clamped to `[0, 1]`.
    pub bound: LogProb,
    /// The synthesized template (for the paper's symbolic Table 4).
    pub template: SolvedTemplate,
    /// Raw solution vector over the template unknowns.
    pub solution: Vec<f64>,
    /// `true` when the objective hit the solver floor — the bound is then
    /// "essentially zero" rather than the exact optimum.
    pub floored: bool,
    /// Newton iterations spent by the interior-point solver.
    pub newton_iterations: usize,
}

/// Runs ExpLinSyn with default solver options.
///
/// Deprecated shim over [`synthesize_upper_bound_in`] with a private
/// throwaway session; new code goes through the engine API
/// (`explinsyn` in an [`crate::engine::EngineRegistry`]) or threads an
/// explicit session.
///
/// # Errors
///
/// See [`ExpLinSynError`].
#[deprecated(note = "use the `explinsyn` engine via `qava_core::engine`, \
                     or `synthesize_upper_bound_in` with an explicit \
                     `LpSolver` session")]
pub fn synthesize_upper_bound(pts: &Pts) -> Result<ExpLinSynResult, ExpLinSynError> {
    synthesize_upper_bound_with_in(pts, &SolverOptions::default(), &mut LpSolver::new())
}

/// Runs ExpLinSyn with default convex-solver options, threading the
/// canonicalization emptiness-probe LPs through the given session. (The
/// convex program itself is solved by the interior-point method in
/// `qava-convex`, not by an LP backend.)
///
/// # Errors
///
/// See [`ExpLinSynError`].
pub fn synthesize_upper_bound_in(
    pts: &Pts,
    solver: &mut LpSolver,
) -> Result<ExpLinSynResult, ExpLinSynError> {
    synthesize_upper_bound_with_in(pts, &SolverOptions::default(), solver)
}

/// Runs ExpLinSyn with explicit solver options.
///
/// Deprecated shim; see [`synthesize_upper_bound`].
///
/// # Errors
///
/// See [`ExpLinSynError`].
#[deprecated(note = "use the engine API (`qava_core::engine`, with convex \
                     options on the `AnalysisRequest`) or \
                     `synthesize_upper_bound_with_in`")]
pub fn synthesize_upper_bound_with(
    pts: &Pts,
    opts: &SolverOptions,
) -> Result<ExpLinSynResult, ExpLinSynError> {
    synthesize_upper_bound_with_in(pts, opts, &mut LpSolver::new())
}

/// [`synthesize_upper_bound_with`] inside an explicit LP session.
///
/// # Errors
///
/// See [`ExpLinSynError`].
pub fn synthesize_upper_bound_with_in(
    pts: &Pts,
    opts: &SolverOptions,
    solver: &mut LpSolver,
) -> Result<ExpLinSynResult, ExpLinSynError> {
    let init = pts.initial_state();
    if pts.is_absorbing(init.loc) {
        return Err(ExpLinSynError::TrivialInitial);
    }
    let space = TemplateSpace::new(pts, false);
    let problem = build_convex_program_in(pts, &space, solver)?;

    // The interior-point solve is this algorithm's one long phase and it
    // runs outside the LP session, so honor a cooperative cancellation
    // (a lost candidate race) here, at its boundary — the same contract
    // the session applies to each LP solve.
    if solver.is_cancelled() {
        return Err(ExpLinSynError::Cancelled);
    }
    let sol = match problem.solve(opts) {
        Ok(s) => s,
        Err(ConvexError::Infeasible) => return Err(ExpLinSynError::NoTemplate),
        Err(ConvexError::NumericalFailure(m)) => return Err(ExpLinSynError::Solver(m)),
    };

    let bound = LogProb::from_ln(sol.objective).clamp_to_unit();
    Ok(ExpLinSynResult {
        bound,
        template: SolvedTemplate::from_solution(pts, &space, &sol.x),
        solution: sol.x,
        floored: sol.floored,
        newton_iterations: sol.newton_iterations,
    })
}

/// Steps 2–4: the convex program Θ of the paper. Public for diagnostics
/// (the `tables` harness and tests inspect the generated constraints).
pub fn build_convex_program(
    pts: &Pts,
    space: &TemplateSpace,
) -> Result<ConvexProblem, ExpLinSynError> {
    build_convex_program_in(pts, space, &mut LpSolver::new())
}

/// [`build_convex_program`] with the canonicalization emptiness probes
/// threaded through an explicit LP session.
pub fn build_convex_program_in(
    pts: &Pts,
    space: &TemplateSpace,
    solver: &mut LpSolver,
) -> Result<ConvexProblem, ExpLinSynError> {
    let n = space.len();
    let mut problem = ConvexProblem::new(n);

    // Step 5's objective: minimize a_init·v_init + b_init (the log of the
    // reported bound — exp is monotone).
    let init = pts.initial_state();
    let obj = space.eta_at(init.loc, &init.vals);
    problem.set_objective(obj.lin);

    for con in canonicalize_in(pts, space, solver) {
        if con.terms.is_empty() {
            continue; // all mass to ℓ_t: the constraint is `0 ≤ 1`.
        }
        let Some((vertices, cone)) = con.guard.minkowski_decompose() else {
            continue; // empty Ψ (canonicalize already filters, but be safe)
        };

        // (D1): α_j · r ≤ 0 for every recession ray, α_j · l = 0 for every
        // lineality direction, for every fork j.
        for term in &con.terms {
            for ray in &cone.rays {
                let mut row = UCoef::zero(n);
                for (a, &rk) in term.alpha.iter().zip(ray) {
                    row.add_scaled(a, rk);
                }
                if !row.is_zero() {
                    problem.add_constraint(
                        ExpSumConstraint::linear(row.lin, -row.constant)
                            .labeled(format!("D1 ray (transition {})", con.transition_index)),
                    );
                }
            }
            for line in &cone.lines {
                let mut row = UCoef::zero(n);
                for (a, &lk) in term.alpha.iter().zip(line) {
                    row.add_scaled(a, lk);
                }
                if !row.is_zero() {
                    problem.add_equality(row.lin, -row.constant);
                }
            }
        }

        // (D2): the canonical inequality instantiated at every generator
        // vertex of Q, expanded over discrete sampling supports.
        for vertex in &vertices {
            let mut terms = Vec::new();
            for term in &con.terms {
                let (summands, uniforms) = expand_term_at_vertex(term, vertex, n);
                for (weight, expo) in summands {
                    let mut t = ExpTerm::exp_affine(weight, expo.lin, expo.constant);
                    for (lo, hi, gamma) in &uniforms {
                        t = t.with_uniform_factor(
                            UniformMgf::new(*lo, *hi),
                            gamma.lin.clone(),
                            gamma.constant,
                        );
                    }
                    terms.push(t);
                }
            }
            problem.add_constraint(ExpSumConstraint::new(terms).labeled(format!(
                "D2 vertex {:?} (transition {})",
                vertex, con.transition_index
            )));
        }
    }
    Ok(problem)
}

#[cfg(test)]
// The deprecated session-less shims keep their behavioral coverage here
// until they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn race_src() -> &'static str {
        r"
            param start = 40;
            x := start; y := 0;
            while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
                if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
            }
            assert x >= 100;
        "
    }

    #[test]
    fn race_bound_matches_paper() {
        // §3.1: the optimal bound is ≈ exp(−15.697) ≈ 1.52e-7.
        let pts = qava_lang::compile(race_src(), &BTreeMap::new()).unwrap();
        let r = synthesize_upper_bound(&pts).unwrap();
        assert!(!r.floored);
        assert!(
            (r.bound.ln() + 15.697).abs() < 0.05,
            "expected ln ≈ −15.697, got {}",
            r.bound.ln()
        );
    }

    #[test]
    fn race_bound_monotone_in_head_start() {
        let mut bounds = Vec::new();
        for start in [35.0, 40.0, 45.0] {
            let mut params = BTreeMap::new();
            params.insert("start".to_string(), start);
            let pts = qava_lang::compile(race_src(), &params).unwrap();
            bounds.push(synthesize_upper_bound(&pts).unwrap().bound);
        }
        assert!(bounds[0] > bounds[1], "a smaller head start helps the hare");
        assert!(bounds[1] > bounds[2]);
    }

    #[test]
    fn certain_violation_gives_bound_one() {
        let pts = qava_lang::compile("x := 0; assert false;", &BTreeMap::new()).unwrap();
        let r = synthesize_upper_bound(&pts);
        // The initial location is ℓ_f itself after lowering.
        assert!(matches!(r, Err(ExpLinSynError::TrivialInitial)));
    }

    #[test]
    fn unreachable_violation_floors_to_zero() {
        // x stays 0 forever until exit; assertion never violated. The bound
        // objective is unbounded below -> floored, bound ~ 0.
        let src = r"
            x := 0;
            while x <= 9 invariant x <= 10 { x := x + 1; }
            assert x >= 0;
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let r = synthesize_upper_bound(&pts).unwrap();
        assert!(r.floored);
        assert!(r.bound.ln() < -1e3);
    }

    #[test]
    fn coin_flip_gets_exact_probability() {
        // Violates with probability exactly 0.3.
        let src = r"
            x := 0;
            if prob(0.3) { assert false; } else { exit; }
        ";
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let r = synthesize_upper_bound(&pts).unwrap();
        assert!(
            (r.bound.to_f64() - 0.3).abs() < 1e-3,
            "expected 0.3, got {}",
            r.bound.to_f64()
        );
    }

    #[test]
    fn template_is_pre_fixed_point_numerically() {
        let pts = qava_lang::compile(race_src(), &BTreeMap::new()).unwrap();
        let r = synthesize_upper_bound(&pts).unwrap();
        let report = crate::verify::check_pre_fixed_point(&pts, &r.solution, 500, 7);
        assert!(report.is_ok(), "violations: {report:?}");
    }
}
