//! Handelman's Positivstellensatz as a constraint compiler.
//!
//! Remarks 3 and 5 of the paper extend the synthesis algorithms to
//! polynomial exponents "through Positivstellensätze and semidefinite
//! programming". SDP support in pure Rust is immature, so we use the
//! LP-flavoured member of the Positivstellensatz family instead:
//! **Handelman's theorem** — a polynomial strictly positive on a compact
//! polyhedron `P = {v | g₁ ≥ 0, …, g_m ≥ 0}` lies in the cone of products
//! `Π g_i^{α_i}` with non-negative coefficients. (This is also the route
//! taken by several RSM-synthesis tools in the literature when SDPs are
//! unavailable; it is sound for arbitrary polyhedra and complete on
//! compact ones in the limit of the product degree.)
//!
//! [`encode_poly_nonneg`] emits, into an [`LpBuilder`], the constraint
//!
//! ```text
//! ∀v ∈ P:   p(v) ≥ 0
//! ```
//!
//! for a polynomial `p` whose coefficients are affine in the template
//! unknowns, by introducing one non-negative multiplier `λ_α` per product
//! of constraints up to a degree cap and matching coefficients monomial by
//! monomial:
//!
//! ```text
//! p  =  Σ_{|α| ≤ D} λ_α · Π_i g_i^{α_i}        (λ_α ≥ 0)
//! ```
//!
//! Both sides are linear in `(unknowns, λ)`, so the matching rows are LP
//! rows. Degree-0 (`λ_∅ · 1`) is always included, which subsumes the
//! trivial "p is a non-negative constant" certificate.
//!
//! Like [`crate::farkas`], this module only *encodes*; the built model is
//! solved through whatever [`qava_lp::LpSolver`] session the synthesis
//! layer (e.g. [`crate::polyrsm`], [`crate::polylow`]) is threading.
//!
//! # Performance
//!
//! Everything here runs on interned monomials ([`crate::poly::MonoId`]):
//! the coefficient-matching loop walks sorted `(id, coeff)` lists and
//! probes by binary search instead of cloning and comparing exponent
//! vectors. The constraint products themselves are memoized per thread,
//! keyed by a hash of the constraint set and the degree cap — the Ser
//! ternary search re-encodes the same regions dozens of times per
//! synthesis, and every re-encode after the first is a cache hit.

use crate::poly::{CPoly, MonoId, UPoly};
use qava_lp::{Cmp, LinExpr, LpBuilder, VarId};
use qava_polyhedra::Polyhedron;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};

/// Exact cache key for a region's constraint products: dimension plus
/// the bit patterns of every constraint coefficient and right-hand side,
/// and the degree cap. A full-content key (rather than a 64-bit digest)
/// because a collision here would silently certify a polynomial against
/// the wrong region — the cache output is trusted, unlike the LP
/// warm-start cache whose hits are re-verified.
type RegionKey = (usize, Vec<u64>, u32);

thread_local! {
    /// Memoized [`constraint_products`] results per (region, degree).
    static PRODUCT_CACHE: RefCell<HashMap<RegionKey, Vec<CPoly>>> = RefCell::new(HashMap::new());
}

/// Entries kept in the per-thread product cache before it is cleared
/// (regions per synthesis problem are few; this is a safety valve).
const PRODUCT_CACHE_CAP: usize = 512;

/// Exact content key of a polyhedron's constraint system (bit patterns:
/// regions coming from the same synthesis are structurally shared, not
/// recomputed, so bitwise equality is the right notion).
fn region_key(poly: &Polyhedron, degree: u32) -> RegionKey {
    let mut bits = Vec::with_capacity(poly.constraints().len() * (poly.dim() + 1));
    for hs in poly.constraints() {
        for c in &hs.coeffs {
            bits.push(c.to_bits());
        }
        bits.push(hs.rhs.to_bits());
    }
    (poly.dim(), bits, degree)
}

/// Builds the constraint products `Π g_i^{α_i}` with `|α| ≤ degree` for
/// the polyhedron's rows `g_i(v) = rhs_i − c_i·v ≥ 0` (closure semantics:
/// strictness is dropped, which is sound for nonnegativity certificates).
///
/// Results are memoized per thread, keyed by the exact constraint
/// content and the degree.
pub fn constraint_products(poly: &Polyhedron, degree: u32) -> Vec<CPoly> {
    let key = region_key(poly, degree);
    let cached = PRODUCT_CACHE.with(|c| c.borrow().get(&key).cloned());
    if let Some(products) = cached {
        return products;
    }
    let products = constraint_products_uncached(poly, degree);
    PRODUCT_CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if cache.len() >= PRODUCT_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, products.clone());
    });
    products
}

fn constraint_products_uncached(poly: &Polyhedron, degree: u32) -> Vec<CPoly> {
    let n = poly.dim();
    let gs: Vec<CPoly> = poly
        .constraints()
        .iter()
        .map(|h| {
            let negc: Vec<f64> = h.coeffs.iter().map(|c| -c).collect();
            CPoly::affine(&negc, h.rhs)
        })
        .collect();
    // Breadth-first closure under multiplication, deduplicated by the
    // exponent multiset to avoid an exponential blowup of identical
    // products.
    let mut out = vec![CPoly::constant(n, 1.0)];
    let mut seen: BTreeSet<Vec<u32>> = BTreeSet::new();
    let mut frontier: Vec<(Vec<u32>, CPoly)> = vec![(vec![0; gs.len()], out[0].clone())];
    seen.insert(vec![0; gs.len()]);
    for _ in 0..degree {
        let mut next = Vec::new();
        for (alpha, prod) in &frontier {
            for (i, g) in gs.iter().enumerate() {
                let mut a2 = alpha.clone();
                a2[i] += 1;
                if seen.insert(a2.clone()) {
                    let p2 = prod.mul(g);
                    out.push(p2.clone());
                    next.push((a2, p2));
                }
            }
        }
        frontier = next;
    }
    out
}

/// Emits `∀v ∈ closure(region): p(v) ≥ 0` via a Handelman certificate of
/// the given product degree. `unknowns[i]` must be the LP variable of
/// template unknown `i`.
///
/// Soundness holds for any region and degree; completeness improves with
/// the degree and requires compactness. Degree 2 suffices for every use in
/// this crate (quadratic templates over conjunctions of affine
/// constraints).
pub fn encode_poly_nonneg(
    lp: &mut LpBuilder,
    unknowns: &[VarId],
    region: &Polyhedron,
    p: &UPoly,
    degree: u32,
) {
    let products = constraint_products(region, degree);
    let lambdas: Vec<VarId> = (0..products.len())
        .map(|i| lp.add_var_nonneg(format!("handelman_l{i}")))
        .collect();

    // Every monomial present on either side, in interned-id order (which
    // is deterministic for a synthesis thread).
    let mut monomials: BTreeSet<MonoId> = p.iter_ids().map(|(id, _)| id).collect();
    for prod in &products {
        monomials.extend(prod.iter_ids().map(|(id, _)| id));
    }

    // Coefficient matching: p_μ(x) − Σ_α λ_α·prod_α[μ] = 0. Lookups are
    // binary searches on the sorted term lists — no exponent-vector
    // traffic at all.
    for &m in &monomials {
        let mut e = LinExpr::new();
        let mut rhs = 0.0;
        if let Some(p_mu) = p.coeff_of(m) {
            for (idx, &coef) in p_mu.lin.iter().enumerate() {
                if coef != 0.0 {
                    e = e.term(unknowns[idx], coef);
                }
            }
            rhs = -p_mu.constant;
        }
        for (prod, &lambda) in products.iter().zip(&lambdas) {
            let c = prod.coeff_of(m);
            if c != 0.0 {
                e = e.term(lambda, -c);
            }
        }
        lp.constrain(e, Cmp::Eq, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::UCoef;
    use qava_lp::LpError;
    use qava_polyhedra::Halfspace;

    /// Probe: is there a value of the single unknown `x0` making
    /// `p(v; x0) ≥ 0` on the region certifiable at the given degree, while
    /// optimizing `x0`? Solved through an explicit session, as the
    /// synthesis layers do.
    fn probe(
        region: &Polyhedron,
        build: impl Fn(usize) -> UPoly,
        degree: u32,
        maximize: bool,
    ) -> Result<f64, LpError> {
        let mut solver = qava_lp::LpSolver::new();
        let mut lp = LpBuilder::new();
        let x = lp.add_var("x0");
        let p = build(1);
        encode_poly_nonneg(&mut lp, &[x], region, &p, degree);
        if maximize {
            lp.maximize(LinExpr::var(x, 1.0));
        } else {
            lp.minimize(LinExpr::var(x, 1.0));
        }
        solver.solve(&lp).map(|s| s.value(x))
    }

    fn interval(lo: f64, hi: f64) -> Polyhedron {
        Polyhedron::from_constraints(
            1,
            vec![Halfspace::le(vec![1.0], hi), Halfspace::ge(vec![1.0], lo)],
        )
    }

    #[test]
    fn product_count_and_degrees() {
        // Two constraints, degree 2: 1, g1, g2, g1², g1g2, g2² = 6 products.
        let prods = constraint_products(&interval(0.0, 1.0), 2);
        assert_eq!(prods.len(), 6);
        assert!(prods.iter().all(|p| p.degree() <= 2));
    }

    #[test]
    fn product_cache_hits_are_identical() {
        let region = interval(-2.0, 7.0);
        let first = constraint_products(&region, 2);
        let second = constraint_products(&region, 2);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a, b, "cache must return the same cone basis");
        }
        // A different degree misses the cache and yields a bigger basis.
        assert!(constraint_products(&region, 3).len() > first.len());
    }

    #[test]
    fn affine_bound_recovered() {
        // ∀v ∈ [0, 5]: x − v ≥ 0 ⇔ x ≥ 5 (degree 1 suffices — this is
        // Farkas as a special case of Handelman).
        let x_min = probe(
            &interval(0.0, 5.0),
            |nu| {
                let mut p = UPoly::zero(1, nu);
                p.add_unknown_term(vec![0], 0, 1.0);
                let mut minus_one = UCoef::zero(nu);
                minus_one.constant = -1.0;
                p.add_term(vec![1], &minus_one);
                p
            },
            1,
            false,
        )
        .unwrap();
        assert!((x_min - 5.0).abs() < 1e-7, "got {x_min}");
    }

    #[test]
    fn quadratic_bound_needs_degree_two() {
        // ∀v ∈ [−1, 1]: x − v² ≥ 0 ⇔ x ≥ 1. The certificate needs the
        // product (1−v)(1+v) = 1 − v², i.e. degree 2.
        let build = |nu: usize| {
            let mut p = UPoly::zero(1, nu);
            p.add_unknown_term(vec![0], 0, 1.0);
            let mut minus_one = UCoef::zero(nu);
            minus_one.constant = -1.0;
            p.add_term(vec![2], &minus_one);
            p
        };
        let x_min = probe(&interval(-1.0, 1.0), build, 2, false).unwrap();
        assert!((x_min - 1.0).abs() < 1e-7, "got {x_min}");
        // Degree 1 cannot certify any x: v² has no degree-1 certificate.
        assert_eq!(probe(&interval(-1.0, 1.0), build, 1, false).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn negativity_detected_infeasible() {
        // ∀v ∈ [0, 1]: −1 − 0·x ≥ 0 has no certificate at any degree.
        let r = probe(
            &interval(0.0, 1.0),
            |nu| {
                let mut p = UPoly::zero(1, nu);
                let mut c = UCoef::zero(nu);
                c.constant = -1.0;
                p.add_term(vec![0], &c);
                p
            },
            3,
            false,
        );
        assert_eq!(r.unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn sound_on_unbounded_regions() {
        // ∀v ≥ 0: x·v ≥ 0 certifiable for x ≥ 0 via λ·g with g = v; and
        // maximizing −x… i.e. minimizing x stays at 0 (x < 0 has no
        // certificate, matching the true implication which fails there).
        let region = Polyhedron::from_constraints(1, vec![Halfspace::ge(vec![1.0], 0.0)]);
        let x_min = probe(
            &region,
            |nu| {
                let mut p = UPoly::zero(1, nu);
                p.add_unknown_term(vec![1], 0, 1.0);
                p
            },
            2,
            false,
        )
        .unwrap();
        assert!(x_min.abs() < 1e-9, "got {x_min}");
    }
}
