//! Regression pin for the walk3d (3DWalk) εmax Hoeffding LP.
//!
//! This LP sits on a numerical knife edge: PR 2's accumulator
//! reordering pushed it into a Dantzig degenerate cycle that ground to
//! the pivot limit, and only the `--suite` 3DWalk row — not the tier
//! tests — caught it. The rescue is the all-Bland retry in the revised
//! simplex core (`revised::solve_equilibrated`); this test pins that
//! path directly for **both** revised backends (`sparse` and `lu`), so
//! future simplex-numerics changes fail here in seconds instead of in a
//! full suite run.
//!
//! It also pins the LU backends' headline robustness property: walk3d
//! synthesis must complete with **zero feasibility-watchdog
//! refactor-backstop trips** (`LpStats::watchdog_restarts`) — the
//! conditioning failure the factorized representations exist to
//! eliminate. Both LU engines (product-form eta file and Forrest–Tomlin
//! spike swaps) carry the property.

use qava_core::hoeffding::{synthesize_reprsm_bound_in, BoundKind};
use qava_core::suite::walk3d_rows;
use qava_lp::{BackendChoice, LpSolver};

/// Enough Ser iterations to run the εmax LP plus a band of ε-probe LPs
/// over the same knife-edge structure, while keeping the test quick.
const SER_ITERATIONS: usize = 12;

#[test]
fn walk3d_epsmax_lp_survives_both_revised_backends() {
    let row = &walk3d_rows()[0]; // (x, y, z) = (100, 100, 100)
    let pts = row.compile();
    let mut lns = Vec::new();
    for choice in [BackendChoice::Sparse, BackendChoice::Lu, BackendChoice::LuFt] {
        let mut solver = LpSolver::with_choice(choice);
        let r = synthesize_reprsm_bound_in(&pts, BoundKind::Hoeffding, SER_ITERATIONS, &mut solver)
            .unwrap_or_else(|e| panic!("{choice}: walk3d εmax synthesis failed: {e}"));
        let stats = solver.stats().clone();
        assert!(stats.solves > SER_ITERATIONS, "{choice}: Ser search must probe LPs");
        // A Dantzig cycle on this LP is acceptable only when the
        // all-Bland retry rescues it — reaching here unwrapped proves it
        // did; the counters document which path ran.
        let ln = r.bound.ln();
        assert!(
            ln < -50.0,
            "{choice}: walk3d bound degenerated to {ln} \
             ({} bland retries, {} watchdog restarts)",
            stats.bland_retries,
            stats.watchdog_restarts,
        );
        if matches!(choice, BackendChoice::Lu | BackendChoice::LuFt) {
            assert_eq!(
                stats.watchdog_restarts, 0,
                "{choice}: the factorized basis must not trip the feasibility \
                 watchdog on walk3d"
            );
        }
        lns.push((choice, ln));
    }
    // All revised backends must certify essentially the same bound.
    let (ca, la) = lns[0];
    for &(cb, lb) in &lns[1..] {
        assert!(
            (la - lb).abs() <= 1e-3 * la.abs().max(lb.abs()),
            "{ca} ({la}) and {cb} ({lb}) diverged on walk3d"
        );
    }
}
