//! Conformance of the engine API (PR 5) against the legacy entry points
//! and against ground truth.
//!
//! * **Differential**: for all 36 suite rows, registry-driven runs must
//!   report the same certified bounds (to 1e-9) and the same verdicts as
//!   the legacy `synthesize_*` shims — the engine adapters are wiring,
//!   not reimplementation, and this pins it.
//! * **Racing**: `--race` semantics — every row certifies, the winner's
//!   value is identical to that engine run alone (whichever engine
//!   wins), and cancelled racers' statistics land in the `abandoned`
//!   bucket without double-counting.
//! * **Dominance**: on finite instances every certified upper-engine
//!   bound must lie above the value-iteration truth (Theorems 4.3/4.4),
//!   and every lower-engine bound below it — for *every* registered
//!   engine of the direction, not just the default lineup.

// The legacy shims are exercised on purpose: they are this test's
// reference implementation.
#![allow(deprecated)]

use qava_core::engine::{race, AnalysisRequest, Direction, EngineRegistry};
use qava_core::fixpoint::VpfOracle;
use qava_core::suite::runner::{
    default_engines, race_rows_with, suite_abandoned_lp_stats, suite_lp_stats,
};
use qava_core::suite::{table1, table2, Benchmark};
use qava_core::BoundKind;
use qava_lp::BackendChoice;
use std::collections::BTreeMap;

/// Runs one legacy shim by engine name on an already compiled program.
fn legacy_bound(engine: &str, pts: &qava_pts::Pts) -> Result<f64, String> {
    match engine {
        "hoeffding-linear" => qava_core::synthesize_reprsm_bound(pts, BoundKind::Hoeffding)
            .map(|r| r.bound.ln())
            .map_err(|e| e.to_string()),
        "azuma" => qava_core::synthesize_reprsm_bound(pts, BoundKind::Azuma)
            .map(|r| r.bound.ln())
            .map_err(|e| e.to_string()),
        "explinsyn" => qava_core::synthesize_upper_bound(pts)
            .map(|r| r.bound.ln())
            .map_err(|e| e.to_string()),
        "explowsyn" => qava_core::synthesize_lower_bound(pts)
            .map(|r| r.bound.ln())
            .map_err(|e| e.to_string()),
        other => panic!("no legacy shim mapped for engine `{other}`"),
    }
}

/// The acceptance gate of the API redesign: all 36 rows, every default
/// engine, legacy shim vs registry run, bounds to 1e-9 and verdicts
/// equal.
#[test]
fn all_36_rows_bitreproduce_legacy_shims() {
    let rows: Vec<Benchmark> = table1().into_iter().chain(table2()).collect();
    assert_eq!(rows.len(), 36);
    let registry = EngineRegistry::with_builtins();
    let mut compared = 0usize;
    for row in &rows {
        let pts = row.compile();
        for &name in default_engines(row.direction) {
            let engine = registry.engine(name).expect("default engines are built in");
            let req = AnalysisRequest::new(&pts, engine.direction());
            let via_engine = registry
                .run_engine(name, &req, BackendChoice::default())
                .expect("built-in engine");
            let via_legacy = legacy_bound(name, &pts);
            match (&via_engine.outcome, &via_legacy) {
                (Ok(c), Ok(expected)) => {
                    assert!(
                        (c.bound.ln() - expected).abs() <= 1e-9,
                        "{} ({}) / {name}: engine ln {} vs legacy ln {}",
                        row.name,
                        row.label,
                        c.bound.ln(),
                        expected
                    );
                }
                (Err(e), Err(expected)) => {
                    assert_eq!(
                        &e.to_string(),
                        expected,
                        "{} ({}) / {name}: verdicts diverge",
                        row.name,
                        row.label
                    );
                }
                (got, want) => panic!(
                    "{} ({}) / {name}: engine {:?} vs legacy {:?}",
                    row.name,
                    row.label,
                    got.as_ref().map(|c| c.bound.ln()),
                    want
                ),
            }
            compared += 1;
        }
    }
    assert_eq!(compared, 63, "27 upper rows x 2 engines + 9 lower rows x 1");
}

/// `--race` over the full suite: every row certifies, the per-row report
/// names the winner and its lineup, and the winner's value equals that
/// engine run sequentially — whichever engine won.
#[test]
fn race_certifies_every_row_with_sequential_winner_value() {
    let rows: Vec<Benchmark> = table1().into_iter().chain(table2()).collect();
    let reports = race_rows_with(&rows, BackendChoice::default());
    assert_eq!(reports.len(), 36);
    let registry = EngineRegistry::with_builtins();
    for report in &reports {
        assert_eq!(report.runs.len(), 1);
        let run = &report.runs[0];
        let raced: Vec<&str> = run.raced.to_vec();
        assert_eq!(
            raced,
            default_engines(report.direction).to_vec(),
            "{}: lineup must be the direction's default engines",
            report.name
        );
        let bound = run
            .bound
            .as_ref()
            .unwrap_or_else(|e| panic!("{} ({}): race failed: {e}", report.name, report.label));
        // Bit-reproduce the winner sequentially.
        let pts = rows[report.row].compile();
        let req = AnalysisRequest::new(&pts, report.direction);
        let solo = registry
            .run_engine(run.engine, &req, BackendChoice::default())
            .expect("winner is registered")
            .bound()
            .expect("winner certified in the race, must certify alone");
        assert!(
            (bound.ln() - solo.ln()).abs() <= 1e-9,
            "{} ({}): race winner {} reported {} vs solo {}",
            report.name,
            report.label,
            run.engine,
            bound.ln(),
            solo.ln()
        );
    }
    // Honest accounting: certified totals exclude the abandoned bucket.
    let certified = suite_lp_stats(&reports);
    let abandoned = suite_abandoned_lp_stats(&reports);
    let per_run_winner: usize =
        reports.iter().flat_map(|r| &r.runs).map(|run| run.lp.solves).sum();
    let per_run_abandoned: usize =
        reports.iter().flat_map(|r| &r.runs).map(|run| run.abandoned.solves).sum();
    assert_eq!(certified.solves, per_run_winner);
    assert_eq!(abandoned.solves, per_run_abandoned);
    assert!(certified.solves > 0);
}

/// Race determinism across possible winners: for every engine in the
/// upper lineup, when that engine wins (forced here by racing it alone)
/// the reported bound equals its sequential value — so the *reported
/// certified bound of the winner* is independent of racing, whichever
/// engine wins a contested race.
#[test]
fn race_reported_value_is_winner_invariant() {
    let row = &table1()[0];
    let pts = row.compile();
    let registry = EngineRegistry::with_builtins();
    let req = AnalysisRequest::upper(&pts);
    for &name in default_engines(Direction::Upper) {
        let engine = registry.engine(name).unwrap();
        let solo = registry
            .run_engine(name, &req, BackendChoice::default())
            .unwrap()
            .bound()
            .expect("default upper engines certify the first RdAdder row");
        let outcome = race(&[engine], &req, BackendChoice::default());
        let won = outcome.winning_report().expect("single-engine race certifies");
        assert_eq!(won.engine, name);
        assert!(
            (won.bound().unwrap().ln() - solo.ln()).abs() <= 1e-9,
            "{name}: raced value {} vs solo {}",
            won.bound().unwrap().ln(),
            solo.ln()
        );
    }
    // And a contested race's winner agrees with its own solo value.
    let lineup: Vec<_> =
        default_engines(Direction::Upper).iter().map(|n| registry.engine(n).unwrap()).collect();
    let outcome = race(&lineup, &req, BackendChoice::default());
    let winner = outcome.winning_report().expect("contested race certifies");
    let solo = registry
        .run_engine(winner.engine, &req, BackendChoice::default())
        .unwrap()
        .bound()
        .unwrap();
    assert!((winner.bound().unwrap().ln() - solo.ln()).abs() <= 1e-9);
}

/// Finite instances where value iteration gives the truth: certified
/// upper bounds must dominate it, certified lower bounds must stay
/// below it — for every registered engine of each direction.
#[test]
fn every_registered_engine_respects_fixpoint_truth_on_finite_instances() {
    let programs: &[(&str, &str)] = &[
        ("coin_flip", "x := 0; if prob(0.3) { assert false; } else { exit; }"),
        (
            "gambler_ruin",
            r"
                x := 3;
                while x >= 1 and x <= 9 invariant x >= 0 and x <= 10 {
                    if prob(0.5) { x := x + 1; } else { x := x - 1; }
                }
                assert x >= 10;
            ",
        ),
        (
            "race_40",
            r"
                x := 40; y := 0;
                while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
                    if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
                }
                assert x >= 100;
            ",
        ),
    ];
    let registry = EngineRegistry::with_builtins();
    let mut certified_upper = 0usize;
    let mut certified_lower = 0usize;
    for (name, src) in programs {
        let pts = qava_lang::compile(src, &BTreeMap::new()).unwrap();
        let oracle = VpfOracle::explore(&pts, 200_000).unwrap();
        let (truth_lo, truth_hi) = oracle.interval(100_000);
        for engine in registry.engines() {
            let req = AnalysisRequest::new(&pts, engine.direction());
            let Some(bound) = registry
                .run_engine(engine.name(), &req, BackendChoice::default())
                .unwrap()
                .bound()
            else {
                continue; // declining is allowed; certifying wrongly is not
            };
            match engine.direction() {
                Direction::Upper => {
                    certified_upper += 1;
                    assert!(
                        bound.to_f64() >= truth_lo - 1e-9,
                        "{name}/{}: upper bound {} below the truth {truth_lo}",
                        engine.name(),
                        bound.to_f64()
                    );
                }
                Direction::Lower => {
                    certified_lower += 1;
                    assert!(
                        bound.to_f64() <= truth_hi + 1e-9,
                        "{name}/{}: lower bound {} above the truth {truth_hi}",
                        engine.name(),
                        bound.to_f64()
                    );
                }
            }
        }
    }
    assert!(certified_upper >= 4, "dominance must not hold vacuously ({certified_upper})");
    assert!(certified_lower >= 1, "at least the coin flip admits a lower bound");
}

/// The abandoned-bucket merge itself (satellite: honest stats under
/// racing): winner statistics and loser statistics must partition the
/// total — nothing dropped, nothing counted twice.
#[test]
fn abandoned_bucket_merge_partitions_totals() {
    use qava_core::suite::runner::{EngineRun, RowReport};
    use qava_lp::LpStats;

    fn stats(solves: usize, pivots: usize) -> LpStats {
        LpStats { solves, pivots, ..LpStats::default() }
    }
    let mk_run = |winner: usize, lost: usize| EngineRun {
        engine: "hoeffding-linear",
        bound: Err("synthetic".to_string()),
        seconds: 0.0,
        lp: stats(winner, 10 * winner),
        abandoned: stats(lost, 10 * lost),
        raced: vec!["hoeffding-linear", "explinsyn"],
        fault: None,
    };
    let reports = vec![
        RowReport {
            row: 0,
            name: "A",
            label: "a".into(),
            previous: None,
            direction: Direction::Upper,
            runs: vec![mk_run(3, 2)],
        },
        RowReport {
            row: 1,
            name: "B",
            label: "b".into(),
            previous: None,
            direction: Direction::Upper,
            runs: vec![mk_run(5, 7)],
        },
    ];
    let certified = suite_lp_stats(&reports);
    let abandoned = suite_abandoned_lp_stats(&reports);
    assert_eq!(certified.solves, 8);
    assert_eq!(certified.pivots, 80);
    assert_eq!(abandoned.solves, 9);
    assert_eq!(abandoned.pivots, 90);
    // The partition property: certified + abandoned = all work done.
    assert_eq!(certified.solves + abandoned.solves, 17);
}

/// A loaded race on a shared workload: losers' sessions stop at LP
/// boundaries, and whatever they spent is banked as abandoned, never in
/// the winner's share.
#[test]
fn contested_race_banks_loser_work_as_abandoned() {
    let row = &table2()[0]; // M1DWalk: both lower engines certify
    let pts = row.compile();
    let registry = EngineRegistry::with_builtins();
    let req = AnalysisRequest::lower(&pts);
    let lineup = registry.applicable(&req);
    assert_eq!(lineup.len(), 2, "explowsyn and polylow race the lower direction");
    let outcome = race(&lineup, &req, BackendChoice::default());
    let winner_idx = outcome.winner.expect("a lower engine certifies M1DWalk");
    let loser_solves: usize = outcome
        .reports
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != winner_idx)
        .map(|(_, r)| r.lp.solves)
        .sum();
    assert_eq!(outcome.abandoned.solves, loser_solves, "abandoned = exactly the losers' work");
    let winner = &outcome.reports[winner_idx];
    // Winner's lp share never includes loser work (they're separate
    // sessions, so equality with its solo run is the strongest check).
    let solo = registry.run_engine(winner.engine, &req, BackendChoice::default()).unwrap();
    assert_eq!(winner.lp.solves, solo.lp.solves);
}
