//! Conformance-corpus **capture** harness (`#[ignore]` — run on demand).
//!
//! The LP conformance corpus (`crates/lp/tests/corpus/*.qlp`, replayed by
//! `crates/lp/tests/corpus.rs`) holds core-form LP instances harvested
//! from **real suite runs**: each file is exactly what an `LpBackend` saw
//! — the presolved, equilibrated standard-form system — together with
//! the dense-oracle verdict recorded at capture time. This test is the
//! capture tool. It is `#[ignore]`d because it *writes* the corpus; the
//! committed files are the source of truth and only change when this is
//! rerun deliberately:
//!
//! ```text
//! cargo test --release -p qava-core --test harvest_corpus -- --ignored
//! ```
//!
//! **Workflow when a field bug is found** (see ROADMAP "corpus capture
//! workflow"): wrap the failing workload's session with [`Capturing`]
//! just like `harvest()` does below, re-run the workload, pick the
//! offending instance out of the capture log (largest / most pivots /
//! last — whatever reproduces), give it a descriptive slug, and commit
//! the new `.qlp` file. Every backend — present and future — then
//! replays it forever.
//!
//! Selection policy here: for each named workload the **largest** system
//! and the **most pivot-hungry** system are kept (they are usually the
//! εmax-style knife-edge instances), deduplicated by shape. One coupon
//! instance is additionally re-emitted with a deliberately singular
//! warm-start basis — the warm-path rejection case.

use qava_core::hoeffding::{synthesize_reprsm_bound_in, BoundKind};
use qava_core::suite;
use qava_core::{explowsyn, hoeffding};
use qava_lp::{
    BackendChoice, CoreSolution, CscMatrix, DenseTableau, FaultKind, FaultPlan, LpBackend,
    LpError, LpSolver, LuSimplex,
};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::rc::Rc;

/// One captured core solve.
#[derive(Clone)]
struct Instance {
    costs: Vec<f64>,
    rows: Vec<Vec<(usize, f64)>>,
    b: Vec<f64>,
    pivots: usize,
}

impl Instance {
    fn m(&self) -> usize {
        self.b.len()
    }

    fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    fn matrix(&self) -> CscMatrix {
        CscMatrix::from_sparse_rows(self.rows.len(), self.costs.len(), &self.rows)
    }

    /// Shape fingerprint for dedup across the per-workload picks.
    fn shape(&self) -> (usize, usize, usize) {
        (self.m(), self.costs.len(), self.nnz())
    }
}

/// An [`LpBackend`] wrapper that records every core system it is asked
/// to solve before delegating to the real engine.
struct Capturing {
    inner: Box<dyn LpBackend>,
    log: Rc<RefCell<Vec<Instance>>>,
}

impl LpBackend for Capturing {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn supports_warm_start(&self) -> bool {
        self.inner.supports_warm_start()
    }

    fn solve_core(
        &self,
        costs: &[f64],
        a: &CscMatrix,
        b: &[f64],
        warm: Option<&[usize]>,
    ) -> Result<CoreSolution, LpError> {
        let out = self.inner.solve_core(costs, a, b, warm);
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); a.rows()];
        a.for_each(|r, c, v| rows[r].push((c, v)));
        self.log.borrow_mut().push(Instance {
            costs: costs.to_vec(),
            rows,
            b: b.to_vec(),
            pivots: out.as_ref().map(|s| s.pivots).unwrap_or(usize::MAX),
        });
        out
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../lp/tests/corpus")
}

/// Serializes an instance in the corpus format, stamping the
/// dense-oracle verdict; returns `None` when the oracle itself gives up
/// (nothing to pin against).
fn render(name: &str, origin: &str, inst: &Instance, warm: Option<&[usize]>) -> Option<String> {
    let a = inst.matrix();
    let oracle = DenseTableau.solve_core(&inst.costs, &a, &inst.b, None);
    let mut s = String::new();
    writeln!(s, "# qava LP conformance corpus v1 — replayed by crates/lp/tests/corpus.rs").unwrap();
    writeln!(s, "# Core form as the LpBackend saw it: presolved, equilibrated, b >= 0.").unwrap();
    writeln!(s, "name {name}").unwrap();
    writeln!(s, "origin {origin}").unwrap();
    writeln!(s, "m {} n {}", inst.m(), inst.costs.len()).unwrap();
    for (j, &c) in inst.costs.iter().enumerate() {
        if c != 0.0 {
            writeln!(s, "c {j} {c:.17e}").unwrap();
        }
    }
    for (i, &v) in inst.b.iter().enumerate() {
        if v != 0.0 {
            writeln!(s, "b {i} {v:.17e}").unwrap();
        }
    }
    for (i, row) in inst.rows.iter().enumerate() {
        for &(j, v) in row {
            writeln!(s, "a {i} {j} {v:.17e}").unwrap();
        }
    }
    if let Some(basis) = warm {
        let joined: Vec<String> = basis.iter().map(|j| j.to_string()).collect();
        writeln!(s, "warm {}", joined.join(" ")).unwrap();
    }
    match oracle {
        Ok(sol) => {
            let obj: f64 = inst.costs.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
            writeln!(s, "expect optimal").unwrap();
            writeln!(s, "objective {obj:.17e}").unwrap();
        }
        Err(LpError::Infeasible) => writeln!(s, "expect infeasible").unwrap(),
        Err(LpError::Unbounded) => writeln!(s, "expect unbounded").unwrap(),
        // No capture session runs with a cancellation flag; either way a
        // solve without a verdict has nothing worth harvesting.
        Err(LpError::PivotLimit | LpError::Cancelled) => return None,
    }
    Some(s)
}

/// Runs one named workload with a capturing lu session and returns the
/// instances worth keeping: the largest system and the most
/// pivot-hungry one.
fn harvest(run: impl FnOnce(&mut LpSolver)) -> Vec<Instance> {
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut solver = LpSolver::with_choice(BackendChoice::Lu);
    solver
        .register_backend(Box::new(Capturing { inner: Box::new(LuSimplex), log: Rc::clone(&log) }));
    run(&mut solver);
    let log = log.borrow();
    let mut picks: Vec<Instance> = Vec::new();
    let keep = |inst: Option<&Instance>, picks: &mut Vec<Instance>| {
        if let Some(inst) = inst {
            if picks.iter().all(|p| p.shape() != inst.shape()) {
                picks.push(inst.clone());
            }
        }
    };
    keep(log.iter().max_by_key(|i| (i.m(), i.nnz())), &mut picks);
    keep(
        log.iter().filter(|i| i.pivots != usize::MAX).max_by_key(|i| (i.pivots, i.nnz())),
        &mut picks,
    );
    // A mid-sized shape distinct from both of the above, for breadth:
    // the ε-probe ladders produce several structurally different systems
    // per synthesis, and the extremes alone usually share one shape.
    let mut shapes: Vec<(usize, usize, usize)> = log.iter().map(Instance::shape).collect();
    shapes.sort();
    shapes.dedup();
    if let Some(&mid) = shapes.get(shapes.len() / 2) {
        keep(log.iter().find(|i| i.shape() == mid), &mut picks);
    }
    picks
}

#[test]
#[ignore = "writes crates/lp/tests/corpus — run deliberately to (re)capture"]
fn harvest_conformance_corpus() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut written = 0usize;

    let mut emit = |slug: &str, origin: &str, inst: &Instance, warm: Option<&[usize]>| {
        if let Some(text) = render(slug, origin, inst, warm) {
            std::fs::write(dir.join(format!("{slug}.qlp")), text).unwrap();
            written += 1;
        }
    };

    // --- walk3d εmax (both parameterizations: the degenerate εmax
    // Hoeffding knife edge, and the one whose Dantzig trajectory visits
    // a transiently singular basis under FT).
    for (row_idx, tag) in [(0usize, "walk3d_emax_100"), (2, "walk3d_emax_300")] {
        let row = &suite::walk3d_rows()[row_idx];
        let pts = row.compile();
        let picks = harvest(|s| {
            synthesize_reprsm_bound_in(
                &pts,
                BoundKind::Hoeffding,
                hoeffding::DEFAULT_SER_ITERATIONS,
                s,
            )
            .unwrap();
        });
        let origin = format!("3DWalk {} Hoeffding εmax synthesis (suite Table 1)", row.label);
        for (k, inst) in picks.iter().enumerate() {
            emit(&format!("{tag}_{k}"), &origin, inst, None);
        }
    }

    // --- Coupon: mid-size dense-ish systems; the class whose near-tie
    // Dantzig pricing first exposed FT spike-recovery error.
    let row = &suite::coupon_rows()[0];
    let pts = row.compile();
    let picks = harvest(|s| {
        synthesize_reprsm_bound_in(&pts, BoundKind::Hoeffding, hoeffding::DEFAULT_SER_ITERATIONS, s)
            .unwrap();
    });
    let origin = format!("Coupon {} Hoeffding synthesis (suite Table 1)", row.label);
    for (k, inst) in picks.iter().enumerate() {
        emit(&format!("coupon_{k}"), &origin, inst, None);
    }
    // The singular-warm-basis case: the largest coupon system with every
    // basis slot pointing at column 0 — a structurally singular warm
    // basis every warm-capable backend must reject without changing the
    // verdict or the optimum.
    if let Some(inst) = picks.first() {
        let singular = vec![0usize; inst.m()];
        emit(
            "coupon_singular_warm",
            "Coupon Pr[T > 300] instance with a deliberately singular warm basis \
             (all slots column 0): warm rejection must not change the result",
            inst,
            Some(&singular),
        );
    }

    // --- Rdwalk: the µs-scale class the dense tableau owns.
    let row = &suite::rdwalk_rows()[0];
    let pts = row.compile();
    let picks = harvest(|s| {
        synthesize_reprsm_bound_in(&pts, BoundKind::Hoeffding, hoeffding::DEFAULT_SER_ITERATIONS, s)
            .unwrap();
    });
    let origin = format!("Rdwalk {} Hoeffding synthesis (suite Table 1)", row.label);
    if let Some(inst) = picks.first() {
        emit("rdwalk_0", &origin, inst, None);
    }

    // --- Ref p = 1e-7: the tiny-coefficient ExpLowSyn systems behind
    // the eta-drift bug (`crates/lp/tests/drift_regression.rs`).
    let row = &suite::refsearch_rows()[0];
    let pts = row.compile();
    let picks = harvest(|s| {
        explowsyn::synthesize_lower_bound_in(&pts, s).unwrap();
    });
    let origin = format!("Ref {} ExpLowSyn synthesis (suite Table 2)", row.label);
    for (k, inst) in picks.iter().enumerate() {
        emit(&format!("ref_p1e7_{k}"), &origin, inst, None);
    }

    // --- M1DWalk p = 1e-7: small lower-bound systems.
    let row = &suite::table2()[0];
    let pts = row.compile();
    let picks = harvest(|s| {
        explowsyn::synthesize_lower_bound_in(&pts, s).unwrap();
    });
    let origin = format!("{} {} ExpLowSyn synthesis (suite Table 2)", row.name, row.label);
    if let Some(inst) = picks.first() {
        emit("m1dwalk_0", &origin, inst, None);
    }

    assert!(written >= 9, "harvest produced only {written} corpus files");
    println!("harvest: wrote {written} corpus files to {}", dir.display());
}

/// Picks an ordered reoptimization chain out of a capture log: the
/// longest run of structurally identical systems (same shape), in the
/// order the sweep produced them, with immediate exact duplicates
/// collapsed. These are the solves `LpBackend::reoptimize_core` replays
/// from the previous member's final basis in a real `qava --sweep`.
fn chain_from_log(log: &[Instance], len: usize) -> Vec<Instance> {
    let mut shapes: Vec<(usize, usize, usize)> = log.iter().map(Instance::shape).collect();
    shapes.sort_unstable();
    shapes.dedup();
    let best = shapes
        .into_iter()
        .max_by_key(|&s| log.iter().filter(|i| i.shape() == s).count())
        .expect("empty capture log");
    let mut out: Vec<Instance> = Vec::new();
    for inst in log.iter().filter(|i| i.shape() == best) {
        let dup = out
            .last()
            .is_some_and(|p| p.costs == inst.costs && p.b == inst.b && p.rows == inst.rows);
        if !dup {
            out.push(inst.clone());
        }
        if out.len() == len {
            break;
        }
    }
    out
}

/// Harvests the **sweep reoptimization chains**: for each `qava --sweep`
/// family the ladder of structurally identical, value-perturbed core
/// systems that dual-simplex reoptimization walks from one warm basis.
/// `crates/lp/tests/corpus.rs::sweep_chain_reoptimization_matches_cold`
/// replays each chain through every reoptimize-capable backend and holds
/// the incremental objective to the cold one; the
/// `lp/kernel/sweep_*` benches race the same chains reopt-vs-cold.
#[test]
#[ignore = "writes crates/lp/tests/corpus — run deliberately to (re)capture"]
fn harvest_sweep_chains() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut written = 0usize;

    let families: [(&str, Vec<suite::Benchmark>, &str); 2] = [
        ("sweep_coupon", suite::coupon_rows(), "Coupon Pr[T > 100/300/500] Hoeffding sweep"),
        ("sweep_epsmax", suite::walk3d_rows(), "3DWalk εmax-ladder Hoeffding sweep"),
    ];
    for (slug, rows, what) in families {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut solver = LpSolver::with_choice(BackendChoice::Lu);
        solver.register_backend(Box::new(Capturing {
            inner: Box::new(LuSimplex),
            log: Rc::clone(&log),
        }));
        // One shared session across the whole family, exactly like
        // `qava_core::sweep::run_sweep` drives it.
        for row in &rows {
            let pts = row.compile();
            synthesize_reprsm_bound_in(
                &pts,
                BoundKind::Hoeffding,
                hoeffding::DEFAULT_SER_ITERATIONS,
                &mut solver,
            )
            .unwrap();
        }
        let log = log.borrow();
        let chain = chain_from_log(&log, 4);
        assert!(chain.len() >= 3, "{slug}: chain too short ({} instances)", chain.len());
        let origin = format!(
            "{what}: member of the dual-reoptimization chain replayed in order \
             by sweep_chain_reoptimization_matches_cold (suite Table 1)"
        );
        for (k, inst) in chain.iter().enumerate() {
            if let Some(text) = render(&format!("{slug}_{k:02}"), &origin, inst, None) {
                std::fs::write(dir.join(format!("{slug}_{k:02}.qlp")), text).unwrap();
                written += 1;
            }
        }
    }

    assert!(written >= 6, "sweep harvest produced only {written} corpus files");
    println!("sweep harvest: wrote {written} corpus files to {}", dir.display());
}

/// Captures the instances that *trigger the failover ladder*: a real
/// synthesis run with a forced `PivotLimit` injected on the nth backend
/// call. Because the injected fault replaces the result **after** the
/// real backend ran, the capture log still records the exact system the
/// failed rung saw — that is the instance the ladder then re-solves on
/// the next rung, and the one worth replaying through every backend
/// forever.
#[test]
#[ignore = "writes crates/lp/tests/corpus — run deliberately to (re)capture"]
fn harvest_failover_instances() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).unwrap();
    let mut written = 0usize;

    let row = &suite::coupon_rows()[0];
    let pts = row.compile();
    for (nth, slug) in [(1usize, "failover_trigger_first"), (7, "failover_trigger_mid")] {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut solver = LpSolver::with_choice(BackendChoice::Lu);
        solver.register_backend(Box::new(Capturing {
            inner: Box::new(LuSimplex),
            log: Rc::clone(&log),
        }));
        solver.install_fault_plan(FaultPlan::new(FaultKind::PivotLimit, nth));
        synthesize_reprsm_bound_in(
            &pts,
            BoundKind::Hoeffding,
            hoeffding::DEFAULT_SER_ITERATIONS,
            &mut solver,
        )
        .unwrap();
        assert!(solver.fault_fired(), "the forced PivotLimit never fired");
        assert!(solver.stats().failover_recoveries >= 1, "the ladder never rescued");
        // Before the one-shot plan fires, every backend call is a
        // capturing call, so the nth log entry is exactly the system
        // whose verdict the fault discarded.
        let log = log.borrow();
        let inst = &log[nth - 1];
        let origin = format!(
            "Coupon {} Hoeffding synthesis, backend call {nth} forced to PivotLimit: \
             the instance the failover ladder re-solved (suite Table 1)",
            row.label
        );
        if let Some(text) = render(slug, &origin, inst, None) {
            std::fs::write(dir.join(format!("{slug}.qlp")), text).unwrap();
            written += 1;
        }
    }

    assert_eq!(written, 2, "failover harvest produced only {written} corpus files");
    println!("failover harvest: wrote {written} corpus files to {}", dir.display());
}
