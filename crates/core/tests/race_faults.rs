//! Race-level fault tolerance: a panicking candidate, an expired
//! deadline, and cooperative cancellation must all degrade into ordinary
//! loser reports — never a poisoned pool, a missing report, or a bound
//! that differs from the same engine run alone.

use qava_core::engine::{
    race, AnalysisReport, AnalysisRequest, BoundEngine, Direction, EngineError, EngineRegistry,
};
use qava_lp::{BackendChoice, LpSolver};
use qava_pts::Pts;
use std::collections::BTreeMap;
use std::time::Duration;

fn race_pts() -> Pts {
    let src = r"
        x := 40; y := 0;
        while x <= 99 and y <= 99 invariant x <= 100 and y <= 101 {
            if prob(0.5) { x, y := x + 1, y + 2; } else { x := x + 1; }
        }
        assert x >= 100;
    ";
    qava_lang::compile(src, &BTreeMap::new()).unwrap()
}

/// An engine that panics partway through its run — the buggy-candidate
/// stand-in the race's panic boundary exists for.
struct Panicker;

impl BoundEngine for Panicker {
    fn name(&self) -> &'static str {
        "panicker"
    }
    fn direction(&self) -> Direction {
        Direction::Upper
    }
    fn run(&self, _req: &AnalysisRequest<'_>, _solver: &mut LpSolver) -> AnalysisReport {
        panic!("synthetic mid-run engine failure");
    }
}

#[test]
fn race_survives_a_panicking_candidate() {
    let pts = race_pts();
    let req = AnalysisRequest::upper(&pts);
    let reg = EngineRegistry::with_builtins();
    let mut lineup: Vec<&dyn BoundEngine> = vec![&Panicker];
    lineup.extend(reg.for_direction(Direction::Upper));
    let outcome = race(&lineup, &req, BackendChoice::default());

    // Every racer reports, in lineup order; the panicker is an ordinary
    // loser with the panic message and no LP stats.
    assert_eq!(outcome.reports.len(), lineup.len());
    let panicked = &outcome.reports[0];
    assert_eq!(panicked.engine, "panicker");
    match &panicked.outcome {
        Err(EngineError::Panicked(msg)) => {
            assert!(msg.contains("synthetic mid-run engine failure"), "payload: {msg}");
        }
        other => panic!("panicker must report Err(Panicked), got {other:?}"),
    }
    assert_eq!(panicked.lp.solves, 0, "a panicked run has no attributable LP work");

    // A healthy candidate still wins, with the same bound it reports
    // when run alone.
    let winner = outcome.winning_report().expect("healthy racers certify despite the panic");
    assert_ne!(winner.engine, "panicker");
    let alone = reg
        .run_engine(winner.engine, &req, BackendChoice::default())
        .unwrap()
        .bound()
        .unwrap();
    assert_eq!(winner.bound().unwrap().ln(), alone.ln());

    // The abandoned bucket is exactly the non-winners' LP work.
    let loser_solves: usize = outcome
        .reports
        .iter()
        .enumerate()
        .filter(|&(i, _)| Some(i) != outcome.winner)
        .map(|(_, r)| r.lp.solves)
        .sum();
    assert_eq!(outcome.abandoned.solves, loser_solves);
}

#[test]
fn expired_deadline_cancels_every_lp_backed_racer() {
    // Deadlines are enforced at LP-solve boundaries, so the lineup here
    // is the LP-backed engines (the convex-programming engine does its
    // work outside the LP session and only observes cooperative
    // cancellation, not the session deadline).
    let pts = race_pts();
    let req = AnalysisRequest::upper(&pts).deadline(Duration::ZERO);
    let reg = EngineRegistry::with_builtins();
    let lineup: Vec<&dyn BoundEngine> = ["hoeffding-linear", "azuma", "polyrsm-quadratic"]
        .iter()
        .map(|n| reg.engine(n).unwrap())
        .collect();
    let outcome = race(&lineup, &req, BackendChoice::default());
    assert!(outcome.winner.is_none(), "nothing certifies inside a zero budget");
    for report in &outcome.reports {
        assert!(
            report.cancelled(),
            "{}: an expired deadline must read as Cancelled, got {:?}",
            report.engine,
            report.outcome.as_ref().err()
        );
    }
}

#[test]
fn deadline_only_applies_to_the_budgeted_request() {
    let pts = race_pts();
    let reg = EngineRegistry::with_builtins();
    let engine = reg.engine("hoeffding-linear").unwrap();
    // One shared session, as `qava` single-file mode uses: a run under
    // an expired budget winds down with Cancelled …
    let mut solver = LpSolver::with_choice(BackendChoice::default());
    let strict = AnalysisRequest::upper(&pts).deadline(Duration::ZERO);
    let report = engine.run(&strict, &mut solver);
    assert!(report.cancelled(), "got {:?}", report.outcome.as_ref().err());
    // … and a follow-up request without one runs to certification on the
    // same session: the engine adapter cleared the session deadline on
    // its way out.
    let relaxed = AnalysisRequest::upper(&pts);
    let report = engine.run(&relaxed, &mut solver);
    assert!(report.bound().is_some(), "got {:?}", report.outcome.as_ref().err());
}
