//! `qava` — analyze a probabilistic program from the command line.
//!
//! ```text
//! qava <program.qava> [--upper] [--lower] [--hoeffding] [--azuma]
//!                     [--simulate N] [--symbolic] [--param name=value]...
//! qava --suite
//! ```
//!
//! With no mode flags, runs every applicable analysis. `--suite` runs
//! the paper's full Table 1/Table 2 benchmark suite through the
//! parallel driver ([`qava_core::suite::runner`]) and prints one line
//! per (row, algorithm) outcome. Exit code 0 on success, 1 on usage
//! errors, 2 on compile errors, 3 when a requested analysis fails.

use qava_core::explinsyn::synthesize_upper_bound_in;
use qava_core::explowsyn::synthesize_lower_bound_in;
use qava_core::hoeffding::{synthesize_reprsm_bound_in, BoundKind, DEFAULT_SER_ITERATIONS};
use qava_core::rsm::prove_almost_sure_termination_in;
use qava_lp::{BackendChoice, LpSolver};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "\
usage: qava <program.qava> [options]

modes (default: all applicable):
  --upper          complete exponential upper bound (ExpLinSyn, §5.2)
  --hoeffding      RepRSM + Hoeffding upper bound (§5.1)
  --azuma          RepRSM + Azuma baseline (POPL'17, for comparison)
  --lower          exponential lower bound (ExpLowSyn, §6); requires
                   almost-sure termination, which is certified first
  --quadratic      also try quadratic exponents (Remarks 3/5, Handelman)
  --simulate N     seeded Monte-Carlo estimate over N trials

output:
  --dump-pts       print the compiled transition system
  --symbolic       also print the synthesized exponential templates
  --param k=v      override a `param` declaration (repeatable)
  --seed S         Monte-Carlo seed (default 0)

solver:
  --lp-backend B   LP backend policy: auto (default; routes by size and
                   density — tiny models on the dense tableau, large
                   sparse systems on the Forrest–Tomlin LU simplex, the
                   rest on the sparse revised simplex), sparse, dense,
                   lu (LU + product-form eta file), or lu-ft (LU +
                   Forrest–Tomlin spike swaps) — applies to single-file
                   analyses and to --suite, which also prints
                   per-backend solve statistics

suite:
  --suite          run the paper's benchmark suite (Tables 1-2) through
                   the parallel driver instead of analyzing one file
";

struct Options {
    path: String,
    upper: bool,
    hoeffding: bool,
    azuma: bool,
    lower: bool,
    quadratic: bool,
    simulate: Option<usize>,
    symbolic: bool,
    dump_pts: bool,
    seed: u64,
    params: BTreeMap<String, f64>,
    lp_backend: BackendChoice,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        path: String::new(),
        upper: false,
        hoeffding: false,
        azuma: false,
        lower: false,
        quadratic: false,
        simulate: None,
        symbolic: false,
        dump_pts: false,
        seed: 0,
        params: BTreeMap::new(),
        lp_backend: BackendChoice::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--upper" => opts.upper = true,
            "--hoeffding" => opts.hoeffding = true,
            "--azuma" => opts.azuma = true,
            "--lower" => opts.lower = true,
            "--quadratic" => opts.quadratic = true,
            "--symbolic" => opts.symbolic = true,
            "--dump-pts" => opts.dump_pts = true,
            "--simulate" => {
                let n = it.next().ok_or("--simulate needs a trial count")?;
                opts.simulate =
                    Some(n.parse().map_err(|_| format!("bad trial count `{n}`"))?);
            }
            "--seed" => {
                let s = it.next().ok_or("--seed needs a value")?;
                opts.seed = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
            }
            "--lp-backend" => {
                let s =
                    it.next().ok_or("--lp-backend needs auto, sparse, dense, lu, or lu-ft")?;
                opts.lp_backend = s.parse()?;
            }
            "--param" => {
                let kv = it.next().ok_or("--param needs name=value")?;
                let (k, v) = kv.split_once('=').ok_or_else(|| {
                    format!("bad --param `{kv}` (expected name=value)")
                })?;
                let value: f64 =
                    v.parse().map_err(|_| format!("bad parameter value `{v}`"))?;
                opts.params.insert(k.to_string(), value);
            }
            "--help" | "-h" => return Err(String::new()),
            _ if a.starts_with('-') => return Err(format!("unknown flag `{a}`")),
            _ if opts.path.is_empty() => opts.path = a.clone(),
            _ => return Err(format!("unexpected argument `{a}`")),
        }
    }
    if opts.path.is_empty() {
        return Err("no program file given".to_string());
    }
    if !(opts.upper || opts.hoeffding || opts.azuma || opts.lower || opts.simulate.is_some()) {
        opts.upper = true;
        opts.hoeffding = true;
        opts.lower = true;
    }
    Ok(opts)
}

fn print_template(kind: &str, t: &qava_core::template::SolvedTemplate) {
    for (i, (loc, _, _)) in t.per_location.iter().enumerate() {
        println!("  {kind} template at {loc}: exp({})", t.exponent_string(i));
    }
}

/// Runs the full Table 1/2 suite through the parallel driver.
fn run_suite(backend: BackendChoice) -> ExitCode {
    use qava_core::suite::runner::{default_algorithms, run_rows_with, suite_lp_stats};
    use qava_core::suite::{table1, table2};
    let rows: Vec<_> = table1().into_iter().chain(table2()).collect();
    let reports = run_rows_with(&rows, |b| default_algorithms(b.direction).to_vec(), backend);
    let mut failures = 0usize;
    for report in &reports {
        for run in &report.runs {
            match &run.bound {
                Ok(b) => println!(
                    "{:<12} {:<24} {:<10} ln(bound) = {:>12.4}  ({:.2}s)",
                    report.name,
                    report.label,
                    run.algorithm.to_string(),
                    b.ln(),
                    run.seconds
                ),
                Err(e) => {
                    failures += 1;
                    println!(
                        "{:<12} {:<24} {:<10} failed: {e}",
                        report.name,
                        report.label,
                        run.algorithm.to_string()
                    );
                }
            }
        }
    }
    println!("{} rows, {} runs, {failures} failures", reports.len(), reports.iter().map(|r| r.runs.len()).sum::<usize>());
    // Per-backend solver statistics, merged over every task's session.
    print!("{}", suite_lp_stats(&reports));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--suite") {
        // --suite ignores the single-file options; only --lp-backend
        // applies.
        let backend = match BackendChoice::from_args(&args) {
            Ok(b) => b.unwrap_or_default(),
            Err(msg) => {
                eprintln!("error: {msg}\n");
                eprintln!("{USAGE}");
                return ExitCode::from(1);
            }
        };
        return run_suite(backend);
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };

    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{}`: {e}", opts.path);
            return ExitCode::from(1);
        }
    };
    let pts = match qava_lang::compile(&source, &opts.params) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{}: {} variables, {} live locations, {} transitions",
        opts.path,
        pts.num_vars(),
        pts.live_locations().count(),
        pts.transitions().len()
    );

    if opts.dump_pts {
        print!("{pts}");
    }

    let mut failures = 0u32;
    // One solver session for the whole invocation: every analysis below
    // shares its warm-start cache and contributes to one stats report.
    let mut solver = LpSolver::with_choice(opts.lp_backend);

    if opts.upper {
        match synthesize_upper_bound_in(&pts, &mut solver) {
            Ok(r) => {
                if r.floored {
                    println!("upper bound (§5.2, complete): ≈ 0 (objective floored)");
                } else {
                    println!("upper bound (§5.2, complete): {}", r.bound);
                }
                if opts.symbolic && !r.floored {
                    print_template("§5.2", &r.template);
                }
            }
            Err(e) => {
                println!("upper bound (§5.2, complete): failed — {e}");
                failures += 1;
            }
        }
    }
    for (flag, kind, label) in [
        (opts.hoeffding, BoundKind::Hoeffding, "§5.1, Hoeffding"),
        (opts.azuma, BoundKind::Azuma, "POPL'17, Azuma"),
    ] {
        if !flag {
            continue;
        }
        match synthesize_reprsm_bound_in(&pts, kind, DEFAULT_SER_ITERATIONS, &mut solver) {
            Ok(r) => {
                println!("upper bound ({label}): {} (ε = {:.4}, {} LPs)", r.bound, r.epsilon, r.lp_solves);
                if opts.symbolic {
                    print_template(label, &r.template);
                }
            }
            Err(e) => {
                println!("upper bound ({label}): failed — {e}");
                failures += 1;
            }
        }
    }
    if opts.lower {
        match prove_almost_sure_termination_in(&pts, &mut solver) {
            Ok(cert) => {
                println!(
                    "almost-sure termination: certified (expected steps ≤ {:.1})",
                    cert.initial_rank
                );
                match synthesize_lower_bound_in(&pts, &mut solver) {
                    Ok(r) => {
                        println!("lower bound (§6): {:.6}", r.bound.to_f64());
                        if opts.symbolic {
                            print_template("§6", &r.template);
                        }
                    }
                    Err(e) => {
                        println!("lower bound (§6): failed — {e}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                println!(
                    "lower bound (§6): skipped — cannot certify a.s. termination ({e})"
                );
                failures += 1;
            }
        }
    }
    if opts.quadratic {
        match qava_core::polyrsm::synthesize_quadratic_bound_in(
            &pts,
            BoundKind::Hoeffding,
            DEFAULT_SER_ITERATIONS,
            &mut solver,
        ) {
            Ok(r) => println!(
                "upper bound (Remark 3, quadratic RepRSM): {} (ε = {:.4}, {} LPs)",
                r.bound, r.epsilon, r.lp_solves
            ),
            Err(e) => {
                println!("upper bound (Remark 3, quadratic RepRSM): failed — {e}");
                failures += 1;
            }
        }
        match qava_core::polylow::synthesize_quadratic_lower_bound_in(&pts, &mut solver) {
            Ok(r) => println!(
                "lower bound (Remark 5, quadratic): {:.6} (needs a.s. termination)",
                r.bound.to_f64()
            ),
            Err(e) => {
                println!("lower bound (Remark 5, quadratic): failed — {e}");
                failures += 1;
            }
        }
    }
    if let Some(trials) = opts.simulate {
        let est = qava_sim::Simulator::new(opts.seed).estimate_violation(&pts, trials, 1_000_000);
        println!(
            "simulation: {:.6} over {} trials (99% CI ± {:.2e}, {} timeouts)",
            est.probability, est.trials, est.ci_half_width, est.timeouts
        );
    }

    let stats = solver.stats();
    if stats.solves > 0 {
        print!("{stats}");
    }

    if failures > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_modes_enabled() {
        let o = parse_args(&args(&["p.qava"])).unwrap();
        assert!(o.upper && o.hoeffding && o.lower);
        assert!(!o.azuma);
    }

    #[test]
    fn explicit_mode_disables_defaults() {
        let o = parse_args(&args(&["p.qava", "--upper"])).unwrap();
        assert!(o.upper && !o.hoeffding && !o.lower);
    }

    #[test]
    fn params_parse() {
        let o = parse_args(&args(&["p.qava", "--param", "n=3.5", "--param", "p=1e-7"])).unwrap();
        assert_eq!(o.params["n"], 3.5);
        assert_eq!(o.params["p"], 1e-7);
    }

    #[test]
    fn bad_flag_rejected() {
        assert!(parse_args(&args(&["p.qava", "--frobnicate"])).is_err());
    }

    #[test]
    fn missing_file_rejected() {
        assert!(parse_args(&args(&["--upper"])).is_err());
    }

    #[test]
    fn lp_backend_parses() {
        let o = parse_args(&args(&["p.qava", "--lp-backend", "sparse"])).unwrap();
        assert_eq!(o.lp_backend, BackendChoice::Sparse);
        let o = parse_args(&args(&["p.qava", "--lp-backend", "lu"])).unwrap();
        assert_eq!(o.lp_backend, BackendChoice::Lu);
        let o = parse_args(&args(&["p.qava", "--lp-backend", "lu-ft"])).unwrap();
        assert_eq!(o.lp_backend, BackendChoice::LuFt);
        let o = parse_args(&args(&["p.qava"])).unwrap();
        assert_eq!(o.lp_backend, BackendChoice::default());
        assert!(parse_args(&args(&["p.qava", "--lp-backend", "cuda"])).is_err());
        assert!(parse_args(&args(&["p.qava", "--lp-backend"])).is_err());
    }

    #[test]
    fn simulate_takes_count() {
        let o = parse_args(&args(&["p.qava", "--simulate", "1000", "--seed", "9"])).unwrap();
        assert_eq!(o.simulate, Some(1000));
        assert_eq!(o.seed, 9);
    }
}
