//! `qava` — analyze a probabilistic program from the command line.
//!
//! ```text
//! qava <program.qava> [--engines LIST] [--race] [--upper] [--lower]
//!                     [--deadline-ms N] [--simulate N] [--symbolic]
//!                     [--param name=value]...
//! qava --suite [--race | --chaos SEED] [--lp-backend B] [--json]
//!              [--connect SOCK]
//! qava --sweep [--lp-backend B]
//! qava <program.qava> --connect SOCK [engine flags]
//! ```
//!
//! Analyses run through the bound-engine registry
//! ([`qava_core::engine`]): every algorithm is a named engine
//! (`hoeffding-linear`, `azuma`, `explinsyn`, `polyrsm-quadratic`,
//! `explowsyn`, `polylow`), selected with `--engines` or the legacy mode
//! flags. With `--race` the selected engines of each bound direction
//! race in-process and the first certified bound wins; losers are
//! cancelled cooperatively and their LP statistics are reported in a
//! separate `abandoned` bucket.
//!
//! With no mode flags, runs the default engine lineup (`explinsyn`,
//! `hoeffding-linear`, `explowsyn`). `--suite` runs the paper's full
//! Table 1/Table 2 benchmark suite through the parallel driver
//! ([`qava_core::suite::runner`]) and prints one line per (row, engine)
//! outcome — one line per race with `--race`, naming the winner.
//! `--suite --chaos SEED` is the robustness gate: it replays the suite
//! with one deterministic recoverable solver fault injected per task and
//! fails loudly unless every row still certifies the fault-free bound.
//! `--sweep` walks the suite's parametric families (Coupon, 3DWalk, Ref)
//! through the sweep driver ([`qava_core::sweep`]): one shared
//! reoptimizing solver session per family, each point cross-checked
//! against a fresh cold solve, emitting a certified bound-vs-parameter
//! curve with per-point reopt-vs-cold statistics in the footer.
//!
//! `--connect SOCK` routes the analysis through a resident `qavad`
//! daemon (see the `qavad` crate) instead of solving in-process: the
//! daemon reuses compiled programs and a persistent warm-start basis
//! cache across requests and restarts. `--suite --connect` drives the
//! whole suite through the daemon and prints the identical report;
//! `--suite --json` emits the machine-readable suite document
//! ([`qavad::protocol::suite_json`]) that the daemon conformance tests
//! diff against in-process results.
//! Exit code 0 on success, 1 on usage errors, 2 on compile errors, 3
//! when a requested analysis fails.

use qava_core::engine::{
    race, AnalysisRequest, BoundEngine, Certificate, Direction, EngineRegistry,
};
use qava_core::rsm::prove_almost_sure_termination_in;
use qava_core::suite::runner::suite_abandoned_lp_stats;
use qava_lp::{BackendChoice, LpSolver, LpStats};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: qava <program.qava> [options]

engines (default: explinsyn + hoeffding-linear + explowsyn):
  --engines LIST   comma-separated bound engines from the registry:
                   hoeffding-linear, azuma, explinsyn, polyrsm-quadratic
                   (upper); explowsyn, polylow (lower)
  --race           race the selected engines of each direction in
                   process: first certified bound wins, losers are
                   cancelled at LP-solve boundaries and their solver
                   statistics land in a separate `abandoned` bucket

legacy mode flags (shorthands for --engines):
  --upper          complete exponential upper bound (ExpLinSyn, §5.2)
  --hoeffding      RepRSM + Hoeffding upper bound (§5.1)
  --azuma          RepRSM + Azuma baseline (POPL'17, for comparison)
  --lower          exponential lower bound (ExpLowSyn, §6); requires
                   almost-sure termination, which is certified first
  --quadratic      also try quadratic exponents (Remarks 3/5, Handelman)

other analyses and output:
  --deadline-ms N  wall-clock budget per engine run, enforced at
                   LP-solve boundaries: an expired run winds down as
                   cancelled instead of blocking the invocation
  --simulate N     seeded Monte-Carlo estimate over N trials
  --dump-pts       print the compiled transition system
  --symbolic       also print the synthesized exponential templates
  --param k=v      override a `param` declaration (repeatable)
  --seed S         Monte-Carlo seed (default 0)

solver:
  --lp-backend B   LP backend policy: auto (default; routes by size and
                   density — tiny models on the dense tableau, large
                   sparse systems on the Forrest–Tomlin LU simplex, the
                   rest on the sparse revised simplex), sparse, dense,
                   lu (LU + product-form eta file), lu-ft (LU +
                   Forrest–Tomlin spike swaps), or lu-bg (LU +
                   Bartels–Golub row interchanges) — applies to
                   single-file analyses and to --suite, which also
                   prints per-backend solve statistics

daemon:
  --connect SOCK   send the analysis to a resident qavad daemon on the
                   given Unix socket instead of solving in-process; the
                   daemon shares compiled programs and a persistent
                   warm-start basis cache across requests (with --suite:
                   drive every row through the daemon; local-only flags
                   --dump-pts/--simulate/--symbolic do not apply)

suite:
  --suite          run the paper's benchmark suite (Tables 1-2) through
                   the parallel driver instead of analyzing one file
                   (honors --race, --chaos, --lp-backend, --json and
                   --connect)
  --json           with --suite: print the machine-readable suite
                   document (rows, failures, per-backend LP statistics,
                   kernel provenance) instead of the human report
  --chaos SEED     with --suite: replay the suite twice — fault-free,
                   then with one seeded recoverable solver fault per
                   (row, engine) task — and fail unless every row still
                   certifies a bound within 1e-7 of the fault-free value
  --sweep          walk the suite's parametric families (Coupon
                   Pr[T > n], the 3DWalk εmax ladder, the Ref p ladder)
                   through the sweep driver: points run in order inside
                   one shared solver session with dual-simplex
                   reoptimization and template seeding between
                   neighbors, every point is cross-checked against a
                   fresh cold solve (falling back to the cold bound past
                   a relative 1e-7), and the footer reports per-point
                   reopt-vs-cold statistics (honors --lp-backend; not
                   combinable with --race or --chaos)
";

struct Options {
    path: String,
    engines: Vec<String>,
    race: bool,
    upper: bool,
    hoeffding: bool,
    azuma: bool,
    lower: bool,
    quadratic: bool,
    simulate: Option<usize>,
    symbolic: bool,
    dump_pts: bool,
    seed: u64,
    deadline_ms: Option<u64>,
    params: BTreeMap<String, f64>,
    lp_backend: BackendChoice,
    connect: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        path: String::new(),
        engines: Vec::new(),
        race: false,
        upper: false,
        hoeffding: false,
        azuma: false,
        lower: false,
        quadratic: false,
        simulate: None,
        symbolic: false,
        dump_pts: false,
        seed: 0,
        deadline_ms: None,
        params: BTreeMap::new(),
        lp_backend: BackendChoice::default(),
        connect: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--upper" => opts.upper = true,
            "--hoeffding" => opts.hoeffding = true,
            "--azuma" => opts.azuma = true,
            "--lower" => opts.lower = true,
            "--quadratic" => opts.quadratic = true,
            "--race" => opts.race = true,
            "--symbolic" => opts.symbolic = true,
            "--dump-pts" => opts.dump_pts = true,
            "--engines" => {
                let list = it.next().ok_or("--engines needs a comma-separated list")?;
                opts.engines.extend(list.split(',').map(|s| s.trim().to_string()));
            }
            "--simulate" => {
                let n = it.next().ok_or("--simulate needs a trial count")?;
                opts.simulate =
                    Some(n.parse().map_err(|_| format!("bad trial count `{n}`"))?);
            }
            "--seed" => {
                let s = it.next().ok_or("--seed needs a value")?;
                opts.seed = s.parse().map_err(|_| format!("bad seed `{s}`"))?;
            }
            "--deadline-ms" => {
                let s = it.next().ok_or("--deadline-ms needs a millisecond count")?;
                opts.deadline_ms =
                    Some(s.parse().map_err(|_| format!("bad deadline `{s}`"))?);
            }
            "--lp-backend" => {
                let s = it
                    .next()
                    .ok_or("--lp-backend needs auto, sparse, dense, lu, lu-ft, or lu-bg")?;
                opts.lp_backend = s.parse()?;
            }
            "--connect" => {
                let sock = it.next().ok_or("--connect needs a socket path")?;
                opts.connect = Some(sock.clone());
            }
            "--param" => {
                let kv = it.next().ok_or("--param needs name=value")?;
                let (k, v) = kv.split_once('=').ok_or_else(|| {
                    format!("bad --param `{kv}` (expected name=value)")
                })?;
                let value: f64 =
                    v.parse().map_err(|_| format!("bad parameter value `{v}`"))?;
                opts.params.insert(k.to_string(), value);
            }
            "--help" | "-h" => return Err(String::new()),
            _ if a.starts_with('-') => return Err(format!("unknown flag `{a}`")),
            _ if opts.path.is_empty() => opts.path = a.clone(),
            _ => return Err(format!("unexpected argument `{a}`")),
        }
    }
    if opts.path.is_empty() {
        return Err("no program file given".to_string());
    }
    Ok(opts)
}

/// Resolves the engine lineup: `--engines` wins, then the legacy mode
/// flags, then the default lineup. Names are validated against the
/// registry.
fn engine_lineup(opts: &Options, registry: &EngineRegistry) -> Result<Vec<String>, String> {
    let names: Vec<String> = if !opts.engines.is_empty() {
        opts.engines.clone()
    } else {
        let mut names = Vec::new();
        // `--quadratic` is additive ("also try quadratic exponents"), so
        // it deliberately does not suppress the default lineup.
        let any_flag = opts.upper
            || opts.hoeffding
            || opts.azuma
            || opts.lower
            || opts.simulate.is_some();
        if opts.upper || !any_flag {
            names.push("explinsyn");
        }
        if opts.hoeffding || !any_flag {
            names.push("hoeffding-linear");
        }
        if opts.azuma {
            names.push("azuma");
        }
        if opts.quadratic {
            names.push("polyrsm-quadratic");
        }
        if opts.lower || !any_flag {
            names.push("explowsyn");
        }
        if opts.quadratic {
            names.push("polylow");
        }
        names.into_iter().map(String::from).collect()
    };
    for name in &names {
        if registry.engine(name).is_none() {
            return Err(format!(
                "unknown engine `{name}` (registered: {})",
                registry.names().join(", ")
            ));
        }
    }
    Ok(names)
}

fn print_template(kind: &str, t: &qava_core::template::SolvedTemplate) {
    for (i, (loc, _, _)) in t.per_location.iter().enumerate() {
        println!("  {kind} template at {loc}: exp({})", t.exponent_string(i));
    }
}

fn print_stats_footer(certified: &LpStats, abandoned: &LpStats) {
    print!("{certified}");
    if abandoned.solves > 0 {
        print!("lp[abandoned]: {}", format_abandoned(abandoned));
    }
}

/// One-line summary of the abandoned bucket (cancelled racers). The
/// health counters are included so a watchdog restart or Bland retry
/// inside a cancelled racer is still visible — the certified footer
/// above deliberately excludes this bucket.
fn format_abandoned(lp: &LpStats) -> String {
    format!(
        "{} solves, {} pivots, {:.3}s, {} watchdog restarts, {} bland retries \
         (cancelled racers; excluded from the totals above)\n",
        lp.solves, lp.pivots, lp.wall_seconds, lp.watchdog_restarts, lp.bland_retries
    )
}

/// Runs the full Table 1/2 suite — in-process through the parallel
/// driver, or through a resident `qavad` daemon with `--connect`. Both
/// paths produce the same [`qava_core::suite::runner::RowReport`]s and
/// print through the same code below, so their outputs are directly
/// diffable.
fn run_suite(
    backend: BackendChoice,
    racing: bool,
    json: bool,
    connect: Option<&str>,
) -> ExitCode {
    use qava_core::suite::runner::{
        default_engines, race_rows_with, run_rows_with, suite_lp_stats,
    };
    use qava_core::suite::{table1, table2};
    let rows: Vec<_> = table1().into_iter().chain(table2()).collect();
    let reports = match connect {
        Some(sock) => {
            // Send our backend policy explicitly so `--lp-backend` means
            // the same thing on both paths regardless of how the daemon
            // was started.
            match qavad::client::run_suite_via_daemon(
                std::path::Path::new(sock),
                &rows,
                racing,
                Some(&backend.to_string()),
            ) {
                Ok(reports) => reports,
                Err(e) => {
                    eprintln!("error: daemon suite failed: {e}");
                    return ExitCode::from(3);
                }
            }
        }
        None if racing => race_rows_with(&rows, backend),
        None => run_rows_with(&rows, |b| default_engines(b.direction).to_vec(), backend),
    };
    if json {
        println!(
            "{}",
            qavad::protocol::suite_json(&reports, racing, &backend.to_string()).render()
        );
        let failures =
            reports.iter().flat_map(|r| &r.runs).filter(|run| run.bound.is_err()).count();
        return if failures == 0 { ExitCode::SUCCESS } else { ExitCode::from(3) };
    }
    let mut failures = 0usize;
    for report in &reports {
        for run in &report.runs {
            match &run.bound {
                Ok(b) => {
                    let suffix = if run.raced.is_empty() {
                        String::new()
                    } else {
                        let losers: Vec<_> =
                            run.raced.iter().filter(|&&n| n != run.engine).copied().collect();
                        if losers.is_empty() {
                            "  [raced unopposed]".to_string()
                        } else {
                            format!(
                                "  [won over {}; abandoned {} solves / {} pivots]",
                                losers.join(", "),
                                run.abandoned.solves,
                                run.abandoned.pivots,
                            )
                        }
                    };
                    println!(
                        "{:<12} {:<24} {:<17} ln(bound) = {:>12.4}  ({:.2}s){suffix}",
                        report.name, report.label, run.engine, b.ln(), run.seconds
                    );
                }
                Err(e) => {
                    failures += 1;
                    // A failed race has no winner to crow about; name the
                    // lineup without claiming anything was "won over".
                    let suffix = if run.raced.is_empty() {
                        String::new()
                    } else {
                        format!(
                            "  [race of {}; {} solves / {} pivots spent]",
                            run.raced.join(", "),
                            run.abandoned.solves,
                            run.abandoned.pivots,
                        )
                    };
                    println!(
                        "{:<12} {:<24} {:<17} failed: {e}{suffix}",
                        report.name, report.label, run.engine
                    );
                }
            }
        }
    }
    println!(
        "{} rows, {} runs, {failures} failures",
        reports.len(),
        reports.iter().map(|r| r.runs.len()).sum::<usize>()
    );
    // Per-backend solver statistics: certified work only, with the
    // cancelled racers' share reported separately so nothing is counted
    // twice.
    print_stats_footer(&suite_lp_stats(&reports), &suite_abandoned_lp_stats(&reports));
    ExitCode::SUCCESS
}

/// The certified bound-vs-parameter curves behind `qava --sweep`: every
/// parametric family of the suite, each point reoptimized from its
/// neighbor's basis/template and cross-checked against a fresh cold
/// solve (see [`qava_core::sweep`]).
fn run_sweep_suite(backend: BackendChoice) -> ExitCode {
    let reports = qava_core::suite::runner::sweep_families_with(backend, true);
    let mut failures = 0usize;
    let mut points = 0usize;
    let mut fallbacks = 0usize;
    let mut attempts = 0usize;
    let mut successes = 0usize;
    let mut max_drift = 0.0f64;
    let mut certified = LpStats::default();
    for report in &reports {
        for p in &report.points {
            points += 1;
            // Reoptimization counters of the *sweep-session* attempt:
            // after a cold fallback they live in the abandoned bucket.
            let (att, hits) = (
                p.lp.reopt_attempts + p.abandoned.reopt_attempts,
                p.lp.reopt_successes + p.abandoned.reopt_successes,
            );
            attempts += att;
            successes += hits;
            fallbacks += usize::from(p.cold_fallback);
            certified.merge(&p.lp);
            let mut tags = vec![format!("reopt {hits}/{att}")];
            if p.seeded {
                tags.push("seeded".to_string());
            }
            if p.cold_fallback {
                tags.push("cold fallback".to_string());
            }
            if let Some(d) = p.drift {
                max_drift = max_drift.max(d);
                tags.push(format!("cold Δ {d:.1e}"));
            }
            let suffix = format!("  [{}]", tags.join(", "));
            match &p.bound {
                Ok(b) => println!(
                    "{:<12} {:<24} {:<17} ln(bound) = {:>12.4}  ({:.2}s){suffix}",
                    p.name,
                    p.label,
                    p.engine,
                    b.ln(),
                    p.seconds
                ),
                Err(e) => {
                    failures += 1;
                    println!("{:<12} {:<24} {:<17} failed: {e}{suffix}", p.name, p.label, p.engine);
                }
            }
        }
    }
    println!(
        "sweep: {} families, {points} points, {failures} failures; \
         {successes}/{attempts} dual reopts succeeded, {fallbacks} cold fallbacks, \
         max sweep-vs-cold drift {max_drift:.2e}",
        reports.len()
    );
    // The certified footer counts only the work behind the reported
    // bounds; cold cross-checks and discarded sweep attempts stay out.
    print_stats_footer(&certified, &LpStats::default());
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

/// The robustness gate behind `--suite --chaos SEED`: replay the suite
/// fault-free, then again with one seeded recoverable fault injected
/// into every (row, engine) task's solver session, and require every
/// row to still certify a bound within 1e-7 of the fault-free value.
fn run_chaos_suite(backend: BackendChoice, seed: u64) -> ExitCode {
    use qava_core::suite::runner::{
        default_engines, run_rows_chaos, run_rows_with, suite_lp_stats,
    };
    use qava_core::suite::{table1, table2};
    let rows: Vec<_> = table1().into_iter().chain(table2()).collect();
    let engines = |b: &qava_core::suite::Benchmark| default_engines(b.direction).to_vec();
    let clean = run_rows_with(&rows, engines, backend);
    let chaotic = run_rows_chaos(&rows, engines, backend, seed);

    let tol = |reference: f64| 1e-7 * (1.0 + reference.abs());
    let mut certified_rows = 0usize;
    let mut faults_fired = 0usize;
    let mut divergences = 0usize;
    let mut uncertified = 0usize;
    let mut max_divergence = 0.0f64;
    for (c, f) in clean.iter().zip(&chaotic) {
        let mut row_ok = true;
        for (cr, fr) in c.runs.iter().zip(&f.runs) {
            let plan = fr.fault.as_deref().unwrap_or("no fault fired");
            faults_fired += usize::from(fr.fault.is_some());
            match (&cr.bound, &fr.bound) {
                (Ok(clean_bound), Ok(chaos_bound)) => {
                    let (lc, lf) = (clean_bound.ln(), chaos_bound.ln());
                    let delta = (lf - lc).abs();
                    max_divergence = max_divergence.max(delta);
                    if delta > tol(lc) {
                        row_ok = false;
                        divergences += 1;
                        println!(
                            "{:<12} {:<24} {:<17} DIVERGED under {plan}: \
                             ln(bound) {lf:.10} vs fault-free {lc:.10}",
                            c.name, c.label, fr.engine
                        );
                    }
                }
                (Ok(_), Err(e)) => {
                    row_ok = false;
                    uncertified += 1;
                    println!(
                        "{:<12} {:<24} {:<17} LOST CERTIFICATION under {plan}: {e}",
                        c.name, c.label, fr.engine
                    );
                }
                // A row the fault-free suite cannot certify is outside
                // the chaos contract; nothing to compare.
                (Err(_), _) => {}
            }
        }
        certified_rows += usize::from(row_ok);
    }
    println!(
        "chaos: {certified_rows}/{} rows certified under seed {seed} \
         ({faults_fired} faults fired, max ln-bound divergence {max_divergence:.2e})",
        rows.len()
    );
    print_stats_footer(&suite_lp_stats(&chaotic), &LpStats::default());
    if divergences == 0 && uncertified == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}

/// Extracts `--connect SOCK` from a raw `--suite` argument list.
fn connect_from_args(args: &[String]) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == "--connect") {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| "--connect needs a socket path".to_string()),
    }
}

/// Extracts `--chaos SEED` from a raw `--suite` argument list.
fn chaos_from_args(args: &[String]) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == "--chaos") {
        None => Ok(None),
        Some(i) => {
            let seed = args.get(i + 1).ok_or("--chaos needs a seed")?;
            seed.parse().map(Some).map_err(|_| format!("bad chaos seed `{seed}`"))
        }
    }
}

/// Routes one file's analysis through a resident `qavad` daemon. The
/// daemon compiles the source (reusing its compile-once store), runs the
/// requested lineup with this invocation's backend policy and deadline,
/// and replies with per-run bounds and LP statistics; compile errors and
/// rejected requests come back as request errors.
fn run_connected_file(socket: &str, source: &str, opts: &Options) -> ExitCode {
    let registry = EngineRegistry::with_builtins();
    let lineup = match engine_lineup(opts, &registry) {
        Ok(l) => l,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };
    let mut client = match qavad::Client::connect(std::path::Path::new(socket)) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    if let Err(e) = client.hello() {
        eprintln!("error: {e}");
        return ExitCode::from(1);
    }
    let spec = qavad::client::AnalyzeSpec {
        id: 0,
        source,
        params: &opts.params,
        engines: lineup,
        race: opts.race,
        deadline_ms: opts.deadline_ms,
        invariant_iters: 0,
        lp_backend: Some(opts.lp_backend.to_string()),
    };
    let response = match client.analyze(&spec) {
        Ok(response) => response,
        Err(e) => {
            eprintln!("error: {e}");
            // A compile failure reported by the daemon keeps the local
            // compile-error exit code; everything else is usage/transport.
            return ExitCode::from(if e.starts_with("compile error") { 2 } else { 1 });
        }
    };
    let mut failures = 0usize;
    let mut certified = LpStats::default();
    let mut abandoned = LpStats::default();
    for run in &response.runs {
        certified.merge(&run.lp);
        abandoned.merge(&run.abandoned);
        let raced = if run.raced.is_empty() {
            String::new()
        } else {
            format!("  [raced {}]", run.raced.join(", "))
        };
        match &run.bound {
            Ok(b) => println!(
                "{} (daemon): ln(bound) = {:.4}  ({:.2}s){raced}",
                run.engine,
                b.ln(),
                run.seconds
            ),
            Err(e) => {
                failures += 1;
                println!("{} (daemon): failed — {e}{raced}", run.engine);
            }
        }
    }
    if certified.solves > 0 || abandoned.solves > 0 {
        print_stats_footer(&certified, &abandoned);
    }
    if failures > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints one engine report line (plus template with `--symbolic`).
fn print_report(report: &qava_core::engine::AnalysisReport, symbolic: bool) -> bool {
    let dir = match report.direction {
        Direction::Upper => "upper",
        Direction::Lower => "lower",
    };
    match &report.outcome {
        Ok(c) => {
            // A floored objective means "essentially zero", not the
            // printed constant — and its template is the solver floor's,
            // not a meaningful certificate.
            let floored =
                c.details.iter().any(|&(k, v)| k == "floored" && v != 0.0);
            let details: Vec<String> = c
                .details
                .iter()
                .filter(|(k, _)| *k != "floored")
                .map(|(k, v)| {
                    if (v.fract() == 0.0 && v.abs() < 1e9) || *v == 0.0 {
                        format!("{k} = {v}")
                    } else {
                        format!("{k} = {v:.4}")
                    }
                })
                .collect();
            let suffix = if details.is_empty() {
                String::new()
            } else {
                format!(" ({})", details.join(", "))
            };
            if floored {
                println!("{dir} bound ({}): ≈ 0 (objective floored){suffix}", report.engine);
            } else {
                println!("{dir} bound ({}): {}{suffix}", report.engine, c.bound);
                if symbolic {
                    if let Certificate::Template(t) = &c.certificate {
                        print_template(report.engine, t);
                    }
                }
            }
            true
        }
        Err(e) => {
            println!("{dir} bound ({}): failed — {e}", report.engine);
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--suite" || a == "--sweep") {
        // --suite/--sweep ignore the single-file options; only
        // --lp-backend, --race and --chaos apply.
        let backend = match BackendChoice::from_args(&args) {
            Ok(b) => b.unwrap_or_default(),
            Err(msg) => {
                eprintln!("error: {msg}\n");
                eprintln!("{USAGE}");
                return ExitCode::from(1);
            }
        };
        let chaos = match chaos_from_args(&args) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("error: {msg}\n");
                eprintln!("{USAGE}");
                return ExitCode::from(1);
            }
        };
        let connect = match connect_from_args(&args) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("error: {msg}\n");
                eprintln!("{USAGE}");
                return ExitCode::from(1);
            }
        };
        if args.iter().any(|a| a == "--sweep") {
            if chaos.is_some() || args.iter().any(|a| a == "--race") || connect.is_some() {
                eprintln!(
                    "error: --sweep runs the sweep driver alone; drop --race/--chaos/--connect\n"
                );
                eprintln!("{USAGE}");
                return ExitCode::from(1);
            }
            return run_sweep_suite(backend);
        }
        if let Some(seed) = chaos {
            if args.iter().any(|a| a == "--race") || connect.is_some() {
                eprintln!("error: --chaos replays the sequential driver; drop --race/--connect\n");
                eprintln!("{USAGE}");
                return ExitCode::from(1);
            }
            return run_chaos_suite(backend, seed);
        }
        return run_suite(
            backend,
            args.iter().any(|a| a == "--race"),
            args.iter().any(|a| a == "--json"),
            connect.as_deref(),
        );
    }
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };

    let source = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read `{}`: {e}", opts.path);
            return ExitCode::from(1);
        }
    };
    if let Some(sock) = opts.connect.clone() {
        if opts.dump_pts || opts.symbolic || opts.simulate.is_some() {
            eprintln!(
                "error: --connect runs on the daemon; drop --dump-pts/--symbolic/--simulate\n"
            );
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
        return run_connected_file(&sock, &source, &opts);
    }
    let pts = match qava_lang::compile(&source, &opts.params) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{}: {} variables, {} live locations, {} transitions",
        opts.path,
        pts.num_vars(),
        pts.live_locations().count(),
        pts.transitions().len()
    );

    if opts.dump_pts {
        print!("{pts}");
    }

    let registry = EngineRegistry::with_builtins();
    let lineup = match engine_lineup(&opts, &registry) {
        Ok(l) => l,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{USAGE}");
            return ExitCode::from(1);
        }
    };

    let mut failures = 0u32;
    // One solver session for the whole invocation: every sequential
    // analysis below shares its warm-start cache and contributes to one
    // stats report (racers hold private sessions; their certified share
    // is folded back in).
    let mut solver = LpSolver::with_choice(opts.lp_backend);
    let mut abandoned = LpStats::default();

    // The lower-bound engines are sound only under almost-sure
    // termination: certify it once, up front, if any are requested.
    let wants_lower =
        lineup.iter().any(|n| registry.engine(n).is_some_and(|e| e.direction() == Direction::Lower));
    let lower_ok = if wants_lower {
        match prove_almost_sure_termination_in(&pts, &mut solver) {
            Ok(cert) => {
                println!(
                    "almost-sure termination: certified (expected steps ≤ {:.1})",
                    cert.initial_rank
                );
                true
            }
            Err(e) => {
                println!("lower bounds: skipped — cannot certify a.s. termination ({e})");
                failures += 1;
                false
            }
        }
    } else {
        false
    };

    for direction in [Direction::Upper, Direction::Lower] {
        let group: Vec<&dyn BoundEngine> = lineup
            .iter()
            .filter_map(|n| registry.engine(n))
            .filter(|e| e.direction() == direction)
            .collect();
        if group.is_empty() || (direction == Direction::Lower && !lower_ok) {
            continue;
        }
        let mut req = AnalysisRequest::new(&pts, direction);
        if let Some(ms) = opts.deadline_ms {
            req = req.deadline(Duration::from_millis(ms));
        }
        if opts.race && group.len() > 1 {
            let outcome = race(&group, &req, opts.lp_backend);
            abandoned.merge(&outcome.abandoned);
            match outcome.winning_report() {
                Some(winner) => {
                    let losers: Vec<_> = outcome
                        .reports
                        .iter()
                        .filter(|r| r.engine != winner.engine)
                        .map(|r| r.engine)
                        .collect();
                    println!(
                        "race ({direction}): {} won over {}",
                        winner.engine,
                        if losers.is_empty() { "nobody".to_string() } else { losers.join(", ") }
                    );
                    print_report(winner, opts.symbolic);
                    solver.merge_stats(&winner.lp);
                }
                None => {
                    println!("race ({direction}): no engine certified a bound");
                    for report in &outcome.reports {
                        print_report(report, false);
                    }
                    failures += 1;
                }
            }
        } else {
            for engine in group {
                let report = engine.run(&req, &mut solver);
                if !print_report(&report, opts.symbolic) {
                    failures += 1;
                }
            }
        }
    }

    if let Some(trials) = opts.simulate {
        let est = qava_sim::Simulator::new(opts.seed).estimate_violation(&pts, trials, 1_000_000);
        println!(
            "simulation: {:.6} over {} trials (99% CI ± {:.2e}, {} timeouts)",
            est.probability, est.trials, est.ci_half_width, est.timeouts
        );
    }

    // Abandoned-only work (e.g. a race where nothing certified) still
    // prints a footer: spent LP work must never be invisible.
    let stats = solver.stats();
    if stats.solves > 0 || abandoned.solves > 0 {
        print_stats_footer(stats, &abandoned);
    }

    if failures > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn lineup(list: &[&str]) -> Vec<String> {
        let opts = parse_args(&args(list)).unwrap();
        engine_lineup(&opts, &EngineRegistry::with_builtins()).unwrap()
    }

    #[test]
    fn default_modes_enabled() {
        assert_eq!(lineup(&["p.qava"]), vec!["explinsyn", "hoeffding-linear", "explowsyn"]);
    }

    #[test]
    fn explicit_mode_disables_defaults() {
        assert_eq!(lineup(&["p.qava", "--upper"]), vec!["explinsyn"]);
        assert_eq!(lineup(&["p.qava", "--azuma"]), vec!["azuma"]);
    }

    #[test]
    fn quadratic_is_additive() {
        // `--quadratic` "also" tries quadratic exponents: the default
        // lineup keeps running alongside the Handelman engines.
        assert_eq!(
            lineup(&["p.qava", "--quadratic"]),
            vec!["explinsyn", "hoeffding-linear", "polyrsm-quadratic", "explowsyn", "polylow"]
        );
        assert_eq!(
            lineup(&["p.qava", "--upper", "--quadratic"]),
            vec!["explinsyn", "polyrsm-quadratic", "polylow"]
        );
    }

    #[test]
    fn engines_flag_overrides_modes() {
        assert_eq!(
            lineup(&["p.qava", "--upper", "--engines", "azuma,polylow"]),
            vec!["azuma", "polylow"]
        );
    }

    #[test]
    fn unknown_engine_rejected() {
        let opts = parse_args(&args(&["p.qava", "--engines", "simplex-prayer"])).unwrap();
        let err = engine_lineup(&opts, &EngineRegistry::with_builtins()).unwrap_err();
        assert!(err.contains("unknown engine `simplex-prayer`"));
        assert!(err.contains("hoeffding-linear"), "message lists the registry: {err}");
    }

    #[test]
    fn race_flag_parses() {
        assert!(parse_args(&args(&["p.qava", "--race"])).unwrap().race);
        assert!(!parse_args(&args(&["p.qava"])).unwrap().race);
    }

    #[test]
    fn params_parse() {
        let o = parse_args(&args(&["p.qava", "--param", "n=3.5", "--param", "p=1e-7"])).unwrap();
        assert_eq!(o.params["n"], 3.5);
        assert_eq!(o.params["p"], 1e-7);
    }

    #[test]
    fn bad_flag_rejected() {
        assert!(parse_args(&args(&["p.qava", "--frobnicate"])).is_err());
    }

    #[test]
    fn missing_file_rejected() {
        assert!(parse_args(&args(&["--upper"])).is_err());
    }

    #[test]
    fn lp_backend_parses() {
        let o = parse_args(&args(&["p.qava", "--lp-backend", "sparse"])).unwrap();
        assert_eq!(o.lp_backend, BackendChoice::Sparse);
        let o = parse_args(&args(&["p.qava", "--lp-backend", "lu"])).unwrap();
        assert_eq!(o.lp_backend, BackendChoice::Lu);
        let o = parse_args(&args(&["p.qava", "--lp-backend", "lu-ft"])).unwrap();
        assert_eq!(o.lp_backend, BackendChoice::LuFt);
        let o = parse_args(&args(&["p.qava", "--lp-backend", "lu-bg"])).unwrap();
        assert_eq!(o.lp_backend, BackendChoice::LuBg);
        let o = parse_args(&args(&["p.qava"])).unwrap();
        assert_eq!(o.lp_backend, BackendChoice::default());
        assert!(parse_args(&args(&["p.qava", "--lp-backend", "cuda"])).is_err());
        assert!(parse_args(&args(&["p.qava", "--lp-backend"])).is_err());
    }

    #[test]
    fn deadline_ms_parses() {
        let o = parse_args(&args(&["p.qava", "--deadline-ms", "250"])).unwrap();
        assert_eq!(o.deadline_ms, Some(250));
        assert_eq!(parse_args(&args(&["p.qava"])).unwrap().deadline_ms, None);
        assert!(parse_args(&args(&["p.qava", "--deadline-ms", "soon"])).is_err());
        assert!(parse_args(&args(&["p.qava", "--deadline-ms"])).is_err());
    }

    #[test]
    fn chaos_seed_parses() {
        assert_eq!(chaos_from_args(&args(&["--suite"])).unwrap(), None);
        assert_eq!(chaos_from_args(&args(&["--suite", "--chaos", "4242"])).unwrap(), Some(4242));
        assert!(chaos_from_args(&args(&["--suite", "--chaos"])).is_err());
        assert!(chaos_from_args(&args(&["--suite", "--chaos", "dice"])).is_err());
    }

    #[test]
    fn simulate_takes_count() {
        let o = parse_args(&args(&["p.qava", "--simulate", "1000", "--seed", "9"])).unwrap();
        assert_eq!(o.simulate, Some(1000));
        assert_eq!(o.seed, 9);
        // --simulate alone runs no synthesis engines.
        assert_eq!(lineup(&["p.qava", "--simulate", "10"]), Vec::<String>::new());
    }
}
