//! Property tests for the interior-point solver: on random feasible
//! exp-sum programs the returned point must be feasible and must dominate a
//! cloud of random feasible probes.

use proptest::prelude::*;
use qava_convex::{ConvexProblem, ExpSumConstraint, ExpTerm, SolverOptions};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Random problem (plus its objective vector) that is feasible by
/// construction: constraints evaluate to 1/2 at the origin, and a box keeps
/// every objective bounded.
fn random_problem() -> impl Strategy<Value = (ConvexProblem, Vec<f64>)> {
    (1usize..4, 1usize..4, any::<u64>()).prop_map(|(dim, ncons, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = ConvexProblem::new(dim);
        let objective: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        p.set_objective(objective.clone());
        for _ in 0..ncons {
            let nterms = rng.gen_range(1..4);
            let weights: Vec<f64> = (0..nterms).map(|_| rng.gen_range(0.1..1.0)).collect();
            let total: f64 = weights.iter().sum();
            let terms = weights
                .into_iter()
                .map(|w| {
                    let lin: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
                    ExpTerm::exp_affine(w / total / 2.0, lin, 0.0)
                })
                .collect();
            p.add_constraint(ExpSumConstraint::new(terms));
        }
        for j in 0..dim {
            let mut row = vec![0.0; dim];
            row[j] = 1.0;
            p.add_constraint(ExpSumConstraint::linear(row.clone(), 3.0));
            let mut neg = vec![0.0; dim];
            neg[j] = -1.0;
            p.add_constraint(ExpSumConstraint::linear(neg, 3.0));
        }
        (p, objective)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn optimum_feasible_and_dominant((p, c) in random_problem(), probe_seed in any::<u64>()) {
        let sol = p.solve(&SolverOptions::default()).expect("origin-feasible by construction");
        prop_assert!(p.is_feasible(&sol.x, 1e-6), "solver returned infeasible point");
        prop_assert!(!sol.floored, "boxed problem cannot be unbounded");

        let n = sol.x.len();
        let mut rng = StdRng::seed_from_u64(probe_seed);
        for _ in 0..60 {
            let probe: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            if p.is_feasible(&probe, 0.0) {
                let probe_obj: f64 = probe.iter().zip(&c).map(|(x, cj)| x * cj).sum();
                prop_assert!(sol.objective <= probe_obj + 1e-5,
                    "probe {probe:?} (obj {probe_obj}) beats optimum {}", sol.objective);
            }
        }
    }

    #[test]
    fn deterministic((p, _) in random_problem()) {
        let a = p.solve(&SolverOptions::default()).unwrap();
        let b = p.solve(&SolverOptions::default()).unwrap();
        prop_assert!((a.objective - b.objective).abs() < 1e-9);
    }
}
