//! Moment-generating function of the uniform distribution, with the first
//! two derivatives of its logarithm — everything the barrier solver needs
//! to treat `E[exp(t·r)]`, `r ~ U[a,b]`, as a smooth log-convex factor.
//!
//! With `s = (b−a)·t`,
//!
//! ```text
//! φ(t)      = (e^{bt} − e^{at}) / ((b−a)·t)
//! log φ(t)  = a·t + h(s),           h(s) = ln((e^s − 1)/s)
//! ```
//!
//! `h`, `h'`, `h''` are computed with series expansions near `s = 0` and
//! asymptotics for `|s| > 500` so the factor stays finite and smooth over the
//! whole real line.

/// The MGF of `U[a, b]` as a differentiable object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformMgf {
    a: f64,
    b: f64,
}

impl UniformMgf {
    /// Creates the MGF of `U[a, b]`.
    ///
    /// # Panics
    ///
    /// Panics unless `a < b`.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a < b, "uniform support must satisfy a < b");
        UniformMgf { a, b }
    }

    /// Lower endpoint of the support.
    pub fn lower(&self) -> f64 {
        self.a
    }

    /// Upper endpoint of the support.
    pub fn upper(&self) -> f64 {
        self.b
    }

    /// `φ(t) = E[e^{t·r}]`.
    pub fn value(&self, t: f64) -> f64 {
        self.log_value(t).exp()
    }

    /// `log φ(t)`.
    pub fn log_value(&self, t: f64) -> f64 {
        let s = (self.b - self.a) * t;
        self.a * t + h(s)
    }

    /// `d/dt log φ(t)` — the tilted mean.
    pub fn dlog(&self, t: f64) -> f64 {
        let w = self.b - self.a;
        self.a + w * dh(w * t)
    }

    /// `d²/dt² log φ(t)` — the tilted variance (always ≥ 0).
    pub fn d2log(&self, t: f64) -> f64 {
        let w = self.b - self.a;
        w * w * d2h(w * t)
    }
}

/// `h(s) = ln((e^s − 1)/s)`, continuous at 0 with `h(0) = 0`.
fn h(s: f64) -> f64 {
    if s.abs() < 1e-5 {
        // h(s) = s/2 + s²/24 − s⁴/2880 + …
        s / 2.0 + s * s / 24.0
    } else if s > 500.0 {
        s - s.ln()
    } else if s < -500.0 {
        -(-s).ln()
    } else {
        (s.exp_m1() / s).ln()
    }
}

/// `h'(s) = e^s/(e^s − 1) − 1/s`, `h'(0) = 1/2`.
fn dh(s: f64) -> f64 {
    if s.abs() < 1e-5 {
        0.5 + s / 12.0
    } else if s > 500.0 {
        1.0 - 1.0 / s
    } else if s < -500.0 {
        -1.0 / s
    } else {
        let em1 = s.exp_m1();
        (em1 + 1.0) / em1 - 1.0 / s
    }
}

/// `h''(s) = 1/s² − e^s/(e^s − 1)²`, `h''(0) = 1/12`, always in `(0, 1/12]`.
fn d2h(s: f64) -> f64 {
    if s.abs() < 1e-4 {
        1.0 / 12.0 - s * s / 240.0
    } else if s.abs() > 500.0 {
        1.0 / (s * s)
    } else {
        let em1 = s.exp_m1();
        (1.0 / (s * s) - (em1 + 1.0) / (em1 * em1)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_mgf(a: f64, b: f64, t: f64) -> f64 {
        // Simpson integration of e^{t r}/(b-a) over [a, b].
        let n = 20_000;
        let hstep = (b - a) / n as f64;
        let mut acc = 0.0;
        for i in 0..=n {
            let r = a + i as f64 * hstep;
            let w = if i == 0 || i == n {
                1.0
            } else if i % 2 == 1 {
                4.0
            } else {
                2.0
            };
            acc += w * (t * r).exp();
        }
        acc * hstep / 3.0 / (b - a)
    }

    #[test]
    fn value_matches_numeric_integration() {
        for &(a, b) in &[(0.0, 1.0), (-1.0, 2.0), (-0.5, 0.5)] {
            let m = UniformMgf::new(a, b);
            for &t in &[-3.0, -0.7, -1e-7, 0.0, 1e-7, 0.4, 2.5] {
                let exact = m.value(t);
                let numeric = numeric_mgf(a, b, t);
                assert!(
                    (exact - numeric).abs() / numeric < 1e-6,
                    "mgf mismatch a={a} b={b} t={t}: {exact} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn value_at_zero_is_one() {
        let m = UniformMgf::new(-2.0, 5.0);
        assert!((m.value(0.0) - 1.0).abs() < 1e-12);
        assert!(m.log_value(0.0).abs() < 1e-12);
    }

    #[test]
    fn dlog_is_mean_at_zero() {
        let m = UniformMgf::new(1.0, 3.0);
        assert!((m.dlog(0.0) - 2.0).abs() < 1e-9, "tilted mean at t=0 is E[r]");
    }

    #[test]
    fn d2log_is_variance_at_zero() {
        let m = UniformMgf::new(0.0, 1.0);
        // Var(U[0,1]) = 1/12.
        assert!((m.d2log(0.0) - 1.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = UniformMgf::new(-1.0, 2.0);
        for &t in &[-4.0f64, -1.0, -1e-3, 1e-3, 0.5, 3.0, 20.0] {
            let eps = 1e-6 * (1.0 + t.abs());
            let fd1 = (m.log_value(t + eps) - m.log_value(t - eps)) / (2.0 * eps);
            assert!(
                (m.dlog(t) - fd1).abs() < 1e-5 * (1.0 + fd1.abs()),
                "dlog mismatch at t={t}: {} vs {}",
                m.dlog(t),
                fd1
            );
            let fd2 = (m.dlog(t + eps) - m.dlog(t - eps)) / (2.0 * eps);
            assert!(
                (m.d2log(t) - fd2).abs() < 1e-4 * (1.0 + fd2.abs()),
                "d2log mismatch at t={t}: {} vs {}",
                m.d2log(t),
                fd2
            );
        }
    }

    #[test]
    fn extreme_arguments_stay_finite() {
        let m = UniformMgf::new(0.0, 1.0);
        for &t in &[-1e6, -700.0, 700.0, 1e6] {
            assert!(m.log_value(t).is_finite());
            assert!(m.dlog(t).is_finite());
            assert!(m.d2log(t).is_finite());
            assert!(m.d2log(t) >= 0.0, "curvature must stay non-negative");
        }
    }

    #[test]
    fn curvature_positive_everywhere() {
        let m = UniformMgf::new(-0.3, 0.7);
        for i in -100..=100 {
            let t = i as f64 * 0.5;
            assert!(m.d2log(t) >= 0.0, "negative curvature at {t}");
        }
    }

    #[test]
    fn tilted_mean_within_support() {
        // d/dt log φ is the mean of the exponentially tilted distribution,
        // so it must lie inside [a, b].
        let m = UniformMgf::new(-2.0, 3.0);
        for i in -40..=40 {
            let t = i as f64;
            let mu = m.dlog(t);
            assert!((-2.0..=3.0).contains(&mu), "tilted mean {mu} escaped at t={t}");
        }
    }
}
