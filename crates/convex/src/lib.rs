#![warn(missing_docs)]

//! Convex optimization for the canonical constraints of ExpLinSyn (§5.2).
//!
//! After Minkowski decomposition and quantifier elimination, the paper's
//! complete upper-bound synthesis reduces to problems of the form
//!
//! ```text
//! minimize    c · x
//! subject to  Σ_m w_m · exp(u_m(x)) · Π_k φ_{[a,b]}(t_{m,k}(x)) ≤ 1   (i = 1..I)
//!             E · x = f
//! ```
//!
//! where `u`, `t` are affine in the unknowns `x`, `w_m > 0`, and
//! `φ_{[a,b]}` is the moment-generating function of a uniform distribution
//! (discrete distributions expand exactly into extra `exp` terms, so they
//! never reach the solver). Each term is log-convex, hence every constraint
//! is convex; this is exactly the class Theorem 5.4 of the paper proves
//! convex.
//!
//! The solver is a standard **log-barrier path-following interior-point
//! method**: a phase-I problem (minimize the slack shift `s` with every term
//! multiplied by `e^{-s}`) finds a strictly feasible point, then damped
//! Newton steps with equality-constrained KKT systems follow the central
//! path. This replaces the CVX/Matlab stack used by the paper's prototype.
//!
//! # Examples
//!
//! ```
//! use qava_convex::{ConvexProblem, ExpSumConstraint, ExpTerm, SolverOptions};
//!
//! // minimize a  s.t.  0.75·e^a + 0.25·e^{-a} <= 1   (=> a* = ln(1/3))
//! let mut p = ConvexProblem::new(1);
//! p.set_objective(vec![1.0]);
//! p.add_constraint(ExpSumConstraint::new(vec![
//!     ExpTerm::exp_affine(0.75, vec![1.0], 0.0),
//!     ExpTerm::exp_affine(0.25, vec![-1.0], 0.0),
//! ]));
//! let sol = p.solve(&SolverOptions::default())?;
//! assert!((sol.x[0] - (1.0f64 / 3.0).ln()).abs() < 1e-5);
//! # Ok::<(), qava_convex::ConvexError>(())
//! ```

mod mgf;
mod solver;

pub use mgf::UniformMgf;

use qava_linalg::vecops;

/// One log-convex term `w · exp(lin·x + constant) · Π φ(t_k(x))`.
#[derive(Debug, Clone)]
pub struct ExpTerm {
    /// Positive multiplicative weight `w`.
    pub weight: f64,
    /// Affine exponent coefficients.
    pub lin: Vec<f64>,
    /// Affine exponent offset.
    pub constant: f64,
    /// Uniform-distribution MGF factors `φ_{[a,b]}(lin·x + constant)`.
    pub uniform_factors: Vec<UniformFactorRef>,
}

/// A uniform-MGF factor: the distribution and the affine argument `t(x)`.
#[derive(Debug, Clone)]
pub struct UniformFactorRef {
    /// The uniform distribution's MGF.
    pub mgf: UniformMgf,
    /// Affine argument coefficients.
    pub lin: Vec<f64>,
    /// Affine argument offset.
    pub constant: f64,
}

impl ExpTerm {
    /// A plain `w · exp(lin·x + constant)` term (no MGF factors).
    ///
    /// # Panics
    ///
    /// Panics unless `weight > 0`.
    pub fn exp_affine(weight: f64, lin: Vec<f64>, constant: f64) -> Self {
        assert!(weight > 0.0, "term weights must be positive");
        ExpTerm { weight, lin, constant, uniform_factors: Vec::new() }
    }

    /// Attaches a uniform-MGF factor `φ_{[a,b]}(lin·x + constant)`.
    #[must_use]
    pub fn with_uniform_factor(mut self, mgf: UniformMgf, lin: Vec<f64>, constant: f64) -> Self {
        self.uniform_factors.push(UniformFactorRef { mgf, lin, constant });
        self
    }

    /// The log of the term value at `x` (without the phase-I shift).
    pub(crate) fn log_value(&self, x: &[f64]) -> f64 {
        let mut rho = self.weight.ln() + vecops::dot(&self.lin, x) + self.constant;
        for f in &self.uniform_factors {
            rho += f.mgf.log_value(vecops::dot(&f.lin, x) + f.constant);
        }
        rho
    }

    /// Gradient of the log of the term value.
    pub(crate) fn log_gradient(&self, x: &[f64]) -> Vec<f64> {
        let mut g = self.lin.clone();
        for f in &self.uniform_factors {
            let t = vecops::dot(&f.lin, x) + f.constant;
            vecops::axpy(f.mgf.dlog(t), &f.lin, &mut g);
        }
        g
    }

    /// Second-derivative data: `(curvature, direction)` pairs contributing
    /// `curvature · dir·dirᵀ` to the Hessian of the log of the term.
    pub(crate) fn log_curvatures<'a>(&'a self, x: &[f64]) -> Vec<(f64, &'a [f64])> {
        self.uniform_factors
            .iter()
            .map(|f| {
                let t = vecops::dot(&f.lin, x) + f.constant;
                (f.mgf.d2log(t), f.lin.as_slice())
            })
            .collect()
    }
}

/// A constraint `Σ_m term_m(x) ≤ 1`.
#[derive(Debug, Clone)]
pub struct ExpSumConstraint {
    /// The log-convex summands.
    pub terms: Vec<ExpTerm>,
    /// Optional provenance label surfaced in error messages.
    pub label: String,
}

impl ExpSumConstraint {
    /// Builds a constraint from terms with an empty label.
    pub fn new(terms: Vec<ExpTerm>) -> Self {
        ExpSumConstraint { terms, label: String::new() }
    }

    /// Attaches a human-readable provenance label.
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Encodes the linear inequality `coeffs·x ≤ rhs` as the single-term
    /// constraint `exp(coeffs·x − rhs) ≤ 1`.
    pub fn linear(coeffs: Vec<f64>, rhs: f64) -> Self {
        ExpSumConstraint::new(vec![ExpTerm::exp_affine(1.0, coeffs, -rhs)])
    }

    /// Evaluates `Σ_m term_m(x)`; `+∞` if any exponent overflows.
    pub fn eval(&self, x: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|t| {
                let rho = t.log_value(x);
                if rho > 700.0 {
                    f64::INFINITY
                } else {
                    rho.exp()
                }
            })
            .sum()
    }
}

/// Errors from [`ConvexProblem::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvexError {
    /// No strictly feasible point exists (phase I failed).
    Infeasible,
    /// The Newton iteration failed to make progress.
    NumericalFailure(String),
}

impl std::fmt::Display for ConvexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvexError::Infeasible => write!(f, "convex program has no strictly feasible point"),
            ConvexError::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for ConvexError {}

/// Result of a successful solve.
#[derive(Debug, Clone)]
pub struct ConvexSolution {
    /// The (ε-)optimal point.
    pub x: Vec<f64>,
    /// Objective value `c·x` at `x`.
    pub objective: f64,
    /// `true` when the objective hit the configured floor, meaning the
    /// problem is (numerically) unbounded below — for bound synthesis this
    /// reads as "the violation probability bound is effectively zero".
    pub floored: bool,
    /// Total Newton iterations across the barrier path.
    pub newton_iterations: usize,
}

/// Tuning knobs for the interior-point solver.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Barrier parameter multiplier per outer iteration.
    pub mu: f64,
    /// Target duality-gap-style tolerance `m / t`.
    pub tol: f64,
    /// Maximum Newton iterations per centering step.
    pub max_newton: usize,
    /// Objective floor below which the problem is declared unbounded.
    pub obj_floor: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions { mu: 20.0, tol: 1e-9, max_newton: 200, obj_floor: -5e4 }
    }
}

/// The convex program `min c·x` over exp-sum constraints and equalities.
#[derive(Debug, Clone, Default)]
pub struct ConvexProblem {
    n: usize,
    objective: Vec<f64>,
    constraints: Vec<ExpSumConstraint>,
    equalities: Vec<(Vec<f64>, f64)>,
}

impl ConvexProblem {
    /// Creates a problem over `n` unknowns with zero objective.
    pub fn new(n: usize) -> Self {
        ConvexProblem {
            n,
            objective: vec![0.0; n],
            constraints: Vec::new(),
            equalities: Vec::new(),
        }
    }

    /// Number of unknowns.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of exp-sum constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the linear objective (minimized).
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != self.num_vars()`.
    pub fn set_objective(&mut self, c: Vec<f64>) {
        assert_eq!(c.len(), self.n, "objective width mismatch");
        self.objective = c;
    }

    /// Adds an exp-sum constraint. Empty constraints (`0 ≤ 1`) are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any affine row has the wrong width.
    pub fn add_constraint(&mut self, c: ExpSumConstraint) {
        for t in &c.terms {
            assert_eq!(t.lin.len(), self.n, "term width mismatch");
            for f in &t.uniform_factors {
                assert_eq!(f.lin.len(), self.n, "factor width mismatch");
            }
        }
        if !c.terms.is_empty() {
            self.constraints.push(c);
        }
    }

    /// Adds the linear equality `coeffs·x = rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != self.num_vars()`.
    pub fn add_equality(&mut self, coeffs: Vec<f64>, rhs: f64) {
        assert_eq!(coeffs.len(), self.n, "equality width mismatch");
        self.equalities.push((coeffs, rhs));
    }

    /// Evaluates constraint `i` at `x` (for diagnostics and tests).
    pub fn constraint_value(&self, i: usize, x: &[f64]) -> f64 {
        self.constraints[i].eval(x)
    }

    /// `true` when `x` satisfies every constraint within `tol` (equalities
    /// within `tol` absolutely).
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        self.constraints.iter().all(|c| c.eval(x) <= 1.0 + tol)
            && self
                .equalities
                .iter()
                .all(|(row, rhs)| (vecops::dot(row, x) - rhs).abs() <= tol)
    }

    /// Runs the interior-point method.
    ///
    /// # Errors
    ///
    /// [`ConvexError::Infeasible`] when phase I cannot find a strictly
    /// feasible point; [`ConvexError::NumericalFailure`] when Newton stalls.
    pub fn solve(&self, opts: &SolverOptions) -> Result<ConvexSolution, ConvexError> {
        solver::solve(self, opts)
    }

    pub(crate) fn objective_ref(&self) -> &[f64] {
        &self.objective
    }

    pub(crate) fn constraints_ref(&self) -> &[ExpSumConstraint] {
        &self.constraints
    }

    pub(crate) fn equalities_ref(&self) -> &[(Vec<f64>, f64)] {
        &self.equalities
    }
}
