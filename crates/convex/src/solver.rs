//! Log-barrier path-following with equality-constrained Newton centering.

use crate::{ConvexError, ConvexProblem, ConvexSolution, ExpSumConstraint, SolverOptions};
use qava_linalg::{vecops, Matrix};

/// Maximum outer (barrier-parameter) iterations.
const MAX_OUTER: usize = 120;
/// Newton decrement threshold (λ²/2) for declaring a centering step done.
const NEWTON_TOL: f64 = 1e-10;
/// Armijo sufficient-decrease coefficient for the backtracking line search.
const ARMIJO: f64 = 0.01;

pub(crate) fn solve(p: &ConvexProblem, opts: &SolverOptions) -> Result<ConvexSolution, ConvexError> {
    let (scaled, col_scale) = rescale_columns(&presolve(p)?);
    let mut sol = solve_scaled(&scaled, opts)?;
    for (xj, s) in sol.x.iter_mut().zip(&col_scale) {
        *xj *= s;
    }
    Ok(sol)
}

/// Substitutes `x_j = s_j·x'_j` with `s_j = 1/max|coef_j|`, so every affine
/// row of the scaled problem has coefficients of order 1. Quantifier
/// elimination instantiates templates at invariant vertices with
/// coordinates in the hundreds or thousands; without this, the barrier
/// Hessian mixes curvatures across ~6 orders of magnitude and Newton
/// centering stalls far from the central path.
fn rescale_columns(p: &ConvexProblem) -> (ConvexProblem, Vec<f64>) {
    let n = p.num_vars();
    let mut maxcoef = vec![0.0f64; n];
    let mut track = |lin: &[f64]| {
        for (m, &c) in maxcoef.iter_mut().zip(lin) {
            *m = m.max(c.abs());
        }
    };
    for c in p.constraints_ref() {
        for t in &c.terms {
            track(&t.lin);
            for f in &t.uniform_factors {
                track(&f.lin);
            }
        }
    }
    for (row, _) in p.equalities_ref() {
        track(row);
    }
    let col_scale: Vec<f64> = maxcoef
        .iter()
        .map(|&m| if m > 4.0 || (m > 0.0 && m < 0.25) { 1.0 / m } else { 1.0 })
        .collect();
    if col_scale.iter().all(|&s| s == 1.0) {
        return (p.clone(), col_scale);
    }

    let mut out = ConvexProblem::new(n);
    let scale_row = |lin: &[f64]| -> Vec<f64> {
        lin.iter().zip(&col_scale).map(|(c, s)| c * s).collect()
    };
    out.set_objective(scale_row(p.objective_ref()));
    for (row, rhs) in p.equalities_ref() {
        out.add_equality(scale_row(row), *rhs);
    }
    for c in p.constraints_ref() {
        let terms = c
            .terms
            .iter()
            .map(|t| {
                let mut t2 = t.clone();
                t2.lin = scale_row(&t.lin);
                for f in &mut t2.uniform_factors {
                    f.lin = scale_row(&f.lin);
                }
                t2
            })
            .collect();
        out.add_constraint(ExpSumConstraint { terms, label: c.label.clone() });
    }
    (out, col_scale)
}

fn solve_scaled(p: &ConvexProblem, opts: &SolverOptions) -> Result<ConvexSolution, ConvexError> {
    let n = p.num_vars();

    // Point satisfying the equality constraints (least squares; exact when
    // the system is consistent — inconsistency shows up as infeasibility).
    let x_eq = if p.equalities_ref().is_empty() {
        vec![0.0; n]
    } else {
        let mut e = Matrix::zeros(0, 0);
        let mut f = Vec::new();
        for (row, rhs) in p.equalities_ref() {
            e.push_row(row);
            f.push(*rhs);
        }
        let mut x = e.least_squares(&f);
        // One step of iterative refinement counteracts the ridge bias.
        let r: Vec<f64> =
            f.iter().zip(e.mul_vec(&x)).map(|(fi, exi)| fi - exi).collect();
        vecops::axpy(1.0, &e.least_squares(&r), &mut x);
        let resid: f64 = e
            .mul_vec(&x)
            .iter()
            .zip(&f)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        if resid > 1e-6 {
            return Err(ConvexError::Infeasible);
        }
        x
    };

    // ---- Phase I: find a strictly feasible point. ----
    let x0 = if p.constraints_ref().is_empty() {
        x_eq.clone()
    } else {
        phase_one(p, &x_eq, opts)?
    };

    // ---- Phase II: follow the central path for the real objective. ----
    let eq: Vec<(Vec<f64>, f64)> = p.equalities_ref().to_vec();
    let run = barrier(p.objective_ref(), p.constraints_ref(), &eq, x0, opts)?;
    let objective = vecops::dot(p.objective_ref(), &run.x);
    Ok(ConvexSolution {
        x: run.x,
        objective,
        floored: run.floored,
        newton_iterations: run.newton_iterations,
    })
}

/// Implicit-equality detection (standard presolve): two opposite linear
/// rows `c·x ≤ d` and `−c·x ≤ −d` have an empty strict interior, which
/// would make the barrier's phase I report a perfectly feasible problem as
/// infeasible. The pair is rewritten as the equality `c·x = d`, which the
/// barrier handles exactly through its nullspace reduction. Quantifier
/// elimination produces such pairs routinely — e.g. the (D1) rows of two
/// transitions that chain two locations in both directions pin the
/// templates to be equal.
///
/// # Errors
///
/// [`ConvexError::Infeasible`] when an opposite pair is contradictory
/// (`c·x ≤ d` and `c·x ≥ d'` with `d' > d`).
fn presolve(p: &ConvexProblem) -> Result<ConvexProblem, ConvexError> {
    // A linear row is a single exp-affine term without MGF factors:
    // w·exp(c·x + k) ≤ 1  ⇔  c·x ≤ −k − ln w.
    let as_linear = |c: &ExpSumConstraint| -> Option<(Vec<f64>, f64)> {
        if c.terms.len() != 1 || !c.terms[0].uniform_factors.is_empty() {
            return None;
        }
        let t = &c.terms[0];
        Some((t.lin.clone(), -t.constant - t.weight.ln()))
    };

    let mut out = ConvexProblem::new(p.num_vars());
    out.set_objective(p.objective_ref().to_vec());
    for (row, rhs) in p.equalities_ref() {
        out.add_equality(row.clone(), *rhs);
    }

    // Normalize every linear row to max-norm 1 with a sign-canonical
    // direction (first nonzero component positive). The row then reads
    // `dir·x ≤ rhs` (upper) or `dir·x ≥ rhs` (lower, when the original
    // direction was flipped).
    struct NormRow {
        index: usize,
        dir: Vec<f64>,
        rhs: f64,
        upper: bool,
    }
    let mut rows: Vec<NormRow> = Vec::new();
    let mut keep = vec![true; p.constraints_ref().len()];
    for (i, c) in p.constraints_ref().iter().enumerate() {
        let Some((lin, d)) = as_linear(c) else { continue };
        let s = lin.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
        if s == 0.0 {
            // 0·x ≤ d: vacuous or plainly infeasible.
            if d < -1e-12 {
                return Err(ConvexError::Infeasible);
            }
            keep[i] = false;
            continue;
        }
        let mut dir: Vec<f64> = lin.iter().map(|v| v / s).collect();
        let mut rhs = d / s;
        let mut upper = true;
        if let Some(first) = dir.iter().find(|v| v.abs() > 0.0) {
            if *first < 0.0 {
                for v in &mut dir {
                    *v = -*v;
                }
                rhs = -rhs;
                upper = false;
            }
        }
        rows.push(NormRow { index: i, dir, rhs, upper });
    }

    // Group rows by direction; each group is an interval constraint
    // `lo ≤ dir·x ≤ hi` represented by at most two surviving rows — or an
    // equality when the interval collapses.
    let mut grouped = vec![false; rows.len()];
    for i in 0..rows.len() {
        if grouped[i] {
            continue;
        }
        let mut members = vec![i];
        for j in i + 1..rows.len() {
            if grouped[j] {
                continue;
            }
            let parallel = rows[i]
                .dir
                .iter()
                .zip(&rows[j].dir)
                .all(|(a, b)| (a - b).abs() <= 1e-12);
            if parallel {
                members.push(j);
            }
        }
        let mut hi = f64::INFINITY;
        let mut lo = f64::NEG_INFINITY;
        let mut hi_row: Option<usize> = None;
        let mut lo_row: Option<usize> = None;
        for &m in &members {
            grouped[m] = true;
            if rows[m].upper {
                if rows[m].rhs < hi {
                    hi = rows[m].rhs;
                    hi_row = Some(rows[m].index);
                }
            } else if rows[m].rhs > lo {
                lo = rows[m].rhs;
                lo_row = Some(rows[m].index);
            }
        }
        if lo > hi + 1e-9 {
            return Err(ConvexError::Infeasible);
        }
        for &m in &members {
            keep[rows[m].index] = false;
        }
        if lo >= hi - 1e-12 {
            out.add_equality(rows[i].dir.clone(), hi);
        } else {
            if let Some(r) = hi_row {
                keep[r] = true;
            }
            if let Some(r) = lo_row {
                keep[r] = true;
            }
        }
    }

    for (i, c) in p.constraints_ref().iter().enumerate() {
        if keep[i] {
            out.add_constraint(c.clone());
        }
    }
    Ok(out)
}

/// Finds a strictly feasible point by minimizing the shift `s` in
/// `g_i(x)·e^{-s} ≤ 1`, starting from an `s` large enough to be interior.
fn phase_one(p: &ConvexProblem, x_eq: &[f64], opts: &SolverOptions) -> Result<Vec<f64>, ConvexError> {
    let n = p.num_vars();
    let mut shifted: Vec<ExpSumConstraint> = Vec::with_capacity(p.num_constraints() + 1);
    let mut worst_log = f64::NEG_INFINITY;
    for c in p.constraints_ref() {
        let mut terms = Vec::with_capacity(c.terms.len());
        for t in &c.terms {
            let mut t2 = t.clone();
            t2.lin.push(-1.0);
            for f in &mut t2.uniform_factors {
                f.lin.push(0.0);
            }
            terms.push(t2);
        }
        // Track how infeasible the equality-feasible start is.
        let v = c.eval(x_eq);
        let lg = if v.is_finite() && v > 0.0 {
            v.ln()
        } else if v == 0.0 {
            f64::NEG_INFINITY
        } else {
            // Overflowed: recompute a safe upper estimate from term logs.
            c.terms.iter().map(|t| t.log_value(x_eq)).fold(f64::NEG_INFINITY, f64::max)
                + (c.terms.len() as f64).ln()
        };
        worst_log = worst_log.max(lg);
        shifted.push(ExpSumConstraint { terms, label: c.label.clone() });
    }
    // Keep phase I bounded: s ≥ −1 (written as −s ≤ 1).
    let mut cap_row = vec![0.0; n + 1];
    cap_row[n] = -1.0;
    shifted.push(ExpSumConstraint::linear(cap_row, 1.0));

    let mut z0 = x_eq.to_vec();
    z0.push(worst_log.max(0.0) + 1.0);

    let mut obj = vec![0.0; n + 1];
    obj[n] = 1.0;

    let eq: Vec<(Vec<f64>, f64)> = p
        .equalities_ref()
        .iter()
        .map(|(row, rhs)| {
            let mut r = row.clone();
            r.push(0.0);
            (r, *rhs)
        })
        .collect();

    let mut p1_opts = opts.clone();
    p1_opts.obj_floor = -0.9; // any strictly negative s suffices
    p1_opts.tol = 1e-6;
    let run = barrier(&obj, &shifted, &eq, z0, &p1_opts)?;
    let s = run.x[n];
    if s < -1e-6 {
        Ok(run.x[..n].to_vec())
    } else {
        Err(ConvexError::Infeasible)
    }
}

struct BarrierRun {
    x: Vec<f64>,
    floored: bool,
    newton_iterations: usize,
}

/// One full central path: minimize `t·c·x − Σ ln(1 − g_i(x))` for growing `t`.
fn barrier(
    objective: &[f64],
    constraints: &[ExpSumConstraint],
    equalities: &[(Vec<f64>, f64)],
    mut x: Vec<f64>,
    opts: &SolverOptions,
) -> Result<BarrierRun, ConvexError> {
    let n = x.len();
    let m = constraints.len().max(1);
    let mut t = 1.0;
    let mut newton_total = 0usize;
    let mut floored = false;

    debug_assert!(strictly_feasible(constraints, &x), "barrier started outside the interior");

    // Reduced-space handling of equalities: steps live in null(E), i.e.
    // dx = Z·du, which keeps E·x = f satisfied exactly — no KKT drift.
    let z = nullspace_basis(equalities, n);
    if z.cols() == 0 {
        // Equalities pin x completely; the start point is the only candidate.
        return Ok(BarrierRun { x, floored: false, newton_iterations: 0 });
    }

    for _outer in 0..MAX_OUTER {
        // ---- Newton centering for the current t. ----
        for _ in 0..opts.max_newton {
            newton_total += 1;
            let (val, grad, hess) = barrier_derivatives(t, objective, constraints, &x);
            let dx = reduced_newton_step(&z, &hess, &grad)?;
            let decrement = -vecops::dot(&grad, &dx);
            if decrement / 2.0 < NEWTON_TOL {
                break;
            }
            // Backtracking line search: stay strictly feasible, decrease B.
            let mut step = 1.0;
            let mut moved = false;
            while step > 1e-13 {
                let mut cand = x.clone();
                vecops::axpy(step, &dx, &mut cand);
                if strictly_feasible(constraints, &cand) {
                    let cand_val = barrier_value(t, objective, constraints, &cand);
                    if cand_val <= val - ARMIJO * step * decrement {
                        x = cand;
                        moved = true;
                        break;
                    }
                }
                step *= 0.5;
            }
            if !moved {
                break; // stalled: accept current center
            }
            if vecops::dot(objective, &x) < opts.obj_floor {
                floored = true;
                break;
            }
        }

        if floored || vecops::dot(objective, &x) < opts.obj_floor {
            return Ok(BarrierRun { x, floored: true, newton_iterations: newton_total });
        }
        if m as f64 / t < opts.tol {
            return Ok(BarrierRun { x, floored: false, newton_iterations: newton_total });
        }
        t *= opts.mu;
    }
    Ok(BarrierRun { x, floored, newton_iterations: newton_total })
}

fn strictly_feasible(constraints: &[ExpSumConstraint], x: &[f64]) -> bool {
    constraints.iter().all(|c| c.eval(x) < 1.0 - 1e-12)
}

fn barrier_value(t: f64, objective: &[f64], constraints: &[ExpSumConstraint], x: &[f64]) -> f64 {
    let mut v = t * vecops::dot(objective, x);
    for c in constraints {
        v -= (1.0 - c.eval(x)).ln();
    }
    v
}

/// Value, gradient and Hessian of the barrier function at `x`.
fn barrier_derivatives(
    t: f64,
    objective: &[f64],
    constraints: &[ExpSumConstraint],
    x: &[f64],
) -> (f64, Vec<f64>, Matrix) {
    let n = x.len();
    let mut grad = vecops::scale(t, objective);
    let mut hess = Matrix::zeros(n, n);
    let mut value = t * vecops::dot(objective, x);

    for c in constraints {
        let mut g = 0.0;
        let mut dg = vec![0.0; n];
        // Hessian of g accumulated directly into `hess` after scaling, so
        // gather rank-one pieces first.
        let mut pieces: Vec<(f64, Vec<f64>)> = Vec::new();
        for term in &c.terms {
            let rho = term.log_value(x);
            if rho < -300.0 {
                continue; // numerically zero term
            }
            let tv = rho.exp();
            let lg = term.log_gradient(x);
            g += tv;
            vecops::axpy(tv, &lg, &mut dg);
            pieces.push((tv, lg.clone()));
            for (curv, dir) in term.log_curvatures(x) {
                if curv > 0.0 {
                    pieces.push((tv * curv, dir.to_vec()));
                }
            }
        }
        let slack = 1.0 - g;
        debug_assert!(slack > 0.0, "derivative evaluation outside interior");
        value -= slack.ln();
        // ∇(−ln(1−g)) = ∇g / (1−g)
        vecops::axpy(1.0 / slack, &dg, &mut grad);
        // ∇² = ∇g∇gᵀ/(1−g)² + ∇²g/(1−g)
        rank_one_update(&mut hess, 1.0 / (slack * slack), &dg);
        for (w, dir) in &pieces {
            rank_one_update(&mut hess, w / slack, dir);
        }
    }
    (value, grad, hess)
}

/// `h += w · v·vᵀ`.
fn rank_one_update(h: &mut Matrix, w: f64, v: &[f64]) {
    if w == 0.0 {
        return;
    }
    let n = v.len();
    for i in 0..n {
        if v[i] == 0.0 {
            continue;
        }
        let wi = w * v[i];
        for j in 0..n {
            h[(i, j)] += wi * v[j];
        }
    }
}

/// Columns spanning `null(E)` as a matrix `Z` (the identity when there are
/// no equality rows).
fn nullspace_basis(equalities: &[(Vec<f64>, f64)], n: usize) -> Matrix {
    if equalities.is_empty() {
        return Matrix::identity(n);
    }
    let mut e = Matrix::zeros(0, 0);
    for (row, _) in equalities {
        e.push_row(row);
    }
    let basis = e.nullspace();
    let mut z = Matrix::zeros(n, basis.len());
    for (k, v) in basis.iter().enumerate() {
        for i in 0..n {
            z[(i, k)] = v[i];
        }
    }
    z
}

/// Newton step in the reduced space: solve `(ZᵀHZ + ridge)·du = −Zᵀgrad`
/// and return `dx = Z·du`, escalating regularization until the step is a
/// descent direction.
fn reduced_newton_step(z: &Matrix, hess: &Matrix, grad: &[f64]) -> Result<Vec<f64>, ConvexError> {
    let k = z.cols();
    let grad_u = z.mul_vec_transposed(grad);
    let hz = hess.mul(z);
    let hu = z.transpose().mul(&hz);
    for attempt in 0..8 {
        let ridge = 1e-9 * 10f64.powi(attempt * 2);
        let mut m = hu.clone();
        let scale = (0..k).map(|i| m[(i, i)].abs()).fold(1.0, f64::max);
        for i in 0..k {
            m[(i, i)] += ridge * scale;
        }
        if let Some(du) = m.solve(&vecops::scale(-1.0, &grad_u)) {
            let dx = z.mul_vec(&du);
            // The step must be a descent direction; otherwise re-regularize.
            if vecops::dot(grad, &dx) <= 0.0 {
                return Ok(dx);
            }
        }
    }
    Err(ConvexError::NumericalFailure("reduced Newton system unsolvable".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExpTerm, UniformMgf};

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn single_exponential_bound() {
        // minimize -a s.t. 2 e^a <= 1 -> a* = -ln 2.
        let mut p = ConvexProblem::new(1);
        p.set_objective(vec![-1.0]);
        p.add_constraint(ExpSumConstraint::new(vec![ExpTerm::exp_affine(2.0, vec![1.0], 0.0)]));
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.x[0] + 2.0f64.ln()).abs() < 1e-5, "got {}", sol.x[0]);
        assert!(!sol.floored);
    }

    #[test]
    fn asymmetric_walk_optimal_tilt() {
        // minimize a s.t. 0.75 e^a + 0.25 e^{-a} <= 1 -> a* = ln(1/3).
        let mut p = ConvexProblem::new(1);
        p.set_objective(vec![1.0]);
        p.add_constraint(ExpSumConstraint::new(vec![
            ExpTerm::exp_affine(0.75, vec![1.0], 0.0),
            ExpTerm::exp_affine(0.25, vec![-1.0], 0.0),
        ]));
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.x[0] - (1.0f64 / 3.0).ln()).abs() < 1e-5, "got {}", sol.x[0]);
    }

    #[test]
    fn linear_rows_via_exp_encoding() {
        // minimize x s.t. x >= 3 (i.e. -x <= -3).
        let mut p = ConvexProblem::new(1);
        p.set_objective(vec![1.0]);
        p.add_constraint(ExpSumConstraint::linear(vec![-1.0], -3.0));
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-4, "got {}", sol.x[0]);
    }

    #[test]
    fn equality_constraint_respected() {
        // maximize y s.t. x - y = 1, e^{x-1} <= 1  =>  x <= 1, y = x-1, y* = 0.
        let mut p = ConvexProblem::new(2);
        p.set_objective(vec![0.0, -1.0]);
        p.add_equality(vec![1.0, -1.0], 1.0);
        p.add_constraint(ExpSumConstraint::new(vec![ExpTerm::exp_affine(
            1.0,
            vec![1.0, 0.0],
            -1.0,
        )]));
        let sol = p.solve(&opts()).unwrap();
        assert!(sol.x[1].abs() < 1e-4, "got y = {}", sol.x[1]);
        assert!((sol.x[0] - sol.x[1] - 1.0).abs() < 1e-7, "equality violated");
    }

    #[test]
    fn infeasible_reported() {
        // e^x + e^{-x} <= 1 is impossible (minimum value 2).
        let mut p = ConvexProblem::new(1);
        p.set_objective(vec![1.0]);
        p.add_constraint(ExpSumConstraint::new(vec![
            ExpTerm::exp_affine(1.0, vec![1.0], 0.0),
            ExpTerm::exp_affine(1.0, vec![-1.0], 0.0),
        ]));
        assert_eq!(p.solve(&opts()).unwrap_err(), ConvexError::Infeasible);
    }

    #[test]
    fn unbounded_objective_floors() {
        // minimize x s.t. e^x <= 1 (x <= 0): unbounded below.
        let mut p = ConvexProblem::new(1);
        p.set_objective(vec![1.0]);
        p.add_constraint(ExpSumConstraint::new(vec![ExpTerm::exp_affine(1.0, vec![1.0], 0.0)]));
        let mut o = opts();
        o.obj_floor = -100.0;
        let sol = p.solve(&o).unwrap();
        assert!(sol.floored);
        assert!(sol.objective <= -100.0);
    }

    #[test]
    fn uniform_factor_constraint() {
        // minimize a s.t. e^{a}·φ_{U[0,1]}(a) <= 1.
        // log constraint: a + logφ(a) <= 0. At a = 0 it's 0 (boundary);
        // feasible for a < 0. The optimum is unbounded below -> floored,
        // so instead maximize a: optimum a* = 0.
        let mut p = ConvexProblem::new(1);
        p.set_objective(vec![-1.0]);
        p.add_constraint(ExpSumConstraint::new(vec![ExpTerm::exp_affine(1.0, vec![1.0], 0.0)
            .with_uniform_factor(UniformMgf::new(0.0, 1.0), vec![1.0], 0.0)]));
        let sol = p.solve(&opts()).unwrap();
        // a + logφ(a) = 0 at a = 0 only.
        assert!(sol.x[0].abs() < 1e-4, "got {}", sol.x[0]);
    }

    #[test]
    fn race_loop_constraint_shape() {
        // The tortoise-hare loop constraint at the generator (99,99) with
        // objective 40·a1 + c (Section 3.1 of the paper), but collapsed to
        // the one-location form: minimize 40 a1 + 0 a2 + c subject to
        //   0.5 e^{a1 + 2 a2} + 0.5 e^{a1} <= 1      (loop body)
        //   e^{-(99 a1 + 100 a2 + c)} <= 1           (violation transition)
        //   a1 <= 0, a2 >= 0 handled by recession-cone rows:
        //   a1 <= 0 and -a2 <= 0 as linear rows.
        let mut p = ConvexProblem::new(3);
        p.set_objective(vec![40.0, 0.0, 1.0]);
        p.add_constraint(ExpSumConstraint::new(vec![
            ExpTerm::exp_affine(0.5, vec![1.0, 2.0, 0.0], 0.0),
            ExpTerm::exp_affine(0.5, vec![1.0, 0.0, 0.0], 0.0),
        ]));
        p.add_constraint(ExpSumConstraint::new(vec![ExpTerm::exp_affine(
            1.0,
            vec![-99.0, -100.0, -1.0],
            0.0,
        )]));
        p.add_constraint(ExpSumConstraint::linear(vec![1.0, 0.0, 0.0], 0.0));
        p.add_constraint(ExpSumConstraint::linear(vec![0.0, -1.0, 0.0], 0.0));
        let sol = p.solve(&opts()).unwrap();
        assert!(p.is_feasible(&sol.x, 1e-6));
        // The optimum of this relaxation is ≈ exp(-15.7) (paper §3.1).
        assert!(
            sol.objective < -10.0 && sol.objective > -25.0,
            "objective {} outside plausible window",
            sol.objective
        );
    }

    #[test]
    fn opposite_linear_pair_becomes_equality() {
        // x <= 3 and -x <= -3 pin x = 3; phase I must not call this
        // infeasible (empty strict interior, handled by presolve).
        let mut p = ConvexProblem::new(2);
        p.set_objective(vec![0.0, 1.0]);
        p.add_constraint(ExpSumConstraint::linear(vec![1.0, 0.0], 3.0));
        p.add_constraint(ExpSumConstraint::linear(vec![-1.0, 0.0], -3.0));
        p.add_constraint(ExpSumConstraint::linear(vec![1.0, -1.0], 0.0)); // y >= x
        let sol = p.solve(&opts()).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-6, "x pinned to 3, got {}", sol.x[0]);
        assert!((sol.x[1] - 3.0).abs() < 1e-4, "y -> 3, got {}", sol.x[1]);
    }

    #[test]
    fn contradictory_linear_pair_is_infeasible() {
        let mut p = ConvexProblem::new(1);
        p.add_constraint(ExpSumConstraint::linear(vec![1.0], 1.0));
        p.add_constraint(ExpSumConstraint::linear(vec![-1.0], -2.0)); // x >= 2
        assert_eq!(p.solve(&opts()).unwrap_err(), ConvexError::Infeasible);
    }

    #[test]
    fn no_constraints_zero_objective() {
        let p = ConvexProblem::new(2);
        let sol = p.solve(&opts()).unwrap();
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn feasibility_check_helper() {
        let mut p = ConvexProblem::new(1);
        p.add_constraint(ExpSumConstraint::linear(vec![1.0], 5.0));
        assert!(p.is_feasible(&[4.0], 1e-9));
        assert!(!p.is_feasible(&[6.0], 1e-9));
    }
}
