//! aarch64 NEON backend: 2-lane `f64` vectors with fused multiply-add.
//!
//! NEON has no gather/scatter, so the sparse kernels build their vector
//! lanes with ordinary (bounds-checked) indexing and vectorize the
//! multiply-accumulate — with separate mul + add so they stay
//! **bit-exact** with the scalar baseline (the same two-contract split
//! as the AVX2 backend; see the numerics section of `avx2.rs`). The
//! dense kernels (`dot`/`axpy`/`norm_inf`/
//! `scale`) run fully vectorized with `vfmaq_f64`. AdvSIMD is mandatory
//! on AArch64, but selection still goes through
//! `is_aarch64_feature_detected!("neon")` for symmetry with the x86
//! path, and every intrinsic body carries
//! `#[target_feature(enable = "neon")]` — the same safety architecture
//! as the AVX2 backend (see `avx2.rs`): the instance is only handed out
//! after detection succeeds.
//!
//! `norm_inf` keeps `f64::max`'s ignore-NaN semantics with an explicit
//! compare-and-select (`vcgtq`/`vbslq`) instead of `vmaxq_f64`, whose
//! IEEE `maxNum` NaN handling differs from the scalar baseline's fold.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::*;

use super::VecKernel;

/// The NEON kernel; constructed only behind runtime feature detection.
#[derive(Debug, Clone, Copy)]
pub struct NeonKernel;

impl VecKernel for NeonKernel {
    fn name(&self) -> &'static str {
        "neon"
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        // SAFETY: selection guarantees neon (module docs).
        unsafe { dot(a, b) }
    }

    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        // SAFETY: selection guarantees neon (module docs).
        unsafe { axpy(alpha, x, y) }
    }

    fn gather_dot(&self, idx: &[usize], vals: &[f64], x: &[f64]) -> f64 {
        // SAFETY: selection guarantees neon (module docs).
        unsafe { gather_dot(idx, vals, x) }
    }

    fn scatter_axpy(&self, alpha: f64, idx: &[usize], vals: &[f64], y: &mut [f64]) {
        // SAFETY: selection guarantees neon (module docs).
        unsafe { scatter_axpy(alpha, idx, vals, y) }
    }

    fn masked_gather_dot(
        &self,
        idx: &[usize],
        vals: &[f64],
        x: &[f64],
        pos: &[usize],
        cutoff: usize,
    ) -> f64 {
        // SAFETY: selection guarantees neon (module docs).
        unsafe { masked_gather_dot(idx, vals, x, pos, cutoff) }
    }

    fn norm_inf(&self, x: &[f64]) -> f64 {
        // SAFETY: selection guarantees neon (module docs).
        unsafe { norm_inf(x) }
    }

    fn scale(&self, alpha: f64, x: &mut [f64]) {
        // SAFETY: selection guarantees neon (module docs).
        unsafe { scale(alpha, x) }
    }
}

#[target_feature(enable = "neon")]
unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0usize;
    while i + 4 <= n {
        acc0 = vfmaq_f64(acc0, vld1q_f64(pa.add(i)), vld1q_f64(pb.add(i)));
        acc1 = vfmaq_f64(acc1, vld1q_f64(pa.add(i + 2)), vld1q_f64(pb.add(i + 2)));
        i += 4;
    }
    if i + 2 <= n {
        acc0 = vfmaq_f64(acc0, vld1q_f64(pa.add(i)), vld1q_f64(pb.add(i)));
        i += 2;
    }
    let mut s = vaddvq_f64(vaddq_f64(acc0, acc1));
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

#[target_feature(enable = "neon")]
unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let va = vdupq_n_f64(alpha);
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        vst1q_f64(py.add(i), vfmaq_f64(vld1q_f64(py.add(i)), va, vld1q_f64(px.add(i))));
        vst1q_f64(
            py.add(i + 2),
            vfmaq_f64(vld1q_f64(py.add(i + 2)), va, vld1q_f64(px.add(i + 2))),
        );
        i += 4;
    }
    if i + 2 <= n {
        vst1q_f64(py.add(i), vfmaq_f64(vld1q_f64(py.add(i)), va, vld1q_f64(px.add(i))));
        i += 2;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

#[target_feature(enable = "neon")]
unsafe fn gather_dot(idx: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    // Lane construction through ordinary indexing keeps the bounds
    // checks (and their panics) of the scalar baseline. Separate
    // mul + add (no FMA), two 2-lane accumulators standing in for the
    // baseline's four, and the `(s0+s1)+(s2+s3)+tail` reduction keep
    // the result **bit-exact** with it — see the numerics section of
    // `avx2.rs` for why the gathered kernels pin exactness.
    let n = idx.len().min(vals.len());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0usize;
    while i + 4 <= n {
        let g0 = [x[idx[i]], x[idx[i + 1]]];
        let g1 = [x[idx[i + 2]], x[idx[i + 3]]];
        acc0 = vaddq_f64(acc0, vmulq_f64(vld1q_f64(vals.as_ptr().add(i)), vld1q_f64(g0.as_ptr())));
        acc1 = vaddq_f64(
            acc1,
            vmulq_f64(vld1q_f64(vals.as_ptr().add(i + 2)), vld1q_f64(g1.as_ptr())),
        );
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        tail += vals[i] * x[idx[i]];
        i += 1;
    }
    vaddvq_f64(acc0) + vaddvq_f64(acc1) + tail
}

#[target_feature(enable = "neon")]
unsafe fn scatter_axpy(alpha: f64, idx: &[usize], vals: &[f64], y: &mut [f64]) {
    let n = idx.len().min(vals.len());
    let va = vdupq_n_f64(alpha);
    let mut i = 0usize;
    let mut prod = [0.0f64; 2];
    while i + 2 <= n {
        vst1q_f64(prod.as_mut_ptr(), vmulq_f64(va, vld1q_f64(vals.as_ptr().add(i))));
        y[idx[i]] += prod[0];
        y[idx[i + 1]] += prod[1];
        i += 2;
    }
    while i < n {
        y[idx[i]] += alpha * vals[i];
        i += 1;
    }
}

#[target_feature(enable = "neon")]
unsafe fn masked_gather_dot(
    idx: &[usize],
    vals: &[f64],
    x: &[f64],
    pos: &[usize],
    cutoff: usize,
) -> f64 {
    // Select-to-zero in the lane constructor: an excluded entry's value
    // is never read, exactly like the scalar baseline. Mul + add and the
    // four-accumulator shape keep the result bit-exact with it (see
    // [`gather_dot`]).
    let n = idx.len().min(vals.len());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let pick = |r: usize| if pos[r] > cutoff { x[r] } else { 0.0 };
    let mut i = 0usize;
    while i + 4 <= n {
        let g0 = [pick(idx[i]), pick(idx[i + 1])];
        let g1 = [pick(idx[i + 2]), pick(idx[i + 3])];
        acc0 = vaddq_f64(acc0, vmulq_f64(vld1q_f64(vals.as_ptr().add(i)), vld1q_f64(g0.as_ptr())));
        acc1 = vaddq_f64(
            acc1,
            vmulq_f64(vld1q_f64(vals.as_ptr().add(i + 2)), vld1q_f64(g1.as_ptr())),
        );
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        tail += vals[i] * pick(idx[i]);
        i += 1;
    }
    vaddvq_f64(acc0) + vaddvq_f64(acc1) + tail
}

#[target_feature(enable = "neon")]
unsafe fn norm_inf(x: &[f64]) -> f64 {
    let mut acc = vdupq_n_f64(0.0);
    let p = x.as_ptr();
    let mut i = 0usize;
    while i + 2 <= x.len() {
        let v = vabsq_f64(vld1q_f64(p.add(i)));
        // Compare-and-select: a NaN lane compares false and keeps the
        // accumulator, matching `f64::max`'s ignore-NaN fold.
        acc = vbslq_f64(vcgtq_f64(v, acc), v, acc);
        i += 2;
    }
    let mut m = vgetq_lane_f64::<0>(acc).max(vgetq_lane_f64::<1>(acc));
    while i < x.len() {
        m = m.max(x[i].abs());
        i += 1;
    }
    m
}

#[target_feature(enable = "neon")]
unsafe fn scale(alpha: f64, x: &mut [f64]) {
    let va = vdupq_n_f64(alpha);
    let p = x.as_mut_ptr();
    let n = x.len();
    let mut i = 0usize;
    while i + 2 <= n {
        vst1q_f64(p.add(i), vmulq_f64(va, vld1q_f64(p.add(i))));
        i += 2;
    }
    while i < n {
        x[i] *= alpha;
        i += 1;
    }
}
