//! x86_64 AVX2+FMA backend: 4-lane `f64` vectors with fused
//! multiply-add, insert-based gathers for the sparse kernels.
//!
//! # Safety architecture
//!
//! Every intrinsic body is an `unsafe fn` carrying
//! `#[target_feature(enable = "avx2,fma")]`. The only way this backend is
//! ever reached is through [`super::by_name`] / [`super::select`], which
//! hand out the `Avx2Kernel` instance **only after**
//! `is_x86_feature_detected!("avx2")` and `("fma")` both succeed, so the
//! trait methods' `unsafe` calls are sound on every path that can execute
//! them.
//!
//! The gathered kernels deliberately do **not** use the `vgatherqpd`
//! hardware gather: it is microcoded on every AVX2 part and loses to
//! four ordinary loads packed with `_mm256_set_pd`. The insert-based
//! form also keeps the loads as ordinary bounds-checked indexing, so
//! out-of-range indices panic exactly like the scalar baseline (and
//! `masked_gather_dot` touches `x` only inside the window, preserving
//! the "never reads excluded entries" guarantee the FT spike
//! elimination relies on).
//!
//! # Numerics
//!
//! The kernels split into two contracts:
//!
//! * **Dense `dot`/`axpy`: FMA, ulp-level divergence.** FMA contracts
//!   each `mul + add` into one rounding and the 4-lane accumulators
//!   reassociate the reduction differently from the scalar baseline's
//!   four partial sums; both effects stay at ulp level — orders of
//!   magnitude inside the 1e-7 tolerances every LP verdict is pinned
//!   to, and pinned directly by the kernel-agreement property tests.
//! * **Everything else: bit-exact with the scalar baseline.** The
//!   gathered kernels use separate mul + add with lane `k` replaying
//!   scalar accumulator `s_k` and the final reduction in the baseline's
//!   `(s0+s1)+(s2+s3)+tail` association; `scatter_axpy`, `norm_inf`,
//!   and `scale` perform the identical per-element operations. This is
//!   deliberate, not incidental: the Forrest–Tomlin and eta-file solve
//!   paths run almost entirely on the gathered kernels, and keeping
//!   them bit-exact keeps pivot trajectories identical across backends
//!   on the suite's knife-edge degenerate LPs (an early FMA variant of
//!   the gathers tipped one εmax system into a ~50k-pivot Bland
//!   anti-cycling stall — the speedup there is in the loads, not the
//!   arithmetic, so exactness costs nothing).
//!
//! NaN/±inf propagate through products and sums exactly as in the
//! baseline; `norm_inf` keeps `f64::max`'s ignore-NaN semantics by
//! ordering the `maxpd` operands so a NaN lane never displaces the
//! running maximum.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;

use super::VecKernel;

/// The AVX2+FMA kernel; constructed only behind runtime feature
/// detection (see the module docs' safety architecture).
#[derive(Debug, Clone, Copy)]
pub struct Avx2Kernel;

impl VecKernel for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        // SAFETY: selection guarantees avx2+fma (module docs).
        unsafe { dot(a, b) }
    }

    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        // SAFETY: selection guarantees avx2+fma (module docs).
        unsafe { axpy(alpha, x, y) }
    }

    fn gather_dot(&self, idx: &[usize], vals: &[f64], x: &[f64]) -> f64 {
        // SAFETY: selection guarantees avx2+fma (module docs).
        unsafe { gather_dot(idx, vals, x) }
    }

    fn scatter_axpy(&self, alpha: f64, idx: &[usize], vals: &[f64], y: &mut [f64]) {
        // SAFETY: selection guarantees avx2+fma (module docs).
        unsafe { scatter_axpy(alpha, idx, vals, y) }
    }

    fn masked_gather_dot(
        &self,
        idx: &[usize],
        vals: &[f64],
        x: &[f64],
        pos: &[usize],
        cutoff: usize,
    ) -> f64 {
        // SAFETY: selection guarantees avx2+fma (module docs).
        unsafe { masked_gather_dot(idx, vals, x, pos, cutoff) }
    }

    fn norm_inf(&self, x: &[f64]) -> f64 {
        // SAFETY: selection guarantees avx2+fma (module docs).
        unsafe { norm_inf(x) }
    }

    fn scale(&self, alpha: f64, x: &mut [f64]) {
        // SAFETY: selection guarantees avx2+fma (module docs).
        unsafe { scale(alpha, x) }
    }
}

/// Horizontal sum of the four lanes.
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let pair = _mm_add_pd(lo, hi);
    _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)))
}

/// Horizontal sum in the scalar baseline's association `(l0+l1)+(l2+l3)`
/// — the reduction order of its four unrolled accumulators. Used by the
/// bit-exact gathered kernels (see the module docs' numerics section).
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum_lane_pairs(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let a = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
    let b = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));
    _mm_cvtsd_f64(_mm_add_sd(a, b))
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 8 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)), acc0);
        acc1 =
            _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i + 4)), _mm256_loadu_pd(pb.add(i + 4)), acc1);
        i += 8;
    }
    if i + 4 <= n {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)), acc0);
        i += 4;
    }
    let mut s = hsum(_mm256_add_pd(acc0, acc1));
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

#[target_feature(enable = "avx2,fma")]
unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let n = x.len().min(y.len());
    let va = _mm256_set1_pd(alpha);
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        let y0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i)));
        _mm256_storeu_pd(py.add(i), y0);
        let y1 =
            _mm256_fmadd_pd(va, _mm256_loadu_pd(px.add(i + 4)), _mm256_loadu_pd(py.add(i + 4)));
        _mm256_storeu_pd(py.add(i + 4), y1);
        i += 8;
    }
    if i + 4 <= n {
        let y0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i)));
        _mm256_storeu_pd(py.add(i), y0);
        i += 4;
    }
    while i < n {
        y[i] += alpha * x[i];
        i += 1;
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn gather_dot(idx: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    // Insert-based gather: four ordinary (bounds-checked, so OOB still
    // panics like the scalar baseline) loads packed into one lane set.
    // On every AVX2 part we care about this beats the microcoded
    // `vgatherqpd` hardware gather, which costs more µops than four
    // scalar loads. Separate mul + add (no FMA) and the lane-pair
    // reduction keep the result **bit-exact** with the scalar baseline:
    // lane k replays accumulator `s_k` operation for operation.
    let n = idx.len().min(vals.len());
    let mut acc = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 4 <= n {
        let g = _mm256_set_pd(x[idx[i + 3]], x[idx[i + 2]], x[idx[i + 1]], x[idx[i]]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(vals.as_ptr().add(i)), g));
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        tail += vals[i] * x[idx[i]];
        i += 1;
    }
    hsum_lane_pairs(acc) + tail
}

#[target_feature(enable = "avx2,fma")]
unsafe fn scatter_axpy(alpha: f64, idx: &[usize], vals: &[f64], y: &mut [f64]) {
    // No scatter store below AVX-512: vectorize the multiply, keep the
    // four stores scalar (bounds-checked by ordinary indexing). The
    // indices are pairwise distinct per the kernel contract, so the
    // read-modify-write order within a chunk is immaterial.
    let n = idx.len().min(vals.len());
    let va = _mm256_set1_pd(alpha);
    let mut i = 0usize;
    let mut prod = [0.0f64; 4];
    while i + 4 <= n {
        let p = _mm256_mul_pd(va, _mm256_loadu_pd(vals.as_ptr().add(i)));
        _mm256_storeu_pd(prod.as_mut_ptr(), p);
        y[idx[i]] += prod[0];
        y[idx[i + 1]] += prod[1];
        y[idx[i + 2]] += prod[2];
        y[idx[i + 3]] += prod[3];
        i += 4;
    }
    while i < n {
        y[idx[i]] += alpha * vals[i];
        i += 1;
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn masked_gather_dot(
    idx: &[usize],
    vals: &[f64],
    x: &[f64],
    pos: &[usize],
    cutoff: usize,
) -> f64 {
    // Insert-based masked gather, same rationale as [`gather_dot`]
    // (including bit-exactness): the per-lane window test selects `x[r]`
    // or `0.0` *before* the lanes are packed, so an excluded entry's
    // value (NaN in the FT workspace outside the active window) never
    // enters the product, and the bounds-check/panic behavior is
    // lane-for-lane identical to the scalar baseline (`pos` indexed
    // always, `x` only inside the window).
    let n = idx.len().min(vals.len());
    let mut acc = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 4 <= n {
        let (r0, r1, r2, r3) = (idx[i], idx[i + 1], idx[i + 2], idx[i + 3]);
        let v0 = if pos[r0] > cutoff { x[r0] } else { 0.0 };
        let v1 = if pos[r1] > cutoff { x[r1] } else { 0.0 };
        let v2 = if pos[r2] > cutoff { x[r2] } else { 0.0 };
        let v3 = if pos[r3] > cutoff { x[r3] } else { 0.0 };
        let g = _mm256_set_pd(v3, v2, v1, v0);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(vals.as_ptr().add(i)), g));
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        let r = idx[i];
        let p = if pos[r] > cutoff { x[r] } else { 0.0 };
        tail += vals[i] * p;
        i += 1;
    }
    hsum_lane_pairs(acc) + tail
}

#[target_feature(enable = "avx2,fma")]
unsafe fn norm_inf(x: &[f64]) -> f64 {
    // Clearing the sign bit is |x|; `maxpd` returns its *second* operand
    // when either input is NaN, so keeping the accumulator second makes
    // a NaN lane lose — the same ignore-NaN semantics as `f64::max`.
    let absmask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
    let mut acc = _mm256_setzero_pd();
    let p = x.as_ptr();
    let mut i = 0usize;
    while i + 4 <= x.len() {
        let v = _mm256_and_pd(_mm256_loadu_pd(p.add(i)), absmask);
        acc = _mm256_max_pd(v, acc);
        i += 4;
    }
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd(acc, 1);
    let pair = _mm_max_pd(hi, lo);
    let mut m = _mm_cvtsd_f64(_mm_max_sd(_mm_unpackhi_pd(pair, pair), pair));
    while i < x.len() {
        m = m.max(x[i].abs());
        i += 1;
    }
    m
}

#[target_feature(enable = "avx2,fma")]
unsafe fn scale(alpha: f64, x: &mut [f64]) {
    let va = _mm256_set1_pd(alpha);
    let p = x.as_mut_ptr();
    let n = x.len();
    let mut i = 0usize;
    while i + 4 <= n {
        _mm256_storeu_pd(p.add(i), _mm256_mul_pd(va, _mm256_loadu_pd(p.add(i))));
        i += 4;
    }
    while i < n {
        x[i] *= alpha;
        i += 1;
    }
}
