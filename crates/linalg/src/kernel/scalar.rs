//! Portable scalar baseline: the four-wide unrolled loops every target
//! compiles. These bodies are the reference semantics for the whole
//! kernel layer — a SIMD backend is correct exactly when it agrees with
//! them on every input (within reassociation/FMA rounding, pinned by the
//! property tests in `tests/prop.rs`).
//!
//! The unroll pattern is deliberate: four independent accumulators break
//! the serial dependence of a naive fold so the FP pipelines stay full,
//! and the chunked slices give the compiler bounds-check-free bodies it
//! can lower to whatever vector width the build target guarantees.

use super::VecKernel;

/// The portable baseline kernel (always available, always selectable).
#[derive(Debug, Clone, Copy)]
pub struct ScalarKernel;

impl VecKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn dot(&self, a: &[f64], b: &[f64]) -> f64 {
        dot(a, b)
    }

    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        axpy(alpha, x, y);
    }

    fn gather_dot(&self, idx: &[usize], vals: &[f64], x: &[f64]) -> f64 {
        gather_dot(idx, vals, x)
    }

    fn scatter_axpy(&self, alpha: f64, idx: &[usize], vals: &[f64], y: &mut [f64]) {
        scatter_axpy(alpha, idx, vals, y);
    }

    fn masked_gather_dot(
        &self,
        idx: &[usize],
        vals: &[f64],
        x: &[f64],
        pos: &[usize],
        cutoff: usize,
    ) -> f64 {
        masked_gather_dot(idx, vals, x, pos, cutoff)
    }

    fn norm_inf(&self, x: &[f64]) -> f64 {
        norm_inf(x)
    }

    fn scale(&self, alpha: f64, x: &mut [f64]) {
        scale(alpha, x);
    }
}

pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        s0 += xa[0] * xb[0];
        s1 += xa[1] * xb[1];
        s2 += xa[2] * xb[2];
        s3 += xa[3] * xb[3];
    }
    let tail: f64 = ca.remainder().iter().zip(cb.remainder()).map(|(x, y)| x * y).sum();
    (s0 + s1) + (s2 + s3) + tail
}

pub(crate) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact_mut(4);
    for (xs, ys) in cx.by_ref().zip(cy.by_ref()) {
        ys[0] += alpha * xs[0];
        ys[1] += alpha * xs[1];
        ys[2] += alpha * xs[2];
        ys[3] += alpha * xs[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

pub(crate) fn gather_dot(idx: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(idx.len(), vals.len());
    let mut ci = idx.chunks_exact(4);
    let mut cv = vals.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (is, vs) in ci.by_ref().zip(cv.by_ref()) {
        s0 += vs[0] * x[is[0]];
        s1 += vs[1] * x[is[1]];
        s2 += vs[2] * x[is[2]];
        s3 += vs[3] * x[is[3]];
    }
    let tail: f64 = ci
        .remainder()
        .iter()
        .zip(cv.remainder())
        .map(|(&r, &v)| v * x[r])
        .sum();
    (s0 + s1) + (s2 + s3) + tail
}

pub(crate) fn scatter_axpy(alpha: f64, idx: &[usize], vals: &[f64], y: &mut [f64]) {
    debug_assert_eq!(idx.len(), vals.len());
    let mut ci = idx.chunks_exact(4);
    let mut cv = vals.chunks_exact(4);
    for (is, vs) in ci.by_ref().zip(cv.by_ref()) {
        y[is[0]] += alpha * vs[0];
        y[is[1]] += alpha * vs[1];
        y[is[2]] += alpha * vs[2];
        y[is[3]] += alpha * vs[3];
    }
    for (&r, &v) in ci.remainder().iter().zip(cv.remainder()) {
        y[r] += alpha * v;
    }
}

pub(crate) fn masked_gather_dot(
    idx: &[usize],
    vals: &[f64],
    x: &[f64],
    pos: &[usize],
    cutoff: usize,
) -> f64 {
    debug_assert_eq!(idx.len(), vals.len());
    let mut ci = idx.chunks_exact(4);
    let mut cv = vals.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    // Select-to-zero rather than conditional skip: the four accumulator
    // lanes stay independent (a branch would serialize them), and an
    // excluded entry's `x` value is never read into the product, so the
    // caller's workspace only has to be clean inside the window.
    let pick = |r: usize| if pos[r] > cutoff { x[r] } else { 0.0 };
    for (is, vs) in ci.by_ref().zip(cv.by_ref()) {
        s0 += vs[0] * pick(is[0]);
        s1 += vs[1] * pick(is[1]);
        s2 += vs[2] * pick(is[2]);
        s3 += vs[3] * pick(is[3]);
    }
    let tail: f64 = ci
        .remainder()
        .iter()
        .zip(cv.remainder())
        .map(|(&r, &v)| v * pick(r))
        .sum();
    (s0 + s1) + (s2 + s3) + tail
}

pub(crate) fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

pub(crate) fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}
