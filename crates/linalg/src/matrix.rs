//! Row-major dense matrix with the elimination routines the rest of the
//! workspace needs: linear solves, rank, nullspace bases, least squares and
//! inverses. All pivoting uses partial pivoting with the shared [`crate::EPS`]
//! tolerance.

use crate::{vecops, EPS};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// ```
/// use qava_linalg::Matrix;
/// let m = Matrix::identity(3);
/// assert_eq!(m.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in &rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()` (unless the matrix is empty).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row: width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows).map(|i| vecops::dot(self.row(i), x)).collect()
    }

    /// Transposed matrix–vector product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn mul_vec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "mul_vec_transposed: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            vecops::axpy(xi, self.row(i), &mut out);
        }
        out
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "mul: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Reduces the matrix in place to row echelon form with partial pivoting
    /// and returns the pivot column of each pivot row.
    pub fn row_echelon(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut r = 0;
        for c in 0..self.cols {
            if r == self.rows {
                break;
            }
            // Partial pivoting: largest absolute entry in column c below r.
            let (best, mag) = (r..self.rows)
                .map(|i| (i, self[(i, c)].abs()))
                .fold((r, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
            if mag <= EPS {
                continue;
            }
            self.swap_rows(r, best);
            let inv = 1.0 / self[(r, c)];
            for j in c..self.cols {
                self[(r, j)] *= inv;
            }
            for i in 0..self.rows {
                if i != r {
                    let f = self[(i, c)];
                    if f.abs() > EPS {
                        for j in c..self.cols {
                            let v = self[(r, j)];
                            self[(i, j)] -= f * v;
                        }
                    }
                }
            }
            pivots.push(c);
            r += 1;
        }
        pivots
    }

    /// Numerical rank via Gaussian elimination.
    pub fn rank(&self) -> usize {
        let mut work = self.clone();
        work.row_echelon().len()
    }

    /// Solves `A·x = b` for square `A`. Returns `None` when `A` is singular
    /// (to working tolerance).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve: matrix must be square");
        assert_eq!(b.len(), self.rows, "solve: rhs length mismatch");
        let n = self.rows;
        let mut aug = Matrix::zeros(n, n + 1);
        for i in 0..n {
            aug.row_mut(i)[..n].copy_from_slice(self.row(i));
            aug[(i, n)] = b[i];
        }
        let pivots = aug.row_echelon();
        if pivots.len() < n {
            return None;
        }
        Some((0..n).map(|i| aug[(i, n)]).collect())
    }

    /// Returns a basis of the nullspace `{x : A·x = 0}` (empty when the map
    /// is injective).
    pub fn nullspace(&self) -> Vec<Vec<f64>> {
        let mut work = self.clone();
        let pivots = work.row_echelon();
        let pivot_set: Vec<bool> = {
            let mut s = vec![false; self.cols];
            for &c in &pivots {
                s[c] = true;
            }
            s
        };
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_set[free] {
                continue;
            }
            let mut v = vec![0.0; self.cols];
            v[free] = 1.0;
            for (r, &pc) in pivots.iter().enumerate() {
                v[pc] = -work[(r, free)];
            }
            basis.push(v);
        }
        basis
    }

    /// Inverse of a square matrix; `None` when singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse: matrix must be square");
        let n = self.rows;
        let mut aug = Matrix::zeros(n, 2 * n);
        for i in 0..n {
            aug.row_mut(i)[..n].copy_from_slice(self.row(i));
            aug[(i, n + i)] = 1.0;
        }
        let pivots = aug.row_echelon();
        if pivots.len() < n || pivots.iter().enumerate().any(|(r, &c)| r != c) {
            return None;
        }
        let mut inv = Matrix::zeros(n, n);
        for i in 0..n {
            inv.row_mut(i).copy_from_slice(&aug.row(i)[n..]);
        }
        Some(inv)
    }

    /// Minimum-norm least-squares solution of `A·x ≈ b` via normal equations
    /// with a tiny Tikhonov ridge; always returns a vector.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.rows()`.
    pub fn least_squares(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.rows, "least_squares: rhs length mismatch");
        let at = self.transpose();
        let mut ata = at.mul(self);
        // Ridge keeps the normal equations solvable for rank-deficient A;
        // it must dominate the elimination pivot tolerance EPS.
        let scale = (0..ata.rows).map(|i| ata[(i, i)].abs()).fold(1.0, f64::max);
        for i in 0..ata.rows {
            ata[(i, i)] += 1e-7 * scale;
        }
        let atb = self.mul_vec_transposed(b);
        ata.solve(&atb).expect("ridge-regularized normal equations are nonsingular")
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, i: usize, j: usize) {
        assert!(i < self.rows && j < self.rows, "swap_rows: index out of bounds");
        if i == j {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(i * self.cols + c, j * self.cols + c);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let m = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.solve(&b).unwrap(), b);
    }

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn singular_solve_is_none() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn rank_of_rank_deficient() {
        let a = Matrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![1.0, 0.0, 1.0],
        ]);
        assert_eq!(a.rank(), 2);
    }

    #[test]
    fn nullspace_annihilates() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![0.0, 1.0, 1.0]]);
        let ns = a.nullspace();
        assert_eq!(ns.len(), 1);
        let img = a.mul_vec(&ns[0]);
        assert!(crate::vecops::norm_inf(&img) < 1e-9);
    }

    #[test]
    fn nullspace_of_full_rank_is_empty() {
        let a = Matrix::identity(3);
        assert!(a.nullspace().is_empty());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(vec![
            vec![4.0, 7.0, 2.0],
            vec![3.0, 5.0, 1.0],
            vec![-1.0, 0.0, 2.0],
        ]);
        let inv = a.inverse().unwrap();
        let prod = a.mul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn inverse_of_singular_is_none() {
        let a = Matrix::from_rows(vec![vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_against_hand_computation() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.mul(&b);
        assert_eq!(c, Matrix::from_rows(vec![vec![2.0, 1.0], vec![4.0, 3.0]]));
    }

    #[test]
    fn mul_vec_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 0.0], vec![0.0, 1.0, -1.0]]);
        let x = vec![2.0, 3.0];
        assert_eq!(a.mul_vec_transposed(&x), a.transpose().mul_vec(&x));
    }

    #[test]
    fn least_squares_overdetermined() {
        // Fit y = 2t + 1 through exact points.
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]]);
        let x = a.least_squares(&[1.0, 3.0, 5.0]);
        assert!((x[0] - 2.0).abs() < 1e-5);
        assert!((x[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m[(1, 0)], 3.0);
    }
}
