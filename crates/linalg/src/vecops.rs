//! Free functions on `&[f64]` slices.
//!
//! Vectors flow between crates as plain `Vec<f64>`; these helpers keep the
//! call sites short without committing the whole workspace to a wrapper type.
//!
//! The `dot`/`axpy`/`gather_dot`/`scatter_axpy` kernels are the inner loops
//! of the revised simplex (`B⁻¹` row updates, simplex-multiplier
//! accumulation, column pricing, and the sparse triangular solves through
//! the LU factors and eta file) and are unrolled four-wide: independent
//! accumulators break the serial dependence of a naive fold so the FP
//! pipelines stay full, and the chunked slices give the compiler
//! bounds-check-free bodies to vectorize.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(qava_linalg::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        s0 += xa[0] * xb[0];
        s1 += xa[1] * xb[1];
        s2 += xa[2] * xb[2];
        s3 += xa[3] * xb[3];
    }
    let tail: f64 = ca.remainder().iter().zip(cb.remainder()).map(|(x, y)| x * y).sum();
    (s0 + s1) + (s2 + s3) + tail
}

/// `y += alpha * x`, the classic axpy update.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact_mut(4);
    for (xs, ys) in cx.by_ref().zip(cy.by_ref()) {
        ys[0] += alpha * xs[0];
        ys[1] += alpha * xs[1];
        ys[2] += alpha * xs[2];
        ys[3] += alpha * xs[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// Sparse gather dot product `Σ_k vals[k] · x[idx[k]]` — the pricing and
/// forward-transformation kernel of the revised simplex, where one operand
/// is a CSC column and the other a dense vector.
///
/// # Panics
///
/// Panics if `idx` and `vals` have different lengths, or if an index is out
/// of bounds for `x`.
pub fn gather_dot(idx: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    assert_eq!(idx.len(), vals.len(), "gather_dot: length mismatch");
    let mut ci = idx.chunks_exact(4);
    let mut cv = vals.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (is, vs) in ci.by_ref().zip(cv.by_ref()) {
        s0 += vs[0] * x[is[0]];
        s1 += vs[1] * x[is[1]];
        s2 += vs[2] * x[is[2]];
        s3 += vs[3] * x[is[3]];
    }
    let tail: f64 = ci
        .remainder()
        .iter()
        .zip(cv.remainder())
        .map(|(&r, &v)| v * x[r])
        .sum();
    (s0 + s1) + (s2 + s3) + tail
}

/// Sparse scatter update `y[idx[k]] += alpha · vals[k]` — the other half of
/// the sparse triangular-solve kernels: [`gather_dot`] drives the transposed
/// (btran) solves, this drives the forward (ftran) solves through L columns
/// and product-form eta columns, where one elimination column is subtracted
/// from a dense running right-hand side.
///
/// The indices must be pairwise distinct (CSC columns are); with duplicates
/// the unrolled accumulation order would differ from the naive one.
///
/// # Panics
///
/// Panics if `idx` and `vals` have different lengths, or if an index is out
/// of bounds for `y`.
pub fn scatter_axpy(alpha: f64, idx: &[usize], vals: &[f64], y: &mut [f64]) {
    assert_eq!(idx.len(), vals.len(), "scatter_axpy: length mismatch");
    let mut ci = idx.chunks_exact(4);
    let mut cv = vals.chunks_exact(4);
    for (is, vs) in ci.by_ref().zip(cv.by_ref()) {
        y[is[0]] += alpha * vs[0];
        y[is[1]] += alpha * vs[1];
        y[is[2]] += alpha * vs[2];
        y[is[3]] += alpha * vs[3];
    }
    for (&r, &v) in ci.remainder().iter().zip(cv.remainder()) {
        y[r] += alpha * v;
    }
}

/// Masked sparse gather dot product `Σ_k vals[k] · x[idx[k]]` over the
/// entries whose position `pos[idx[k]]` is strictly greater than
/// `cutoff` — the row-spike elimination kernel of the Forrest–Tomlin
/// basis update, where one U column is dotted against the running spike
/// multipliers but only the entries inside the active permutation window
/// `(cutoff, m)` participate (everything at or before the cut is outside
/// the spike row and must not touch the workspace).
///
/// Fusing the position test into the gather keeps the kernel O(nnz of
/// the column) with no materialized sub-column, and lets the caller keep
/// a workspace that is only clean inside the window.
///
/// # Panics
///
/// Panics if `idx` and `vals` have different lengths, or if an index is
/// out of bounds for `x` or `pos`.
pub fn masked_gather_dot(
    idx: &[usize],
    vals: &[f64],
    x: &[f64],
    pos: &[usize],
    cutoff: usize,
) -> f64 {
    assert_eq!(idx.len(), vals.len(), "masked_gather_dot: length mismatch");
    let mut ci = idx.chunks_exact(4);
    let mut cv = vals.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    // Select-to-zero rather than conditional skip: the four accumulator
    // lanes stay independent (a branch would serialize them), and an
    // excluded entry's `x` value is never read into the product, so the
    // caller's workspace only has to be clean inside the window.
    let pick = |r: usize| if pos[r] > cutoff { x[r] } else { 0.0 };
    for (is, vs) in ci.by_ref().zip(cv.by_ref()) {
        s0 += vs[0] * pick(is[0]);
        s1 += vs[1] * pick(is[1]);
        s2 += vs[2] * pick(is[2]);
        s3 += vs[3] * pick(is[3]);
    }
    let tail: f64 = ci
        .remainder()
        .iter()
        .zip(cv.remainder())
        .map(|(&r, &v)| v * pick(r))
        .sum();
    (s0 + s1) + (s2 + s3) + tail
}

/// Returns `alpha * x` as a new vector.
pub fn scale(alpha: f64, x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| alpha * v).collect()
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Maximum absolute entry (`∞`-norm); `0.0` for the empty slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Scales `x` so its largest absolute entry is 1; leaves (near-)zero vectors
/// untouched. Used to keep double-description rays well-conditioned.
pub fn normalize_inf(x: &mut [f64]) {
    let m = norm_inf(x);
    if m > crate::EPS {
        for v in x.iter_mut() {
            *v /= m;
        }
    }
}

/// Returns `true` when every entry of `x` is within `tol` of zero.
pub fn is_zero(x: &[f64], tol: f64) -> bool {
    x.iter().all(|v| v.abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, -2.0, 3.0], &[4.0, 5.0, 6.0]), 12.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_naive_at_every_remainder_length() {
        // Lengths 0..13 cross the 4-wide chunk boundary at every offset.
        for len in 0..13usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64) * 0.75 - 3.0).collect();
            let b: Vec<f64> = (0..len).map(|i| 1.5 - (i as f64) * 0.25).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-12, "len {len}");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn axpy_unrolled_matches_naive_at_every_remainder_length() {
        for len in 0..13usize {
            let x: Vec<f64> = (0..len).map(|i| (i as f64) - 2.0).collect();
            let mut y: Vec<f64> = (0..len).map(|i| 0.5 * (i as f64)).collect();
            let mut naive = y.clone();
            for (ni, xi) in naive.iter_mut().zip(&x) {
                *ni += -1.75 * xi;
            }
            axpy(-1.75, &x, &mut y);
            assert_eq!(y, naive, "len {len}");
        }
    }

    #[test]
    fn gather_dot_matches_dense_dot() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        // Sparse vector with entries at 0, 2, 3, 5 (crosses the unroll
        // boundary at length 4) plus shorter prefixes.
        let idx = [0usize, 2, 3, 5, 1];
        let vals = [2.0, -1.0, 0.5, 4.0, 3.0];
        for take in 0..=idx.len() {
            let naive: f64 = idx[..take].iter().zip(&vals[..take]).map(|(&r, &v)| v * x[r]).sum();
            assert_eq!(gather_dot(&idx[..take], &vals[..take], &x), naive, "take {take}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn gather_dot_length_mismatch_panics() {
        gather_dot(&[0], &[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn masked_gather_dot_respects_the_position_window() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        // A permutation of positions, deliberately not the identity.
        let pos = vec![3usize, 0, 5, 1, 7, 2, 6, 4];
        let idx = [0usize, 2, 3, 5, 1, 7, 6];
        let vals = [2.0, -1.0, 0.5, 4.0, 3.0, -0.25, 1.5];
        for cutoff in 0..8usize {
            for take in 0..=idx.len() {
                let naive: f64 = idx[..take]
                    .iter()
                    .zip(&vals[..take])
                    .filter(|&(&r, _)| pos[r] > cutoff)
                    .map(|(&r, &v)| v * x[r])
                    .sum();
                let got = masked_gather_dot(&idx[..take], &vals[..take], &x, &pos, cutoff);
                assert!((got - naive).abs() < 1e-12, "cutoff {cutoff} take {take}");
            }
        }
    }

    #[test]
    fn masked_gather_dot_never_reads_excluded_entries() {
        // Entries outside the window hold NaN: the kernel must not let
        // them poison the sum (select-to-zero, not multiply-by-mask).
        let x = vec![f64::NAN, 2.0, f64::NAN, 4.0, 1.0];
        let pos = vec![0usize, 3, 1, 4, 2];
        let idx = [0usize, 1, 2, 3, 4];
        let vals = [1.0; 5];
        let got = masked_gather_dot(&idx, &vals, &x, &pos, 2);
        assert_eq!(got, 6.0, "only positions 3 and 4 are inside the window");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn masked_gather_dot_length_mismatch_panics() {
        masked_gather_dot(&[0], &[1.0, 2.0], &[1.0], &[0], 0);
    }

    #[test]
    fn scatter_axpy_matches_naive_at_every_remainder_length() {
        // Distinct indices crossing the 4-wide unroll boundary.
        let idx = [5usize, 0, 3, 7, 1, 6];
        let vals = [2.0, -1.0, 0.5, 4.0, 3.0, -0.25];
        for take in 0..=idx.len() {
            let mut y = vec![1.0; 8];
            let mut naive = y.clone();
            for (&r, &v) in idx[..take].iter().zip(&vals[..take]) {
                naive[r] += -1.5 * v;
            }
            scatter_axpy(-1.5, &idx[..take], &vals[..take], &mut y);
            assert_eq!(y, naive, "take {take}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scatter_axpy_length_mismatch_panics() {
        scatter_axpy(1.0, &[0], &[1.0, 2.0], &mut [1.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -0.5, 4.0];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn normalize_scales_to_unit_inf_norm() {
        let mut x = vec![2.0, -8.0, 4.0];
        normalize_inf(&mut x);
        assert_eq!(x, vec![0.25, -1.0, 0.5]);
    }

    #[test]
    fn normalize_leaves_zero_alone() {
        let mut x = vec![0.0, 0.0];
        normalize_inf(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn is_zero_tolerant() {
        assert!(is_zero(&[1e-12, -1e-12], 1e-9));
        assert!(!is_zero(&[1e-3], 1e-9));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
