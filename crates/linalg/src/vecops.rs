//! Free functions on `&[f64]` slices.
//!
//! Vectors flow between crates as plain `Vec<f64>`; these helpers keep the
//! call sites short without committing the whole workspace to a wrapper type.
//!
//! The `dot`/`axpy`/`gather_dot`/`scatter_axpy`/`masked_gather_dot` kernels
//! are the inner loops of the revised simplex (`B⁻¹` row updates,
//! simplex-multiplier accumulation, column pricing, and the sparse
//! triangular solves through the LU factors, eta file and Forrest–Tomlin
//! row etas). Since PR 8 they dispatch through the [`kernel`](crate::kernel)
//! subsystem: one runtime selection per process picks the best
//! [`VecKernel`](crate::kernel::VecKernel) backend the CPU proves
//! (AVX2+FMA on x86_64, NEON on aarch64, the portable four-wide scalar
//! unrolls everywhere), overridable with `QAVA_KERNEL={auto,scalar,avx2,
//! neon}`. The free-function signatures here are unchanged, so every call
//! site across the workspace rides whichever backend was selected.
//!
//! Slices shorter than [`kernel::DISPATCH_MIN`](crate::kernel::DISPATCH_MIN)
//! bypass the dispatch table into the inlined scalar bodies — the µs-scale
//! polyhedra probes and short eta columns live below one vector iteration,
//! where an indirect call costs more than it saves. Results for such
//! lengths are therefore bit-identical under every `QAVA_KERNEL` value.

use crate::kernel::{self, scalar};

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(qava_linalg::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    if a.len() < kernel::DISPATCH_MIN {
        scalar::dot(a, b)
    } else {
        kernel::active().dot(a, b)
    }
}

/// `y += alpha * x`, the classic axpy update.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if x.len() < kernel::DISPATCH_MIN {
        scalar::axpy(alpha, x, y);
    } else {
        kernel::active().axpy(alpha, x, y);
    }
}

/// Sparse gather dot product `Σ_k vals[k] · x[idx[k]]` — the pricing and
/// forward-transformation kernel of the revised simplex, where one operand
/// is a CSC column and the other a dense vector.
///
/// # Panics
///
/// Panics if `idx` and `vals` have different lengths, or if an index is out
/// of bounds for `x`.
#[inline]
pub fn gather_dot(idx: &[usize], vals: &[f64], x: &[f64]) -> f64 {
    assert_eq!(idx.len(), vals.len(), "gather_dot: length mismatch");
    if idx.len() < kernel::DISPATCH_MIN {
        scalar::gather_dot(idx, vals, x)
    } else {
        kernel::active().gather_dot(idx, vals, x)
    }
}

/// Sparse scatter update `y[idx[k]] += alpha · vals[k]` — the other half of
/// the sparse triangular-solve kernels: [`gather_dot`] drives the transposed
/// (btran) solves, this drives the forward (ftran) solves through L columns
/// and product-form eta columns, where one elimination column is subtracted
/// from a dense running right-hand side.
///
/// The indices must be pairwise distinct (CSC columns are); with duplicates
/// the unrolled accumulation order would differ from the naive one.
///
/// # Panics
///
/// Panics if `idx` and `vals` have different lengths, or if an index is out
/// of bounds for `y`.
#[inline]
pub fn scatter_axpy(alpha: f64, idx: &[usize], vals: &[f64], y: &mut [f64]) {
    assert_eq!(idx.len(), vals.len(), "scatter_axpy: length mismatch");
    if idx.len() < kernel::DISPATCH_MIN {
        scalar::scatter_axpy(alpha, idx, vals, y);
    } else {
        kernel::active().scatter_axpy(alpha, idx, vals, y);
    }
}

/// Masked sparse gather dot product `Σ_k vals[k] · x[idx[k]]` over the
/// entries whose position `pos[idx[k]]` is strictly greater than
/// `cutoff` — the row-spike elimination kernel of the Forrest–Tomlin
/// basis update, where one U column is dotted against the running spike
/// multipliers but only the entries inside the active permutation window
/// `(cutoff, m)` participate (everything at or before the cut is outside
/// the spike row and must not touch the workspace).
///
/// Fusing the position test into the gather keeps the kernel O(nnz of
/// the column) with no materialized sub-column, and lets the caller keep
/// a workspace that is only clean inside the window: an excluded entry's
/// `x` value is never read into the product under any kernel backend.
///
/// # Panics
///
/// Panics if `idx` and `vals` have different lengths, or if an index is
/// out of bounds for `pos`, or if a window-*included* index is out of
/// bounds for `x` — identically under every kernel backend (the SIMD
/// backends run the window test per lane before touching `x`).
#[inline]
pub fn masked_gather_dot(
    idx: &[usize],
    vals: &[f64],
    x: &[f64],
    pos: &[usize],
    cutoff: usize,
) -> f64 {
    assert_eq!(idx.len(), vals.len(), "masked_gather_dot: length mismatch");
    if idx.len() < kernel::DISPATCH_MIN {
        scalar::masked_gather_dot(idx, vals, x, pos, cutoff)
    } else {
        kernel::active().masked_gather_dot(idx, vals, x, pos, cutoff)
    }
}

/// Returns `alpha * x` as a new vector.
pub fn scale(alpha: f64, x: &[f64]) -> Vec<f64> {
    let mut out = x.to_vec();
    scale_in_place(alpha, &mut out);
    out
}

/// In-place `x *= alpha` — the row-scaling kernel of equilibration and
/// of the dense tableau's pivot normalization.
#[inline]
pub fn scale_in_place(alpha: f64, x: &mut [f64]) {
    if x.len() < kernel::DISPATCH_MIN {
        scalar::scale(alpha, x);
    } else {
        kernel::active().scale(alpha, x);
    }
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Maximum absolute entry (`∞`-norm); `0.0` for the empty slice.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    if x.len() < kernel::DISPATCH_MIN {
        scalar::norm_inf(x)
    } else {
        kernel::active().norm_inf(x)
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Scales `x` so its largest absolute entry is 1; leaves (near-)zero vectors
/// untouched. Used to keep double-description rays well-conditioned.
pub fn normalize_inf(x: &mut [f64]) {
    let m = norm_inf(x);
    if m > crate::EPS {
        scale_in_place(1.0 / m, x);
    }
}

/// Returns `true` when every entry of `x` is within `tol` of zero.
pub fn is_zero(x: &[f64], tol: f64) -> bool {
    x.iter().all(|v| v.abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, -2.0, 3.0], &[4.0, 5.0, 6.0]), 12.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_unrolled_matches_naive_at_every_remainder_length() {
        // Lengths 0..13 cross the 4-wide chunk boundary at every offset
        // and straddle the DISPATCH_MIN cutover into the SIMD backend.
        for len in 0..13usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64) * 0.75 - 3.0).collect();
            let b: Vec<f64> = (0..len).map(|i| 1.5 - (i as f64) * 0.25).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-12, "len {len}");
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn axpy_unrolled_matches_naive_at_every_remainder_length() {
        for len in 0..13usize {
            let x: Vec<f64> = (0..len).map(|i| (i as f64) - 2.0).collect();
            let mut y: Vec<f64> = (0..len).map(|i| 0.5 * (i as f64)).collect();
            let mut naive = y.clone();
            for (ni, xi) in naive.iter_mut().zip(&x) {
                *ni += -1.75 * xi;
            }
            axpy(-1.75, &x, &mut y);
            for (got, want) in y.iter().zip(&naive) {
                assert!((got - want).abs() < 1e-12, "len {len}");
            }
        }
    }

    #[test]
    fn gather_dot_matches_dense_dot() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        // Sparse vector with entries at 0, 2, 3, 5 (crosses the unroll
        // boundary at length 4) plus shorter prefixes.
        let idx = [0usize, 2, 3, 5, 1];
        let vals = [2.0, -1.0, 0.5, 4.0, 3.0];
        for take in 0..=idx.len() {
            let naive: f64 = idx[..take].iter().zip(&vals[..take]).map(|(&r, &v)| v * x[r]).sum();
            assert_eq!(gather_dot(&idx[..take], &vals[..take], &x), naive, "take {take}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn gather_dot_length_mismatch_panics() {
        gather_dot(&[0], &[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn masked_gather_dot_respects_the_position_window() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        // A permutation of positions, deliberately not the identity.
        let pos = vec![3usize, 0, 5, 1, 7, 2, 6, 4];
        let idx = [0usize, 2, 3, 5, 1, 7, 6];
        let vals = [2.0, -1.0, 0.5, 4.0, 3.0, -0.25, 1.5];
        for cutoff in 0..8usize {
            for take in 0..=idx.len() {
                let naive: f64 = idx[..take]
                    .iter()
                    .zip(&vals[..take])
                    .filter(|&(&r, _)| pos[r] > cutoff)
                    .map(|(&r, &v)| v * x[r])
                    .sum();
                let got = masked_gather_dot(&idx[..take], &vals[..take], &x, &pos, cutoff);
                assert!((got - naive).abs() < 1e-12, "cutoff {cutoff} take {take}");
            }
        }
    }

    #[test]
    fn masked_gather_dot_never_reads_excluded_entries() {
        // Entries outside the window hold NaN: the kernel must not let
        // them poison the sum (select-to-zero, not multiply-by-mask).
        // Length 9 pushes the call through the dispatched SIMD path.
        let x = vec![f64::NAN, 2.0, f64::NAN, 4.0, 1.0, f64::NAN, 3.0, f64::NAN, 5.0];
        let pos = vec![0usize, 4, 1, 5, 6, 2, 7, 3, 8];
        let idx = [0usize, 1, 2, 3, 4, 5, 6, 7, 8];
        let vals = [1.0; 9];
        let got = masked_gather_dot(&idx, &vals, &x, &pos, 3);
        assert_eq!(got, 2.0 + 4.0 + 1.0 + 3.0 + 5.0, "every NaN entry sits outside the window");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn masked_gather_dot_length_mismatch_panics() {
        masked_gather_dot(&[0], &[1.0, 2.0], &[1.0], &[0], 0);
    }

    #[test]
    fn scatter_axpy_matches_naive_at_every_remainder_length() {
        // Distinct indices crossing the 4-wide unroll boundary and the
        // DISPATCH_MIN cutover.
        let idx = [5usize, 0, 3, 7, 1, 6, 2, 4, 8];
        let vals = [2.0, -1.0, 0.5, 4.0, 3.0, -0.25, 1.25, -2.0, 0.75];
        for take in 0..=idx.len() {
            let mut y = vec![1.0; 9];
            let mut naive = y.clone();
            for (&r, &v) in idx[..take].iter().zip(&vals[..take]) {
                naive[r] += -1.5 * v;
            }
            scatter_axpy(-1.5, &idx[..take], &vals[..take], &mut y);
            for (got, want) in y.iter().zip(&naive) {
                assert!((got - want).abs() < 1e-12, "take {take}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scatter_axpy_length_mismatch_panics() {
        scatter_axpy(1.0, &[0], &[1.0, 2.0], &mut [1.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -0.5, 4.0];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn norm_inf_long_slice_rides_the_kernel() {
        let mut x = vec![0.5; 37];
        x[19] = -7.25;
        assert_eq!(norm_inf(&x), 7.25);
    }

    #[test]
    fn scale_in_place_matches_scale() {
        for len in 0..13usize {
            let x: Vec<f64> = (0..len).map(|i| (i as f64) * 0.5 - 2.0).collect();
            let owned = scale(-3.0, &x);
            let mut inplace = x.clone();
            scale_in_place(-3.0, &mut inplace);
            assert_eq!(owned, inplace, "len {len}");
        }
    }

    #[test]
    fn normalize_scales_to_unit_inf_norm() {
        let mut x = vec![2.0, -8.0, 4.0];
        normalize_inf(&mut x);
        assert_eq!(x, vec![0.25, -1.0, 0.5]);
    }

    #[test]
    fn normalize_leaves_zero_alone() {
        let mut x = vec![0.0, 0.0];
        normalize_inf(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn is_zero_tolerant() {
        assert!(is_zero(&[1e-12, -1e-12], 1e-9));
        assert!(!is_zero(&[1e-3], 1e-9));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
