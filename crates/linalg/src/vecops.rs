//! Free functions on `&[f64]` slices.
//!
//! Vectors flow between crates as plain `Vec<f64>`; these helpers keep the
//! call sites short without committing the whole workspace to a wrapper type.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// assert_eq!(qava_linalg::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`, the classic axpy update.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Returns `alpha * x` as a new vector.
pub fn scale(alpha: f64, x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| alpha * v).collect()
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Maximum absolute entry (`∞`-norm); `0.0` for the empty slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Scales `x` so its largest absolute entry is 1; leaves (near-)zero vectors
/// untouched. Used to keep double-description rays well-conditioned.
pub fn normalize_inf(x: &mut [f64]) {
    let m = norm_inf(x);
    if m > crate::EPS {
        for v in x.iter_mut() {
            *v /= m;
        }
    }
}

/// Returns `true` when every entry of `x` is within `tol` of zero.
pub fn is_zero(x: &[f64], tol: f64) -> bool {
    x.iter().all(|v| v.abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, -2.0, 3.0], &[4.0, 5.0, 6.0]), 12.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -0.5, 4.0];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn normalize_scales_to_unit_inf_norm() {
        let mut x = vec![2.0, -8.0, 4.0];
        normalize_inf(&mut x);
        assert_eq!(x, vec![0.25, -1.0, 0.5]);
    }

    #[test]
    fn normalize_leaves_zero_alone() {
        let mut x = vec![0.0, 0.0];
        normalize_inf(&mut x);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn is_zero_tolerant() {
        assert!(is_zero(&[1e-12, -1e-12], 1e-9));
        assert!(!is_zero(&[1e-3], 1e-9));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
