#![warn(missing_docs)]

//! Small dense linear-algebra kernel used by every other `qava` crate.
//!
//! The polyhedra, LP, and convex-optimization substrates of `qava` all operate
//! on low-dimensional dense problems (a handful of program variables, dozens
//! of template unknowns), so this crate deliberately implements a compact
//! `f64` toolbox instead of pulling in a BLAS:
//!
//! * [`Matrix`] — row-major dense matrix with Gaussian elimination,
//!   [`Matrix::solve`], [`Matrix::rank`], [`Matrix::nullspace`],
//!   least-squares, and inverse.
//! * [`vecops`] — free functions on `&[f64]` slices (dot products, axpy, ...).
//! * [`kernel`] — the runtime-dispatched SIMD backend layer under
//!   `vecops`: a [`kernel::VecKernel`] trait with a portable scalar
//!   baseline plus AVX2+FMA (x86_64) and NEON (aarch64) implementations,
//!   selected once per process by CPU feature detection and overridable
//!   with `QAVA_KERNEL={auto,scalar,avx2,neon}`. The `vecops` signatures
//!   are the stable surface; the kernel layer is how they go fast.
//! * [`EPS`] — the absolute tolerance shared by all numeric pivoting code.
//!
//! # Examples
//!
//! ```
//! use qava_linalg::Matrix;
//!
//! let a = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 3.0]]);
//! let x = a.solve(&[3.0, 5.0]).unwrap();
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! ```

pub mod kernel;
pub mod matrix;
pub mod vecops;

pub use matrix::Matrix;

/// Absolute tolerance used for pivot selection and zero tests throughout the
/// workspace. Benchmarks have small integer-ish coefficients, so a fixed
/// absolute tolerance is appropriate.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most `tol` absolutely or
/// relatively (whichever is larger).
///
/// ```
/// assert!(qava_linalg::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!qava_linalg::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}
