//! Runtime-dispatched SIMD kernel subsystem behind [`vecops`].
//!
//! The five sparse/dense kernels every LP pivot funnels through
//! (`dot`, `axpy`, `gather_dot`, `scatter_axpy`, `masked_gather_dot`,
//! plus the `norm_inf`/`scale` pair equilibration uses) are defined once
//! as the [`VecKernel`] trait and implemented three times:
//!
//! * [`scalar`] — the portable four-wide unrolled baseline, always
//!   available, and the reference semantics for the others;
//! * [`avx2`] — x86_64 AVX2+FMA (4-lane `f64`, fused multiply-add,
//!   hardware gathers), selected when `is_x86_feature_detected!` proves
//!   both features at startup;
//! * [`neon`] — aarch64 AdvSIMD (2-lane `f64`, fused multiply-add),
//!   selected behind `is_aarch64_feature_detected!`.
//!
//! Selection happens **once per process**, on the first kernel call,
//! into a [`OnceLock`] dispatch table; every later call is one indirect
//! call through the chosen implementation. The [`vecops`] free
//! functions additionally short-circuit slices shorter than
//! [`DISPATCH_MIN`] straight into the inlined scalar bodies — below one
//! vector iteration the indirect call costs more than it saves, and the
//! µs-scale polyhedra probes live there.
//!
//! # Forcing a backend
//!
//! `QAVA_KERNEL={auto,scalar,avx2,neon}` (read at selection time)
//! overrides auto-detection for testing and benchmarking. A backend the
//! running CPU cannot execute — and any unrecognized value — falls back
//! to `scalar`, never to a faulting path. That degradation is **never
//! silent**: selection prints a one-shot warning to stderr when the
//! request and the resolved backend differ, [`active_name`] always
//! reports the backend actually selected, and [`provenance`] (what the
//! LP stats footer and the bench provenance header print) annotates the
//! actual name with the ignored request, so logs and bench artifacts
//! can't misattribute numbers. Correctness
//! never depends on which backend runs: the conformance corpus, the
//! metamorphic suite, and the kernel-agreement property tests all hold
//! under every forced value (SIMD reassociation and FMA stay at ulp
//! level, far inside the pinned 1e-7 LP tolerances).
//!
//! [`vecops`]: crate::vecops

use std::sync::OnceLock;

pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod avx2;

#[cfg(target_arch = "aarch64")]
pub mod neon;

pub use scalar::ScalarKernel;

/// The kernel interface: one implementation per instruction-set tier.
///
/// All slice-pair methods assume equal lengths — the [`vecops`] wrappers
/// assert it once with a uniform panic message; implementations called
/// directly (tests, benches) clamp to the shorter length rather than
/// read out of bounds. Gathered kernels must panic on an out-of-bounds
/// index, never read it, and `scatter_axpy` requires pairwise-distinct
/// indices. `masked_gather_dot` must not let a window-excluded entry's
/// value reach the accumulator (the FT spike workspace holds garbage —
/// possibly NaN — outside the active window).
///
/// [`vecops`]: crate::vecops
pub trait VecKernel: Sync + Send {
    /// Stable identifier (`"scalar"`, `"avx2"`, `"neon"`), also the
    /// `QAVA_KERNEL` spelling that forces this backend.
    fn name(&self) -> &'static str;
    /// Dot product `Σ a_i · b_i`.
    fn dot(&self, a: &[f64], b: &[f64]) -> f64;
    /// `y += alpha · x`.
    fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]);
    /// Sparse gather dot `Σ_k vals[k] · x[idx[k]]`.
    fn gather_dot(&self, idx: &[usize], vals: &[f64], x: &[f64]) -> f64;
    /// Sparse scatter update `y[idx[k]] += alpha · vals[k]`.
    fn scatter_axpy(&self, alpha: f64, idx: &[usize], vals: &[f64], y: &mut [f64]);
    /// Windowed gather dot `Σ_{pos[idx[k]] > cutoff} vals[k] · x[idx[k]]`.
    fn masked_gather_dot(
        &self,
        idx: &[usize],
        vals: &[f64],
        x: &[f64],
        pos: &[usize],
        cutoff: usize,
    ) -> f64;
    /// Maximum absolute entry; `0.0` for the empty slice, NaN entries
    /// ignored (the `f64::max` fold semantics).
    fn norm_inf(&self, x: &[f64]) -> f64;
    /// In-place `x *= alpha`.
    fn scale(&self, alpha: f64, x: &mut [f64]);
}

/// Slices shorter than this skip the dispatch table: the [`vecops`]
/// wrappers run the inlined scalar body directly, because below one
/// vector iteration the indirect call dominates.
///
/// [`vecops`]: crate::vecops
pub const DISPATCH_MIN: usize = 8;

static SCALAR: ScalarKernel = ScalarKernel;

#[cfg(target_arch = "x86_64")]
static AVX2: avx2::Avx2Kernel = avx2::Avx2Kernel;

#[cfg(target_arch = "aarch64")]
static NEON: neon::NeonKernel = neon::NeonKernel;

static ACTIVE: OnceLock<&'static dyn VecKernel> = OnceLock::new();

/// The `QAVA_KERNEL` value that selection had to ignore: `Some(request)`
/// when it degraded to another backend, `None` when the request (or
/// auto-detection) was honored. Populated by [`select`] before [`ACTIVE`]
/// is ever readable.
static REQUESTED: OnceLock<Option<String>> = OnceLock::new();

/// The process-wide kernel, selecting it on first use (reads
/// `QAVA_KERNEL`, then falls back to CPU auto-detection).
#[inline]
pub fn active() -> &'static dyn VecKernel {
    *ACTIVE.get_or_init(select)
}

/// Name of the process-wide kernel actually selected. Artifacts that
/// record the kernel should prefer [`provenance`], which additionally
/// exposes a `QAVA_KERNEL` request that selection had to ignore.
pub fn active_name() -> &'static str {
    active().name()
}

/// Looks up a backend by its `QAVA_KERNEL` spelling. Returns `None` for
/// unknown names **and** for backends the running CPU cannot execute,
/// so a returned kernel is always safe to call.
pub fn by_name(name: &str) -> Option<&'static dyn VecKernel> {
    match name {
        "scalar" => Some(&SCALAR),
        #[cfg(target_arch = "x86_64")]
        "avx2" if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") => {
            Some(&AVX2)
        }
        #[cfg(target_arch = "aarch64")]
        "neon" if std::arch::is_aarch64_feature_detected!("neon") => Some(&NEON),
        _ => None,
    }
}

/// Every backend the running CPU supports (scalar always first). Tests
/// and benches iterate this to compare all selectable backends against
/// the scalar reference on the machine at hand.
pub fn available() -> Vec<&'static dyn VecKernel> {
    ["scalar", "avx2", "neon"].iter().filter_map(|n| by_name(n)).collect()
}

/// The active kernel's name annotated with the `QAVA_KERNEL` request
/// when the two differ (e.g. `"scalar (requested avx2)"`), the plain
/// name when they agree. Stats footers and bench provenance headers use
/// this instead of [`active_name`] so a silently degraded run can never
/// masquerade as the requested backend in recorded artifacts.
pub fn provenance() -> String {
    // Forces selection, which populates REQUESTED before returning.
    let actual = active_name();
    provenance_label(actual, REQUESTED.get().and_then(|r| r.as_deref()))
}

/// Pure formatting rule behind [`provenance`].
fn provenance_label(actual: &str, ignored_request: Option<&str>) -> String {
    match ignored_request {
        Some(req) => format!("{actual} (requested {req})"),
        None => actual.to_string(),
    }
}

/// Pure resolution rule behind [`select`]: the backend a `QAVA_KERNEL`
/// value resolves to on this CPU, plus whether that silently differs
/// from what was asked for (`true` exactly when the request named a
/// backend that is unknown or unsupported here and scalar stood in).
fn resolve(requested: Option<&str>) -> (&'static dyn VecKernel, bool) {
    match requested {
        None | Some("auto") => (detect_best(), false),
        Some(name) => match by_name(name) {
            Some(kernel) => (kernel, false),
            None => (&SCALAR, true),
        },
    }
}

/// One-shot selection: `QAVA_KERNEL` override first, otherwise the best
/// backend the CPU detection proves. A request that cannot be honored
/// degrades to scalar with a single stderr warning (selection runs once
/// per process) and is recorded for [`provenance`].
fn select() -> &'static dyn VecKernel {
    let requested = std::env::var("QAVA_KERNEL").ok();
    let (kernel, degraded) = resolve(requested.as_deref());
    if degraded {
        let req = requested.as_deref().unwrap_or_default();
        eprintln!(
            "qava: QAVA_KERNEL={req} is unknown or unsupported on this CPU; \
             falling back to the {} kernel",
            kernel.name()
        );
    }
    let _ = REQUESTED.set(if degraded { requested } else { None });
    kernel
}

fn detect_best() -> &'static dyn VecKernel {
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        return &AVX2;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("neon") {
        return &NEON;
    }
    &SCALAR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_listed_first() {
        let names: Vec<_> = available().iter().map(|k| k.name()).collect();
        assert_eq!(names.first(), Some(&"scalar"));
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("sse9").is_none());
        assert!(by_name("").is_none());
        assert!(by_name("auto").is_none(), "auto is a selection policy, not a backend");
    }

    #[test]
    fn active_is_stable_and_listed() {
        let first = active_name();
        assert_eq!(first, active_name(), "selection must be once-per-process");
        assert!(
            available().iter().any(|k| k.name() == first),
            "active kernel {first} must be runnable on this CPU"
        );
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_listed_exactly_when_detected() {
        let detected = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
        assert_eq!(by_name("avx2").is_some(), detected);
    }

    #[test]
    fn resolve_flags_degraded_requests() {
        // Honored requests: no mismatch to report.
        let (k, degraded) = resolve(None);
        assert_eq!(k.name(), detect_best().name());
        assert!(!degraded);
        let (k, degraded) = resolve(Some("auto"));
        assert_eq!(k.name(), detect_best().name());
        assert!(!degraded, "auto is a policy, not a request that can degrade");
        let (k, degraded) = resolve(Some("scalar"));
        assert_eq!(k.name(), "scalar");
        assert!(!degraded);
        // Unknown and empty names degrade to scalar — and say so. This
        // pins the fix for the silent-fallback bug: `select` used to
        // swallow the mismatch entirely.
        for bad in ["sse9", "", "AVX2", "scalar "] {
            let (k, degraded) = resolve(Some(bad));
            assert_eq!(k.name(), "scalar", "QAVA_KERNEL={bad:?}");
            assert!(degraded, "QAVA_KERNEL={bad:?} must be flagged as degraded");
        }
        // A supported non-scalar backend resolves to itself, honored.
        for kernel in available() {
            let (k, degraded) = resolve(Some(kernel.name()));
            assert_eq!(k.name(), kernel.name());
            assert!(!degraded);
        }
    }

    #[test]
    fn provenance_label_annotates_only_mismatches() {
        assert_eq!(provenance_label("avx2", None), "avx2");
        assert_eq!(provenance_label("scalar", Some("avx9")), "scalar (requested avx9)");
    }

    #[test]
    fn provenance_is_consistent_with_active_name() {
        // Whatever the process-wide selection was, provenance must start
        // with the actual backend name.
        assert!(provenance().starts_with(active_name()));
    }
}
