//! Property tests for the dense linear-algebra kernels the solvers rest
//! on: Gaussian elimination, nullspaces, least squares, inverses.

use proptest::prelude::*;
use qava_linalg::{vecops, Matrix};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, cols), rows)
        .prop_map(Matrix::from_rows)
}

fn square(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `A · solve(A, b) = b` whenever a solution is reported.
    #[test]
    fn solve_satisfies_system(a in square(3), b in proptest::collection::vec(-5.0f64..5.0, 3)) {
        if let Some(x) = a.solve(&b) {
            let ax = a.mul_vec(&x);
            for (l, r) in ax.iter().zip(&b) {
                prop_assert!((l - r).abs() < 1e-6, "Ax = {ax:?} vs b = {b:?}");
            }
        }
    }

    /// Every reported nullspace vector is annihilated by the matrix, and
    /// rank + nullity = number of columns.
    #[test]
    fn nullspace_annihilates(a in matrix(3, 4)) {
        let ns = a.nullspace();
        for v in &ns {
            let av = a.mul_vec(v);
            prop_assert!(vecops::norm_inf(&av) < 1e-7, "A·v = {av:?}");
            prop_assert!(vecops::norm_inf(v) > 1e-9, "trivial basis vector");
        }
        prop_assert_eq!(a.rank() + ns.len(), 4);
    }

    /// The least-squares residual is orthogonal to the column space:
    /// `Aᵀ(Ax − b) ≈ 0`.
    #[test]
    fn least_squares_normal_equations(
        a in matrix(4, 2),
        b in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let x = a.least_squares(&b);
        let r: Vec<f64> = a.mul_vec(&x).iter().zip(&b).map(|(l, r)| l - r).collect();
        let atr = a.mul_vec_transposed(&r);
        // The implementation regularizes slightly, so allow a small slack.
        prop_assert!(vecops::norm_inf(&atr) < 1e-3, "Aᵀr = {atr:?}");
    }

    /// `A · A⁻¹ = I` whenever an inverse is reported.
    #[test]
    fn inverse_roundtrip(a in square(3)) {
        if let Some(inv) = a.inverse() {
            let prod = a.mul(&inv);
            for i in 0..3 {
                for j in 0..3 {
                    let want = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((prod[(i, j)] - want).abs() < 1e-6);
                }
            }
        }
    }

    /// Transposition is an involution and distributes over products the
    /// usual way: `(AB)ᵀ = BᵀAᵀ`.
    #[test]
    fn transpose_product_identity(a in matrix(2, 3), b in matrix(3, 2)) {
        let left = a.mul(&b).transpose();
        let right = b.transpose().mul(&a.transpose());
        for i in 0..left.rows() {
            for j in 0..left.cols() {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-9);
            }
        }
    }

    /// `mul_vec_transposed` agrees with explicitly transposing.
    #[test]
    fn mul_vec_transposed_agrees(a in matrix(3, 4), x in proptest::collection::vec(-5.0f64..5.0, 3)) {
        let fast = a.mul_vec_transposed(&x);
        let slow = a.transpose().mul_vec(&x);
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() < 1e-12);
        }
    }

    /// Rank is invariant under transposition.
    #[test]
    fn rank_transpose_invariant(a in matrix(3, 4)) {
        prop_assert_eq!(a.rank(), a.transpose().rank());
    }
}
