//! Property tests for the dense linear-algebra kernels the solvers rest
//! on: Gaussian elimination, nullspaces, least squares, inverses — plus
//! the kernel-agreement suite pinning every runtime-selectable SIMD
//! backend (`qava_linalg::kernel`) to the scalar reference semantics.

use proptest::prelude::*;
use qava_linalg::kernel::{self, ScalarKernel, VecKernel};
use qava_linalg::{vecops, Matrix};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, cols), rows)
        .prop_map(Matrix::from_rows)
}

fn square(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `A · solve(A, b) = b` whenever a solution is reported.
    #[test]
    fn solve_satisfies_system(a in square(3), b in proptest::collection::vec(-5.0f64..5.0, 3)) {
        if let Some(x) = a.solve(&b) {
            let ax = a.mul_vec(&x);
            for (l, r) in ax.iter().zip(&b) {
                prop_assert!((l - r).abs() < 1e-6, "Ax = {ax:?} vs b = {b:?}");
            }
        }
    }

    /// Every reported nullspace vector is annihilated by the matrix, and
    /// rank + nullity = number of columns.
    #[test]
    fn nullspace_annihilates(a in matrix(3, 4)) {
        let ns = a.nullspace();
        for v in &ns {
            let av = a.mul_vec(v);
            prop_assert!(vecops::norm_inf(&av) < 1e-7, "A·v = {av:?}");
            prop_assert!(vecops::norm_inf(v) > 1e-9, "trivial basis vector");
        }
        prop_assert_eq!(a.rank() + ns.len(), 4);
    }

    /// The least-squares residual is orthogonal to the column space:
    /// `Aᵀ(Ax − b) ≈ 0`.
    #[test]
    fn least_squares_normal_equations(
        a in matrix(4, 2),
        b in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let x = a.least_squares(&b);
        let r: Vec<f64> = a.mul_vec(&x).iter().zip(&b).map(|(l, r)| l - r).collect();
        let atr = a.mul_vec_transposed(&r);
        // The implementation regularizes slightly, so allow a small slack.
        prop_assert!(vecops::norm_inf(&atr) < 1e-3, "Aᵀr = {atr:?}");
    }

    /// `A · A⁻¹ = I` whenever an inverse is reported.
    #[test]
    fn inverse_roundtrip(a in square(3)) {
        if let Some(inv) = a.inverse() {
            let prod = a.mul(&inv);
            for i in 0..3 {
                for j in 0..3 {
                    let want = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((prod[(i, j)] - want).abs() < 1e-6);
                }
            }
        }
    }

    /// Transposition is an involution and distributes over products the
    /// usual way: `(AB)ᵀ = BᵀAᵀ`.
    #[test]
    fn transpose_product_identity(a in matrix(2, 3), b in matrix(3, 2)) {
        let left = a.mul(&b).transpose();
        let right = b.transpose().mul(&a.transpose());
        for i in 0..left.rows() {
            for j in 0..left.cols() {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-9);
            }
        }
    }

    /// `mul_vec_transposed` agrees with explicitly transposing.
    #[test]
    fn mul_vec_transposed_agrees(a in matrix(3, 4), x in proptest::collection::vec(-5.0f64..5.0, 3)) {
        let fast = a.mul_vec_transposed(&x);
        let slow = a.transpose().mul_vec(&x);
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() < 1e-12);
        }
    }

    /// Rank is invariant under transposition.
    #[test]
    fn rank_transpose_invariant(a in matrix(3, 4)) {
        prop_assert_eq!(a.rank(), a.transpose().rank());
    }
}

// ---------------------------------------------------------------------
// Kernel agreement: every backend `kernel::available()` lists for this
// CPU must reproduce the scalar baseline on every kernel, across all
// tail lengths, empty inputs, NaN/±inf propagation, and subnormals.
// The contract is split (see `kernel/avx2.rs`): the dense `dot`/`axpy`
// may deviate at ulp scale (SIMD reassociation and FMA contraction are
// the only licensed deviations — orders of magnitude inside the 1e-7
// tolerances any LP verdict is allowed), while the gathered kernels,
// `scatter_axpy`, `norm_inf`, and `scale` must be **bit-exact**: the
// factorized LP engines run on them, and exactness keeps pivot
// trajectories backend-independent on knife-edge degenerate systems.
// ---------------------------------------------------------------------

/// Absolute-or-magnitude-relative agreement bound for one reduction:
/// `mag` is the sum of absolute products flowing into the accumulator.
fn close(a: f64, b: f64, mag: f64) -> bool {
    if a.is_nan() || b.is_nan() {
        return a.is_nan() && b.is_nan();
    }
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= 1e-12 * (1.0 + mag)
}

/// Every non-scalar backend the running CPU can execute.
fn simd_backends() -> Vec<&'static dyn VecKernel> {
    kernel::available().into_iter().filter(|k| k.name() != "scalar").collect()
}

/// Deterministic but irregular test data.
fn wiggle(i: usize, salt: f64) -> f64 {
    ((i as f64) * 0.7310585 + salt).sin() * 4.0
}

#[test]
fn kernels_agree_on_dense_ops_at_every_tail_length() {
    // 0..=40 crosses every remainder 0–7 of the widest (8-wide) SIMD
    // stride, including the empty slice.
    for k in simd_backends() {
        for len in 0..=40usize {
            let a: Vec<f64> = (0..len).map(|i| wiggle(i, 0.1)).collect();
            let b: Vec<f64> = (0..len).map(|i| wiggle(i, 2.7)).collect();
            let mag: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            assert!(
                close(k.dot(&a, &b), ScalarKernel.dot(&a, &b), mag),
                "{} dot len {len}",
                k.name()
            );

            let mut y_simd: Vec<f64> = (0..len).map(|i| wiggle(i, 5.3)).collect();
            let mut y_ref = y_simd.clone();
            k.axpy(-1.375, &a, &mut y_simd);
            ScalarKernel.axpy(-1.375, &a, &mut y_ref);
            for (i, (s, r)) in y_simd.iter().zip(&y_ref).enumerate() {
                assert!(close(*s, *r, r.abs()), "{} axpy len {len} slot {i}", k.name());
            }

            assert_eq!(
                k.norm_inf(&a),
                ScalarKernel.norm_inf(&a),
                "{} norm_inf len {len}",
                k.name()
            );

            let mut s_simd = a.clone();
            let mut s_ref = a.clone();
            k.scale(0.8125, &mut s_simd);
            ScalarKernel.scale(0.8125, &mut s_ref);
            assert_eq!(s_simd, s_ref, "{} scale len {len} (exact: one rounding each)", k.name());
        }
    }
}

#[test]
fn kernels_agree_on_gathered_ops_at_every_tail_length() {
    let m = 23usize;
    let x: Vec<f64> = (0..m).map(|i| wiggle(i, 1.9)).collect();
    // A fixed permutation of 0..m: valid gather indices, and pairwise
    // distinct as `scatter_axpy` requires.
    let mut perm: Vec<usize> = (0..m).collect();
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in (1..m).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        perm.swap(i, (state >> 33) as usize % (i + 1));
    }
    let pos: Vec<usize> = perm.iter().map(|&p| (p * 7 + 3) % m).collect();
    for k in simd_backends() {
        for len in 0..=m {
            let idx = &perm[..len];
            let vals: Vec<f64> = (0..len).map(|i| wiggle(i, 8.2)).collect();
            // Bit-exact, not merely close: lane k of a SIMD gather must
            // replay scalar accumulator s_k operation for operation.
            assert_eq!(
                k.gather_dot(idx, &vals, &x).to_bits(),
                ScalarKernel.gather_dot(idx, &vals, &x).to_bits(),
                "{} gather_dot len {len}",
                k.name()
            );
            for cutoff in [0usize, 7, m] {
                assert_eq!(
                    k.masked_gather_dot(idx, &vals, &x, &pos, cutoff).to_bits(),
                    ScalarKernel.masked_gather_dot(idx, &vals, &x, &pos, cutoff).to_bits(),
                    "{} masked_gather_dot len {len} cutoff {cutoff}",
                    k.name()
                );
            }

            let mut y_simd = x.clone();
            let mut y_ref = x.clone();
            k.scatter_axpy(2.25, idx, &vals, &mut y_simd);
            ScalarKernel.scatter_axpy(2.25, idx, &vals, &mut y_ref);
            assert_eq!(y_simd, y_ref, "{} scatter_axpy len {len}", k.name());
        }
    }
}

#[test]
fn kernels_agree_on_nan_and_inf_propagation() {
    for k in simd_backends() {
        // One poisoned slot at every lane position of the widest stride:
        // a NaN anywhere must surface as a NaN total, a single ±inf as
        // that infinity, under every backend.
        for slot in 0..16usize {
            for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let mut a: Vec<f64> = (0..16).map(|i| wiggle(i, 0.4)).collect();
                a[slot] = poison;
                let b: Vec<f64> = (0..16).map(|i| 1.0 + (i as f64) * 0.125).collect();
                let got = k.dot(&a, &b);
                let want = ScalarKernel.dot(&a, &b);
                assert!(close(got, want, 0.0), "{} dot poison {poison} slot {slot}", k.name());

                let mut y_simd = b.clone();
                let mut y_ref = b.clone();
                k.axpy(1.5, &a, &mut y_simd);
                ScalarKernel.axpy(1.5, &a, &mut y_ref);
                assert!(
                    close(y_simd[slot], y_ref[slot], 0.0),
                    "{} axpy poison {poison} slot {slot}",
                    k.name()
                );
            }
        }
        // Mixed infinities annihilate to NaN in every backend.
        let mut a = vec![1.0f64; 12];
        a[2] = f64::INFINITY;
        a[9] = f64::NEG_INFINITY;
        let b = vec![1.0f64; 12];
        assert!(k.dot(&a, &b).is_nan(), "{}: +inf + -inf must be NaN", k.name());
        // norm_inf keeps f64::max's ignore-NaN fold and maps ±inf to +inf.
        let mut n = vec![0.5f64; 13];
        n[4] = f64::NAN;
        n[11] = -3.5;
        assert_eq!(k.norm_inf(&n), 3.5, "{}: norm_inf ignores NaN entries", k.name());
        n[6] = f64::NEG_INFINITY;
        assert_eq!(k.norm_inf(&n), f64::INFINITY, "{}: norm_inf of -inf", k.name());
    }
}

#[test]
fn kernels_agree_exactly_on_subnormals() {
    // Small-integer multiples of the smallest subnormal: every
    // intermediate is exactly representable, so all backends must agree
    // bit-for-bit — this also proves no backend flushes subnormals to
    // zero (no FTZ/DAZ).
    let tiny = f64::from_bits(1); // 2^-1074
    for k in simd_backends() {
        for len in 0..=19usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 + 1.0) * tiny).collect();
            let ones = vec![1.0f64; len];
            assert_eq!(
                k.dot(&a, &ones).to_bits(),
                ScalarKernel.dot(&a, &ones).to_bits(),
                "{} subnormal dot len {len}",
                k.name()
            );
            let mut y_simd = vec![0.0f64; len];
            let mut y_ref = vec![0.0f64; len];
            k.axpy(1.0, &a, &mut y_simd);
            ScalarKernel.axpy(1.0, &a, &mut y_ref);
            assert_eq!(y_simd, y_ref, "{} subnormal axpy len {len}", k.name());
            let mut s = a.clone();
            k.scale(2.0, &mut s);
            for (i, (got, orig)) in s.iter().zip(&a).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    (orig * 2.0).to_bits(),
                    "{} subnormal scale len {len} slot {i}",
                    k.name()
                );
            }
            assert_eq!(
                k.norm_inf(&a),
                ScalarKernel.norm_inf(&a),
                "{} subnormal norm_inf len {len}",
                k.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Randomized agreement sweep: every available SIMD backend matches
    /// the scalar reference on random dense pairs of every length
    /// across the dispatch cutover and both SIMD strides.
    #[test]
    fn kernels_agree_on_random_dense_slices(
        data in proptest::collection::vec(-9.0f64..9.0, 0..48),
        alpha in -4.0f64..4.0,
    ) {
        let half = data.len() / 2;
        let (a, b) = (&data[..half], &data[half..2 * half]);
        for k in simd_backends() {
            let mag: f64 = a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum();
            prop_assert!(
                close(k.dot(a, b), ScalarKernel.dot(a, b), mag),
                "{} dot len {}", k.name(), half
            );
            let mut y_simd = b.to_vec();
            let mut y_ref = b.to_vec();
            k.axpy(alpha, a, &mut y_simd);
            ScalarKernel.axpy(alpha, a, &mut y_ref);
            for (s, r) in y_simd.iter().zip(&y_ref) {
                prop_assert!(close(*s, *r, r.abs()), "{} axpy len {}", k.name(), half);
            }
            prop_assert_eq!(k.norm_inf(a), ScalarKernel.norm_inf(a));
        }
    }
}
