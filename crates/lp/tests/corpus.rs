//! LP conformance corpus replay: every captured instance through every
//! backend.
//!
//! `tests/corpus/*.qlp` are core-form LP systems harvested from real
//! suite runs (`crates/core/tests/harvest_corpus.rs` is the capture
//! tool; the ROADMAP's "corpus capture workflow" section documents when
//! and how to add one). This harness generalizes what
//! `drift_regression.rs` pins for one instance to a growable corpus:
//! every backend — dense, sparse, lu, lu-ft, lu-bg — must reproduce the
//! verdict recorded from the dense oracle at capture time, agree with
//! the pinned objective to 1e-7, satisfy `A·x = b` to 1e-6, and, when a
//! file carries a (deliberately hostile) warm basis, produce the same
//! result through the warm path as cold.
//!
//! ## File format (`.qlp`, line oriented)
//!
//! ```text
//! # comments
//! name <slug>
//! origin <free text provenance>
//! m <rows> n <cols>
//! c <j> <value>            sparse objective entries
//! b <i> <value>            sparse right-hand side (b ≥ 0)
//! a <i> <j> <value>        matrix triplets
//! warm <j0> <j1> …         optional warm-start basis (m entries)
//! expect optimal|infeasible|unbounded
//! objective <value>        dense-oracle c·x (required when optimal)
//! ```
//!
//! Values are written with 17 significant digits so every `f64` round
//! trips exactly.

use qava_lp::{
    BackendChoice, CoreSolution, CscMatrix, DenseTableau, FaultKind, FaultPlan, LpBackend,
    LpError, LpSolver, LuBgSimplex, LuFtSimplex, LuSimplex, SparseRevised,
};
use std::path::{Path, PathBuf};

/// Verdict + objective agreement tolerance (absolute on the scale of
/// the pinned objective; corpus objectives are O(1) after
/// equilibration).
const OBJECTIVE_TOL: f64 = 1e-7;

/// `‖A·x − b‖∞` ceiling for every reported optimal point.
const RESIDUAL_TOL: f64 = 1e-6;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Expect {
    Optimal,
    Infeasible,
    Unbounded,
}

struct CorpusInstance {
    name: String,
    costs: Vec<f64>,
    rows: Vec<Vec<(usize, f64)>>,
    b: Vec<f64>,
    warm: Option<Vec<usize>>,
    expect: Expect,
    objective: Option<f64>,
}

impl CorpusInstance {
    fn matrix(&self) -> CscMatrix {
        CscMatrix::from_sparse_rows(self.rows.len(), self.costs.len(), &self.rows)
    }
}

fn parse(path: &Path) -> CorpusInstance {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut name = String::new();
    let mut costs = Vec::new();
    let mut b = Vec::new();
    let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
    let mut warm = None;
    let mut expect = None;
    let mut objective = None;
    let parse_num = |field: &str, line: &str| -> f64 {
        field.parse().unwrap_or_else(|_| panic!("{}: bad line `{line}`", path.display()))
    };
    let parse_idx = |field: &str, line: &str| -> usize {
        field.parse().unwrap_or_else(|_| panic!("{}: bad line `{line}`", path.display()))
    };
    for line in text.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.first() {
            None | Some(&"#") => {}
            Some(s) if s.starts_with('#') => {}
            Some(&"name") => name = fields[1].to_string(),
            Some(&"origin") => {}
            Some(&"m") => {
                let m = parse_idx(fields[1], line);
                let n = parse_idx(fields[3], line);
                costs = vec![0.0; n];
                b = vec![0.0; m];
                rows = vec![Vec::new(); m];
            }
            Some(&"c") => costs[parse_idx(fields[1], line)] = parse_num(fields[2], line),
            Some(&"b") => b[parse_idx(fields[1], line)] = parse_num(fields[2], line),
            Some(&"a") => {
                let i = parse_idx(fields[1], line);
                let j = parse_idx(fields[2], line);
                rows[i].push((j, parse_num(fields[3], line)));
            }
            Some(&"warm") => {
                warm = Some(fields[1..].iter().map(|f| parse_idx(f, line)).collect());
            }
            Some(&"expect") => {
                expect = Some(match fields[1] {
                    "optimal" => Expect::Optimal,
                    "infeasible" => Expect::Infeasible,
                    "unbounded" => Expect::Unbounded,
                    other => panic!("{}: unknown verdict `{other}`", path.display()),
                });
            }
            Some(&"objective") => objective = Some(parse_num(fields[1], line)),
            Some(other) => panic!("{}: unknown directive `{other}`", path.display()),
        }
    }
    let expect = expect.unwrap_or_else(|| panic!("{}: missing `expect`", path.display()));
    if expect == Expect::Optimal {
        assert!(objective.is_some(), "{}: optimal instance without pinned objective", path.display());
    }
    assert!(!name.is_empty(), "{}: missing `name`", path.display());
    CorpusInstance { name, costs, rows, b, warm, expect, objective }
}

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "qlp"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 9,
        "conformance corpus shrank to {} instances — capture files lost?",
        files.len()
    );
    files
}

/// The full backend lineup every instance replays through.
fn backends() -> Vec<Box<dyn LpBackend>> {
    vec![
        Box::new(DenseTableau),
        Box::new(SparseRevised),
        Box::new(LuSimplex),
        Box::new(LuFtSimplex),
        Box::new(LuBgSimplex),
    ]
}

/// Checks one solve result against the instance's pinned expectations.
fn check(
    inst: &CorpusInstance,
    backend: &str,
    mode: &str,
    out: Result<CoreSolution, LpError>,
) {
    let tag = format!("{} [{backend}, {mode}]", inst.name);
    match inst.expect {
        Expect::Infeasible => {
            assert_eq!(out.unwrap_err(), LpError::Infeasible, "{tag}: verdict");
        }
        Expect::Unbounded => {
            assert_eq!(out.unwrap_err(), LpError::Unbounded, "{tag}: verdict");
        }
        Expect::Optimal => {
            let sol = out.unwrap_or_else(|e| panic!("{tag}: expected optimal, got {e}"));
            let pinned = inst.objective.expect("checked at parse time");
            let obj: f64 = inst.costs.iter().zip(&sol.x).map(|(c, x)| c * x).sum();
            assert!(
                (obj - pinned).abs() <= OBJECTIVE_TOL * (1.0 + pinned.abs()),
                "{tag}: objective {obj:.12e} drifted from pinned {pinned:.12e}"
            );
            for (i, row) in inst.rows.iter().enumerate() {
                let ax: f64 = row.iter().map(|&(j, v)| v * sol.x[j]).sum();
                assert!(
                    (ax - inst.b[i]).abs() < RESIDUAL_TOL,
                    "{tag}: row {i} residual {:.3e}",
                    (ax - inst.b[i]).abs()
                );
            }
            assert!(
                sol.x.iter().all(|&v| v >= -RESIDUAL_TOL),
                "{tag}: negative solution component"
            );
        }
    }
}

/// Every corpus instance, every backend, cold: verdicts, pinned
/// objectives, and `A·x = b` residuals must all hold.
#[test]
fn corpus_replays_identically_across_backends() {
    for path in corpus_files() {
        let inst = parse(&path);
        let a = inst.matrix();
        for backend in backends() {
            let out = backend.solve_core(&inst.costs, &a, &inst.b, None);
            check(&inst, backend.name(), "cold", out);
        }
    }
}

/// Instances that carry a warm basis (hostile by construction —
/// singular or stale) must come out identical through the warm path of
/// every warm-capable backend: warm starts may only ever change speed.
#[test]
fn corpus_warm_bases_never_change_results() {
    let mut exercised = 0usize;
    for path in corpus_files() {
        let inst = parse(&path);
        let Some(warm) = inst.warm.clone() else { continue };
        let a = inst.matrix();
        for backend in backends() {
            if !backend.supports_warm_start() {
                continue;
            }
            let out = backend.solve_core(&inst.costs, &a, &inst.b, Some(&warm));
            check(&inst, backend.name(), "warm", out);
            exercised += 1;
        }
    }
    assert!(exercised > 0, "corpus holds no warm-basis instance — capture files lost?");
}

/// Solves one corpus instance through a full `LpSolver` session (so the
/// presolve/equilibration/failover pipeline is engaged) and checks the
/// result against the pinned verdict and objective.
fn check_session(inst: &CorpusInstance, solver: &mut LpSolver, tag: &str) {
    let out =
        solver.solve_standard_sparse(&inst.costs, &inst.rows, &inst.b, inst.costs.len());
    match inst.expect {
        Expect::Infeasible => {
            assert_eq!(out.unwrap_err(), LpError::Infeasible, "{tag}: verdict");
        }
        Expect::Unbounded => {
            assert_eq!(out.unwrap_err(), LpError::Unbounded, "{tag}: verdict");
        }
        Expect::Optimal => {
            let x = out.unwrap_or_else(|e| panic!("{tag}: expected optimal, got {e}"));
            let pinned = inst.objective.expect("checked at parse time");
            let obj: f64 = inst.costs.iter().zip(&x).map(|(c, v)| c * v).sum();
            assert!(
                (obj - pinned).abs() <= OBJECTIVE_TOL * (1.0 + pinned.abs()),
                "{tag}: objective {obj:.12e} drifted from pinned {pinned:.12e}"
            );
        }
    }
}

/// Metamorphic fault replay: every corpus instance, re-solved under each
/// single-fault plan a backend can plausibly hit, must still land on the
/// pinned verdict and objective — recovery (in-backend restart or the
/// failover ladder) may change *how* the answer is reached, never *what*
/// it is. Plans whose site is never visited on a given instance simply
/// don't fire, which is also a valid outcome.
#[test]
fn corpus_survives_every_single_fault_plan() {
    let plans: &[(FaultKind, &[BackendChoice])] = &[
        (
            FaultKind::RefactorFail,
            &[BackendChoice::Sparse, BackendChoice::Lu, BackendChoice::LuFt, BackendChoice::LuBg],
        ),
        (FaultKind::ShakyPivot, &[BackendChoice::Lu, BackendChoice::LuFt, BackendChoice::LuBg]),
        (FaultKind::AccuracyTrip, &[BackendChoice::LuFt]),
        (FaultKind::BgAccuracy, &[BackendChoice::LuBg]),
        (FaultKind::PivotLimit, &[BackendChoice::LuFt, BackendChoice::LuBg, BackendChoice::Sparse]),
    ];
    let mut fired = 0usize;
    for path in corpus_files() {
        let inst = parse(&path);
        for &(kind, choices) in plans {
            for &choice in choices {
                let mut solver = LpSolver::with_choice(choice);
                solver.install_fault_plan(FaultPlan::once(kind));
                let tag = format!("{} [{choice:?}, fault {}]", inst.name, kind.label());
                check_session(&inst, &mut solver, &tag);
                fired += usize::from(solver.fault_fired());
            }
        }
    }
    assert!(fired > 0, "no fault plan ever fired — injection sites unreachable?");
}

/// Warm-poison replay: prime the warm-start cache with a clean solve,
/// then re-solve with a plan that corrupts the looked-up basis into a
/// singular one. The backend must fall back to a cold start (or the
/// ladder must rescue it) and still reproduce the pinned answer.
#[test]
fn corpus_survives_poisoned_warm_starts() {
    let mut fired = 0usize;
    for path in corpus_files() {
        let inst = parse(&path);
        for choice in [BackendChoice::Lu, BackendChoice::LuFt, BackendChoice::LuBg] {
            let mut solver = LpSolver::with_choice(choice);
            let tag_clean = format!("{} [{choice:?}, warm prime]", inst.name);
            check_session(&inst, &mut solver, &tag_clean);
            solver.install_fault_plan(FaultPlan::once(FaultKind::WarmPoison));
            let tag = format!("{} [{choice:?}, warm poison]", inst.name);
            check_session(&inst, &mut solver, &tag);
            fired += usize::from(solver.fault_fired());
        }
    }
    assert!(fired > 0, "no warm lookup was ever poisoned — cache never hit?");
}

/// Sweep-chain replay: the `sweep_*_NN.qlp` files are ordered ladders of
/// structurally identical, value-perturbed core systems harvested from
/// one `qava --sweep` family session (`harvest_sweep_chains`). For every
/// reoptimize-capable backend, walk each chain the way
/// `LpSolver::reoptimize` does — cold-solve the head, then
/// dual-reoptimize each successor from the previous member's final
/// basis — and hold every incrementally produced solution to that
/// member's own pinned cold verdict and objective (1e-7), residual and
/// nonnegativity included. A declined attempt (`None`) is legal — the
/// session then falls back to a cold solve, which must itself match —
/// but at least one reoptimization must succeed across the chains, or
/// the sweep fast path is dead weight. The dense tableau declines
/// reoptimization by contract, so its chain replay is trivially the
/// cold replay already covered by `corpus_replays_identically_across_backends`.
#[test]
fn sweep_chain_reoptimization_matches_cold() {
    let mut chains: std::collections::BTreeMap<String, Vec<CorpusInstance>> = Default::default();
    for path in corpus_files() {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        if !stem.starts_with("sweep_") {
            continue;
        }
        let (fam, _) = stem.rsplit_once('_').unwrap();
        chains.entry(fam.to_string()).or_default().push(parse(&path));
    }
    assert!(chains.len() >= 2, "expected at least the coupon and epsmax sweep chains");
    let mut reopts = 0usize;
    for (fam, insts) in &chains {
        assert!(insts.len() >= 3, "{fam}: chain too short ({})", insts.len());
        for backend in backends() {
            if !backend.supports_reoptimize() {
                continue;
            }
            let a0 = insts[0].matrix();
            let head = backend.solve_core(&insts[0].costs, &a0, &insts[0].b, None);
            check(&insts[0], backend.name(), &format!("{fam} chain head"), head.clone());
            let mut basis = head.ok().and_then(|s| s.basis);
            for inst in &insts[1..] {
                let a = inst.matrix();
                let reopt = basis
                    .as_deref()
                    .and_then(|prev| backend.reoptimize_core(&inst.costs, &a, &inst.b, prev));
                let sol = match reopt {
                    Some(sol) => {
                        reopts += 1;
                        check(
                            inst,
                            backend.name(),
                            &format!("{fam} chain reopt"),
                            Ok(sol.clone()),
                        );
                        sol
                    }
                    None => {
                        let cold = backend.solve_core(&inst.costs, &a, &inst.b, None);
                        check(
                            inst,
                            backend.name(),
                            &format!("{fam} chain cold fallback"),
                            cold.clone(),
                        );
                        cold.expect("chain member must at least solve cold")
                    }
                };
                basis = sol.basis;
            }
        }
    }
    assert!(reopts > 0, "no chain member ever reoptimized — the dual fast path is dead");
}
