//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random bounded LPs whose feasibility is guaranteed by
//! construction (box constraints plus random cutting planes through a known
//! interior point), then check that the reported optimum is (a) feasible and
//! (b) at least as good as a cloud of random feasible points.

use proptest::prelude::*;
use qava_lp::{Cmp, LinExpr, LpBuilder, VarId};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// A randomly generated LP instance that is feasible by construction: the
/// anchor point satisfies every constraint.
#[derive(Debug, Clone)]
struct RandomLp {
    dim: usize,
    /// Rows `(coeffs, rhs)` meaning `coeffs · x <= rhs`.
    rows: Vec<(Vec<f64>, f64)>,
    objective: Vec<f64>,
    anchor: Vec<f64>,
}

fn random_lp_strategy() -> impl Strategy<Value = RandomLp> {
    (2usize..5, 1usize..7, any::<u64>()).prop_map(|(dim, ncuts, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let anchor: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut rows = Vec::new();
        // Bounding box keeps the LP bounded in every direction.
        for j in 0..dim {
            let mut pos = vec![0.0; dim];
            pos[j] = 1.0;
            rows.push((pos.clone(), anchor[j] + rng.gen_range(0.5..4.0)));
            let mut neg = vec![0.0; dim];
            neg[j] = -1.0;
            rows.push((neg, -anchor[j] + rng.gen_range(0.5..4.0)));
        }
        // Random cutting planes kept feasible for the anchor.
        for _ in 0..ncuts {
            let coeffs: Vec<f64> = (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let at_anchor: f64 = coeffs.iter().zip(&anchor).map(|(c, a)| c * a).sum();
            rows.push((coeffs, at_anchor + rng.gen_range(0.1..3.0)));
        }
        let objective: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        RandomLp { dim, rows, objective, anchor }
    })
}

fn build(lp: &RandomLp) -> (LpBuilder, Vec<VarId>) {
    let mut b = LpBuilder::new();
    let vars: Vec<VarId> = (0..lp.dim).map(|j| b.add_var(format!("x{j}"))).collect();
    for (coeffs, rhs) in &lp.rows {
        let mut e = LinExpr::new();
        for (j, &c) in coeffs.iter().enumerate() {
            e = e.term(vars[j], c);
        }
        b.constrain(e, Cmp::Le, *rhs);
    }
    let mut obj = LinExpr::new();
    for (j, &c) in lp.objective.iter().enumerate() {
        obj = obj.term(vars[j], c);
    }
    b.minimize(obj);
    (b, vars)
}

fn is_feasible(lp: &RandomLp, x: &[f64], tol: f64) -> bool {
    lp.rows.iter().all(|(coeffs, rhs)| {
        coeffs.iter().zip(x).map(|(c, v)| c * v).sum::<f64>() <= rhs + tol
    })
}

fn objective_at(lp: &RandomLp, x: &[f64]) -> f64 {
    lp.objective.iter().zip(x).map(|(c, v)| c * v).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The returned optimum is feasible and dominates random feasible points.
    #[test]
    fn optimum_is_feasible_and_dominant(instance in random_lp_strategy(), probe_seed in any::<u64>()) {
        let (builder, vars) = build(&instance);
        let sol = builder.solve().expect("constructed LP is feasible and bounded");
        let x: Vec<f64> = vars.iter().map(|&v| sol.value(v)).collect();
        prop_assert!(is_feasible(&instance, &x, 1e-6), "solver returned infeasible point {x:?}");
        prop_assert!(is_feasible(&instance, &instance.anchor, 1e-9), "anchor broken by construction");

        // The anchor itself must not beat the optimum.
        let opt = objective_at(&instance, &x);
        prop_assert!(opt <= objective_at(&instance, &instance.anchor) + 1e-6);

        // Nor may random feasible perturbations around the anchor.
        let mut rng = StdRng::seed_from_u64(probe_seed);
        for _ in 0..50 {
            let probe: Vec<f64> = instance
                .anchor
                .iter()
                .map(|a| a + rng.gen_range(-1.0..1.0))
                .collect();
            if is_feasible(&instance, &probe, 0.0) {
                prop_assert!(opt <= objective_at(&instance, &probe) + 1e-6,
                    "probe {probe:?} beats reported optimum");
            }
        }
    }

    /// Solving the same LP twice gives the same optimal value (determinism).
    #[test]
    fn deterministic(instance in random_lp_strategy()) {
        let (b1, _) = build(&instance);
        let (b2, _) = build(&instance);
        let o1 = b1.solve().unwrap().objective;
        let o2 = b2.solve().unwrap().objective;
        prop_assert!((o1 - o2).abs() < 1e-9);
    }

    /// Adding a redundant constraint (implied by an existing one) never
    /// changes the optimum.
    #[test]
    fn redundant_row_invariance(instance in random_lp_strategy()) {
        let (b1, _) = build(&instance);
        let base = b1.solve().unwrap().objective;

        let mut relaxed = instance.clone();
        let (coeffs, rhs) = relaxed.rows[0].clone();
        relaxed.rows.push((coeffs, rhs + 1.0)); // strictly weaker copy
        let (b2, _) = build(&relaxed);
        let with_redundant = b2.solve().unwrap().objective;
        prop_assert!((base - with_redundant).abs() < 1e-7);
    }
}
