//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random bounded LPs whose feasibility is guaranteed by
//! construction (box constraints plus random cutting planes through a known
//! interior point), then check that the reported optimum is (a) feasible and
//! (b) at least as good as a cloud of random feasible points.

use proptest::prelude::*;
use qava_lp::{Cmp, LinExpr, LpBuilder, VarId};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// A randomly generated LP instance that is feasible by construction: the
/// anchor point satisfies every constraint.
#[derive(Debug, Clone)]
struct RandomLp {
    dim: usize,
    /// Rows `(coeffs, rhs)` meaning `coeffs · x <= rhs`.
    rows: Vec<(Vec<f64>, f64)>,
    objective: Vec<f64>,
    anchor: Vec<f64>,
}

fn random_lp_strategy() -> impl Strategy<Value = RandomLp> {
    (2usize..5, 1usize..7, any::<u64>()).prop_map(|(dim, ncuts, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let anchor: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut rows = Vec::new();
        // Bounding box keeps the LP bounded in every direction.
        for j in 0..dim {
            let mut pos = vec![0.0; dim];
            pos[j] = 1.0;
            rows.push((pos.clone(), anchor[j] + rng.gen_range(0.5..4.0)));
            let mut neg = vec![0.0; dim];
            neg[j] = -1.0;
            rows.push((neg, -anchor[j] + rng.gen_range(0.5..4.0)));
        }
        // Random cutting planes kept feasible for the anchor.
        for _ in 0..ncuts {
            let coeffs: Vec<f64> = (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let at_anchor: f64 = coeffs.iter().zip(&anchor).map(|(c, a)| c * a).sum();
            rows.push((coeffs, at_anchor + rng.gen_range(0.1..3.0)));
        }
        let objective: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        RandomLp { dim, rows, objective, anchor }
    })
}

fn build(lp: &RandomLp) -> (LpBuilder, Vec<VarId>) {
    let mut b = LpBuilder::new();
    let vars: Vec<VarId> = (0..lp.dim).map(|j| b.add_var(format!("x{j}"))).collect();
    for (coeffs, rhs) in &lp.rows {
        let mut e = LinExpr::new();
        for (j, &c) in coeffs.iter().enumerate() {
            e = e.term(vars[j], c);
        }
        b.constrain(e, Cmp::Le, *rhs);
    }
    let mut obj = LinExpr::new();
    for (j, &c) in lp.objective.iter().enumerate() {
        obj = obj.term(vars[j], c);
    }
    b.minimize(obj);
    (b, vars)
}

fn is_feasible(lp: &RandomLp, x: &[f64], tol: f64) -> bool {
    lp.rows.iter().all(|(coeffs, rhs)| {
        coeffs.iter().zip(x).map(|(c, v)| c * v).sum::<f64>() <= rhs + tol
    })
}

fn objective_at(lp: &RandomLp, x: &[f64]) -> f64 {
    lp.objective.iter().zip(x).map(|(c, v)| c * v).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The returned optimum is feasible and dominates random feasible points.
    #[test]
    fn optimum_is_feasible_and_dominant(instance in random_lp_strategy(), probe_seed in any::<u64>()) {
        let (builder, vars) = build(&instance);
        let sol = builder.solve().expect("constructed LP is feasible and bounded");
        let x: Vec<f64> = vars.iter().map(|&v| sol.value(v)).collect();
        prop_assert!(is_feasible(&instance, &x, 1e-6), "solver returned infeasible point {x:?}");
        prop_assert!(is_feasible(&instance, &instance.anchor, 1e-9), "anchor broken by construction");

        // The anchor itself must not beat the optimum.
        let opt = objective_at(&instance, &x);
        prop_assert!(opt <= objective_at(&instance, &instance.anchor) + 1e-6);

        // Nor may random feasible perturbations around the anchor.
        let mut rng = StdRng::seed_from_u64(probe_seed);
        for _ in 0..50 {
            let probe: Vec<f64> = instance
                .anchor
                .iter()
                .map(|a| a + rng.gen_range(-1.0..1.0))
                .collect();
            if is_feasible(&instance, &probe, 0.0) {
                prop_assert!(opt <= objective_at(&instance, &probe) + 1e-6,
                    "probe {probe:?} beats reported optimum");
            }
        }
    }

    /// Solving the same LP twice gives the same optimal value (determinism).
    #[test]
    fn deterministic(instance in random_lp_strategy()) {
        let (b1, _) = build(&instance);
        let (b2, _) = build(&instance);
        let o1 = b1.solve().unwrap().objective;
        let o2 = b2.solve().unwrap().objective;
        prop_assert!((o1 - o2).abs() < 1e-9);
    }

    /// Adding a redundant constraint (implied by an existing one) never
    /// changes the optimum.
    #[test]
    fn redundant_row_invariance(instance in random_lp_strategy()) {
        let (b1, _) = build(&instance);
        let base = b1.solve().unwrap().objective;

        let mut relaxed = instance.clone();
        let (coeffs, rhs) = relaxed.rows[0].clone();
        relaxed.rows.push((coeffs, rhs + 1.0)); // strictly weaker copy
        let (b2, _) = build(&relaxed);
        let with_redundant = b2.solve().unwrap().objective;
        prop_assert!((base - with_redundant).abs() < 1e-7);
    }
}

// ---------------------------------------------------------------------
// Differential tests: every backend registered through the `LpBackend`
// trait on random standard-form LPs. Backends are selected **at
// runtime** via `LpSolver` sessions — not via the `dense-simplex` cargo
// feature — so all three cores are exercised unconditionally in every
// build. All backends must agree on the verdict (optimal / infeasible /
// unbounded) and, when optimal, on the objective value — the argmin may
// differ when the optimum face is not a vertex singleton.
// ---------------------------------------------------------------------

use qava_linalg::Matrix;
use qava_lp::{
    BackendChoice, CoreSolution, CscMatrix, LpBackend, LpError, LpSolver, LuBgSimplex, LuFtSimplex,
    LuSimplex, SparseRevised, solve_standard_dense,
};

/// The runtime-selected backends every differential case runs through.
const DIFF_BACKENDS: [BackendChoice; 5] = [
    BackendChoice::Sparse,
    BackendChoice::Dense,
    BackendChoice::Lu,
    BackendChoice::LuFt,
    BackendChoice::LuBg,
];

/// One fresh session per (case, backend): differential cases must not
/// warm-start each other across proptest iterations.
fn solve_with(choice: BackendChoice, inst: &StdLpInstance) -> Result<Vec<f64>, LpError> {
    LpSolver::with_choice(choice).solve_standard(&inst.costs, &inst.matrix(), &inst.b)
}

/// A random standard-form LP `min cᵀx, A·x = b, x ≥ 0` that is feasible
/// by construction (`b = A·x₀` for a non-negative `x₀`).
#[derive(Debug, Clone)]
struct StdLpInstance {
    costs: Vec<f64>,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
}

impl StdLpInstance {
    fn matrix(&self) -> Matrix {
        Matrix::from_rows(self.a.clone())
    }
}

fn feasible_std_lp(seed: u64) -> StdLpInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = rng.gen_range(1usize..6);
    let n = m + rng.gen_range(1usize..7);
    // ~half the entries zero so presolve and CSC actually see sparsity.
    let a: Vec<Vec<f64>> = (0..m)
        .map(|_| {
            (0..n)
                .map(|_| if rng.gen_bool(0.5) { rng.gen_range(-3.0..3.0) } else { 0.0 })
                .collect()
        })
        .collect();
    let x0: Vec<f64> = (0..n)
        .map(|_| if rng.gen_bool(0.7) { rng.gen_range(0.0..4.0) } else { 0.0 })
        .collect();
    let mut b: Vec<f64> = (0..m)
        .map(|i| a[i].iter().zip(&x0).map(|(c, x)| c * x).sum())
        .collect();
    // Standard form wants b ≥ 0: flip offending rows.
    let mut a = a;
    for i in 0..m {
        if b[i] < 0.0 {
            b[i] = -b[i];
            for v in a[i].iter_mut() {
                *v = -*v;
            }
        }
    }
    // Bound the feasible region so the minimum exists: one extra row
    // Σx + s = Σx₀ + margin with a fresh slack keeps every xⱼ bounded.
    let margin: f64 = rng.gen_range(1.0..5.0);
    let total: f64 = x0.iter().sum::<f64>() + margin;
    for row in a.iter_mut() {
        row.push(0.0);
    }
    let mut cap = vec![1.0; n];
    cap.push(1.0);
    a.push(cap);
    b.push(total);
    let costs: Vec<f64> = (0..n + 1).map(|_| rng.gen_range(-2.0..2.0)).collect();
    StdLpInstance { costs, a, b }
}

/// A deliberately degenerate variant of [`feasible_std_lp`]: extra rows
/// that are sums of existing ones (linearly dependent, so presolve's
/// exact-duplicate pass keeps them) and a sparser anchor point, so the
/// optimum sits on a vertex where many bases are interchangeable. This
/// is the regime where anti-cycling (sticky Bland) and the basis
/// representations' tiny-pivot handling earn their keep.
fn degenerate_std_lp(seed: u64) -> StdLpInstance {
    let mut inst = feasible_std_lp(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_DE6E);
    let m = inst.a.len();
    let extra = 1 + (seed as usize) % 3;
    for _ in 0..extra {
        let i = rng.gen_range(0..m);
        let j = rng.gen_range(0..m);
        let sum: Vec<f64> = inst.a[i].iter().zip(&inst.a[j]).map(|(x, y)| x + y).collect();
        inst.b.push(inst.b[i] + inst.b[j]);
        inst.a.push(sum);
    }
    inst
}

fn objective(costs: &[f64], x: &[f64]) -> f64 {
    costs.iter().zip(x).map(|(c, v)| c * v).sum()
}

fn check_feasible(inst: &StdLpInstance, x: &[f64], tol: f64) -> Result<(), String> {
    for (i, row) in inst.a.iter().enumerate() {
        let ax: f64 = row.iter().zip(x).map(|(c, v)| c * v).sum();
        if (ax - inst.b[i]).abs() > tol {
            return Err(format!("row {i}: A·x = {ax} vs b = {}", inst.b[i]));
        }
    }
    if let Some(v) = x.iter().find(|&&v| v < -tol) {
        return Err(format!("negative component {v}"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On feasible bounded LPs every backend finds an optimum of the same
    /// value, and all report feasible points.
    #[test]
    fn differential_feasible(seed in any::<u64>()) {
        let inst = feasible_std_lp(seed);
        let tol = 1e-6 * (1.0 + inst.b.iter().fold(0.0f64, |a, &v| a.max(v.abs())));
        let mut objectives: Vec<(BackendChoice, f64)> = Vec::new();
        for choice in DIFF_BACKENDS {
            let x = solve_with(choice, &inst)
                .expect("constructed LP is feasible and bounded");
            prop_assert!(check_feasible(&inst, &x, tol).is_ok(),
                "{choice} infeasible point: {:?}", check_feasible(&inst, &x, tol));
            objectives.push((choice, objective(&inst.costs, &x)));
        }
        let (_, o0) = objectives[0];
        for &(choice, o) in &objectives[1..] {
            prop_assert!((o0 - o).abs() <= 1e-5 * (1.0 + o0.abs().max(o.abs())),
                "objective mismatch: {} {o0} vs {choice} {o}", objectives[0].0);
        }
    }

    /// Appending a contradictory copy of a row makes every backend report
    /// infeasibility.
    #[test]
    fn differential_infeasible(seed in any::<u64>()) {
        let mut inst = feasible_std_lp(seed);
        let clash = inst.a[0].clone();
        let clash_rhs = inst.b[0] + 3.0; // clearly conflicting duplicate
        inst.a.push(clash);
        inst.b.push(clash_rhs);
        for choice in DIFF_BACKENDS {
            prop_assert_eq!(solve_with(choice, &inst).unwrap_err(), LpError::Infeasible,
                "backend {}", choice);
        }
    }

    /// Adding a non-negative ray with negative cost makes every backend
    /// report unboundedness: the fresh column pair (v, −v) gives
    /// A·(e_j + e_k) = 0 with cost < 0.
    #[test]
    fn differential_unbounded(seed in any::<u64>()) {
        let mut inst = feasible_std_lp(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
        let ray: Vec<f64> = inst.a.iter().map(|_| rng.gen_range(-2.0..2.0)).collect();
        for (i, row) in inst.a.iter_mut().enumerate() {
            row.push(ray[i]);
            row.push(-ray[i]);
        }
        inst.costs.push(-1.0);
        inst.costs.push(0.0);
        for choice in DIFF_BACKENDS {
            prop_assert_eq!(solve_with(choice, &inst).unwrap_err(), LpError::Unbounded,
                "backend {}", choice);
        }
    }

    /// On degenerate LPs (dependent rows, sparse anchors) every backend
    /// still terminates with a feasible point of the same value — the
    /// anti-cycling and tiny-pivot machinery of both revised-simplex
    /// representations under maximal tie pressure.
    #[test]
    fn differential_degenerate(seed in any::<u64>()) {
        let inst = degenerate_std_lp(seed);
        let tol = 1e-6 * (1.0 + inst.b.iter().fold(0.0f64, |a, &v| a.max(v.abs())));
        let mut objectives: Vec<(BackendChoice, f64)> = Vec::new();
        for choice in DIFF_BACKENDS {
            let x = solve_with(choice, &inst)
                .expect("degenerate instance stays feasible and bounded");
            prop_assert!(check_feasible(&inst, &x, tol).is_ok(),
                "{choice} infeasible point: {:?}", check_feasible(&inst, &x, tol));
            objectives.push((choice, objective(&inst.costs, &x)));
        }
        let (_, o0) = objectives[0];
        for &(choice, o) in &objectives[1..] {
            prop_assert!((o0 - o).abs() <= 1e-5 * (1.0 + o0.abs().max(o.abs())),
                "objective mismatch: {} {o0} vs {choice} {o}", objectives[0].0);
        }
    }

    /// Warm-started re-solves agree with cold solves of every backend:
    /// one warm-capable session solves a drifting sequence of
    /// same-pattern LPs (hitting the basis cache) and each solve is
    /// cross-checked against a cold dense session.
    #[test]
    fn differential_warm_start_chain(seed in any::<u64>()) {
        let inst = feasible_std_lp(seed);
        for warm_choice in
            [BackendChoice::Sparse, BackendChoice::Lu, BackendChoice::LuFt, BackendChoice::LuBg]
        {
            let mut warm = LpSolver::with_choice(warm_choice);
            for step in 0..4 {
                let mut drifted = inst.clone();
                for v in drifted.b.iter_mut() {
                    *v *= 1.0 + 0.05 * step as f64;
                }
                let xw = warm.solve_standard(&drifted.costs, &drifted.matrix(), &drifted.b)
                    .expect("scaled instance stays feasible and bounded");
                let xc = solve_with(BackendChoice::Dense, &drifted)
                    .expect("cold dense solve of the same instance");
                let ow = objective(&drifted.costs, &xw);
                let oc = objective(&drifted.costs, &xc);
                prop_assert!((ow - oc).abs() <= 1e-5 * (1.0 + ow.abs().max(oc.abs())),
                    "step {step}: warm {warm_choice} {ow} vs cold dense {oc}");
            }
        }
    }

    /// A hostile warm-start basis — singular (duplicated column) or
    /// nearly singular — must never change a verdict or an optimum: the
    /// warm-capable backends hit the refactorization backstop, reject
    /// the basis, and fall back to the cold path.
    #[test]
    fn differential_hostile_warm_basis(seed in any::<u64>()) {
        let inst = feasible_std_lp(seed);
        let csc = CscMatrix::from_dense(&inst.matrix());
        let m = inst.a.len();
        let reference = solve_with(BackendChoice::Dense, &inst)
            .expect("constructed LP is feasible and bounded");
        let oref = objective(&inst.costs, &reference);
        // Singular: the same column in every basis slot. Near-singular /
        // stale: all slots on the last column except slot 0.
        let singular = vec![0usize; m];
        let mut stale = vec![inst.a[0].len() - 1; m];
        stale[0] = 0;
        for (label, basis) in [("singular", &singular), ("stale", &stale)] {
            for backend in [
                Box::new(SparseRevised) as Box<dyn LpBackend>,
                Box::new(LuSimplex) as Box<dyn LpBackend>,
                Box::new(LuFtSimplex) as Box<dyn LpBackend>,
                Box::new(LuBgSimplex) as Box<dyn LpBackend>,
            ] {
                let core = backend
                    .solve_core(&inst.costs, &csc, &inst.b, Some(basis))
                    .unwrap_or_else(|e| panic!("{} warm={label}: {e}", backend.name()));
                let o = objective(&inst.costs, &core.x);
                prop_assert!((o - oref).abs() <= 1e-5 * (1.0 + o.abs().max(oref.abs())),
                    "{} with {label} warm basis: {o} vs {oref}", backend.name());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Error-path plumbing through the trait object: a registered custom
// backend's verdicts must surface unchanged through the session pipeline.
// ---------------------------------------------------------------------

/// A mock backend that always gives up — the PivotLimit error path, which
/// no reasonably-sized real instance triggers deterministically.
struct GivesUp;

impl LpBackend for GivesUp {
    fn name(&self) -> &'static str {
        "gives-up"
    }

    fn solve_core(
        &self,
        _costs: &[f64],
        _a: &CscMatrix,
        _b: &[f64],
        _warm: Option<&[usize]>,
    ) -> Result<CoreSolution, LpError> {
        Err(LpError::PivotLimit)
    }
}

#[test]
fn pivot_limit_propagates_through_registered_backend() {
    let inst = feasible_std_lp(7);
    // With the failover ladder disabled, the custom backend's raw
    // verdict surfaces unchanged — the differential-testing contract.
    let mut solver = LpSolver::new();
    solver.set_failover(false);
    solver.register_backend(Box::new(GivesUp));
    assert_eq!(
        solver.solve_standard(&inst.costs, &inst.matrix(), &inst.b).unwrap_err(),
        LpError::PivotLimit
    );
    // The failed solve is still accounted to the backend that ran it.
    let stats = solver.stats();
    assert_eq!(stats.solves, 1);
    assert_eq!(stats.backends.len(), 1);
    assert_eq!(stats.backends[0].name, "gives-up");
    assert_eq!(stats.failovers, 0);
    // Selecting a real backend afterwards recovers the optimum.
    assert!(solver.select_backend("sparse"));
    solver
        .solve_standard(&inst.costs, &inst.matrix(), &inst.b)
        .expect("sparse backend solves the same instance");
}

#[test]
fn pivot_limit_rescued_by_failover_ladder() {
    let inst = feasible_std_lp(7);
    // Default sessions instead rescue the solve: the ladder steps down
    // to a built-in rung, which must certify the same optimum the
    // backend would have.
    let mut oracle = LpSolver::with_choice(BackendChoice::Dense);
    let xref = oracle.solve_standard(&inst.costs, &inst.matrix(), &inst.b).unwrap();
    let oref = objective(&inst.costs, &xref);
    let mut solver = LpSolver::new();
    solver.register_backend(Box::new(GivesUp));
    let x = solver
        .solve_standard(&inst.costs, &inst.matrix(), &inst.b)
        .expect("the ladder rescues the giving-up backend");
    let o = objective(&inst.costs, &x);
    assert!((o - oref).abs() <= 1e-7 * (1.0 + oref.abs()), "{o} vs {oref}");
    let stats = solver.stats();
    assert_eq!(stats.failovers, 1, "the first rung rescues");
    assert_eq!(stats.failover_recoveries, 1);
    let names: Vec<_> = stats.backends.iter().map(|t| t.name).collect();
    assert_eq!(names, vec!["gives-up", "lu-ft"], "both the failure and the rescue are tallied");
}

/// Regression (column-scaling undo): a template-LP-shaped system mixing
/// `1e-7` failure-probability coefficients with `1e2` invariant bounds in
/// the same row. The second column's max-norm is `3e-7`, far outside the
/// `[0.25, 4]` dead-band, so the solver rescales it and must scale the
/// solution back; a broken undo path reports x₁ off by seven orders of
/// magnitude.
#[test]
fn column_scaling_undo_regression() {
    let a = Matrix::from_rows(vec![vec![1.0, 1e-7], vec![2.0, 3e-7]]);
    // Unique solution x = (2, 1e7): b = (2 + 1, 4 + 3).
    let b = vec![3.0, 7.0];
    let costs = vec![1.0, 1.0];
    for (label, x) in [
        (
            "sparse",
            LpSolver::with_choice(BackendChoice::Sparse).solve_standard(&costs, &a, &b).unwrap(),
        ),
        ("lu", LpSolver::with_choice(BackendChoice::Lu).solve_standard(&costs, &a, &b).unwrap()),
        (
            "lu-ft",
            LpSolver::with_choice(BackendChoice::LuFt).solve_standard(&costs, &a, &b).unwrap(),
        ),
        (
            "lu-bg",
            LpSolver::with_choice(BackendChoice::LuBg).solve_standard(&costs, &a, &b).unwrap(),
        ),
        ("dense", solve_standard_dense(&costs, &a, &b).unwrap()),
    ] {
        assert!((x[0] - 2.0).abs() < 1e-5, "{label}: x0 = {}", x[0]);
        assert!(
            (x[1] - 1e7).abs() < 1e7 * 1e-6,
            "{label}: x1 = {} (column-scaling undo broken?)",
            x[1]
        );
    }

    // And the 1e2-heavy variant: rows outside the dead-band upward.
    let a = Matrix::from_rows(vec![vec![1e2, 0.0, 1.0], vec![0.0, 2e2, 1.0]]);
    let b = vec![5e2, 8e2];
    let costs = vec![1.0, 1.0, 0.0];
    for (label, x) in [
        (
            "sparse",
            LpSolver::with_choice(BackendChoice::Sparse).solve_standard(&costs, &a, &b).unwrap(),
        ),
        ("lu", LpSolver::with_choice(BackendChoice::Lu).solve_standard(&costs, &a, &b).unwrap()),
        (
            "lu-ft",
            LpSolver::with_choice(BackendChoice::LuFt).solve_standard(&costs, &a, &b).unwrap(),
        ),
        (
            "lu-bg",
            LpSolver::with_choice(BackendChoice::LuBg).solve_standard(&costs, &a, &b).unwrap(),
        ),
        ("dense", solve_standard_dense(&costs, &a, &b).unwrap()),
    ] {
        let r1 = 1e2 * x[0] + x[2];
        let r2 = 2e2 * x[1] + x[2];
        assert!((r1 - 5e2).abs() < 1e-4, "{label}: row1 = {r1}");
        assert!((r2 - 8e2).abs() < 1e-4, "{label}: row2 = {r2}");
    }
}

// ---------------------------------------------------------------------
// Metamorphic properties: a solved LP and a mechanically transformed
// twin must agree in ways the transformation dictates exactly. Unlike
// the differential block above (which needs a second solver to disagree
// with), these detect a backend that is consistently wrong — all five
// engines run every property.
// ---------------------------------------------------------------------

use qava_lp::debug::{trace_pivots, TraceEngine};

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        p.swap(i, rng.gen_range(0..i + 1));
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Row-permutation invariance: reordering the constraints is pure
    /// bookkeeping — every backend must report the same optimum.
    #[test]
    fn metamorphic_row_permutation(seed in any::<u64>(), perm_seed in any::<u64>()) {
        let inst = feasible_std_lp(seed);
        let perm = permutation(inst.a.len(), perm_seed);
        let permuted = StdLpInstance {
            costs: inst.costs.clone(),
            a: perm.iter().map(|&i| inst.a[i].clone()).collect(),
            b: perm.iter().map(|&i| inst.b[i]).collect(),
        };
        for choice in DIFF_BACKENDS {
            let x0 = solve_with(choice, &inst).expect("base instance solvable");
            let x1 = solve_with(choice, &permuted).expect("permuted instance solvable");
            let (o0, o1) = (objective(&inst.costs, &x0), objective(&permuted.costs, &x1));
            prop_assert!((o0 - o1).abs() <= 1e-6 * (1.0 + o0.abs().max(o1.abs())),
                "{choice}: row permutation moved the optimum {o0} -> {o1}");
        }
    }

    /// Column-scaling invariance: scaling column j of A by s and cost j
    /// by s substitutes x_j' = x_j / s — the optimal objective is
    /// untouched. Exercises every backend's interaction with the
    /// session's equilibrator and its undo path (the historical
    /// column-scaling-undo bug class, now for all five engines).
    #[test]
    fn metamorphic_column_scaling(seed in any::<u64>(), scale_seed in any::<u64>()) {
        let inst = feasible_std_lp(seed);
        let n = inst.costs.len();
        let mut rng = StdRng::seed_from_u64(scale_seed);
        let scales: Vec<f64> = (0..n)
            .map(|_| {
                let s = rng.gen_range(-4.0f64..4.0);
                // Log-uniform-ish over [2^-4, 2^4], never zero.
                (2.0f64).powf(s)
            })
            .collect();
        let scaled = StdLpInstance {
            costs: inst.costs.iter().zip(&scales).map(|(c, s)| c * s).collect(),
            a: inst
                .a
                .iter()
                .map(|row| row.iter().zip(&scales).map(|(v, s)| v * s).collect())
                .collect(),
            b: inst.b.clone(),
        };
        for choice in DIFF_BACKENDS {
            let x0 = solve_with(choice, &inst).expect("base instance solvable");
            let x1 = solve_with(choice, &scaled).expect("scaled instance solvable");
            let (o0, o1) = (objective(&inst.costs, &x0), objective(&scaled.costs, &x1));
            prop_assert!((o0 - o1).abs() <= 1e-5 * (1.0 + o0.abs().max(o1.abs())),
                "{choice}: column scaling moved the optimum {o0} -> {o1}");
        }
    }

    /// Objective-scaling covariance: multiplying every cost by λ > 0
    /// leaves the argmin alone and scales the optimum by exactly λ.
    #[test]
    fn metamorphic_objective_scaling(seed in any::<u64>(), lambda_exp in -3i32..4) {
        let lambda = (2.0f64).powi(lambda_exp) * 1.5;
        let inst = feasible_std_lp(seed);
        let scaled = StdLpInstance {
            costs: inst.costs.iter().map(|c| c * lambda).collect(),
            a: inst.a.clone(),
            b: inst.b.clone(),
        };
        for choice in DIFF_BACKENDS {
            let x0 = solve_with(choice, &inst).expect("base instance solvable");
            let x1 = solve_with(choice, &scaled).expect("scaled instance solvable");
            let (o0, o1) = (objective(&inst.costs, &x0), objective(&scaled.costs, &x1));
            prop_assert!((lambda * o0 - o1).abs() <= 1e-5 * (1.0 + o1.abs()),
                "{choice}: λ={lambda}: optimum {o0} should scale to {}, got {o1}", lambda * o0);
        }
    }

    /// The Forrest–Tomlin and eta-file engines share every line of the
    /// pricing loop; under Bland's rule (deterministic lowest-index
    /// selection, no near-tie races) they must therefore visit the
    /// **identical** pivot sequence on identical instances. When this
    /// fails, the bug is in the basis-update algebra — the one part the
    /// engines do not share — which is exactly where a differential
    /// objective mismatch cannot localize it.
    #[test]
    fn metamorphic_ft_and_eta_pivot_sequences_agree(seed in any::<u64>()) {
        let inst = feasible_std_lp(seed);
        let csc = CscMatrix::from_dense(&inst.matrix());
        let (re, eta) = trace_pivots(TraceEngine::LuEta, &inst.costs, &csc, &inst.b, true);
        let (rf, ft) = trace_pivots(TraceEngine::LuFt, &inst.costs, &csc, &inst.b, true);
        prop_assert_eq!(eta.len(), ft.len(),
            "pivot counts diverged: eta {} vs ft {}", eta.len(), ft.len());
        for (i, (pe, pf)) in eta.iter().zip(&ft).enumerate() {
            prop_assert_eq!(pe, pf, "pivot {i} diverged: eta {:?} vs ft {:?}", pe, pf);
        }
        // Verdicts agree too (both Ok-with-solution here by
        // construction; still compare shape, not just the trace).
        prop_assert_eq!(re.is_ok(), rf.is_ok());
        if let (Ok(Some(xe)), Ok(Some(xf))) = (re, rf) {
            let (oe, of) = (objective(&inst.costs, &xe), objective(&inst.costs, &xf));
            prop_assert!((oe - of).abs() <= 1e-6 * (1.0 + oe.abs().max(of.abs())),
                "same pivot path, different optimum: {oe} vs {of}");
        }
    }

    /// Same property under maximal degeneracy (dependent rows force tie
    /// after tie through the Bland order).
    #[test]
    fn metamorphic_pivot_sequences_agree_on_degenerate_instances(seed in any::<u64>()) {
        let inst = degenerate_std_lp(seed);
        let csc = CscMatrix::from_dense(&inst.matrix());
        let (_, eta) = trace_pivots(TraceEngine::LuEta, &inst.costs, &csc, &inst.b, true);
        let (_, ft) = trace_pivots(TraceEngine::LuFt, &inst.costs, &csc, &inst.b, true);
        prop_assert_eq!(&eta, &ft, "degenerate pivot sequences diverged");
    }

    /// Bartels–Golub vs Forrest–Tomlin: the two LU update engines share
    /// the pricing loop and differ only in how the spike is eliminated
    /// (row interchanges vs a fixed rotation), a choice that changes the
    /// rounding — not the exact arithmetic path the ratio tests see.
    /// Under Bland's rule the pivot sequences must therefore be
    /// identical; a divergence localizes a bug to the BG elimination
    /// algebra itself.
    #[test]
    fn metamorphic_bg_and_ft_pivot_sequences_agree(seed in any::<u64>()) {
        let inst = feasible_std_lp(seed);
        let csc = CscMatrix::from_dense(&inst.matrix());
        let (rf, ft) = trace_pivots(TraceEngine::LuFt, &inst.costs, &csc, &inst.b, true);
        let (rb, bg) = trace_pivots(TraceEngine::LuBg, &inst.costs, &csc, &inst.b, true);
        prop_assert_eq!(ft.len(), bg.len(),
            "pivot counts diverged: ft {} vs bg {}", ft.len(), bg.len());
        for (i, (pf, pb)) in ft.iter().zip(&bg).enumerate() {
            prop_assert_eq!(pf, pb, "pivot {i} diverged: ft {:?} vs bg {:?}", pf, pb);
        }
        prop_assert_eq!(rf.is_ok(), rb.is_ok());
        if let (Ok(Some(xf)), Ok(Some(xb))) = (rf, rb) {
            let (of, ob) = (objective(&inst.costs, &xf), objective(&inst.costs, &xb));
            prop_assert!((of - ob).abs() <= 1e-6 * (1.0 + of.abs().max(ob.abs())),
                "same pivot path, different optimum: ft {of} vs bg {ob}");
        }
    }

    /// And under maximal degeneracy, where an update-algebra error is
    /// likeliest to flip a zero-tolerance ratio-test tie.
    #[test]
    fn metamorphic_bg_pivot_sequences_agree_on_degenerate_instances(seed in any::<u64>()) {
        let inst = degenerate_std_lp(seed);
        let csc = CscMatrix::from_dense(&inst.matrix());
        let (_, ft) = trace_pivots(TraceEngine::LuFt, &inst.costs, &csc, &inst.b, true);
        let (_, bg) = trace_pivots(TraceEngine::LuBg, &inst.costs, &csc, &inst.b, true);
        prop_assert_eq!(&ft, &bg, "degenerate bg/ft pivot sequences diverged");
    }
}
