//! Regression pin for eta-file / basis-representation drift.
//!
//! This is the final ExpLowSyn LP of the `Ref p = 1e-7` Table 2 row,
//! captured verbatim from the synthesis pipeline. Its optimum sits at
//! `c·x = 0.0015380…` — three orders of magnitude above the optimality
//! tolerance but small enough that accumulated basis-update error can
//! swallow it: before the revised simplex verified its optimality
//! verdicts against a fresh refactorization, the LU backend terminated
//! at a drifted point with objective ≈ 3.0e-7 and a constraint residual
//! of 4e-7, silently over-claiming the certified lower bound (1.000000
//! instead of 0.998463). Every backend must agree on this instance to
//! full tolerance, and every returned point must actually satisfy
//! `A·x = b`.

use qava_linalg::Matrix;
use qava_lp::{BackendChoice, LpSolver};

/// `c·x` at the optimum, from the dense-tableau oracle.
const OPTIMUM: f64 = 0.001538000076;

#[test]
fn tiny_coefficient_lp_agrees_across_backends() {
    let costs: Vec<f64> = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
    let b: Vec<f64> = vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, -0.0, -0.0, -0.0, 2.9999992486607613e-7, -0.0, -0.0, -0.0, 0.0, -0.0, -0.0, -0.0, 9.999999494736425e-8, -0.0, -0.0, -0.0, 2.9999992486607613e-7, -0.0, -0.0, -0.0, 0.0, -0.0];
    let rows: Vec<Vec<(usize, f64)>> = vec![
        vec![(0, -1.0), (1, 1.0), (18, -1.0), (19, 1.0)],
        vec![(2, -1.0), (3, 1.0), (20, -1.0), (21, 1.0)],
        vec![(4, -1.0), (5, 1.0), (22, -1.0), (23, 1.0)],
        vec![(6, 1.0), (7, -1.0), (16, -1.0), (17, 1.0), (19, 20.0), (21, 16.0), (23, 16.0), (68, 1.0)],
        vec![(8, -1.0), (9, 1.0), (28, -1.0), (29, 1.0)],
        vec![(10, -1.0), (11, 1.0), (26, -1.0), (27, 1.0)],
        vec![(12, -1.0), (13, 1.0), (24, -1.0), (25, 1.0)],
        vec![(14, 1.0), (15, -1.0), (16, -1.0), (17, 1.0), (25, 16.0), (27, 15.0), (29, 19.0), (69, 1.0)],
        vec![(34, -1.0), (35, 1.0)],
        vec![(32, -1.0), (33, 1.0)],
        vec![(30, -1.0), (31, 1.0), (36, 1.0)],
        vec![(12, 0.9999997000000301), (13, -0.9999997000000301), (31, -16.0), (33, -15.0), (35, -19.0), (36, -15.0), (70, -1.0)],
        vec![(41, -1.0), (42, 1.0)],
        vec![(39, -1.0), (40, 1.0), (44, 1.0)],
        vec![(12, -1.0), (13, 1.0), (37, -1.0), (38, 1.0), (43, -1.0)],
        vec![(10, -1.0), (11, 1.0), (38, 16.0), (40, 15.0), (42, 19.0), (43, -16.0), (44, 14.0), (71, 1.0)],
        vec![(0, 0.9999999), (1, -0.9999999), (8, -0.9999999), (9, 0.9999999), (49, -1.0), (50, 1.0)],
        vec![(2, 0.9999999), (3, -0.9999999), (10, -0.9999999), (11, 0.9999999), (47, -1.0), (48, 1.0), (52, -1.0)],
        vec![(4, 0.9999999), (5, -0.9999999), (12, -0.9999999), (13, 0.9999999), (45, -1.0), (46, 1.0), (51, -1.0)],
        vec![(0, 0.9999999), (1, -0.9999999), (2, 0.9999999), (3, -0.9999999), (6, 0.9999999), (7, -0.9999999), (14, -0.9999999), (15, 0.9999999), (46, -16.0), (48, -15.0), (50, -19.0), (51, 16.0), (52, 15.0), (72, -1.0)],
        vec![(0, -0.9999997000000301), (1, 0.9999997000000301), (8, 0.9999997000000301), (9, -0.9999997000000301), (53, -1.0), (54, 1.0), (59, 1.0)],
        vec![(2, -0.9999997000000301), (3, 0.9999997000000301), (55, -1.0), (56, 1.0)],
        vec![(4, -0.9999997000000301), (5, 0.9999997000000301), (57, -1.0), (58, 1.0)],
        vec![(6, -0.9999997000000301), (7, 0.9999997000000301), (12, 0.9999997000000301), (13, -0.9999997000000301), (14, 0.9999997000000301), (15, -0.9999997000000301), (54, -20.0), (56, -16.0), (58, -16.0), (59, -19.0), (60, -15.0), (73, -1.0)],
        vec![(0, -1.0), (1, 1.0), (61, -1.0), (62, 1.0), (67, -1.0)],
        vec![(2, -1.0), (3, 1.0), (63, -1.0), (64, 1.0)],
        vec![(4, -1.0), (5, 1.0), (65, -1.0), (66, 1.0)],
        vec![(6, 1.0), (7, -1.0), (62, 20.0), (64, 16.0), (66, 16.0), (67, -20.0), (74, 1.0)],
        vec![(6, 1.0), (7, -1.0), (75, 1.0)],
    ];
    let ncols = 76;
    let mut a = Matrix::zeros(rows.len(), ncols);
    for (i, r) in rows.iter().enumerate() {
        for &(j, v) in r {
            a[(i, j)] = v;
        }
    }
    for choice in [BackendChoice::Sparse, BackendChoice::Dense, BackendChoice::Lu] {
        let mut solver = LpSolver::with_choice(choice);
        let x = solver.solve_standard(&costs, &a, &b).unwrap();
        let obj: f64 = costs.iter().zip(&x).map(|(c, v)| c * v).sum();
        assert!(
            (obj - OPTIMUM).abs() < 1e-7,
            "{choice}: objective {obj:.12} drifted from {OPTIMUM:.12}"
        );
        for (i, r) in rows.iter().enumerate() {
            let lhs: f64 = r.iter().map(|&(j, v)| v * x[j]).sum();
            assert!(
                (lhs - b[i]).abs() < 1e-7,
                "{choice}: row {i} residual {:.3e}",
                (lhs - b[i]).abs()
            );
        }
        assert!(x.iter().all(|&v| v >= -1e-9), "{choice}: negative component");
    }
}
